"""mcf: prefetching pointer chains with helper threads (Section 6.1).

mcf's chains defeat the stream prefetcher (no stride) and its per-node
branch defeats YAGS (data-dependent sign test). This example shows the
division of labor between the two slices the workload ships:

* the *periodic* prediction slice — forked per chain, computes the sign
  test (its predictions are mostly late: "the work performed at each
  node is insufficient to cover the latency of the sequential memory
  accesses");
* the *background* prefetch slice — walks the next chain end to end
  ("often there is one long-running, background slice").

Run:  python examples/pointer_chasing_prefetch.py
"""

from repro.harness.runner import run_baseline, run_with_slices
from repro.workloads import mcf


def main() -> None:
    workload = mcf.build(scale=0.4)
    pred_slice, background_slice = workload.slices

    base = run_baseline(workload)
    pred_only = run_with_slices(workload, slices=(pred_slice,))
    background_only = run_with_slices(workload, slices=(background_slice,))
    both = run_with_slices(workload)

    print(f"{'configuration':<28s}{'IPC':>6s}{'speedup':>9s}"
          f"{'load misses':>13s}{'mispredicts':>13s}")
    print("-" * 69)
    for name, stats in (
        ("baseline", base),
        ("prediction slice only", pred_only),
        ("background prefetch only", background_only),
        ("both slices", both),
    ):
        print(
            f"{name:<28s}{stats.ipc:>6.2f}"
            f"{stats.ipc / base.ipc - 1:>9.1%}"
            f"{stats.load_misses:>13d}"
            f"{stats.branch_mispredictions:>13d}"
        )

    c = both.correlator
    consumed = c.overrides + c.late_predictions
    late = c.late_predictions / consumed if consumed else 0
    print(f"\nlate predictions: {late:.0%} of consumed — the chain's serial")
    print("misses keep the prediction slice barely ahead of the main")
    print("thread, so mcf's benefit comes from prefetching (paper: ~80%).")


if __name__ == "__main__":
    main()

"""Automatic slice construction (Section 3.3).

Runs the automated pipeline — trace, backward slice, memory-dependence
profile, optimization, emission — on the vpr kernel and compares the
result against the paper-style hand slice.

Run:  python examples/auto_slice_construction.py
"""

from repro.harness.runner import run_baseline, run_with_slices
from repro.isa import disassemble
from repro.slices.auto import construct_slice
from repro.workloads import vpr


def main() -> None:
    workload = vpr.build(scale=0.2)
    branch_pc = next(iter(workload.problem_branch_pcs))
    fork_pc = workload.slices[0].fork_pc

    auto = construct_slice(workload, branch_pc, fork_pc, name="vpr_auto")

    print("Backward slice (un-optimized, over the trace):")
    info = auto.static_info
    print(f"  {info.static_size} static instructions over "
          f"{info.instances} dynamic instances; mean dynamic size "
          f"{info.mean_dynamic_size:.1f}, dataflow height "
          f"{info.mean_dataflow_height:.1f}")

    print("\nProfile-driven optimizations applied:")
    for pass_name, count in auto.report.removed.items():
        print(f"  {pass_name}: removed {count} instruction(s)")
    for load_pc, value_reg in auto.bypassed_loads.items():
        print(f"  register-allocated load {load_pc:#x} -> r{value_reg}")

    profile = sorted(auto.iteration_profile)
    print(f"\nIteration profile: mean "
          f"{sum(profile) / len(profile):.1f}, p95 "
          f"{profile[int(len(profile) * 0.95)]} "
          f"-> max_iterations = {auto.spec.max_iterations}")

    print(f"\nConstructed slice ({auto.spec.static_size} static, "
          f"live-ins {auto.spec.live_in_regs}):")
    print(disassemble(auto.spec.code))

    base = run_baseline(workload)
    hand = run_with_slices(workload)
    auto_run = run_with_slices(workload, slices=(auto.spec,))
    print(f"\nbaseline IPC {base.ipc:.2f}")
    print(f"hand slice (Figure 5 style): {hand.ipc / base.ipc - 1:+.1%}")
    print(f"automatically constructed:   {auto_run.ipc / base.ipc - 1:+.1%}")


if __name__ == "__main__":
    main()

"""The paper's running example, end to end (Figures 2-5).

Prints the add_to_heap kernel with its problem instructions marked
(Figure 2/4), the raw un-optimized backward slice (Figure 4's shaded
region), and the optimized slice (Figure 5) with its annotations —
then measures what each buys.

Run:  python examples/heap_insertion_slice.py
"""

from repro.harness.runner import run_baseline, run_with_slices
from repro.isa import disassemble
from repro.workloads import vpr


def main() -> None:
    workload = vpr.build(scale=0.2)
    program = workload.program

    print("=" * 70)
    print("Figure 2/4: the add_to_heap kernel (problem instructions *marked)")
    print("=" * 70)
    kernel_pcs = range(
        program.pc_of("node_to_heap"), program.pc_of("heap_return") + 20, 4
    )
    marked = workload.problem_branch_pcs | workload.problem_load_pcs
    lines = disassemble(program, mark_pcs=marked).splitlines()
    start = next(
        i for i, line in enumerate(lines) if "node_to_heap" in line
    )
    print("\n".join(lines[start : start + 45]))

    unopt = vpr.unoptimized_slice(workload)
    print("\n" + "=" * 70)
    print(f"Un-optimized slice ({unopt.static_size} static instructions)")
    print("=" * 70)
    print(disassemble(unopt.code))

    spec = workload.slices[0]
    print("\n" + "=" * 70)
    print(f"Figure 5: the optimized slice ({spec.static_size} static)")
    print("=" * 70)
    print(disassemble(spec.code))
    print("\n## Annotations")
    print(f"fork:  pc {spec.fork_pc:#x} (driver loop, hoisted)")
    print(f"live-in: r{spec.live_in_regs[0]} (cost-array pointer)")
    print(f"max loop iterations: {spec.max_iterations}")
    print(f"kills: {[(k.kind.value, hex(k.kill_pc)) for k in spec.kills]}")

    print("\n" + "=" * 70)
    print("Measured impact")
    print("=" * 70)
    base = run_baseline(workload)
    optimized = run_with_slices(workload)
    unoptimized = run_with_slices(workload, slices=(unopt,))
    print(f"baseline IPC:            {base.ipc:.2f}")
    print(f"with optimized slice:    {optimized.ipc:.2f} "
          f"({optimized.ipc / base.ipc - 1:+.1%})")
    print(f"with un-optimized slice: {unoptimized.ipc:.2f} "
          f"({unoptimized.ipc / base.ipc - 1:+.1%})")
    print("\nThe un-optimized slice communicates through memory the main")
    print("thread has not written yet (heap[ifrom]), so it terminates on")
    print("the null sentinel and covers almost nothing — the paper's")
    print("'register allocation' optimization is what makes the slice work.")


if __name__ == "__main__":
    main()

"""Quickstart: run a workload with and without speculative slices.

Builds the paper's running example (the vpr heap-insertion kernel of
Figure 2), runs the Table 1 baseline machine, then the same machine
with the Figure 5 slice executing in an idle SMT context, and prints
the headline numbers of Section 6.

Run:  python examples/quickstart.py
"""

from repro.harness.runner import run_baseline, run_triple, run_with_slices
from repro.workloads import registry


def main() -> None:
    workload = registry.build("vpr", scale=0.25)
    print(f"workload: {workload.name} — {workload.description}")
    print(f"program: {len(workload.program)} static instructions, "
          f"{len(workload.slices)} slice(s)\n")

    result = run_triple(workload)
    base, assisted, limit = result.base, result.assisted, result.limit

    print(f"baseline:        IPC {base.ipc:5.2f}   "
          f"{base.branch_mispredictions} mispredictions, "
          f"{base.load_misses} load misses")
    print(f"with slices:     IPC {assisted.ipc:5.2f}   "
          f"{assisted.branch_mispredictions} mispredictions, "
          f"{assisted.load_misses} load misses   "
          f"(speedup {result.slice_speedup:+.1%})")
    print(f"limit study:     IPC {limit.ipc:5.2f}   "
          f"(speedup {result.limit_speedup:+.1%})\n")

    c = assisted.correlator
    judged = c.correct_overrides + c.incorrect_overrides
    accuracy = c.correct_overrides / judged if judged else 0.0
    print(f"slice activity:  {assisted.forks_taken} forks "
          f"({assisted.forks_squashed} squashed, "
          f"{assisted.forks_ignored} ignored)")
    print(f"predictions:     {c.predictions_generated} generated, "
          f"{c.overrides} used at fetch ({accuracy:.1%} correct), "
          f"{c.late_predictions} late")
    print(f"prefetching:     "
          f"{assisted.hierarchy.get('slice_prefetches', 0)} slice-initiated "
          f"line fetches")


if __name__ == "__main__":
    main()

"""The prediction correlator, step by step (Figures 8 and 9).

Recreates the paper's Figure 9 walkthrough exactly: a conditionally-
executed problem branch (block D) inside a loop, loop-iteration kills
at block F (the back-edge target) and a slice kill at block G (the
loop exit), along the fetch path A B C F B C D F B G.

Run:  python examples/correlator_walkthrough.py
"""

from repro.isa import Assembler
from repro.slices.correlator import PredictionCorrelator, SlotState
from repro.slices.spec import KillKind, KillSpec, PGISpec, SliceSpec

BRANCH_PC = 0x2000  # block D: the problem branch
LOOP_KILL = 0x2100  # block F: loop back-edge target
SLICE_KILL = 0x2200  # block G: loop exit


def build_slice():
    asm = Assembler(base_pc=0x9000)
    asm.label("entry")
    pgis = [asm.cmplt(f"r{i + 1}", "r10", imm=0) for i in range(3)]
    asm.halt()
    code = asm.build()
    return SliceSpec(
        name="fig8",
        fork_pc=0x1000,
        code=code,
        entry_pc=code.pc_of("entry"),
        live_in_regs=(10,),
        pgis=tuple(
            PGISpec(p.pc, BRANCH_PC, conditional=True) for p in pgis
        ),
        kills=(
            KillSpec(LOOP_KILL, KillKind.LOOP),
            KillSpec(SLICE_KILL, KillKind.SLICE),
        ),
    )


def show(correlator, event):
    slots = correlator.queue_for(BRANCH_PC)
    rendered = []
    for i, slot in enumerate(slots, start=1):
        state = slot.state.value
        direction = {True: "T", False: "NT", None: "?"}[slot.direction]
        mark = " killed" if slot.killed else ""
        rendered.append(f"P{i}[{state} {direction}{mark}]")
    print(f"{event:<44s} queue: {'  '.join(rendered) or '-empty-'}")


def main() -> None:
    spec = build_slice()
    correlator = PredictionCorrelator()
    correlator.register_slice(spec)
    correlator.on_fork(spec, instance_id=0)

    print("Figure 9(b): path A B C F B C D F B G\n")

    # "Slice guesses loop will be executed 3 times, generates 3
    # predictions" — here T, NT, T.
    slots = []
    for pgi, direction in zip(spec.pgis, (True, False, True)):
        slot = correlator.on_pgi_fetched(spec, pgi, 0)
        correlator.on_pgi_executed(slot, direction)
        slots.append(slot)
    show(correlator, "slice generates 3 predictions")

    vn = 100
    # Iteration 1 (A B C F): block D not fetched; F kills prediction 1.
    correlator.on_kill_fetched(LOOP_KILL, vn)
    show(correlator, "block F fetched (iter 1, D skipped)")

    # Iteration 2 (B C D F): D fetched -> matches prediction 2.
    match = correlator.on_branch_fetched(BRANCH_PC, vn + 1)
    assert match.slot is slots[1] and match.direction is False
    show(correlator, "block D fetched: uses P2 (NT) — correct!")
    correlator.on_kill_fetched(LOOP_KILL, vn + 2)
    show(correlator, "block F fetched (iter 2)")

    # Loop exits (B G): remaining predictions killed.
    correlator.on_kill_fetched(SLICE_KILL, vn + 3)
    show(correlator, "block G fetched (loop exit)")

    # Mis-speculation recovery (Section 5.2): squash the loop exit.
    correlator.on_squash(min_squashed_vn=vn + 3)
    show(correlator, "loop exit squashed: kill restored")
    correlator.on_kill_fetched(SLICE_KILL, vn + 4)
    show(correlator, "loop exit refetched")

    correlator.on_retire(vn + 4)
    show(correlator, "kills retired: slots deallocated")

    print(f"\nstats: {correlator.stats}")


if __name__ == "__main__":
    main()

"""Tour of the implemented future-work extensions.

The paper names four directions it does not evaluate; this library
implements all of them. This example demonstrates each in a few lines:

1. automatic slice construction (Section 3.3);
2. confidence-gated forking (Section 6.3);
3. value-prediction correlation (the conclusion);
4. indirect-target prediction (the Section 7 complement).

Run:  python examples/extensions_tour.py
"""

from repro.slices.auto import construct_slice
from repro.uarch.confidence import ForkConfidenceEstimator
from repro.uarch.core import Core
from repro.uarch.config import FOUR_WIDE
from repro.workloads import dispatch, mcf, vpr


def banner(title):
    print(f"\n{'=' * 70}\n{title}\n{'=' * 70}")


def main() -> None:
    # ------------------------------------------------------------- 1
    banner("1. Automatic slice construction (Section 3.3)")
    workload = vpr.build(scale=0.15)
    branch_pc = next(iter(workload.problem_branch_pcs))
    auto = construct_slice(workload, branch_pc, workload.slices[0].fork_pc)
    base = Core(
        workload.program, FOUR_WIDE,
        memory_image=workload.memory_image, region=workload.region,
    ).run()
    auto_run = Core(
        workload.program, FOUR_WIDE, slices=(auto.spec,),
        memory_image=workload.memory_image, region=workload.region,
    ).run()
    print(f"constructed {auto.spec.static_size}-instruction slice "
          f"(optimizations: {auto.report.removed})")
    print(f"speedup: {auto_run.ipc / base.ipc - 1:+.1%}")

    # ------------------------------------------------------------- 2
    banner("2. Confidence-gated forking (Section 6.3)")
    useless = (vpr.unoptimized_slice(workload),)
    plain = Core(
        workload.program, FOUR_WIDE, slices=useless,
        memory_image=workload.memory_image, region=workload.region,
    ).run()
    gated = Core(
        workload.program, FOUR_WIDE, slices=useless,
        memory_image=workload.memory_image, region=workload.region,
        fork_confidence=ForkConfidenceEstimator(),
    ).run()
    print(f"useless slice ungated: {plain.ipc / base.ipc - 1:+.1%} "
          f"({plain.slice_fetched} slice insts)")
    print(f"useless slice gated:   {gated.ipc / base.ipc - 1:+.1%} "
          f"({gated.slice_fetched} slice insts, "
          f"{gated.forks_gated} forks suppressed)")

    # ------------------------------------------------------------- 3
    banner("3. Value-prediction correlation (conclusion)")
    chains = mcf.build(scale=0.25)
    vp = Core(
        chains.program, FOUR_WIDE,
        slices=(mcf.value_prediction_slice(chains),),
        memory_image=chains.memory_image, region=chains.region,
    ).run()
    c = vp.correlator
    judged = c.correct_value_overrides + c.incorrect_value_overrides
    print(f"value predictions bound: {c.value_overrides}, "
          f"accuracy {c.correct_value_overrides}/{judged}, "
          f"recovery squashes {vp.value_mispredict_squashes}")
    print("(a chasing slice's values arrive with the data, so the gain")
    print(" over prefetching is small — why the paper left this open)")

    # ------------------------------------------------------------- 4
    banner("4. Indirect-target prediction (Section 7 complement)")
    interp = dispatch.build(scale=0.25)
    (dispatch_pc,) = interp.problem_branch_pcs
    config = dispatch.RECOMMENDED_CONFIG
    ibase = Core(
        interp.program, config,
        memory_image=interp.memory_image, region=interp.region,
    ).run()
    itarget = Core(
        interp.program, config, slices=interp.slices,
        memory_image=interp.memory_image, region=interp.region,
    ).run()
    print(f"dispatch mispredict rate: "
          f"{ibase.branch_pcs[dispatch_pc].rate:.0%} -> "
          f"{itarget.branch_pcs[dispatch_pc].rate:.0%}")
    print(f"IPC: {ibase.ipc:.2f} -> {itarget.ipc:.2f} "
          f"({itarget.ipc / ibase.ipc - 1:+.1%})")


if __name__ == "__main__":
    main()

"""Table 3: characterization of the hand-constructed slices.

Shape targets (paper Table 3): slices are a handful of static
instructions, need few live-in registers ("rarely more than 4"), and
generate a prefetch or prediction every few instructions.
"""

from conftest import run_once

from repro.harness.experiments import experiment_table3


def bench_table3_slices(benchmark, publish):
    rows, text = run_once(benchmark, experiment_table3)
    publish("table3_slices", text)

    assert len(rows) >= 9  # the paper characterizes 9 slices
    for row in rows:
        assert row.static_size <= 32
        assert row.live_ins <= 4
        covered = row.prefetches + row.predictions
        if covered:
            assert row.static_size <= 4 * covered + 12

"""Sensitivity sweeps: how the slice benefit scales with the machine.

Quantifies three of the paper's qualitative claims:

* §6.3: "Programs and processors with low base IPCs (relative to peak
  IPC) are more likely to benefit from slices because the opportunity
  cost of slice execution is lower" — swept here via memory latency
  (mcf: higher latency, lower base IPC, larger prefetch win).
* Figure 1's caveat that the window bounds achievable ILP — swept via
  window size.
* Figure 10's provisioning of 8 prediction slots per branch — swept
  via slot count (loop slices starve below the loop's typical depth).

Runs sampled by default: each sweep point is estimated from 10
detailed windows over the workload's ~2x10^6-instruction halt-aware
plan (`repro.harness.experiments.sampled_plan`). All points of a
sweep share one warmed snapshot chain — the swept parameters shape
only the detailed core, not warm state — so the whole sweep pays one
chain build and the rendered tables carry mean±CI columns.
"""

from conftest import run_once

from repro.harness.experiments import sampled_plan
from repro.harness.sweep import (
    render_sweep,
    sweep_memory_latency,
    sweep_prediction_slots,
    sweep_window_size,
)
from repro.workloads import registry


def _sampling(plan):
    return {
        "fast_forward": plan["fast_forward"],
        "sample": plan["sample"],
        "sample_regions": plan["sample_regions"],
        "sample_period": plan["sample_period"],
    }


def _run():
    mcf_plan = sampled_plan("mcf")
    vpr_plan = sampled_plan("vpr")
    mcf = registry.build("mcf", mcf_plan["scale"])
    vpr = registry.build("vpr", vpr_plan["scale"])
    return {
        "memory": sweep_memory_latency(
            mcf, (50, 100, 200), **_sampling(mcf_plan)
        ),
        "window": sweep_window_size(
            vpr, (32, 128, 256), **_sampling(vpr_plan)
        ),
        "slots": sweep_prediction_slots(vpr, (2, 8), **_sampling(vpr_plan)),
    }


def bench_sweep_sensitivity(benchmark, publish):
    sweeps = run_once(benchmark, _run)
    text = "\n\n".join(
        [
            render_sweep(
                "Sweep: memory latency (mcf)", "latency", sweeps["memory"]
            ),
            render_sweep(
                "Sweep: window size (vpr)", "entries", sweeps["window"]
            ),
            render_sweep(
                "Sweep: prediction slots/branch (vpr)", "slots",
                sweeps["slots"],
            ),
        ]
    )
    publish("sweep_sensitivity", text)

    # Every point is a full-complement multi-region estimate.
    for points in sweeps.values():
        for p in points:
            assert p.base.sample_regions == 10

    memory = sweeps["memory"]
    # Longer memory latency -> lower base IPC -> bigger slice win.
    assert memory[-1].base.ipc < memory[0].base.ipc
    assert memory[-1].speedup > memory[0].speedup

    window = sweeps["window"]
    # Larger windows raise the baseline by tolerating latency natively.
    assert window[-1].base.ipc > window[0].base.ipc

    slots = sweeps["slots"]
    # Starved correlator (2 slots) must not beat the provisioned one.
    assert slots[-1].speedup >= slots[0].speedup - 0.02

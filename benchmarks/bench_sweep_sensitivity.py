"""Sensitivity sweeps: how the slice benefit scales with the machine.

Quantifies three of the paper's qualitative claims:

* §6.3: "Programs and processors with low base IPCs (relative to peak
  IPC) are more likely to benefit from slices because the opportunity
  cost of slice execution is lower" — swept here via memory latency
  (mcf: higher latency, lower base IPC, larger prefetch win).
* Figure 1's caveat that the window bounds achievable ILP — swept via
  window size.
* Figure 10's provisioning of 8 prediction slots per branch — swept
  via slot count (loop slices starve below the loop's typical depth).
"""

from conftest import run_once

from repro.harness.experiments import default_scale
from repro.harness.sweep import (
    render_sweep,
    sweep_memory_latency,
    sweep_prediction_slots,
    sweep_window_size,
)
from repro.workloads import registry


def _run():
    scale = default_scale()
    mcf = registry.build("mcf", scale)
    vpr = registry.build("vpr", scale)
    return {
        "memory": sweep_memory_latency(mcf, (50, 100, 200)),
        "window": sweep_window_size(vpr, (32, 128, 256)),
        "slots": sweep_prediction_slots(vpr, (2, 8)),
    }


def bench_sweep_sensitivity(benchmark, publish):
    sweeps = run_once(benchmark, _run)
    text = "\n\n".join(
        [
            render_sweep(
                "Sweep: memory latency (mcf)", "latency", sweeps["memory"]
            ),
            render_sweep(
                "Sweep: window size (vpr)", "entries", sweeps["window"]
            ),
            render_sweep(
                "Sweep: prediction slots/branch (vpr)", "slots",
                sweeps["slots"],
            ),
        ]
    )
    publish("sweep_sensitivity", text)

    memory = sweeps["memory"]
    # Longer memory latency -> lower base IPC -> bigger slice win.
    assert memory[-1].base.ipc < memory[0].base.ipc
    assert memory[-1].speedup > memory[0].speedup

    window = sweeps["window"]
    # Larger windows raise the baseline by tolerating latency natively.
    assert window[-1].base.ipc > window[0].base.ipc

    slots = sweeps["slots"]
    # Starved correlator (2 slots) must not beat the provisioned one.
    assert slots[-1].speedup >= slots[0].speedup - 0.02

"""Ablation: dedicated slice-execution resources (Section 6.3).

"Execution overhead could be eliminated by having dedicated resources
to execute the slice at the expense of additional hardware." With
dedicated fetch/FU resources, helper threads stop competing with the
main thread, so slice-assisted IPC can only improve.
"""

from conftest import run_once

from repro.harness.experiments import default_scale
from repro.harness.runner import run_baseline, run_with_slices
from repro.workloads import registry

BENCHMARKS = ("vpr", "bzip2", "mcf")


def _run():
    results = {}
    for name in BENCHMARKS:
        workload = registry.build(name, scale=default_scale())
        base = run_baseline(workload)
        shared = run_with_slices(workload)
        dedicated = run_with_slices(workload, dedicated=True)
        results[name] = (base, shared, dedicated)
    return results


def bench_ablation_dedicated(benchmark, publish):
    results = run_once(benchmark, _run)
    lines = ["Ablation: dedicated slice resources", ""]
    for name, (base, shared, dedicated) in results.items():
        lines.append(
            f"{name:7s} shared: {shared.ipc / base.ipc - 1:+.1%}   "
            f"dedicated: {dedicated.ipc / base.ipc - 1:+.1%}"
        )
    publish("ablation_dedicated", "\n".join(lines))

    for name, (base, shared, dedicated) in results.items():
        # Removing the opportunity cost helps (Section 6.3). Note this
        # is not universal: a dedicated-fetch slice with a long loop can
        # run away from the main thread and overflow the 8-slot
        # prediction queue (gap exhibits this), which is why the paper
        # bounds slices with profile-derived iteration counts.
        assert dedicated.ipc >= shared.ipc * 0.99, name
        assert dedicated.ipc > base.ipc, name

"""Ablation: slice optimization (Section 3.2 / 6.3).

Compares vpr with its optimized Figure 5 slice against the raw
un-optimized backward slice (Figure 4's shaded region, with the
compiler's division sequence and the memory-communicated
``heap[ifrom]`` chain). "The speculative optimizations applied to
slices have a two-fold benefit: overhead is reduced ... and timeliness
is improved" — and removing communication through memory is "the most
important" optimization.
"""

from conftest import run_once

from repro.harness.experiments import default_scale
from repro.harness.runner import run_baseline, run_with_slices
from repro.workloads import vpr


def _run():
    workload = vpr.build(scale=default_scale())
    base = run_baseline(workload)
    optimized = run_with_slices(workload)
    unoptimized = run_with_slices(
        workload, slices=(vpr.unoptimized_slice(workload),)
    )
    return workload, base, optimized, unoptimized


def bench_ablation_optimization(benchmark, publish):
    workload, base, optimized, unoptimized = run_once(benchmark, _run)
    opt_speedup = optimized.ipc / base.ipc - 1
    unopt_speedup = unoptimized.ipc / base.ipc - 1
    text = "\n".join(
        [
            "Ablation: slice optimization (vpr)",
            "",
            f"optimized slice   ({len(workload.slices[0].code)} static): "
            f"speedup {opt_speedup:+.1%}, "
            f"{optimized.correlator.predictions_generated} predictions",
            f"un-optimized slice ({len(vpr.unoptimized_slice(workload).code)}"
            f" static): speedup {unopt_speedup:+.1%}, "
            f"{unoptimized.correlator.predictions_generated} predictions",
        ]
    )
    publish("ablation_optimization", text)

    assert opt_speedup > unopt_speedup + 0.10
    # The un-optimized slice must not be a disaster either way — at
    # worst it burns fetch bandwidth.
    assert unopt_speedup > -0.15

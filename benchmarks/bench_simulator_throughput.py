"""Simulator self-benchmark: simulated instructions per wall second.

Not a paper experiment — this tracks the simulator's own performance so
model changes that slow it down are visible. Three regimes are
measured (definitions shared with ``repro bench`` via
:mod:`repro.harness.bench`):

* **balanced** — slice-assisted vpr at the default machine: fetch,
  issue, and commit are all busy most cycles, so this tracks the cost
  of the per-cycle work itself. The fused basic-block tier targets
  this regime; the bench measures it fused and unfused (interleaved,
  best-of-N) and records the ratio.
* **memory-bound** — mcf (slices off) on a far-memory machine (small
  window, multi-thousand-cycle miss latency): nearly every cycle is
  idle miss-wait, the regime the event-driven skipping loop targets.
  Measured skipping vs. stepping to report that speedup honestly.
* **slice-heavy** — vpr's slices on an 8-context machine: constant
  fork/activation traffic and prediction-correlator churn, the regime
  where the slice machinery itself dominates.

Alongside the text results, a machine-readable
``BENCH_throughput.json`` records the rates, the fused/skip telemetry,
the run-cache behavior, and the regression floors that CI enforces
(see ``.github/workflows/ci.yml``). Each bench merges its section into
the JSON so they can run (or be re-run) independently; the top-level
``history`` list (one entry per landed PR, appended by hand when a PR
changes performance materially) is preserved by every merge.
"""

import json
import time

from conftest import RESULTS_DIR

from repro.harness.bench import REGIMES, run_regime
from repro.harness.cache import RunCache
from repro.harness.parallel import RunRequest, run_matrix

#: Conservative regression floors (simulated instructions / wall
#: second) committed with the JSON; CI fails a PR whose fresh rates
#: fall below the *committed* floors. Locally measured rates are
#: ~100-110k (balanced, fused), ~50k (memory-bound), ~100-110k
#: (slice-heavy), but single-vCPU CI machines with host contention
#: swing ±20% or worse, so the floors sit at roughly a third of the
#: measured rates — still a hard backstop against the order-of-2x
#: regressions that matter, and ratcheted 1.2-2x over their
#: pre-fusion values.
BALANCED_FLOOR = 30_000
MEMORY_BOUND_FLOOR = 22_000
SLICE_HEAVY_FLOOR = 30_000


def _merge_results(section: str | None, payload: dict) -> None:
    """Merge *payload* into ``BENCH_throughput.json`` (under *section*,
    or at top level when ``None``), preserving the other benches' data
    and the per-PR ``history`` list."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_throughput.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    if section is None:
        data.update(payload)
    else:
        data[section] = payload
    path.write_text(json.dumps(data, indent=2) + "\n")


def _interleaved_best(regime, rounds, variants):
    """Best-of-*rounds* wall time per variant, interleaved so transient
    machine load cannot bias one variant. *variants* maps a label to
    Core-kwarg overrides; all variants share one workload so fused
    segments stay cached across rounds. Returns
    ``{label: (best_seconds, stats)}``."""
    workload = regime.build_workload()
    best: dict[str, tuple[float, object]] = {}
    for _ in range(rounds):
        for label, overrides in variants.items():
            stats, elapsed = run_regime(regime, workload=workload, **overrides)
            if label not in best or elapsed < best[label][0]:
                best[label] = (elapsed, stats)
    return best


def bench_simulator_throughput(benchmark, publish, tmp_path):
    regime = REGIMES["balanced"]
    workload = regime.build_workload()

    def simulate():
        return regime.build_core(workload=workload).run()

    stats = benchmark(simulate)
    if benchmark.stats is not None:
        mean = benchmark.stats.stats.mean
        rounds = benchmark.stats.stats.rounds
    else:  # --benchmark-disable: time a single run ourselves
        start = time.perf_counter()
        stats = simulate()
        mean = time.perf_counter() - start
        rounds = 1
    rate = stats.committed / mean

    # The fused tier's contribution, measured honestly: same workload,
    # interleaved fused/unfused rounds, best of each.
    tiers = _interleaved_best(
        regime,
        rounds=3,
        variants={"fused": {}, "unfused": {"fused_blocks": False}},
    )
    fused_s, fused_stats = tiers["fused"]
    unfused_s, _ = tiers["unfused"]
    fused_rate = fused_stats.committed / fused_s
    unfused_rate = fused_stats.committed / unfused_s
    rate = max(rate, fused_rate)

    # Exercise the run cache (cold, then warm) so the JSON captures its
    # behavior too: a warm re-render must be pure hits.
    cache = RunCache(tmp_path / "cache")
    request = RunRequest(workload="vpr", scale=0.05, mode="slice")
    run_matrix([request], jobs=1, cache=cache)
    run_matrix([request], jobs=1, cache=cache)

    publish(
        "simulator_throughput",
        "Simulator throughput (slice-assisted vpr, scale 0.05)\n\n"
        f"{stats.committed} committed instructions per run; "
        f"~{rate:,.0f} simulated instructions/second\n"
        f"fused tier: ~{fused_rate:,.0f} inst/s "
        f"({fused_stats.blocks_compiled} segments, "
        f"{fused_stats.block_deopts} deopts) vs "
        f"~{unfused_rate:,.0f} inst/s per-instruction "
        f"({unfused_s / fused_s:.2f}x)",
    )
    _merge_results(
        None,
        {
            "instructions_per_second": round(rate),
            "committed_per_run": stats.committed,
            "runs": rounds,
            "mean_seconds_per_run": mean,
            "floor_instructions_per_second": BALANCED_FLOOR,
            "fused": {
                "instructions_per_second": round(fused_rate),
                "unfused_instructions_per_second": round(unfused_rate),
                "speedup_vs_unfused": round(unfused_s / fused_s, 2),
                "blocks_compiled": fused_stats.blocks_compiled,
                "block_deopts": fused_stats.block_deopts,
            },
            "cache": {
                "hits": cache.hits,
                "misses": cache.misses,
            },
        },
    )
    assert cache.hits == 1 and cache.misses == 1
    assert stats.committed > 5_000
    assert fused_stats.blocks_compiled > 0
    assert rate > BALANCED_FLOOR


def bench_simulator_throughput_memory_bound(publish):
    """Skip-vs-step on the far-memory regime (event-driven loop's target)."""
    regime = REGIMES["memory_bound"]
    # Interleave the two modes and keep each mode's best round:
    # machine noise only ever slows a round down, so best-of-N
    # converges on the true cost and the interleaving keeps transient
    # load from biasing one mode.
    rounds = 5
    modes = _interleaved_best(
        regime,
        rounds=rounds,
        variants={"skip": {}, "step": {"event_driven": False}},
    )
    best_skip, skip_stats = modes["skip"]
    best_step, _ = modes["step"]

    skip_rate = skip_stats.committed / best_skip
    step_rate = skip_stats.committed / best_step
    speedup = best_step / best_skip

    publish(
        "simulator_throughput_memory_bound",
        "Simulator throughput, memory-bound regime "
        f"(base mcf, scale {regime.scale}, "
        f"{regime.config.memory_latency}-cycle misses, "
        f"{regime.config.window_entries}-entry window)\n\n"
        f"event-driven: ~{skip_rate:,.0f} inst/s; "
        f"stepping: ~{step_rate:,.0f} inst/s; "
        f"speedup {speedup:.2f}x\n"
        f"{skip_stats.cycles_skipped:,} of {skip_stats.cycles:,} cycles "
        f"skipped in {skip_stats.skip_events:,} jumps",
    )
    _merge_results(
        "memory_bound",
        {
            "workload": regime.workload,
            "mode": regime.mode,
            "scale": regime.scale,
            "memory_latency": regime.config.memory_latency,
            "window_entries": regime.config.window_entries,
            "instructions_per_second": round(skip_rate),
            "stepping_instructions_per_second": round(step_rate),
            "speedup_vs_stepping": round(speedup, 2),
            "committed_per_run": skip_stats.committed,
            "cycles": skip_stats.cycles,
            "cycles_skipped": skip_stats.cycles_skipped,
            "skip_events": skip_stats.skip_events,
            "best_of_rounds": rounds,
            "floor_instructions_per_second": MEMORY_BOUND_FLOOR,
        },
    )
    assert skip_stats.cycles_skipped > skip_stats.cycles // 2
    assert speedup > 2.0
    assert skip_rate > MEMORY_BOUND_FLOOR


def bench_simulator_throughput_slice_heavy(publish):
    """Fork/correlator churn: vpr's slices on an 8-context machine."""
    regime = REGIMES["slice_heavy"]
    rounds = 5
    tiers = _interleaved_best(
        regime,
        rounds=rounds,
        variants={"fused": {}, "unfused": {"fused_blocks": False}},
    )
    best_fused, stats = tiers["fused"]
    best_unfused, _ = tiers["unfused"]

    fused_rate = stats.committed / best_fused
    unfused_rate = stats.committed / best_unfused

    publish(
        "simulator_throughput_slice_heavy",
        "Simulator throughput, slice-heavy regime "
        f"(slice-assisted vpr, scale {regime.scale}, "
        f"{regime.config.thread_contexts} thread contexts)\n\n"
        f"fused: ~{fused_rate:,.0f} inst/s; "
        f"per-instruction: ~{unfused_rate:,.0f} inst/s "
        f"({best_unfused / best_fused:.2f}x)\n"
        f"{stats.slice_fetched:,} slice instructions fetched alongside "
        f"{stats.main_fetched:,} main",
    )
    _merge_results(
        "slice_heavy",
        {
            "workload": regime.workload,
            "mode": regime.mode,
            "scale": regime.scale,
            "thread_contexts": regime.config.thread_contexts,
            "instructions_per_second": round(fused_rate),
            "unfused_instructions_per_second": round(unfused_rate),
            "speedup_vs_unfused": round(best_unfused / best_fused, 2),
            "committed_per_run": stats.committed,
            "slice_fetched": stats.slice_fetched,
            "blocks_compiled": stats.blocks_compiled,
            "block_deopts": stats.block_deopts,
            "best_of_rounds": rounds,
            "floor_instructions_per_second": SLICE_HEAVY_FLOOR,
        },
    )
    assert stats.slice_fetched > 0
    assert stats.blocks_compiled > 0
    assert fused_rate > SLICE_HEAVY_FLOOR

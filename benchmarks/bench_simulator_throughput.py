"""Simulator self-benchmark: simulated instructions per wall second.

Not a paper experiment — this tracks the simulator's own performance so
model changes that slow it down are visible. pytest-benchmark runs the
measurement natively (multiple rounds, statistics).
"""

from repro.uarch.core import Core
from repro.uarch.config import FOUR_WIDE
from repro.workloads import registry


def bench_simulator_throughput(benchmark, publish):
    workload = registry.build("vpr", scale=0.05)

    def simulate():
        return Core(
            workload.program,
            FOUR_WIDE,
            slices=workload.slices,
            memory_image=workload.memory_image,
            region=workload.region,
        ).run()

    stats = benchmark(simulate)
    rate = stats.committed / benchmark.stats.stats.mean
    publish(
        "simulator_throughput",
        "Simulator throughput (slice-assisted vpr, scale 0.05)\n\n"
        f"{stats.committed} committed instructions per run; "
        f"~{rate:,.0f} simulated instructions/second",
    )
    assert stats.committed > 5_000
    # Guard against order-of-magnitude regressions in simulator speed.
    assert rate > 3_000

"""Simulator self-benchmark: simulated instructions per wall second.

Not a paper experiment — this tracks the simulator's own performance so
model changes that slow it down are visible. Two regimes are measured:

* **balanced** — slice-assisted vpr at the default machine: fetch,
  issue, and commit are all busy most cycles, so this tracks the cost
  of the per-cycle work itself (the regime PR 1 optimized).
* **memory-bound** — mcf (slices off) on a far-memory machine (small
  window, multi-thousand-cycle miss latency): nearly every cycle is
  idle miss-wait, the regime the event-driven skipping loop targets.
  Measured in both modes (skipping vs. stepping, interleaved, best-of-N
  so transient machine noise cancels) to report the speedup honestly.

Alongside the text results, a machine-readable
``BENCH_throughput.json`` records both rates, the skip statistics, the
run-cache hit/miss behavior, and the regression floors that CI enforces
(see ``.github/workflows/ci.yml``). Each bench merges its section into
the JSON so they can run (or be re-run) independently.
"""

import dataclasses
import json
import time

from conftest import RESULTS_DIR

from repro.harness.cache import RunCache
from repro.harness.parallel import RunRequest, run_matrix
from repro.uarch.core import Core
from repro.uarch.config import FOUR_WIDE
from repro.workloads import registry

#: Conservative regression floors (simulated instructions / wall
#: second) committed with the JSON; CI fails a PR whose fresh rates
#: fall below the *committed* floors. Set well under locally measured
#: rates (~70k balanced, ~45k memory-bound) to absorb machine variance
#: while still catching order-of-magnitude regressions.
BALANCED_FLOOR = 15_000
MEMORY_BOUND_FLOOR = 18_000

#: The far-memory machine for the memory-bound regime: a small window
#: bounds the wrong-path churn a miss can trigger, and a ~1µs-class
#: miss latency (3000 cycles at a few GHz — remote/disaggregated
#: memory) makes idle miss-wait dominate the simulated time.
MEMORY_BOUND = {
    "workload": "mcf",
    "mode": "base",
    "scale": 0.2,
    "memory_latency": 3000,
    "window_entries": 32,
}


def _merge_results(section: str | None, payload: dict) -> None:
    """Merge *payload* into ``BENCH_throughput.json`` (under *section*,
    or at top level when ``None``), preserving the other bench's data."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_throughput.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    if section is None:
        data.update(payload)
    else:
        data[section] = payload
    path.write_text(json.dumps(data, indent=2) + "\n")


def bench_simulator_throughput(benchmark, publish, tmp_path):
    workload = registry.build("vpr", scale=0.05)

    def simulate():
        return Core(
            workload.program,
            FOUR_WIDE,
            slices=workload.slices,
            memory_image=workload.memory_image,
            region=workload.region,
        ).run()

    stats = benchmark(simulate)
    if benchmark.stats is not None:
        mean = benchmark.stats.stats.mean
        rounds = benchmark.stats.stats.rounds
    else:  # --benchmark-disable: time a single run ourselves
        start = time.perf_counter()
        stats = simulate()
        mean = time.perf_counter() - start
        rounds = 1
    rate = stats.committed / mean

    # Exercise the run cache (cold, then warm) so the JSON captures its
    # behavior too: a warm re-render must be pure hits.
    cache = RunCache(tmp_path / "cache")
    request = RunRequest(workload="vpr", scale=0.05, mode="slice")
    run_matrix([request], jobs=1, cache=cache)
    run_matrix([request], jobs=1, cache=cache)

    publish(
        "simulator_throughput",
        "Simulator throughput (slice-assisted vpr, scale 0.05)\n\n"
        f"{stats.committed} committed instructions per run; "
        f"~{rate:,.0f} simulated instructions/second",
    )
    _merge_results(
        None,
        {
            "instructions_per_second": round(rate),
            "committed_per_run": stats.committed,
            "runs": rounds,
            "mean_seconds_per_run": mean,
            "floor_instructions_per_second": BALANCED_FLOOR,
            "cache": {
                "hits": cache.hits,
                "misses": cache.misses,
            },
        },
    )
    assert cache.hits == 1 and cache.misses == 1
    assert stats.committed > 5_000
    assert rate > BALANCED_FLOOR


def bench_simulator_throughput_memory_bound(publish):
    """Skip-vs-step on the far-memory regime (the tentpole's target)."""
    workload = registry.build(
        MEMORY_BOUND["workload"], scale=MEMORY_BOUND["scale"]
    )
    config = dataclasses.replace(
        FOUR_WIDE,
        memory_latency=MEMORY_BOUND["memory_latency"],
        window_entries=MEMORY_BOUND["window_entries"],
    )

    def run(event_driven: bool):
        core = Core(
            workload.program,
            config,
            memory_image=workload.memory_image,
            region=workload.region,
            event_driven=event_driven,
        )
        start = time.perf_counter()
        stats = core.run()
        return stats, time.perf_counter() - start

    # Interleave the two modes and keep each mode's best round:
    # machine noise only ever slows a round down, so best-of-N
    # converges on the true cost and the interleaving keeps transient
    # load from biasing one mode.
    rounds = 5
    best_skip = best_step = None
    skip_stats = None
    for _ in range(rounds):
        stats, elapsed = run(event_driven=True)
        if best_skip is None or elapsed < best_skip:
            best_skip, skip_stats = elapsed, stats
        _, elapsed = run(event_driven=False)
        if best_step is None or elapsed < best_step:
            best_step = elapsed

    skip_rate = skip_stats.committed / best_skip
    step_rate = skip_stats.committed / best_step
    speedup = best_step / best_skip

    publish(
        "simulator_throughput_memory_bound",
        "Simulator throughput, memory-bound regime "
        f"(base {MEMORY_BOUND['workload']}, scale {MEMORY_BOUND['scale']}, "
        f"{MEMORY_BOUND['memory_latency']}-cycle misses, "
        f"{MEMORY_BOUND['window_entries']}-entry window)\n\n"
        f"event-driven: ~{skip_rate:,.0f} inst/s; "
        f"stepping: ~{step_rate:,.0f} inst/s; "
        f"speedup {speedup:.2f}x\n"
        f"{skip_stats.cycles_skipped:,} of {skip_stats.cycles:,} cycles "
        f"skipped in {skip_stats.skip_events:,} jumps",
    )
    _merge_results(
        "memory_bound",
        {
            **MEMORY_BOUND,
            "instructions_per_second": round(skip_rate),
            "stepping_instructions_per_second": round(step_rate),
            "speedup_vs_stepping": round(speedup, 2),
            "committed_per_run": skip_stats.committed,
            "cycles": skip_stats.cycles,
            "cycles_skipped": skip_stats.cycles_skipped,
            "skip_events": skip_stats.skip_events,
            "best_of_rounds": rounds,
            "floor_instructions_per_second": MEMORY_BOUND_FLOOR,
        },
    )
    assert skip_stats.cycles_skipped > skip_stats.cycles // 2
    assert speedup > 2.0
    assert skip_rate > MEMORY_BOUND_FLOOR

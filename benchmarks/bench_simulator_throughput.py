"""Simulator self-benchmark: simulated instructions per wall second.

Not a paper experiment — this tracks the simulator's own performance so
model changes that slow it down are visible. pytest-benchmark runs the
measurement natively (multiple rounds, statistics). Alongside the text
result, a machine-readable ``BENCH_throughput.json`` records the rate,
the run shape, and the run-cache hit/miss behavior so the performance
trajectory is trackable across PRs.
"""

import json
import time

from conftest import RESULTS_DIR

from repro.harness.cache import RunCache
from repro.harness.parallel import RunRequest, run_matrix
from repro.uarch.core import Core
from repro.uarch.config import FOUR_WIDE
from repro.workloads import registry


def bench_simulator_throughput(benchmark, publish, tmp_path):
    workload = registry.build("vpr", scale=0.05)

    def simulate():
        return Core(
            workload.program,
            FOUR_WIDE,
            slices=workload.slices,
            memory_image=workload.memory_image,
            region=workload.region,
        ).run()

    stats = benchmark(simulate)
    if benchmark.stats is not None:
        mean = benchmark.stats.stats.mean
        rounds = benchmark.stats.stats.rounds
    else:  # --benchmark-disable: time a single run ourselves
        start = time.perf_counter()
        stats = simulate()
        mean = time.perf_counter() - start
        rounds = 1
    rate = stats.committed / mean

    # Exercise the run cache (cold, then warm) so the JSON captures its
    # behavior too: a warm re-render must be pure hits.
    cache = RunCache(tmp_path / "cache")
    request = RunRequest(workload="vpr", scale=0.05, mode="slice")
    run_matrix([request], jobs=1, cache=cache)
    run_matrix([request], jobs=1, cache=cache)

    publish(
        "simulator_throughput",
        "Simulator throughput (slice-assisted vpr, scale 0.05)\n\n"
        f"{stats.committed} committed instructions per run; "
        f"~{rate:,.0f} simulated instructions/second",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_throughput.json").write_text(
        json.dumps(
            {
                "instructions_per_second": round(rate),
                "committed_per_run": stats.committed,
                "runs": rounds,
                "mean_seconds_per_run": mean,
                "cache": {
                    "hits": cache.hits,
                    "misses": cache.misses,
                },
            },
            indent=2,
        )
        + "\n"
    )
    assert cache.hits == 1 and cache.misses == 1
    assert stats.committed > 5_000
    # Floor reflecting the optimized core (closure-compiled executors,
    # GC pause, slotted hot structures): ~2x the seed simulator, with
    # headroom for slow CI machines. The seed guard was 3,000.
    assert rate > 12_000

"""Figure 11: speedup of slice-assisted execution vs the constrained
limit study, on the 4-wide machine.

Shape targets (paper Section 6): speedups between ~1% and ~43%; the
failures fail (gcc, parser, vortex, and crafty show little or no
speedup, Section 6.2); slice speedups are on the order of half the
limit-study speedups; slice-generated predictions are >99% accurate.
"""

from conftest import run_once

from repro.harness.experiments import experiment_figure11


def bench_figure11_speedup(benchmark, publish):
    results, text = run_once(benchmark, experiment_figure11)
    publish("figure11_speedup", text)

    by_name = {r.workload.name: r for r in results}

    # The headliners get large speedups...
    assert by_name["vpr"].slice_speedup > 0.20
    assert by_name["bzip2"].slice_speedup > 0.15
    assert by_name["mcf"].slice_speedup > 0.10
    # ...the documented failures do not...
    for name in ("gcc", "parser", "vortex", "crafty"):
        assert by_name[name].slice_speedup < 0.08, name
    # ...and nothing regresses materially.
    for r in results:
        assert r.slice_speedup > -0.05, r.workload.name
        # The limit study bounds the slices.
        assert r.limit_speedup >= r.slice_speedup - 0.03, r.workload.name

    # Prediction accuracy when slices override the predictor (>99%).
    total_correct = sum(
        r.assisted.correlator.correct_overrides for r in results
    )
    total_judged = total_correct + sum(
        r.assisted.correlator.incorrect_overrides for r in results
    )
    assert total_judged > 0
    assert total_correct / total_judged > 0.97

"""Figure 11: speedup of slice-assisted execution vs the constrained
limit study, on the 4-wide machine.

Runs sampled by default: every workload covers ~2x10^6 instructions
(`repro.harness.experiments.sampled_plan` — a halt-aware per-workload
plan of 10 detailed windows along a warmed snapshot chain), so the
shapes below are long-horizon estimates with 95% confidence intervals
rather than single short-region measurements.

Shape targets (paper Section 6): speedups between ~1% and ~45%; the
failures fail (gcc, parser, vortex, and crafty show little or no
speedup, Section 6.2); slice speedups are bounded by the limit-study
speedups; slice-generated predictions are >97% accurate.
"""

from conftest import run_once

from repro.harness.experiments import SAMPLED_REGIONS, experiment_figure11


def bench_figure11_speedup(benchmark, publish):
    results, text = run_once(benchmark, experiment_figure11, sampled=True)
    publish("figure11_speedup", text)

    by_name = {r.workload.name: r for r in results}

    # Every workload's estimate carries a full complement of regions
    # (the halt-aware plans place all windows before HALT) and a CI.
    for r in results:
        assert r.base.sample_regions == SAMPLED_REGIONS, r.workload.name
        assert r.slice_speedup_ci95 is not None, r.workload.name

    # The headliners get large speedups...
    assert by_name["vpr"].slice_speedup > 0.25
    assert by_name["bzip2"].slice_speedup > 0.30
    assert by_name["mcf"].slice_speedup > 0.20
    # ...the documented failures do not...
    for name in ("gcc", "parser", "vortex", "crafty"):
        assert by_name[name].slice_speedup < 0.08, name
    # ...and nothing regresses materially.
    for r in results:
        assert r.slice_speedup > -0.05, r.workload.name
        # The limit study bounds the slices (within the CI noise of
        # two independently sampled estimates).
        assert r.limit_speedup >= r.slice_speedup - 0.03, r.workload.name

    # Prediction accuracy when slices override the predictor (>97%).
    total_correct = sum(
        r.assisted.correlator.correct_overrides for r in results
    )
    total_judged = total_correct + sum(
        r.assisted.correlator.incorrect_overrides for r in results
    )
    assert total_judged > 0
    assert total_correct / total_judged > 0.97

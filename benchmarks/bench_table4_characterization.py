"""Table 4: detailed characterization of execution with and without
speculative slices, for the benchmarks with non-trivial speedups.

Runs sampled by default: each row is estimated from 10 detailed
windows over ~2x10^6 instructions (halt-aware per-workload plans, see
`repro.harness.experiments.sampled_plan`), with the base and slice
arms sharing one warmed snapshot chain; the rendered table carries
per-row region counts and 95% confidence intervals.

Shape targets (paper Table 4): slice fetch overhead can reach ~10-15%
of fetched instructions yet the *total* number of fetched instructions
goes down (fewer wrong-path fetches); misprediction and miss reductions
land in the paper's ranges.
"""

from conftest import run_once

from repro.harness.experiments import SAMPLED_REGIONS, experiment_table4


def bench_table4_characterization(benchmark, publish):
    rows, text = run_once(benchmark, experiment_table4, sampled=True)
    publish("table4_characterization", text)

    by_name = {row.program: row for row in rows}

    for row in rows:
        assert row.speedup > 0.0, row.program
        assert row.sample_regions == SAMPLED_REGIONS, row.program
        assert row.predictions_generated > 0 or row.prefetches_performed > 0
        # Slices are forked and some forks are wrong-path squashed.
        assert row.fork_points > 0
    # Branch-driven benchmarks remove a large share of mispredictions.
    assert by_name["vpr"].misprediction_reduction > 0.5
    assert by_name["gzip"].misprediction_reduction > 0.25
    # mcf's benefit is loads, not branches (Section 6.1).
    assert by_name["mcf"].miss_reduction > 0.35
    assert by_name["mcf"].misprediction_reduction < 0.3
    # Most benchmarks reduce total fetch despite slice overhead.
    reduced = sum(1 for row in rows if row.total_fetch_change < 0.05)
    assert reduced >= len(rows) // 2

"""Table 4: detailed characterization of execution with and without
speculative slices, for the benchmarks with non-trivial speedups.

Shape targets (paper Table 4): slice fetch overhead can reach ~10-15%
of fetched instructions yet the *total* number of fetched instructions
goes down (fewer wrong-path fetches); misprediction and miss reductions
land in the paper's ranges.
"""

from conftest import run_once

from repro.harness.experiments import experiment_table4


def bench_table4_characterization(benchmark, publish):
    rows, text = run_once(benchmark, experiment_table4)
    publish("table4_characterization", text)

    by_name = {row.program: row for row in rows}

    for row in rows:
        assert row.speedup > 0.0, row.program
        assert row.predictions_generated > 0 or row.prefetches_performed > 0
        # Slices are forked and some forks are wrong-path squashed.
        assert row.fork_points > 0
    # Branch-driven benchmarks remove a large share of mispredictions.
    assert by_name["vpr"].misprediction_reduction > 0.5
    assert by_name["gzip"].misprediction_reduction > 0.3
    # mcf's benefit is loads, not branches (Section 6.1).
    assert by_name["mcf"].miss_reduction > 0.4
    assert by_name["mcf"].misprediction_reduction < 0.3
    # Most benchmarks reduce total fetch despite slice overhead.
    reduced = sum(1 for row in rows if row.total_fetch_change < 0.05)
    assert reduced >= len(rows) // 2

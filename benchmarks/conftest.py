"""Shared helpers for the paper-reproduction benches.

Each bench regenerates one of the paper's tables or figures, prints it
to the terminal (bypassing capture), and archives it under
``benchmarks/results/``. Workload scale defaults to
:func:`repro.harness.experiments.default_scale` and can be overridden
with the ``REPRO_SCALE`` environment variable.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def publish(capsys):
    """Return a callable that prints and archives a rendered report."""

    def _publish(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{'=' * 78}\n{text}\n{'=' * 78}")

    return _publish


def run_once(benchmark, func, **kwargs):
    """Run *func* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, kwargs=kwargs, rounds=1, iterations=1)

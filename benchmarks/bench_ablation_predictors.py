"""Ablation: are problem branches predictor-insensitive? (Section 1)

The paper's premise: problem branches "cannot be accurately anticipated
using existing mechanisms" — no history-based predictor helps, because
the outcomes depend on loaded data. This bench swaps the machine's
direction predictor (bimodal, gshare, tournament, YAGS) on vpr and
gzip and checks that (a) the problem branches stay badly predicted
under every predictor, and (b) slices beat even the best predictor.
"""

from conftest import run_once

from repro.harness.experiments import default_scale
from repro.harness.runner import run_with_slices
from repro.uarch.branch import (
    BimodalPredictor,
    GsharePredictor,
    TournamentPredictor,
    YagsPredictor,
)
from repro.uarch.config import FOUR_WIDE
from repro.uarch.core import Core
from repro.workloads import registry

PREDICTORS = {
    "bimodal": BimodalPredictor,
    "gshare": GsharePredictor,
    "tournament": TournamentPredictor,
    "yags": YagsPredictor,
}


def _run():
    scale = default_scale()
    results = {}
    for name in ("vpr", "gzip"):
        workload = registry.build(name, scale)
        problem = workload.problem_branch_pcs
        rows = {}
        for pname, factory in PREDICTORS.items():
            stats = Core(
                workload.program,
                FOUR_WIDE,
                memory_image=workload.memory_image,
                region=workload.region,
                direction_predictor=factory(),
            ).run()
            execs = sum(stats.branch_pcs[pc].executions for pc in problem)
            events = sum(stats.branch_pcs[pc].events for pc in problem)
            rows[pname] = (stats, events / execs if execs else 0.0)
        assisted = run_with_slices(workload)
        results[name] = (rows, assisted)
    return results


def bench_ablation_predictors(benchmark, publish):
    results = run_once(benchmark, _run)
    lines = ["Ablation: problem branches vs direction predictors", ""]
    for name, (rows, assisted) in results.items():
        lines.append(f"{name}:")
        for pname, (stats, rate) in rows.items():
            lines.append(
                f"  {pname:<11s} IPC {stats.ipc:5.2f}   "
                f"problem-branch mispredict rate {rate:5.1%}"
            )
        lines.append(
            f"  {'slices':<11s} IPC {assisted.ipc:5.2f}   "
            f"(YAGS + slice overrides)"
        )
        lines.append("")
    publish("ablation_predictors", "\n".join(lines))

    for name, (rows, assisted) in results.items():
        # Every history-based predictor leaves the problem branches
        # frequently mispredicted (>= 15% of executions).
        for pname, (_stats, rate) in rows.items():
            assert rate > 0.15, f"{name}/{pname}: {rate:.1%}"
        # Slices beat the best conventional predictor.
        best_ipc = max(stats.ipc for stats, _ in rows.values())
        assert assisted.ipc > best_ipc


def bench_predictor_unit_quality(benchmark, publish):
    """Micro-check of the predictor zoo on synthetic patterns."""
    import random

    def train(predictor, pc, outcomes):
        correct = 0
        for taken in outcomes:
            history = predictor.history
            correct += predictor.predict(pc) == taken
            predictor.shift_history(taken)
            predictor.update(pc, taken, history)
        return correct / len(outcomes)

    def _run():
        rng = random.Random(77)
        patterns = {
            "biased": [True] * 2000,
            "loop(T3N)": ([True] * 3 + [False]) * 500,
            "period-2": [True, False] * 1000,
            "random": [rng.random() < 0.5 for _ in range(2000)],
        }
        table = {}
        for pname, factory in PREDICTORS.items():
            table[pname] = {
                pat: train(factory(), 0x4000, outcomes)
                for pat, outcomes in patterns.items()
            }
        return table

    table = run_once(benchmark, _run)
    header = f"{'predictor':<12s}" + "".join(
        f"{pat:>12s}" for pat in next(iter(table.values()))
    )
    lines = ["Predictor accuracy on synthetic patterns", "", header,
             "-" * len(header)]
    for pname, row in table.items():
        lines.append(
            f"{pname:<12s}" + "".join(f"{acc:>12.1%}" for acc in row.values())
        )
    publish("predictor_quality", "\n".join(lines))

    for pname, row in table.items():
        assert row["biased"] > 0.95, pname
        assert 0.4 < row["random"] < 0.6, pname  # nobody predicts noise
    # History-based predictors learn patterns bimodal cannot.
    assert table["yags"]["period-2"] > 0.9
    assert table["tournament"]["period-2"] > 0.9
    assert table["bimodal"]["period-2"] < 0.7

"""Extension: slice-computed indirect-branch targets (TARGET PGIs).

The paper's Section 7 contrasts its kill-based correlation with Roth
et al.'s virtual-call target pre-computation ("it uses the path through
the program to attempt to determine when a prediction should be used,
while we use the path to invalidate predictions"). TARGET-kind PGIs
unify the two inside this framework: the slice computes the next
dispatch target, the kill mechanism (with the global-skip alignment for
one-ahead pipelining) keeps the queue bound to the right dynamic
instance, and the front end overrides the cascading predictor.
"""

from conftest import run_once

from repro.harness.experiments import default_scale
from repro.uarch.core import Core
from repro.workloads import dispatch


def _run():
    workload = dispatch.build(scale=default_scale())
    (dispatch_pc,) = workload.problem_branch_pcs
    config = dispatch.RECOMMENDED_CONFIG

    def run(slices):
        return Core(
            workload.program,
            config,
            slices=slices,
            memory_image=workload.memory_image,
            region=workload.region,
        ).run()

    return run(()), run(workload.slices), dispatch_pc


def bench_extension_target_prediction(benchmark, publish):
    base, assisted, dispatch_pc = run_once(benchmark, _run)
    base_rate = base.branch_pcs[dispatch_pc].rate
    assisted_rate = assisted.branch_pcs[dispatch_pc].rate
    c = assisted.correlator
    text = "\n".join(
        [
            "Extension: indirect-target prediction (interpreter dispatch)",
            "",
            f"cascading predictor alone: IPC {base.ipc:5.2f}, "
            f"dispatch mispredict rate {base_rate:.0%}",
            f"with target slice:         IPC {assisted.ipc:5.2f}, "
            f"dispatch mispredict rate {assisted_rate:.0%}",
            f"targets generated {c.value_predictions_generated}, "
            f"bound at fetch {c.value_overrides}, "
            f"late {c.value_predictions_late}",
        ]
    )
    publish("extension_target_prediction", text)

    assert base_rate > 0.5  # the cascading predictor cannot learn this
    assert assisted_rate < base_rate * 0.75
    assert assisted.ipc > base.ipc * 1.15
    assert c.value_overrides > 50

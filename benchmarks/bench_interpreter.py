"""Interpreter microbenchmark: raw functional ``execute()`` throughput.

The simulator's floor is the speed of the functional executor itself —
every fetched instruction (right path or wrong) runs through either a
per-instruction compiled closure (:func:`repro.arch.interpreter.execute`)
or a fused basic-block segment. This bench measures both tiers in
isolation, with no out-of-order machinery around them, so per-cycle
scheduling costs can be separated from raw execution costs when a
throughput regression shows up.

The workload is vpr's real instruction stream (entry block onward),
executed architecturally: the same straight-line code the fused tier
compiles in anger. Results merge into ``BENCH_throughput.json`` under
``interpreter`` next to the whole-simulator regimes.
"""

import time

from conftest import RESULTS_DIR  # noqa: F401  (shared results dir)

from bench_simulator_throughput import _merge_results

from repro.arch.interpreter import execute
from repro.arch.memory import Memory
from repro.arch.state import ThreadState
from repro.workloads import registry

#: Floor for the per-instruction tier (executions / wall second). The
#: closure tier measures ~1.5M exec/s locally; a third of that still
#: catches anything that reintroduces per-execution decode.
INTERPRETER_FLOOR = 500_000


def _functional_run(workload, budget):
    """Execute *budget* instructions of *workload* architecturally,
    following correct paths (branches included), timing only the
    ``execute`` calls' loop."""
    program = workload.program
    memory = Memory()
    for addr, value in workload.memory_image.items():
        memory.store(addr, value)
    memory.commit()
    state = ThreadState(memory, entry_pc=program.entry_pc)
    executed = 0
    start = time.perf_counter()
    while executed < budget and not state.halted:
        inst = program.at(state.pc)
        if inst is None:
            break
        execute(inst, state)
        executed += 1
    return executed, time.perf_counter() - start


def bench_interpreter_throughput(publish):
    workload = registry.build("vpr", scale=0.2)
    budget = 200_000

    # Warm once so every static instruction has its compiled closure
    # (first execution pays lazy compilation), then best-of-3.
    _functional_run(workload, budget)
    best_rate = 0.0
    executed = 0
    for _ in range(3):
        executed, elapsed = _functional_run(workload, budget)
        best_rate = max(best_rate, executed / elapsed)

    publish(
        "interpreter_throughput",
        "Functional interpreter throughput (vpr instruction stream)\n\n"
        f"{executed:,} instructions executed per round; "
        f"~{best_rate:,.0f} executions/second through the "
        "per-instruction closure tier",
    )
    _merge_results(
        "interpreter",
        {
            "workload": "vpr",
            "executions_per_second": round(best_rate),
            "executed_per_round": executed,
            "best_of_rounds": 3,
            "floor_executions_per_second": INTERPRETER_FLOOR,
        },
    )
    assert executed > 50_000
    assert best_rate > INTERPRETER_FLOOR

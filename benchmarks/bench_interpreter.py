"""Interpreter microbenchmark: raw functional ``execute()`` throughput.

The simulator's floor is the speed of the functional executor itself —
every fetched instruction (right path or wrong) runs through either a
per-instruction compiled closure (:func:`repro.arch.interpreter.execute`)
or a fused basic-block segment. This bench measures both tiers in
isolation, with no out-of-order machinery around them, so per-cycle
scheduling costs can be separated from raw execution costs when a
throughput regression shows up.

The workload is vpr's real instruction stream (entry block onward),
executed architecturally: the same straight-line code the fused tier
compiles in anger. Results merge into ``BENCH_throughput.json`` under
``interpreter`` next to the whole-simulator regimes.
"""

from conftest import RESULTS_DIR  # noqa: F401  (shared results dir)

from bench_simulator_throughput import _merge_results

from repro.harness.bench import measure_interpreter_rate

#: Floor for the per-instruction tier (executions / wall second). The
#: closure tier measures ~1.5M exec/s locally; a third of that still
#: catches anything that reintroduces per-execution decode.
INTERPRETER_FLOOR = 500_000


def bench_interpreter_throughput(publish):
    # Measurement shared with `repro bench --all`
    # (repro.harness.bench.measure_interpreter_rate): warm the closures
    # once, then best-of-3 timed rounds of 200k functional executions.
    best_rate, executed = measure_interpreter_rate(rounds=3)

    publish(
        "interpreter_throughput",
        "Functional interpreter throughput (vpr instruction stream)\n\n"
        f"{executed:,} instructions executed per round; "
        f"~{best_rate:,.0f} executions/second through the "
        "per-instruction closure tier",
    )
    _merge_results(
        "interpreter",
        {
            "workload": "vpr",
            "executions_per_second": round(best_rate),
            "executed_per_round": executed,
            "best_of_rounds": 3,
            "floor_executions_per_second": INTERPRETER_FLOOR,
        },
    )
    assert executed > 50_000
    assert best_rate > INTERPRETER_FLOOR

"""Ablation: fork-point hoisting distance (Section 3.2).

"Selecting a fork point often requires carefully balancing two
conflicting desires": more hoisting gives latency tolerance, less gives
accuracy/fewer useless forks. Compares vpr's hoisted driver-loop fork
against the Figure 3 ``node_to_heap`` fork (~40 instructions of lead).
"""

from conftest import run_once

from repro.harness.experiments import default_scale
from repro.harness.runner import run_baseline, run_with_slices
from repro.workloads import vpr


def _run():
    workload = vpr.build(scale=default_scale())
    base = run_baseline(workload)
    hoisted = run_with_slices(workload)
    late = run_with_slices(workload, slices=(vpr.late_fork_slice(workload),))
    return base, hoisted, late


def bench_ablation_fork_distance(benchmark, publish):
    base, hoisted, late = run_once(benchmark, _run)

    def late_fraction(stats):
        generated = stats.correlator.predictions_generated
        return stats.correlator.late_predictions / generated if generated else 0

    text = "\n".join(
        [
            "Ablation: fork-point distance (vpr)",
            "",
            f"hoisted fork (driver loop): speedup "
            f"{hoisted.ipc / base.ipc - 1:+.1%}, "
            f"late predictions {late_fraction(hoisted):.0%}",
            f"late fork (node_to_heap):   speedup "
            f"{late.ipc / base.ipc - 1:+.1%}, "
            f"late predictions {late_fraction(late):.0%}",
        ]
    )
    publish("ablation_fork_distance", text)

    assert hoisted.ipc > late.ipc
    assert late_fraction(late) > late_fraction(hoisted) + 0.2
    # Even the late fork still helps (early resolution, Section 5.3).
    assert late.ipc > base.ipc

"""Ablation: number of SMT thread contexts (Section 6.1).

"Only two programs, twolf and vpr, ignore fork requests on a machine
with 3 idle helper threads, but most programs benefit from having more
than one idle thread." mcf runs a background prefetch slice plus a
periodic prediction slice, so it is sensitive to the context count.
"""

import dataclasses

from conftest import run_once

from repro.harness.experiments import default_scale
from repro.harness.runner import run_baseline, run_with_slices
from repro.uarch.config import FOUR_WIDE
from repro.workloads import mcf


def _run():
    workload = mcf.build(scale=default_scale())
    base = run_baseline(workload)
    results = {}
    for contexts in (2, 4, 8):
        config = dataclasses.replace(FOUR_WIDE, thread_contexts=contexts)
        results[contexts] = run_with_slices(workload, config)
    return base, results


def bench_ablation_contexts(benchmark, publish):
    base, results = run_once(benchmark, _run)
    lines = ["Ablation: SMT thread contexts (mcf)", ""]
    for contexts, stats in sorted(results.items()):
        lines.append(
            f"{contexts} contexts: speedup {stats.ipc / base.ipc - 1:+.1%}, "
            f"forks ignored {stats.forks_ignored}"
        )
    publish("ablation_contexts", "\n".join(lines))

    # With a single idle context, fork requests are ignored.
    assert results[2].forks_ignored > results[4].forks_ignored
    # More contexts help a two-slice workload.
    assert results[4].ipc >= results[2].ipc
    assert results[8].forks_ignored <= results[4].forks_ignored

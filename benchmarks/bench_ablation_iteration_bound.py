"""Ablation: the slice iteration bound (Section 3.2, "Slice Termination").

"each slice is assigned a maximum iteration count ... derived from a
profile-based estimate of the upper-bound of the number of iterations"
— and "overhead can often be minimized by ... completely relying on the
maximum iteration count".

Sweeps vpr's bound. Because our vpr slice also carries a
self-terminating exit test (the PGI value *is* the trickle-stop
condition), the bound acts as a safety net rather than the terminator:
truncating it below the typical trickle depth loses coverage of deep
insertions, while raising it to the slot capacity covers the tail at
the cost of the first prediction-slot drops.
"""

import dataclasses

from conftest import run_once

from repro.harness.experiments import default_scale
from repro.harness.runner import run_baseline, run_with_slices
from repro.workloads import vpr

BOUNDS = (1, 2, 4, 8)


def _run():
    workload = vpr.build(scale=default_scale())
    base = run_baseline(workload)
    results = {}
    for bound in BOUNDS:
        spec = dataclasses.replace(workload.slices[0], max_iterations=bound)
        results[bound] = run_with_slices(workload, slices=(spec,))
    return base, results


def bench_ablation_iteration_bound(benchmark, publish):
    base, results = run_once(benchmark, _run)
    lines = ["Ablation: slice iteration bound (vpr; shipped bound = 8)", ""]
    for bound, stats in sorted(results.items()):
        c = stats.correlator
        lines.append(
            f"max_iterations={bound}: speedup "
            f"{stats.ipc / base.ipc - 1:+6.1%}, "
            f"{c.predictions_generated} predictions, "
            f"{c.slot_overflow_drops} slot drops"
        )
    publish("ablation_iteration_bound", "\n".join(lines))

    speedups = {b: r.ipc / base.ipc - 1 for b, r in results.items()}
    # Truncating at 1 iteration loses most of the benefit.
    assert speedups[1] < speedups[4] - 0.05
    # Coverage (and benefit) grows with the bound...
    assert speedups[2] > speedups[1]
    assert speedups[4] > speedups[2]
    assert speedups[8] >= speedups[4] - 0.02
    # ...but the slot pressure of a deep bound becomes visible.
    assert results[8].correlator.slot_overflow_drops > 0
    assert results[4].correlator.slot_overflow_drops == 0

"""Ablation: prediction kills (Section 5.1).

"If any unused predictions are left in the queue, the predictions will
become mis-aligned, severely impacting prediction accuracy." This bench
strips the kill annotations from vpr's slice and measures the damage to
override accuracy and speedup.
"""

import dataclasses

from conftest import run_once

from repro.harness.experiments import default_scale
from repro.harness.runner import run_baseline, run_with_slices
from repro.workloads import vpr


def _run():
    workload = vpr.build(scale=default_scale())
    base = run_baseline(workload)
    with_kills = run_with_slices(workload)
    no_kill_slice = dataclasses.replace(workload.slices[0], kills=())
    without_kills = run_with_slices(workload, slices=(no_kill_slice,))
    return base, with_kills, without_kills


def _accuracy(stats):
    c = stats.correlator
    judged = c.correct_overrides + c.incorrect_overrides
    return c.correct_overrides / judged if judged else 1.0


def bench_ablation_kills(benchmark, publish):
    base, with_kills, without_kills = run_once(benchmark, _run)
    text = "\n".join(
        [
            "Ablation: correlator kills (vpr)",
            "",
            f"with kills:    speedup {with_kills.ipc / base.ipc - 1:+.1%}, "
            f"{with_kills.correlator.overrides} overrides at "
            f"{_accuracy(with_kills):.1%} accuracy",
            f"without kills: speedup {without_kills.ipc / base.ipc - 1:+.1%}, "
            f"{without_kills.correlator.overrides} overrides, "
            f"{without_kills.correlator.slot_overflow_drops} dropped "
            f"predictions (the queue clogs with dead entries)",
        ]
    )
    publish("ablation_kills", text)

    assert _accuracy(with_kills) > 0.97
    assert with_kills.correlator.overrides > 100
    # Without kills, predictions are never deallocated: the 8-slot
    # branch queue clogs immediately and the mechanism starves (our
    # correlator poisons over-full instances rather than letting them
    # mis-align, so starvation is the observable failure; either way,
    # Section 5.1's point stands: no kills, no benefit).
    assert without_kills.correlator.overrides < 50
    assert without_kills.correlator.slot_overflow_drops > 100
    assert with_kills.ipc > without_kills.ipc + 0.2

"""Table 2: coverage of performance degrading events by problem
instructions, for all twelve benchmark analogs.

Shape targets (paper Table 2): a handful of static instructions cover a
large majority of each category's PDEs while being a modest fraction of
dynamic instructions.
"""

from conftest import run_once

from repro.harness.experiments import experiment_table2


def bench_table2_problem_instructions(benchmark, publish):
    rows, text = run_once(benchmark, experiment_table2)
    publish("table2_problem_instructions", text)

    # The paper's headline: PDEs concentrate in few static instructions.
    branchy = [cov for _n, cov in rows if cov.branch_problem_count]
    assert branchy, "no benchmark had problem branches"
    high_coverage = [c for c in branchy if c.branch_misp_coverage > 0.5]
    assert len(high_coverage) >= len(branchy) * 2 // 3
    # Problem instructions are a small set of static instructions.
    for _name, cov in rows:
        assert cov.branch_problem_count <= 20
        assert cov.mem_problem_count <= 20

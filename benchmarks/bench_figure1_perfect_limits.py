"""Figure 1: IPC of baseline vs problem-instructions-perfect vs
all-perfect, on the 4-wide and 8-wide machines.

Shape targets (paper Figure 1): perfecting just the classified problem
instructions recovers most of the baseline-to-all-perfect gap, and the
gaps are larger on the 8-wide machine.
"""

from conftest import run_once

from repro.harness.experiments import experiment_figure1


def bench_figure1_perfect_limits(benchmark, publish):
    results, text = run_once(benchmark, experiment_figure1)
    publish("figure1_perfect_limits", text)

    recovered = []
    for r in results:
        assert r.problem_perfect.ipc >= r.base.ipc * 0.98
        assert r.all_perfect.ipc >= r.problem_perfect.ipc * 0.95
        gap = r.all_perfect.ipc - r.base.ipc
        if gap > 0.1:
            recovered.append((r.problem_perfect.ipc - r.base.ipc) / gap)
    # Problem instructions account for much of the gap, on average.
    assert sum(recovered) / len(recovered) > 0.5

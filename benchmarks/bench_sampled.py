"""Sampled-simulation benchmarks: throughput floor and sweep speedup.

Two measurements of :mod:`repro.harness.fastforward`:

* **sampled throughput** — the ``sampled`` regime from
  :mod:`repro.harness.bench` (base mcf, 20k-instruction warmed
  functional fast-forward, 4k-instruction measured region). Rate counts
  every instruction the run covered (prefix + discard window + region)
  against detailed wall time only — the amortized case a sweep sees,
  since all points share one snapshot. Merged into
  ``BENCH_throughput.json`` under ``sampled`` with a CI floor.
* **sweep speedup** — the headline claim: a memory-latency sweep on mcf
  with a shared warmed snapshot must be >= 3x faster than running each
  point in full detail, while every point's region IPC stays within 2%
  of the full-detail run over the same region. The full-detail
  comparator runs each point with ``warmup = fast_forward + discard``
  and ``region = sample`` so both sides measure the identical
  instruction interval; only how the prefix is executed differs
  (detailed vs. functional-with-warming).
* **multi-region throughput** — the ``sampled_multi`` regime: covered
  instructions per second for a fresh multi-region run whose snapshot
  chain is built inside the timed region (the one-shot, unamortized
  cost model), merged into ``BENCH_throughput.json`` with a CI floor.
* **multi-region differential** — the acceptance bar at experiment
  scale: a 10^7-instruction mcf run estimated from 10 periodic
  windows must be >= 20x faster than full detail, with the full-detail
  IPC inside the sampled estimate's 95% confidence interval.
* **window-parallel throughput** — the ``sampled_parallel`` regime:
  covered instructions per second for a multi-region run whose chain
  is prebuilt (amortized) and whose windows fan out over the process
  pool through one ``run_matrix`` call, merged into
  ``BENCH_throughput.json`` with a CI floor.
* **window-parallel speedup** — the PR 10 acceptance bar: a 10-window
  mcf run over a prebuilt chain must be >= 2x faster wall-clock at 8
  pool workers than the serial ``--window-jobs 1`` oracle, with a
  bit-identical aggregate RunStats digest (asserted unconditionally;
  the speedup floor is asserted where the host can physically deliver
  it, i.e. >= 4 CPUs — CI runners qualify, a 1-vCPU sandbox records
  the ratio without failing on physics).
"""

import dataclasses
import os
import time

from conftest import RESULTS_DIR  # noqa: F401  (shared results dir)

from bench_simulator_throughput import _merge_results

from repro.harness.bench import REGIMES, best_rate
from repro.harness.fastforward import (
    SnapshotStore,
    build_sample_plan,
    ensure_snapshot,
    iter_chain,
    sample_plan,
)
from repro.harness.runner import run_baseline
from repro.harness.sweep import _apply
from repro.uarch.config import FOUR_WIDE
from repro.uarch.stats import aggregate_stats
from repro.workloads import registry

#: Floor for the sampled regime (covered simulated instructions / wall
#: second). Measures ~160-180k locally (vs ~50-100k for the detailed
#: regimes); a third of that absorbs single-vCPU CI noise while still
#: catching a regression that makes sampling no faster than detail.
SAMPLED_FLOOR = 50_000

#: The acceptance bar for the sweep: shared-snapshot sampling must beat
#: per-point full detail by at least this factor...
SWEEP_SPEEDUP_FLOOR = 3.0

#: ...without moving any point's region IPC by more than this.
IPC_DEVIATION_CAP = 0.02

#: Floor for the multi-region regime (covered instructions / wall
#: second, chain build *included* — the one-shot cost model). Measures
#: ~120-140k locally; a third absorbs single-vCPU CI noise.
MULTI_FLOOR = 40_000

#: The acceptance bar for multi-region sampling at experiment scale: a
#: 10^7-instruction run estimated from 10 periodic windows must be at
#: least this much faster than simulating every instruction in detail.
MULTI_SPEEDUP_FLOOR = 20.0

#: Floor for the window-parallel regime (covered instructions / wall
#: second against the whole ``run_matrix`` wall clock, prebuilt chain).
#: Measures ~95k even on a single vCPU (where the pool serializes); a
#: third of that absorbs CI noise while catching a scheduler
#: regression that re-serializes the windows *and* adds overhead.
PARALLEL_FLOOR = 30_000

#: The PR 10 acceptance bar: window-parallel wall clock at 8 workers
#: must beat the serial window loop by at least this factor.
WINDOW_SPEEDUP_FLOOR = 2.0

#: Asserting a parallel speedup needs parallel hardware: the floor is
#: enforced at >= this many CPUs (CI runners qualify) and recorded
#: without being asserted below it.
WINDOW_SPEEDUP_MIN_CPUS = 4


def bench_sampled_throughput(publish):
    regime = REGIMES["sampled"]
    rate, stats = best_rate(regime, rounds=3)
    _, warmup = sample_plan(regime.sample)

    publish(
        "sampled_throughput",
        "Sampled-simulation throughput "
        f"(base {regime.workload}, scale {regime.scale}, "
        f"{regime.fast_forward:,}-inst warmed fast-forward, "
        f"{regime.sample:,}-inst region)\n\n"
        f"~{rate:,.0f} covered instructions/second "
        f"({stats.ff_insts:,} fast-forwarded + {warmup:,} discard + "
        f"{stats.committed:,} measured, best of 3 runs)",
    )
    _merge_results(
        "sampled",
        {
            "workload": regime.workload,
            "mode": regime.mode,
            "scale": regime.scale,
            "fast_forward": regime.fast_forward,
            "sample": regime.sample,
            "detail_warmup": warmup,
            "instructions_per_second": round(rate),
            "ff_insts": stats.ff_insts,
            "committed_per_run": stats.committed,
            "best_of_rounds": 3,
            "floor_instructions_per_second": SAMPLED_FLOOR,
        },
    )
    assert stats.ff_insts == regime.fast_forward
    assert stats.committed == regime.sample
    assert rate > SAMPLED_FLOOR


def bench_sampled_sweep_speedup(publish, tmp_path, monkeypatch):
    """Memory-latency sweep, sampled vs. full detail: >= 3x faster,
    per-point region IPC within 2%."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    workload = registry.build("mcf", scale=0.5)
    fast_forward, sample = 20_000, 4_000
    region, warmup = sample_plan(sample)
    latencies = (50, 100, 200, 400)
    configs = [
        _apply(FOUR_WIDE, "memory_latency", value) for value in latencies
    ]

    # Sampled side: the snapshot build is timed (it is real work the
    # sweep pays), but paid once — the warm-config key dedups across
    # points since memory_latency does not shape warmed state.
    store = SnapshotStore(tmp_path / "cache")
    sampled_start = time.perf_counter()
    sampled_ipc = []
    for config in configs:
        snapshot, _ = ensure_snapshot(
            workload, config, fast_forward, store=store
        )
        stats = run_baseline(
            workload, config, snapshot=snapshot, warmup=warmup, region=region
        )
        sampled_ipc.append(stats.ipc)
    sampled_s = time.perf_counter() - sampled_start
    snapshots_on_disk = len(store.ls())

    # Full-detail side: same measured interval, but the prefix runs on
    # the detailed core (warming every structure along the way).
    full_start = time.perf_counter()
    full_ipc = []
    for config in configs:
        stats = run_baseline(
            workload, config, warmup=fast_forward + warmup, region=sample
        )
        full_ipc.append(stats.ipc)
    full_s = time.perf_counter() - full_start

    speedup = full_s / sampled_s
    deviations = [
        abs(s - f) / f for s, f in zip(sampled_ipc, full_ipc)
    ]
    table = "\n".join(
        f"  {latency:>4d}-cycle memory: full {f:.3f} IPC, "
        f"sampled {s:.3f} IPC ({dev:+.2%})"
        for latency, f, s, dev in zip(
            latencies, full_ipc, sampled_ipc,
            (s - f for s, f in zip(sampled_ipc, full_ipc)),
        )
    )
    publish(
        "sampled_sweep_speedup",
        "Sampled memory-latency sweep (mcf, scale 0.5, "
        f"{len(latencies)} points, one shared {fast_forward:,}-inst "
        "warmed snapshot)\n\n"
        f"full detail: {full_s:.2f}s; sampled: {sampled_s:.2f}s "
        f"(speedup {speedup:.2f}x, {snapshots_on_disk} snapshot on "
        "disk)\n" + table,
    )
    _merge_results(
        "sampled_sweep",
        {
            "workload": "mcf",
            "scale": 0.5,
            "sweep": "memory_latency",
            "points": list(latencies),
            "fast_forward": fast_forward,
            "sample": sample,
            "full_detail_seconds": round(full_s, 3),
            "sampled_seconds": round(sampled_s, 3),
            "speedup": round(speedup, 2),
            "snapshots_built": snapshots_on_disk,
            "max_ipc_deviation": round(max(deviations), 5),
            "speedup_floor": SWEEP_SPEEDUP_FLOOR,
            "ipc_deviation_cap": IPC_DEVIATION_CAP,
        },
    )
    assert snapshots_on_disk == 1  # warm-config key shared the prefix
    assert speedup >= SWEEP_SPEEDUP_FLOOR
    assert max(deviations) < IPC_DEVIATION_CAP


def bench_sampled_multi_throughput(publish):
    """The ``sampled_multi`` regime: covered instructions per second
    for a fresh (unamortized) multi-region run, chain build included."""
    regime = REGIMES["sampled_multi"]
    rate, stats = best_rate(regime, rounds=3)
    _, warmup = sample_plan(regime.sample)

    publish(
        "sampled_multi_throughput",
        "Multi-region sampled throughput "
        f"(base {regime.workload}, scale {regime.scale}, "
        f"{stats.sample_regions} x {regime.sample:,}-inst windows, "
        f"period {regime.sample_period:,}, chain build timed)\n\n"
        f"~{rate:,.0f} covered instructions/second "
        f"({stats.ff_insts:,} chain span + "
        f"{stats.sample_regions * warmup:,} discard + "
        f"{stats.committed:,} measured, best of 3 runs)",
    )
    _merge_results(
        "sampled_multi",
        {
            "workload": regime.workload,
            "mode": regime.mode,
            "scale": regime.scale,
            "sample": regime.sample,
            "sample_regions": regime.sample_regions,
            "sample_period": regime.sample_period,
            "detail_warmup": warmup,
            "instructions_per_second": round(rate),
            "chain_span_insts": stats.ff_insts,
            "committed_per_run": stats.committed,
            "ipc_mean": round(stats.ipc_mean, 4),
            "ipc_ci95": round(stats.ipc_ci95, 4),
            "best_of_rounds": 3,
            "floor_instructions_per_second": MULTI_FLOOR,
        },
    )
    assert stats.sample_regions == regime.sample_regions
    assert stats.committed == regime.sample_regions * regime.sample
    assert rate > MULTI_FLOOR


def bench_sampled_multi_differential(publish, tmp_path, monkeypatch):
    """The acceptance differential at experiment scale: a 10^7-inst
    mcf run estimated from 10 periodic 2k-inst windows must be >= 20x
    faster than full detail, and the full-detail IPC must fall inside
    the sampled estimate's 95% confidence interval.

    The period is pinned to 1M instructions because ``workload.region``
    is a ceiling, not a promise — mcf at this scale halts around
    10.02M dynamic instructions, so evenly spacing windows over the
    ceiling would plan some of them past the halt. The full-detail
    side raises ``max_cycles`` past the 50M-cycle default (at mcf's
    ~0.16 IPC the run needs ~63M cycles) so it really commits every
    instruction; a truncated comparator would flatter the speedup.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    workload = registry.build("mcf", scale=181)
    sample, regions, period = 2_000, 10, 1_000_000
    plan = build_sample_plan(workload.region, 0, sample, regions, period)

    # Sampled side: the chained fast-forward is built fresh, in memory
    # (the one-shot cost model, same as the sampled_multi regime —
    # persisting ten multi-megaword snapshots is the amortized case a
    # sweep pays once, benched separately above).
    store = SnapshotStore(enabled=False)
    sampled_start = time.perf_counter()
    per_region = []
    for snapshot, _hit in iter_chain(
        workload, FOUR_WIDE, plan.depths, store=store
    ):
        if (
            snapshot is not None
            and snapshot.executed < snapshot.ff_insts
            and per_region
        ):
            break  # planned past the halt
        stats = run_baseline(
            workload, FOUR_WIDE,
            snapshot=snapshot, warmup=plan.warmup, region=plan.sample,
        )
        per_region.append(stats)
    sampled = aggregate_stats(per_region)
    sampled_s = time.perf_counter() - sampled_start

    from repro.uarch.core import Core

    full_start = time.perf_counter()
    full = Core(
        workload.program, FOUR_WIDE,
        memory_image=workload.memory_image,
        memory_normalized=True,
        region=workload.region,
        workload_name=workload.name,
    ).run(max_cycles=150_000_000)
    full_s = time.perf_counter() - full_start

    speedup = full_s / sampled_s
    error = abs(sampled.ipc_mean - full.ipc)
    regions_txt = ", ".join(f"{ipc:.3f}" for ipc in sampled.region_ipcs)
    publish(
        "sampled_multi_differential",
        "Multi-region differential (mcf, scale 181, "
        f"{full.committed / 1e6:.2f}M insts full detail vs "
        f"{sampled.sample_regions} x {sample:,}-inst sampled windows, "
        f"period {period:,})\n\n"
        f"full detail:  {full_s:.1f}s, IPC {full.ipc:.4f}\n"
        f"sampled:      {sampled_s:.1f}s, IPC {sampled.ipc_mean:.4f} "
        f"± {sampled.ipc_ci95:.4f} (95% CI)\n"
        f"speedup {speedup:.1f}x, |error| {error:.4f}\n"
        f"region IPCs: {regions_txt}",
    )
    _merge_results(
        "sampled_multi_differential",
        {
            "workload": "mcf",
            "scale": 181,
            "full_detail_insts": full.committed,
            "sample": sample,
            "sample_regions": sampled.sample_regions,
            "sample_period": period,
            "full_detail_seconds": round(full_s, 1),
            "sampled_seconds": round(sampled_s, 1),
            "speedup": round(speedup, 1),
            "full_ipc": round(full.ipc, 4),
            "sampled_ipc_mean": round(sampled.ipc_mean, 4),
            "sampled_ipc_ci95": round(sampled.ipc_ci95, 4),
            "speedup_floor": MULTI_SPEEDUP_FLOOR,
        },
    )
    assert sampled.sample_regions == regions  # nothing planned past halt
    assert not full.hit_cycle_limit  # comparator ran to the real halt
    assert speedup >= MULTI_SPEEDUP_FLOOR
    # The estimator's own interval must cover the truth.
    assert error <= sampled.ipc_ci95


def bench_sampled_parallel_throughput(publish, tmp_path, monkeypatch):
    """The ``sampled_parallel`` regime: covered instructions per second
    with the chain prebuilt and the windows fanned over the pool."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    regime = REGIMES["sampled_parallel"]
    rate, stats = best_rate(regime, rounds=3)
    _, warmup = sample_plan(regime.sample)

    publish(
        "sampled_parallel_throughput",
        "Window-parallel sampled throughput "
        f"(base {regime.workload}, scale {regime.scale}, "
        f"{stats.sample_regions} x {regime.sample:,}-inst windows, "
        f"period {regime.sample_period:,}, {regime.window_jobs} pool "
        "workers, prebuilt chain)\n\n"
        f"~{rate:,.0f} covered instructions/second against the whole "
        "run_matrix wall clock (best of 3 runs)",
    )
    _merge_results(
        "sampled_parallel",
        {
            "workload": regime.workload,
            "mode": regime.mode,
            "scale": regime.scale,
            "sample": regime.sample,
            "sample_regions": regime.sample_regions,
            "sample_period": regime.sample_period,
            "window_jobs": regime.window_jobs,
            "detail_warmup": warmup,
            "instructions_per_second": round(rate),
            "committed_per_run": stats.committed,
            "ipc_mean": round(stats.ipc_mean, 4),
            "ipc_ci95": round(stats.ipc_ci95, 4),
            "best_of_rounds": 3,
            "floor_instructions_per_second": PARALLEL_FLOOR,
        },
    )
    assert stats.sample_regions == regime.sample_regions
    assert stats.committed == regime.sample_regions * regime.sample
    assert rate > PARALLEL_FLOOR


def bench_window_parallel_speedup(publish, tmp_path, monkeypatch):
    """The PR 10 acceptance differential: a 10-window mcf run over a
    prebuilt snapshot chain, window-parallel at 8 workers vs the
    serial ``--window-jobs 1`` oracle.

    Both sides run through ``run_matrix`` with the run cache disabled
    (fresh detailed measurement either way; only the scheduling
    differs) over the same prebuilt chain, so the wall-clock ratio
    isolates exactly what the two-level scheduler buys. The aggregate
    RunStats must be bit-identical — the digest assertion holds on any
    host; the >= 2x floor is asserted on hosts with enough CPUs to
    make a parallel speedup physically possible (CI qualifies).
    """
    from repro.harness.cache import RunCache
    from repro.harness.fastforward import prebuild_snapshots
    from repro.harness.parallel import RunRequest, run_matrix
    from repro.uarch.stats import stats_digest

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    # Period pinned under the workload's real dynamic length (mcf at
    # this scale halts around 440k instructions — ``workload.region``
    # is a ceiling, not a promise), so all ten windows really run.
    sample, regions, period = 40_000, 10, 42_000
    request = RunRequest(
        workload="mcf",
        scale=8.0,
        mode="base",
        sample=sample,
        sample_regions=regions,
        sample_period=period,
    )
    # The chain is shared, amortized state — both sides restore the
    # same ten snapshots from the store; the build is untimed.
    prebuild_snapshots([request], jobs=8)

    serial_start = time.perf_counter()
    serial = run_matrix(
        [request], jobs=1, cache=RunCache(enabled=False), window_jobs=1
    )[0]
    serial_s = time.perf_counter() - serial_start

    parallel_start = time.perf_counter()
    parallel = run_matrix(
        [request], jobs=8, cache=RunCache(enabled=False), window_jobs=8
    )[0]
    parallel_s = time.perf_counter() - parallel_start

    speedup = serial_s / parallel_s
    cpus = os.cpu_count() or 1
    enforced = cpus >= WINDOW_SPEEDUP_MIN_CPUS
    publish(
        "window_parallel_speedup",
        f"Window-parallel speedup (mcf, scale 8.0, {regions} x "
        f"{sample:,}-inst windows, period {period:,}, prebuilt chain)\n\n"
        f"serial (--window-jobs 1): {serial_s:.2f}s\n"
        f"window-parallel (8 workers): {parallel_s:.2f}s\n"
        f"speedup {speedup:.2f}x on {cpus} CPU(s) "
        f"(floor {WINDOW_SPEEDUP_FLOOR}x "
        f"{'enforced' if enforced else 'recorded only — too few CPUs'})\n"
        f"aggregate digest identical: "
        f"{stats_digest(serial) == stats_digest(parallel)}",
    )
    _merge_results(
        "window_parallel_speedup",
        {
            "workload": "mcf",
            "scale": 8.0,
            "sample": sample,
            "sample_regions": regions,
            "sample_period": period,
            "window_jobs": 8,
            "serial_seconds": round(serial_s, 2),
            "parallel_seconds": round(parallel_s, 2),
            "speedup": round(speedup, 2),
            "cpus": cpus,
            "speedup_floor": WINDOW_SPEEDUP_FLOOR,
            "speedup_floor_enforced": enforced,
        },
    )
    # Bit-identity is the tentpole's correctness bar: same masked
    # digest AND field-for-field equality including simulator meta.
    assert stats_digest(serial) == stats_digest(parallel)
    assert dataclasses.asdict(serial) == dataclasses.asdict(parallel)
    assert serial.sample_regions == regions
    if enforced:
        assert speedup >= WINDOW_SPEEDUP_FLOOR

"""Sampled-simulation benchmarks: throughput floor and sweep speedup.

Two measurements of :mod:`repro.harness.fastforward`:

* **sampled throughput** — the ``sampled`` regime from
  :mod:`repro.harness.bench` (base mcf, 20k-instruction warmed
  functional fast-forward, 4k-instruction measured region). Rate counts
  every instruction the run covered (prefix + discard window + region)
  against detailed wall time only — the amortized case a sweep sees,
  since all points share one snapshot. Merged into
  ``BENCH_throughput.json`` under ``sampled`` with a CI floor.
* **sweep speedup** — the headline claim: a memory-latency sweep on mcf
  with a shared warmed snapshot must be >= 3x faster than running each
  point in full detail, while every point's region IPC stays within 2%
  of the full-detail run over the same region. The full-detail
  comparator runs each point with ``warmup = fast_forward + discard``
  and ``region = sample`` so both sides measure the identical
  instruction interval; only how the prefix is executed differs
  (detailed vs. functional-with-warming).
"""

import time

from conftest import RESULTS_DIR  # noqa: F401  (shared results dir)

from bench_simulator_throughput import _merge_results

from repro.harness.bench import REGIMES, best_rate
from repro.harness.fastforward import (
    SnapshotStore,
    ensure_snapshot,
    sample_plan,
)
from repro.harness.runner import run_baseline
from repro.harness.sweep import _apply
from repro.uarch.config import FOUR_WIDE
from repro.workloads import registry

#: Floor for the sampled regime (covered simulated instructions / wall
#: second). Measures ~160-180k locally (vs ~50-100k for the detailed
#: regimes); a third of that absorbs single-vCPU CI noise while still
#: catching a regression that makes sampling no faster than detail.
SAMPLED_FLOOR = 50_000

#: The acceptance bar for the sweep: shared-snapshot sampling must beat
#: per-point full detail by at least this factor...
SWEEP_SPEEDUP_FLOOR = 3.0

#: ...without moving any point's region IPC by more than this.
IPC_DEVIATION_CAP = 0.02


def bench_sampled_throughput(publish):
    regime = REGIMES["sampled"]
    rate, stats = best_rate(regime, rounds=3)
    _, warmup = sample_plan(regime.sample)

    publish(
        "sampled_throughput",
        "Sampled-simulation throughput "
        f"(base {regime.workload}, scale {regime.scale}, "
        f"{regime.fast_forward:,}-inst warmed fast-forward, "
        f"{regime.sample:,}-inst region)\n\n"
        f"~{rate:,.0f} covered instructions/second "
        f"({stats.ff_insts:,} fast-forwarded + {warmup:,} discard + "
        f"{stats.committed:,} measured, best of 3 runs)",
    )
    _merge_results(
        "sampled",
        {
            "workload": regime.workload,
            "mode": regime.mode,
            "scale": regime.scale,
            "fast_forward": regime.fast_forward,
            "sample": regime.sample,
            "detail_warmup": warmup,
            "instructions_per_second": round(rate),
            "ff_insts": stats.ff_insts,
            "committed_per_run": stats.committed,
            "best_of_rounds": 3,
            "floor_instructions_per_second": SAMPLED_FLOOR,
        },
    )
    assert stats.ff_insts == regime.fast_forward
    assert stats.committed == regime.sample
    assert rate > SAMPLED_FLOOR


def bench_sampled_sweep_speedup(publish, tmp_path, monkeypatch):
    """Memory-latency sweep, sampled vs. full detail: >= 3x faster,
    per-point region IPC within 2%."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    workload = registry.build("mcf", scale=0.5)
    fast_forward, sample = 20_000, 4_000
    region, warmup = sample_plan(sample)
    latencies = (50, 100, 200, 400)
    configs = [
        _apply(FOUR_WIDE, "memory_latency", value) for value in latencies
    ]

    # Sampled side: the snapshot build is timed (it is real work the
    # sweep pays), but paid once — the warm-config key dedups across
    # points since memory_latency does not shape warmed state.
    store = SnapshotStore(tmp_path / "cache")
    sampled_start = time.perf_counter()
    sampled_ipc = []
    for config in configs:
        snapshot, _ = ensure_snapshot(
            workload, config, fast_forward, store=store
        )
        stats = run_baseline(
            workload, config, snapshot=snapshot, warmup=warmup, region=region
        )
        sampled_ipc.append(stats.ipc)
    sampled_s = time.perf_counter() - sampled_start
    snapshots_on_disk = len(store.ls())

    # Full-detail side: same measured interval, but the prefix runs on
    # the detailed core (warming every structure along the way).
    full_start = time.perf_counter()
    full_ipc = []
    for config in configs:
        stats = run_baseline(
            workload, config, warmup=fast_forward + warmup, region=sample
        )
        full_ipc.append(stats.ipc)
    full_s = time.perf_counter() - full_start

    speedup = full_s / sampled_s
    deviations = [
        abs(s - f) / f for s, f in zip(sampled_ipc, full_ipc)
    ]
    table = "\n".join(
        f"  {latency:>4d}-cycle memory: full {f:.3f} IPC, "
        f"sampled {s:.3f} IPC ({dev:+.2%})"
        for latency, f, s, dev in zip(
            latencies, full_ipc, sampled_ipc,
            (s - f for s, f in zip(sampled_ipc, full_ipc)),
        )
    )
    publish(
        "sampled_sweep_speedup",
        "Sampled memory-latency sweep (mcf, scale 0.5, "
        f"{len(latencies)} points, one shared {fast_forward:,}-inst "
        "warmed snapshot)\n\n"
        f"full detail: {full_s:.2f}s; sampled: {sampled_s:.2f}s "
        f"(speedup {speedup:.2f}x, {snapshots_on_disk} snapshot on "
        "disk)\n" + table,
    )
    _merge_results(
        "sampled_sweep",
        {
            "workload": "mcf",
            "scale": 0.5,
            "sweep": "memory_latency",
            "points": list(latencies),
            "fast_forward": fast_forward,
            "sample": sample,
            "full_detail_seconds": round(full_s, 3),
            "sampled_seconds": round(sampled_s, 3),
            "speedup": round(speedup, 2),
            "snapshots_built": snapshots_on_disk,
            "max_ipc_deviation": round(max(deviations), 5),
            "speedup_floor": SWEEP_SPEEDUP_FLOOR,
            "ipc_deviation_cap": IPC_DEVIATION_CAP,
        },
    )
    assert snapshots_on_disk == 1  # warm-config key shared the prefix
    assert speedup >= SWEEP_SPEEDUP_FLOOR
    assert max(deviations) < IPC_DEVIATION_CAP

"""Warming microbenchmark: fused functional-warming throughput.

Every sampled figure spends the bulk of its wall clock in the
functional-warming loop (:func:`repro.harness.fastforward._warm_loop`)
carrying the gaps between detailed windows, so that loop's rate bounds
how deep a sampled experiment can afford to go. This bench measures it
in isolation on the regime where it is slowest — the far-memory
pointer chase (mcf at a footprint that dwarfs L2, ~1 in 10
instructions taking the full warm miss path: L1/L2 fills, stream-table
training, victim-buffer traffic).

The rate merges into ``BENCH_throughput.json`` under ``warming`` with
a CI floor, next to the interpreter tier it replaced in the warm loop.
``speedup_vs_pr6`` records the measured gain over the previous PR's
per-block warming loop (interleaved same-host measurement at the time
this bench landed — the flat-array hierarchy, O(1) stream matching,
and trace-compiled warm tier together; see DESIGN.md).
"""

from conftest import RESULTS_DIR  # noqa: F401  (shared results dir)

from bench_simulator_throughput import _merge_results

from repro.harness.bench import (
    WARMING_INSTS,
    WARMING_SCALE,
    WARMING_WORKLOAD,
    measure_warming_rate,
)

#: Floor for the warming tier (warmed instructions / wall second) on
#: the far-memory pointer chase. Measures ~0.9-1.5M locally (high
#: run-to-run variance on shared hosts); a floor around a third of the
#: low end still catches any regression back toward the ~0.6M/s
#: per-block warming loop this PR replaced.
WARMING_FLOOR = 350_000

#: The previous PR's warming rate on this regime, measured interleaved
#: with the new loop on the same host when this bench landed. Kept for
#: the honest speedup bookkeeping in BENCH_throughput.json; not a
#: floor (it is not re-measured in CI).
PR6_WARMING_RATE = 635_000


def bench_warming_throughput(publish):
    # Measurement shared with `repro bench warming` / `--all`
    # (repro.harness.bench.measure_warming_rate): per round, a fresh
    # live warming run primed past trace compilation, then 2M warmed
    # instructions against the wall clock; best of 3 rounds.
    best_rate, insts = measure_warming_rate(rounds=3)

    publish(
        "warming_throughput",
        "Functional-warming throughput "
        f"(base {WARMING_WORKLOAD}, scale {WARMING_SCALE:g}, "
        "far-memory pointer chase)\n\n"
        f"{insts:,} instructions warmed per round; "
        f"~{best_rate:,.0f} warmed instructions/second through the "
        "fused warm tier (trace-compiled bodies + flat-array "
        "hierarchy + O(1) stream matching); "
        f"{best_rate / PR6_WARMING_RATE:.2f}x the per-block warming "
        "loop it replaced",
    )
    _merge_results(
        "warming",
        {
            "workload": WARMING_WORKLOAD,
            "scale": WARMING_SCALE,
            "mode": "warming",
            "insts_per_round": insts,
            "instructions_per_second": round(best_rate),
            "pr6_instructions_per_second": PR6_WARMING_RATE,
            "speedup_vs_pr6": round(best_rate / PR6_WARMING_RATE, 2),
            "best_of_rounds": 3,
            "floor_instructions_per_second": WARMING_FLOOR,
        },
    )
    assert insts == WARMING_INSTS
    assert best_rate > WARMING_FLOOR

"""Extension: value-prediction correlation (the paper's conclusion).

"The final contribution of this paper is a prediction correlation
mechanism ... This technique is accurate and can potentially be used to
correlate other types of predictions (e.g., value predictions)."

This bench implements that extension on mcf: the chain-walking slice's
loaded pointers/potentials are routed to the correlator as *value
predictions*; a bound, correct prediction lets the load's consumers
proceed at L1 latency, and a wrong one squashes like a mispredicted
branch.

The measured outcome doubles as an explanation of why the paper only
hinted at this: a slice-computed value arrives *with* the data (the
slice had to perform the load to know the pointer), so on a pointer
chase value correlation adds almost nothing beyond the prefetch the
same load already provides. The mechanism, however, is exercised end
to end: hundreds of bound value predictions at >90% accuracy, with
mis-speculation recovery on the wrong ones.
"""

from conftest import run_once

from repro.harness.experiments import default_scale
from repro.harness.runner import run_baseline, run_with_slices
from repro.workloads import mcf


def _run():
    workload = mcf.build(scale=default_scale())
    base = run_baseline(workload)
    pred_only = run_with_slices(workload, slices=(workload.slices[0],))
    value_pred = run_with_slices(
        workload, slices=(mcf.value_prediction_slice(workload),)
    )
    return base, pred_only, value_pred


def bench_extension_value_prediction(benchmark, publish):
    base, pred_only, value_pred = run_once(benchmark, _run)
    c = value_pred.correlator
    judged = c.correct_value_overrides + c.incorrect_value_overrides
    accuracy = c.correct_value_overrides / judged if judged else 0.0
    text = "\n".join(
        [
            "Extension: value-prediction correlation (mcf)",
            "",
            f"direction predictions only: speedup "
            f"{pred_only.ipc / base.ipc - 1:+.1%}",
            f"plus value predictions:     speedup "
            f"{value_pred.ipc / base.ipc - 1:+.1%}",
            f"value predictions bound: {c.value_overrides} "
            f"({accuracy:.0%} correct, "
            f"{value_pred.value_mispredict_squashes} recovery squashes)",
            "",
            "A chasing slice must load a pointer to predict it, so its",
            "value predictions arrive with the data: on pointer chases",
            "the extension adds little beyond prefetching — consistent",
            "with the paper leaving value correlation as future work.",
        ]
    )
    publish("extension_value_prediction", text)

    # The mechanism is exercised end to end...
    assert c.value_overrides > 100
    assert judged > 50
    assert accuracy > 0.90
    # ...recovery fires on the wrong ones...
    assert value_pred.value_mispredict_squashes > 0
    # ...and it does not regress the direction-only configuration.
    assert value_pred.ipc > pred_only.ipc * 0.95
    assert value_pred.ipc > base.ipc * 1.05

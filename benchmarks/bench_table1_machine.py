"""Table 1: the simulated machine parameters (both widths).

This bench prints the configuration and sanity-checks the presets
against the paper's numbers; the "benchmark" timing it reports is the
cost of constructing and checking the configurations.
"""

from conftest import run_once

from repro.harness.experiments import experiment_table1
from repro.uarch.config import EIGHT_WIDE, FOUR_WIDE


def bench_table1_machine(benchmark, publish):
    configs, text = run_once(benchmark, experiment_table1)
    publish("table1_machine", text)

    assert FOUR_WIDE.window_entries == 128
    assert FOUR_WIDE.load_store_ports == 2
    assert FOUR_WIDE.pipeline_depth == 14
    assert EIGHT_WIDE.window_entries == 256
    assert EIGHT_WIDE.load_store_ports == 4
    assert FOUR_WIDE.l1d.size_bytes == 64 * 1024
    assert FOUR_WIDE.l2.size_bytes == 2 * 1024 * 1024
    assert FOUR_WIDE.memory_latency == 100
    assert configs == [FOUR_WIDE, EIGHT_WIDE]

"""CPI stacks: where the cycles go, with and without slices.

Cycle accounting by main-thread ROB-head state (the standard crude
attribution): *busy* (full commit width), *drain* (partial commit),
*frontend* (empty ROB or head still in the front end — mispredict
refill), *memory* (head waits on a load), *execute* (head waits on
computation). The slice mechanism's two benefits appear directly:
branch-side benchmarks move *frontend* cycles into *busy*; load-side
benchmarks move *memory* cycles.
"""

from conftest import run_once

from repro.harness.experiments import default_scale
from repro.uarch.config import FOUR_WIDE
from repro.uarch.core import Core
from repro.workloads import registry

BENCHMARKS = ("vpr", "mcf", "gzip", "eon")
KINDS = ("busy", "drain", "execute", "memory", "frontend")


def _accounted(workload, slices):
    return Core(
        workload.program,
        FOUR_WIDE,
        slices=slices,
        memory_image=workload.memory_image,
        region=workload.region,
        cycle_accounting=True,
    ).run()


def _run():
    scale = default_scale()
    results = {}
    for name in BENCHMARKS:
        workload = registry.build(name, scale)
        results[name] = (
            _accounted(workload, ()),
            _accounted(workload, workload.slices),
        )
    return results


def _fractions(stats):
    total = sum(stats.cycle_breakdown.values()) or 1
    return {k: stats.cycle_breakdown.get(k, 0) / total for k in KINDS}


def bench_cpi_stacks(benchmark, publish):
    results = run_once(benchmark, _run)
    header = f"{'program':<9s}{'cfg':<8s}" + "".join(
        f"{k:>10s}" for k in KINDS
    )
    lines = ["CPI stacks (fraction of cycles)", "", header, "-" * len(header)]
    for name, (base, assisted) in results.items():
        for tag, stats in (("base", base), ("slices", assisted)):
            fracs = _fractions(stats)
            lines.append(
                f"{name:<9s}{tag:<8s}"
                + "".join(f"{fracs[k]:>10.0%}" for k in KINDS)
            )
    publish("cpi_stacks", "\n".join(lines))

    # Branch-side benchmarks cut frontend (refill) cycles...
    for name in ("vpr", "eon"):
        base, assisted = results[name]
        assert _fractions(assisted)["frontend"] < _fractions(base)["frontend"]
    # ...the load-side one cuts memory cycles...
    base, assisted = results["mcf"]
    assert _fractions(assisted)["memory"] < _fractions(base)["memory"]
    # ...and useful work (busy) grows everywhere slices help.
    for name in BENCHMARKS:
        base, assisted = results[name]
        assert _fractions(assisted)["busy"] >= _fractions(base)["busy"] - 0.02

"""Extension: confidence-gated forking (Section 6.3).

"Overhead can be reduced by not executing slices for problem
instructions that will not miss/mispredict. ... Obvious future work is
gating the fork using confidence."

Three scenarios:

* **vpr, good slice** — consistently useful: confidence must stay high
  and gate nothing.
* **vpr, un-optimized slice** — consistently useless (it dies on the
  memory-communicated chain): gating must suppress it and recover the
  overhead it was costing.
* **crafty** — marginal (most instances' predictions are never
  consumed): gating trades a small benefit for a large overhead
  reduction.
"""

from conftest import run_once

from repro.harness.experiments import default_scale
from repro.harness.runner import run_baseline
from repro.uarch.confidence import ForkConfidenceEstimator
from repro.uarch.config import FOUR_WIDE
from repro.uarch.core import Core
from repro.workloads import registry, vpr


def _run_one(workload, slices, gated):
    estimator = ForkConfidenceEstimator() if gated else None
    core = Core(
        workload.program,
        FOUR_WIDE,
        slices=slices,
        memory_image=workload.memory_image,
        region=workload.region,
        fork_confidence=estimator,
    )
    return core.run(), estimator


def _run():
    scale = default_scale()
    rows = {}
    vpr_wl = registry.build("vpr", scale)
    crafty_wl = registry.build("crafty", scale)
    cases = {
        "vpr (good slice)": (vpr_wl, vpr_wl.slices),
        "vpr (un-optimized slice)": (
            vpr_wl,
            (vpr.unoptimized_slice(vpr_wl),),
        ),
        "crafty": (crafty_wl, crafty_wl.slices),
    }
    for name, (workload, slices) in cases.items():
        base = run_baseline(workload)
        plain, _ = _run_one(workload, slices, gated=False)
        gated, estimator = _run_one(workload, slices, gated=True)
        rows[name] = (base, plain, gated)
    return rows


def bench_extension_fork_confidence(benchmark, publish):
    rows = run_once(benchmark, _run)
    lines = ["Extension: confidence-gated forking (Section 6.3)", ""]
    for name, (base, plain, gated) in rows.items():
        lines.append(
            f"{name:<26s} ungated {plain.ipc / base.ipc - 1:+6.1%} "
            f"({plain.slice_fetched:>6d} slice insts)   "
            f"gated {gated.ipc / base.ipc - 1:+6.1%} "
            f"({gated.slice_fetched:>6d} slice insts, "
            f"{gated.forks_gated} forks suppressed)"
        )
    publish("extension_fork_confidence", "\n".join(lines))

    base, plain, gated = rows["vpr (good slice)"]
    # A useful slice must not be gated away.
    assert gated.forks_gated < plain.forks_taken * 0.05
    assert gated.ipc > plain.ipc * 0.98

    base, plain, gated = rows["vpr (un-optimized slice)"]
    # A useless slice is suppressed, recovering its overhead.
    assert gated.forks_gated > 100
    assert gated.slice_fetched < plain.slice_fetched * 0.5
    assert gated.ipc >= plain.ipc

    base, plain, gated = rows["crafty"]
    # Marginal case: big fetch-overhead reduction without a collapse.
    assert gated.slice_fetched < plain.slice_fetched * 0.5
    assert gated.ipc > base.ipc * 0.99

"""Figure 11 on the 8-wide machine.

The paper presents Figure 11 for the 4-wide machine and notes "the
8-wide results, omitted for space, are similar". This bench runs the
same experiment at 8 wide and checks that similarity: the same
benchmarks win, and every slice-assisted run stays within the limit.

Runs sampled by default (halt-aware ~2x10^6-instruction per-workload
plans with 95% confidence intervals, like the 4-wide bench); the
warmed snapshot chains are shared with the 4-wide figure since warm
state depends only on the memory-hierarchy geometry both machines
share.
"""

from conftest import run_once

from repro.harness.experiments import SAMPLED_REGIONS, experiment_figure11
from repro.uarch.config import EIGHT_WIDE


def bench_figure11_8wide(benchmark, publish):
    results, text = run_once(
        benchmark, experiment_figure11, config=EIGHT_WIDE, sampled=True
    )
    publish("figure11_speedup_8wide", text)

    by_name = {r.workload.name: r for r in results}
    # Full region complements and CIs, as on the 4-wide machine.
    for r in results:
        assert r.base.sample_regions == SAMPLED_REGIONS, r.workload.name
        assert r.slice_speedup_ci95 is not None, r.workload.name
    # Same winners as the 4-wide machine...
    assert by_name["vpr"].slice_speedup > 0.30
    assert by_name["bzip2"].slice_speedup > 0.30
    assert by_name["mcf"].slice_speedup > 0.25
    # ...same failures...
    for name in ("gcc", "parser", "vortex"):
        assert by_name[name].slice_speedup < 0.08, name
    # ...and no material regressions.
    for r in results:
        assert r.slice_speedup > -0.05, r.workload.name

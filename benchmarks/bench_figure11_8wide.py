"""Figure 11 on the 8-wide machine.

The paper presents Figure 11 for the 4-wide machine and notes "the
8-wide results, omitted for space, are similar". This bench runs the
same experiment at 8 wide and checks that similarity: the same
benchmarks win, and every slice-assisted run stays within the limit.
"""

from conftest import run_once

from repro.harness.experiments import experiment_figure11
from repro.uarch.config import EIGHT_WIDE


def bench_figure11_8wide(benchmark, publish):
    results, text = run_once(benchmark, experiment_figure11, config=EIGHT_WIDE)
    publish("figure11_speedup_8wide", text)

    by_name = {r.workload.name: r for r in results}
    # Same winners as the 4-wide machine...
    assert by_name["vpr"].slice_speedup > 0.15
    assert by_name["bzip2"].slice_speedup > 0.10
    assert by_name["mcf"].slice_speedup > 0.08
    # ...same failures...
    for name in ("gcc", "parser", "vortex"):
        assert by_name[name].slice_speedup < 0.08, name
    # ...and no material regressions.
    for r in results:
        assert r.slice_speedup > -0.05, r.workload.name

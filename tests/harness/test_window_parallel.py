"""Differential tests for window-parallel sampled execution.

The tentpole invariant: exploding a multi-region request into
per-window pool units (``window_jobs > 1``) must be *bit-identical* to
the serial in-request loop (``window_jobs=1``, the oracle) — every
stat, every workload, both slice arms, halt-drop included — while a
re-sweep with an overlapping window schedule answers the shared
windows from the ``windows`` cache namespace instead of re-measuring
them. Fault injection rides the same pool path, so a worker crash
mid-window consumes retry budget and still converges to the
undisturbed aggregate.
"""

import dataclasses
import os

import pytest

from repro.harness.cache import RunCache, WindowCache, window_fingerprint
from repro.harness.faults import FaultKind, FaultPlan
from repro.harness.parallel import (
    RunRequest,
    execute_request,
    resolve_window_jobs,
    run_matrix,
    window_depths,
    window_request,
    window_schedule,
)
from repro.workloads import registry


@pytest.fixture
def cache_env(tmp_path, monkeypatch):
    """Point every store (run cache + windows + snapshots) at a temp
    root so the snapshot chains are shared between the serial and
    parallel arms (the comparison is about execution, not warming)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path / "cache"


def same_stats(a, b):
    return dataclasses.asdict(a) == dataclasses.asdict(b)


def sampled(workload, mode, **kw):
    kw.setdefault("scale", 0.05)
    kw.setdefault("sample", 200)
    kw.setdefault("sample_regions", 3)
    kw.setdefault("sample_period", 1_500)
    return RunRequest(workload=workload, mode=mode, **kw)


# ----------------------------------------------------------------------
# The 12-workload x slices on/off differential
# ----------------------------------------------------------------------


def test_window_parallel_bit_identical_all_workloads(cache_env):
    """Every registered workload, slices off and on, through one
    matrix: the window-parallel aggregates equal the ``window_jobs=1``
    oracle field-for-field (``dataclasses.asdict``, nothing masked)."""
    matrix = [
        sampled(name, mode)
        for name in sorted(registry.WORKLOAD_BUILDERS)
        for mode in ("base", "slice")
    ]
    serial = run_matrix(
        matrix, jobs=1, cache=RunCache(enabled=False), window_jobs=1
    )
    parallel = run_matrix(
        matrix, jobs=2, cache=RunCache(enabled=False), window_jobs=2
    )
    for request, want, got in zip(matrix, serial, parallel):
        assert same_stats(want, got), (request.workload, request.mode)
        assert got.sample_regions >= 1


def test_window_parallel_halt_drop_matches_serial(cache_env):
    """A chain that halts mid-schedule drops the tail windows at
    assembly exactly as the serial loop never runs them (mcf@0.2 halts
    at ~11.1k dynamic instructions; the depth-15k window overshoots)."""
    request = sampled(
        "mcf", "base", scale=0.2, sample=500,
        sample_regions=4, sample_period=5_000,
    )
    serial = run_matrix(
        [request], jobs=1, cache=RunCache(enabled=False), window_jobs=1
    )[0]
    report = run_matrix(
        [request],
        jobs=2,
        cache=RunCache(enabled=False),
        window_jobs=2,
        return_report=True,
    )
    outcome = report.outcomes[0]
    assert same_stats(serial, outcome.stats)
    assert serial.sample_regions == 3  # the depth-15k window was dropped
    # The parallel explosion still *scheduled* (and measured) all four
    # windows — the drop is an assembly decision, not a scheduling one.
    assert outcome.windows == 4


# ----------------------------------------------------------------------
# Per-window cache reuse: the 8 -> 10 region re-sweep
# ----------------------------------------------------------------------


def test_resweep_answers_shared_windows_from_cache(cache_env):
    """Re-running a sweep with 10 regions after an 8-region run
    recomputes only the 2 new windows: the parent fingerprints differ
    (so the run cache misses) but the 8 shared windows hit the
    ``windows`` namespace."""
    cache = RunCache(cache_env)
    eight = sampled(
        "mcf", "base", scale=0.2, sample=300,
        sample_regions=8, sample_period=1_000,
    )
    first = run_matrix(
        [eight], jobs=2, cache=cache, window_jobs=2, return_report=True
    )
    assert first.outcomes[0].windows == 8
    assert first.window_hits == 0

    ten = dataclasses.replace(eight, sample_regions=10)
    second = run_matrix(
        [ten], jobs=2, cache=cache, window_jobs=2, return_report=True
    )
    outcome = second.outcomes[0]
    assert outcome.status == "ok"
    assert outcome.windows == 10
    assert outcome.window_hits == 8  # only the 2 new depths were measured

    # The reassembled aggregate is still the serial oracle's, exactly.
    oracle = run_matrix(
        [ten], jobs=1, cache=RunCache(enabled=False), window_jobs=1
    )[0]
    assert same_stats(oracle, outcome.stats)

    # An exact re-run is a parent-level run-cache hit: no windows at all.
    third = run_matrix(
        [ten], jobs=2, cache=cache, window_jobs=2, return_report=True
    )
    assert third.outcomes[0].status == "cached"
    assert third.windows == 0


def test_window_fingerprint_ignores_schedule_shape():
    """Window keys must be shared across schedules: the same depth in
    an 8-region and a 10-region request is the same cache entry, while
    depth / measured-window changes produce distinct keys."""
    eight = sampled("mcf", "base", sample_regions=8)
    ten = dataclasses.replace(eight, sample_regions=10)
    assert window_fingerprint(eight, 3_000) == window_fingerprint(ten, 3_000)
    assert window_fingerprint(eight, 3_000) != window_fingerprint(eight, 4_500)
    longer = dataclasses.replace(eight, sample=400)
    assert window_fingerprint(eight, 3_000) != window_fingerprint(longer, 3_000)


def test_window_request_is_single_window_oracle(cache_env):
    """Executing a derived window request is bit-identical to the
    serial loop's iteration at that depth (same snapshot key, same
    warmup/region pair)."""
    request = sampled("gzip", "base", scale=0.1, sample_period=2_000)
    execute_request(request)  # build the chain once: both arms warm
    depths = window_depths(request)
    per_window = [execute_request(window_request(request, d)) for d in depths]
    from repro.harness.parallel import assemble_window_stats

    assembled = assemble_window_stats(per_window, depths)
    serial = execute_request(request)
    assert same_stats(assembled, serial)


# ----------------------------------------------------------------------
# Knob resolution
# ----------------------------------------------------------------------


def test_resolve_window_jobs_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_WINDOW_JOBS", raising=False)
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_window_jobs(None) == 3  # falls back to worker count
    assert resolve_window_jobs(1) == 1  # explicit serial escape hatch
    assert resolve_window_jobs(5) == 5
    monkeypatch.setenv("REPRO_WINDOW_JOBS", "7")
    assert resolve_window_jobs(None) == 7  # env (the --window-jobs flag)
    assert resolve_window_jobs(2) == 2  # explicit arg wins over env


def test_window_jobs_is_not_part_of_the_fingerprint():
    """``window_jobs`` is execution strategy, not experiment identity:
    it is not a RunRequest field, so fingerprints cannot depend on it."""
    assert "window_jobs" not in {
        f.name for f in dataclasses.fields(RunRequest)
    }


# ----------------------------------------------------------------------
# Chaos: a worker crash mid-window
# ----------------------------------------------------------------------


def test_window_crash_consumes_retry_and_converges(cache_env):
    """A worker killed while measuring one window (os._exit mid-pool)
    consumes retry budget and the matrix still converges to the
    undisturbed serial aggregate, attempts accounted."""
    request = sampled(
        "mcf", "base", scale=0.2, sample=300,
        sample_regions=3, sample_period=1_000,
    )
    units = window_schedule(request)
    plan = FaultPlan.targeting({(units[1], 0): FaultKind.CRASH})
    report = run_matrix(
        [request],
        jobs=2,
        cache=RunCache(enabled=False),
        window_jobs=2,
        retries=1,
        backoff_base=0.01,
        fault_plan=plan,
        return_report=True,
    )
    outcome = report.outcomes[0]
    assert outcome.status == "ok"
    assert report.pool_respawns >= 1
    assert report.retries >= 1
    # The crashed window was charged its retry on top of each window's
    # first attempt (crash attribution may charge in-flight siblings
    # too, so this is a floor, not an equality).
    assert outcome.attempts >= len(units) + 1
    undisturbed = run_matrix(
        [request], jobs=1, cache=RunCache(enabled=False), window_jobs=1
    )[0]
    assert same_stats(undisturbed, outcome.stats)


def test_window_crash_exhausting_retries_skips_parent(cache_env):
    """A window that crashes on every attempt fails its parent request
    under on_error='skip' — the hole is visible, never silent."""
    request = sampled(
        "mcf", "base", scale=0.2, sample=300,
        sample_regions=3, sample_period=1_000,
    )
    units = window_schedule(request)
    plan = FaultPlan.targeting({
        (units[2], 0): FaultKind.CRASH,
        (units[2], 1): FaultKind.CRASH,
    })
    report = run_matrix(
        [request],
        jobs=2,
        cache=RunCache(enabled=False),
        window_jobs=2,
        retries=1,
        backoff_base=0.01,
        on_error="skip",
        fault_plan=plan,
        return_report=True,
    )
    outcome = report.outcomes[0]
    assert outcome.status == "skipped"
    assert outcome.stats is None
    assert outcome.error


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


def test_parser_accepts_window_jobs():
    from repro.harness import cli

    args = cli.build_parser().parse_args(["table3", "--window-jobs", "8"])
    assert args.window_jobs == 8


def test_window_jobs_flag_mirrors_to_env(monkeypatch, tmp_path):
    from repro.harness import cli

    monkeypatch.setenv("REPRO_WINDOW_JOBS", "stale")
    monkeypatch.delenv("REPRO_WINDOW_JOBS")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    assert cli.main(["snapshot", "ls", "--window-jobs", "4"]) == 0
    assert os.environ["REPRO_WINDOW_JOBS"] == "4"


def test_cache_clear_covers_windows(cache_env, capsys):
    from repro.harness import cli

    cache = RunCache(cache_env)
    request = sampled("gzip", "base", scale=0.1, sample_period=2_000)
    run_matrix([request], jobs=2, cache=cache, window_jobs=2)
    windows = WindowCache(cache_env)
    assert len(list(windows.entry_paths())) == 3
    assert cli.main(["cache", "clear"]) == 0
    out = capsys.readouterr().out
    assert "3 window result(s)" in out
    assert len(list(WindowCache(cache_env).entry_paths())) == 0

"""Tests for the parallel run-matrix executor."""

import dataclasses

import pytest

from repro.harness.cache import RunCache
from repro.harness.parallel import (
    RunRequest,
    execute_request,
    resolve_jobs,
    run_matrix,
)


@pytest.fixture
def cache(tmp_path):
    return RunCache(tmp_path / "cache")


def test_request_validates_mode_and_config():
    with pytest.raises(ValueError):
        RunRequest(workload="vpr", scale=0.05, mode="bogus")
    with pytest.raises(ValueError):
        RunRequest(workload="vpr", scale=0.05, config="16-wide")


def test_request_normalizes_pc_order():
    a = RunRequest(
        workload="vpr", scale=0.05, mode="perfect", perfect_branch_pcs=(8, 4)
    )
    b = RunRequest(
        workload="vpr", scale=0.05, mode="perfect", perfect_branch_pcs=(4, 8)
    )
    assert a == b


def test_overrides_resolve_nested_config():
    request = RunRequest(
        workload="vpr",
        scale=0.05,
        overrides=(
            ("memory_latency", 400),
            ("slice_hw.predictions_per_branch", 4),
        ),
    )
    config = request.resolve_config()
    assert config.memory_latency == 400
    assert config.slice_hw.predictions_per_branch == 4


def test_resolve_jobs_precedence(monkeypatch):
    assert resolve_jobs(3) == 3
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs() == 5
    monkeypatch.delenv("REPRO_JOBS")
    assert resolve_jobs() >= 1


def test_matrix_returns_input_order_and_dedups(cache):
    base = RunRequest(workload="vpr", scale=0.05, mode="base")
    assisted = RunRequest(workload="vpr", scale=0.05, mode="slice")
    results = run_matrix([base, assisted, base], jobs=1, cache=cache)
    assert len(results) == 3
    # Duplicate requests share one simulation (and one cache entry).
    assert results[0] is results[2]
    assert results[0].committed == results[1].committed
    assert results[1].ipc > results[0].ipc  # vpr slices help
    assert cache.misses == 2 and cache.hits == 0


def test_parallel_results_match_sequential(cache):
    """jobs=2 through real worker processes == in-process execution."""
    requests = [
        RunRequest(workload="vpr", scale=0.05, mode="base"),
        RunRequest(workload="vpr", scale=0.05, mode="slice"),
        RunRequest(workload="gzip", scale=0.05, mode="base"),
    ]
    parallel = run_matrix(requests, jobs=2, cache=RunCache(enabled=False))
    sequential = [execute_request(r) for r in requests]
    for p, s in zip(parallel, sequential):
        assert dataclasses.asdict(p) == dataclasses.asdict(s)


def test_warm_cache_short_circuits(cache):
    request = RunRequest(workload="vpr", scale=0.05, mode="base")
    (cold,) = run_matrix([request], jobs=1, cache=cache)
    (warm,) = run_matrix([request], jobs=1, cache=cache)
    assert cache.hits == 1
    assert dataclasses.asdict(cold) == dataclasses.asdict(warm)

"""Integration smoke tests for the experiment drivers (tiny scale)."""

import pytest

from repro.harness import experiments
from repro.uarch.config import FOUR_WIDE


def test_default_scale_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.42")
    assert experiments.default_scale() == 0.42
    monkeypatch.delenv("REPRO_SCALE")
    assert experiments.default_scale() == 0.35


def test_experiment_table1_lists_both_machines():
    configs, text = experiments.experiment_table1()
    assert [c.name for c in configs] == ["4-wide", "8-wide"]
    assert text.count("Table 1") == 2


def test_experiment_table3_covers_slice_benchmarks():
    rows, text = experiments.experiment_table3(scale=0.05)
    programs = {row.program for row in rows}
    assert "vpr" in programs and "mcf" in programs
    assert "parser" not in programs  # ships no slices
    assert "Table 3" in text


@pytest.mark.slow
def test_experiment_table2_smoke():
    rows, text = experiments.experiment_table2(scale=0.05)
    assert len(rows) == 12
    assert "Table 2" in text
    # The concentration property: someone covers most mispredictions.
    assert any(cov.branch_misp_coverage > 0.5 for _n, cov in rows)


@pytest.mark.slow
def test_experiment_figure11_smoke():
    results, text = experiments.experiment_figure11(
        scale=0.05, config=FOUR_WIDE
    )
    assert len(results) == 12
    assert "Figure 11" in text
    by_name = {r.workload.name: r for r in results}
    assert by_name["vpr"].slice_speedup > 0.1


@pytest.mark.slow
def test_experiment_table4_smoke():
    rows, text = experiments.experiment_table4(
        scale=0.05, benchmarks=("vpr", "mcf")
    )
    assert [row.program for row in rows] == ["vpr", "mcf"]
    assert "Table 4" in text
    assert all(row.predictions_generated > 0 for row in rows)


def test_experiment_workload_mix_smoke():
    rows, text = experiments.experiment_workload_mix(scale=0.05)
    assert len(rows) == 12
    assert "Workload characterization" in text

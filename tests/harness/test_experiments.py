"""Integration smoke tests for the experiment drivers (tiny scale)."""

import pytest

from repro.harness import experiments
from repro.uarch.config import FOUR_WIDE


def test_default_scale_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.42")
    assert experiments.default_scale() == 0.42
    monkeypatch.delenv("REPRO_SCALE")
    assert experiments.default_scale() == 0.35


def test_experiment_table1_lists_both_machines():
    configs, text = experiments.experiment_table1()
    assert [c.name for c in configs] == ["4-wide", "8-wide"]
    assert text.count("Table 1") == 2


def test_experiment_table3_covers_slice_benchmarks():
    rows, text = experiments.experiment_table3(scale=0.05)
    programs = {row.program for row in rows}
    assert "vpr" in programs and "mcf" in programs
    assert "parser" not in programs  # ships no slices
    assert "Table 3" in text


@pytest.mark.slow
def test_experiment_table2_smoke():
    rows, text = experiments.experiment_table2(scale=0.05)
    assert len(rows) == 12
    assert "Table 2" in text
    # The concentration property: someone covers most mispredictions.
    assert any(cov.branch_misp_coverage > 0.5 for _n, cov in rows)


@pytest.mark.slow
def test_experiment_figure11_smoke():
    results, text = experiments.experiment_figure11(
        scale=0.05, config=FOUR_WIDE
    )
    assert len(results) == 12
    assert "Figure 11" in text
    by_name = {r.workload.name: r for r in results}
    assert by_name["vpr"].slice_speedup > 0.1


@pytest.mark.slow
def test_experiment_table4_smoke():
    rows, text = experiments.experiment_table4(
        scale=0.05, benchmarks=("vpr", "mcf")
    )
    assert [row.program for row in rows] == ["vpr", "mcf"]
    assert "Table 4" in text
    assert all(row.predictions_generated > 0 for row in rows)


def test_experiment_workload_mix_smoke():
    rows, text = experiments.experiment_workload_mix(scale=0.05)
    assert len(rows) == 12
    assert "Workload characterization" in text


# ----------------------------------------------------------------------
# Long-horizon sampled plans (sampled figure benches by default)
# ----------------------------------------------------------------------


def test_scale_for_horizon_inverts_run_length():
    for name in experiments.RUN_LENGTH_MODEL:
        scale = experiments.scale_for_horizon(name, 2_000_000)
        modeled = experiments.run_length(name, scale)
        assert abs(modeled - 2_000_000) / 2_000_000 < 0.02, name


def test_sampled_plan_schedule_fits_horizon():
    for name in experiments.RUN_LENGTH_MODEL:
        plan = experiments.sampled_plan(name)
        regions = plan["sample_regions"]
        assert regions == experiments.SAMPLED_REGIONS
        # build_sample_plan places window k at ff + k*period; the last
        # window (plus its discard warmup) must land inside the margin.
        last_start = plan["fast_forward"] + (regions - 1) * plan["sample_period"]
        window = plan["sample"] + plan["sample"] // 10
        assert last_start + window <= experiments.SAMPLED_HORIZON
        assert plan["sample_period"] >= window  # windows never overlap


@pytest.mark.parametrize("workload_name", sorted(experiments.RUN_LENGTH_MODEL))
def test_sampled_plan_windows_land_before_halt(workload_name):
    """Halt-awareness, measured: at the plan's scale the workload
    really runs past the last scheduled window before HALT."""
    from repro.harness import fastforward as ff
    from repro.workloads import registry

    horizon = 100_000
    plan = experiments.sampled_plan(workload_name, horizon=horizon)
    last_end = (
        plan["fast_forward"]
        + (plan["sample_regions"] - 1) * plan["sample_period"]
        + plan["sample"] + plan["sample"] // 10
    )
    workload = registry.build(workload_name, scale=plan["scale"])
    run = ff._LiveRun(workload, FOUR_WIDE, warming=False)
    run.advance(2 * horizon)
    # A run may exceed the model (gzip's jagged match tails) but must
    # never HALT short of the last scheduled window.
    assert run.executed >= last_end, (
        f"{workload_name}: halts at {run.executed}, last window ends "
        f"at {last_end}"
    )


@pytest.mark.slow
def test_experiment_table4_sampled_smoke():
    rows, text = experiments.experiment_table4(
        benchmarks=("vpr", "mcf"), sampled=True, horizon=60_000
    )
    assert [row.program for row in rows] == ["vpr", "mcf"]
    assert "Table 4" in text
    assert all(row.speedup is not None for row in rows)

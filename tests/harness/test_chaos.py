"""Chaos tests: the run matrix under deterministic fault injection.

A seeded :class:`FaultPlan` crashes workers, hangs requests, injects
transient failures, and corrupts cache entries at fixed points; the
harness must converge to the same bit-identical ``RunStats`` it
produces fault-free, with every attempt accounted for in the
``MatrixReport``.
"""

import dataclasses
import pickle

import pytest

from repro.errors import SimulationError
from repro.harness.cache import RunCache
from repro.harness.faults import FaultKind, FaultPlan, request_key
from repro.harness.parallel import (
    RunRequest,
    execute_request,
    run_matrix,
    skipped_outcomes,
    reset_skipped_log,
)

VPR_BASE = RunRequest(workload="vpr", scale=0.05, mode="base")
VPR_SLICE = RunRequest(workload="vpr", scale=0.05, mode="slice")
GZIP_BASE = RunRequest(workload="gzip", scale=0.05, mode="base")
MATRIX = [VPR_BASE, VPR_SLICE, GZIP_BASE]


def same_stats(a, b):
    return dataclasses.asdict(a) == dataclasses.asdict(b)


# ---------------------------------------------------------------------------
# FaultPlan mechanics.
# ---------------------------------------------------------------------------


def test_plan_is_deterministic_and_picklable():
    plan = FaultPlan(seed=7, crash_rate=0.5, flaky_rate=0.3)
    decisions = [
        plan.fault_for(req, attempt)
        for req in MATRIX
        for attempt in range(4)
    ]
    clone = pickle.loads(pickle.dumps(plan))
    assert decisions == [
        clone.fault_for(req, attempt)
        for req in MATRIX
        for attempt in range(4)
    ]
    # Same seed, fresh instance: same decisions. Different seed: not all.
    assert decisions == [
        FaultPlan(seed=7, crash_rate=0.5, flaky_rate=0.3).fault_for(r, a)
        for r in MATRIX
        for a in range(4)
    ]
    other = [
        FaultPlan(seed=8, crash_rate=0.5, flaky_rate=0.3).fault_for(r, a)
        for r in MATRIX
        for a in range(4)
    ]
    assert decisions != other


def test_request_key_ignores_nothing_and_is_stable():
    assert request_key(VPR_BASE) == request_key(
        RunRequest(workload="vpr", scale=0.05, mode="base")
    )
    assert request_key(VPR_BASE) != request_key(VPR_SLICE)


def test_targeting_builds_exact_plan():
    plan = FaultPlan.targeting(
        {(VPR_BASE, 0): FaultKind.CRASH, (GZIP_BASE, 1): FaultKind.FLAKY},
        corrupt={VPR_SLICE},
    )
    assert plan.fault_for(VPR_BASE, 0) is FaultKind.CRASH
    assert plan.fault_for(VPR_BASE, 1) is None
    assert plan.fault_for(GZIP_BASE, 1) is FaultKind.FLAKY
    assert plan.should_corrupt(VPR_SLICE)
    assert not plan.should_corrupt(VPR_BASE)
    assert plan.active


# ---------------------------------------------------------------------------
# Individual fault kinds through run_matrix.
# ---------------------------------------------------------------------------


def test_worker_crash_is_retried_to_bit_identical_stats():
    """A worker killed mid-request (os._exit) is respawned and the
    request retried; final stats match a fault-free sequential run."""
    plan = FaultPlan.targeting({(VPR_BASE, 0): FaultKind.CRASH})
    report = run_matrix(
        MATRIX,
        jobs=2,
        cache=RunCache(enabled=False),
        retries=2,
        backoff_base=0.01,
        fault_plan=plan,
        return_report=True,
    )
    assert report.completed == len(MATRIX)
    assert report.skipped == 0
    assert report.pool_respawns >= 1
    by_request = {o.request: o for o in report.outcomes}
    assert by_request[VPR_BASE].attempts >= 2
    for request, outcome in by_request.items():
        assert same_stats(outcome.stats, execute_request(request))


def test_transient_failure_inline_retry():
    """jobs=1 runs in-process; a transient SimulationError on the first
    attempt is retried with backoff and succeeds."""
    plan = FaultPlan.targeting({(GZIP_BASE, 0): FaultKind.FLAKY})
    report = run_matrix(
        [GZIP_BASE],
        jobs=1,
        cache=RunCache(enabled=False),
        retries=1,
        backoff_base=0.0,
        fault_plan=plan,
        return_report=True,
    )
    (outcome,) = report.outcomes
    assert outcome.ok and outcome.attempts == 2
    assert report.retries == 1
    assert same_stats(outcome.stats, execute_request(GZIP_BASE))


def test_hang_is_timed_out_and_retried():
    """A hung worker is terminated at the timeout and the request
    retried on a fresh pool."""
    plan = FaultPlan.targeting(
        {(VPR_BASE, 0): FaultKind.HANG}, hang_seconds=60.0
    )
    report = run_matrix(
        [VPR_BASE, GZIP_BASE],
        jobs=2,
        cache=RunCache(enabled=False),
        timeout=10.0,
        retries=1,
        backoff_base=0.01,
        fault_plan=plan,
        return_report=True,
    )
    assert report.completed == 2
    by_request = {o.request: o for o in report.outcomes}
    assert by_request[VPR_BASE].attempts == 2
    assert same_stats(by_request[VPR_BASE].stats, execute_request(VPR_BASE))


def test_exhausted_retries_raise_by_default():
    plan = FaultPlan.targeting(
        {(GZIP_BASE, 0): FaultKind.FLAKY, (GZIP_BASE, 1): FaultKind.FLAKY}
    )
    with pytest.raises(SimulationError):
        run_matrix(
            [GZIP_BASE],
            jobs=1,
            cache=RunCache(enabled=False),
            retries=1,
            backoff_base=0.0,
            fault_plan=plan,
        )


def test_on_error_skip_records_hole_and_finishes_matrix():
    reset_skipped_log()
    plan = FaultPlan.targeting(
        {(VPR_BASE, 0): FaultKind.CRASH, (VPR_BASE, 1): FaultKind.CRASH}
    )
    results = run_matrix(
        [VPR_BASE, GZIP_BASE],
        jobs=1,
        cache=RunCache(enabled=False),
        retries=1,
        backoff_base=0.0,
        on_error="skip",
        fault_plan=plan,
    )
    # List mode: the hole gets a placeholder (zero-commit) RunStats so
    # downstream renderers survive; the real result is untouched.
    assert len(results) == 2
    assert results[0].committed == 0
    assert same_stats(results[1], execute_request(GZIP_BASE))
    (skipped,) = skipped_outcomes()
    assert skipped.request == VPR_BASE
    assert skipped.attempts == 2
    assert "crash" in skipped.error
    reset_skipped_log()


def test_cache_corruption_quarantined_and_rerun(tmp_path):
    cache = RunCache(tmp_path / "cache")
    warm = run_matrix([VPR_BASE], jobs=1, cache=cache)
    plan = FaultPlan.targeting({}, corrupt={VPR_BASE})
    (result,) = run_matrix([VPR_BASE], jobs=1, cache=cache, fault_plan=plan)
    assert cache.corruptions == 1
    assert list((tmp_path / "cache" / "corrupt").iterdir())
    assert same_stats(result, warm[0])
    # The fresh rerun repopulated the cache: next get is a clean hit.
    assert cache.get(VPR_BASE) is not None


# ---------------------------------------------------------------------------
# Snapshot-chain prebuild under faults.
# ---------------------------------------------------------------------------


def _digests(store):
    from repro.harness.fastforward import snapshot_digest

    return {
        path.stem: snapshot_digest(store.get(path.stem))
        for path in store.entry_paths()
    }


def test_prebuild_crash_and_hang_converge_to_serial_digests(tmp_path):
    """ISSUE acceptance: a worker crash and a hang injected into the
    parallel chain prebuild must still converge — same store keys,
    same provenance-masked member digests as a serial fresh-store
    build. (A killed attempt leaves a chain prefix behind; the retry
    resumes from the deepest stored member, so partial progress must
    compose into identical bytes.)"""
    from repro.harness.fastforward import SnapshotStore, prebuild_snapshots

    sampled = [
        dataclasses.replace(
            request, fast_forward=2000, sample=300, sample_regions=3
        )
        for request in (VPR_BASE, GZIP_BASE)
    ]
    serial_store = SnapshotStore(tmp_path / "serial")
    prebuild_snapshots(sampled, store=serial_store, jobs=1)
    serial = _digests(serial_store)
    assert serial, "serial prebuild stored no chain members"

    plan = FaultPlan.targeting(
        {
            (sampled[0], 0): FaultKind.CRASH,
            (sampled[1], 0): FaultKind.HANG,
        },
        hang_seconds=60.0,
    )
    chaos_store = SnapshotStore(tmp_path / "chaos")
    prebuild_snapshots(
        sampled,
        store=chaos_store,
        jobs=2,
        timeout=10.0,
        retries=2,
        fault_plan=plan,
    )
    assert _digests(chaos_store) == serial


def test_prebuild_exhausted_faults_skip_not_raise(tmp_path):
    """Prebuilding is an optimization: a chain whose every attempt
    fails is skipped (the run that needs it builds inline), and the
    other chain still lands in full. (Transient in-worker failures, not
    crashes: a crashed worker breaks the pool and legitimately charges
    the innocent in-flight sibling an attempt.)"""
    from repro.harness.fastforward import SnapshotStore, prebuild_snapshots

    sampled = [
        dataclasses.replace(
            request, fast_forward=2000, sample=300, sample_regions=3
        )
        for request in (VPR_BASE, GZIP_BASE)
    ]
    serial_store = SnapshotStore(tmp_path / "serial")
    prebuild_snapshots([sampled[1]], store=serial_store, jobs=1)

    plan = FaultPlan.targeting(
        {(sampled[0], attempt): FaultKind.FLAKY for attempt in range(3)}
    )
    chaos_store = SnapshotStore(tmp_path / "chaos")
    prebuild_snapshots(
        sampled, store=chaos_store, jobs=2, retries=2, fault_plan=plan
    )
    chaos = _digests(chaos_store)
    assert set(_digests(serial_store).items()) <= set(chaos.items())


# ---------------------------------------------------------------------------
# The acceptance scenario: everything at once.
# ---------------------------------------------------------------------------


def test_combined_crash_timeout_and_corruption_converge(tmp_path):
    """ISSUE acceptance: a matrix with an injected worker crash, an
    injected hang (timed out), and a corrupted cache entry completes
    with bit-identical RunStats for every request, and the report
    accounts for every attempt."""
    cache = RunCache(tmp_path / "cache")
    # Warm exactly one entry so the corruption has something to eat.
    run_matrix([GZIP_BASE], jobs=1, cache=cache)
    expected = {r: execute_request(r) for r in MATRIX}

    # The hang targets attempts 0 AND 1: a pool break can charge an
    # innocent sibling's first attempt, and the hang must still fire.
    plan = FaultPlan.targeting(
        {
            (VPR_BASE, 0): FaultKind.CRASH,
            (VPR_SLICE, 0): FaultKind.HANG,
            (VPR_SLICE, 1): FaultKind.HANG,
        },
        corrupt={GZIP_BASE},
        hang_seconds=60.0,
    )
    report = run_matrix(
        MATRIX,
        jobs=2,
        cache=cache,
        timeout=10.0,
        retries=2,
        backoff_base=0.01,
        on_error="raise",
        fault_plan=plan,
        return_report=True,
    )
    assert report.completed == len(MATRIX)
    assert report.skipped == 0
    assert cache.corruptions == 1
    by_request = {o.request: o for o in report.outcomes}
    for request in MATRIX:
        outcome = by_request[request]
        assert outcome.ok
        assert same_stats(outcome.stats, expected[request])
    # Attempt accounting: the crash and the hang each charged at least
    # one extra attempt; nothing ran more than 1 + retries times.
    assert by_request[VPR_BASE].attempts >= 2
    assert by_request[VPR_SLICE].attempts >= 2
    for outcome in report.outcomes:
        assert 1 <= outcome.attempts <= 3
    assert report.total_attempts == sum(o.attempts for o in report.outcomes)
    assert report.pool_respawns >= 1
    # The corrupted entry was quarantined, rerun, and rewritten.
    assert cache.get(GZIP_BASE) is not None

"""Tests for the experiment runners."""

from repro.harness.runner import (
    covered_problem_spec,
    run_perfect_sweep,
    run_triple,
)
from repro.workloads import registry


def test_run_triple_orders_ipcs():
    result = run_triple(registry.build("vpr", scale=0.08))
    assert result.limit.ipc > result.base.ipc
    assert result.assisted.ipc > result.base.ipc
    assert result.slice_speedup > 0
    assert result.limit_speedup >= result.slice_speedup - 0.05


def test_covered_problem_spec_uses_slice_coverage():
    workload = registry.build("vpr", scale=0.05)
    spec = covered_problem_spec(workload)
    covered = {
        pc for s in workload.slices for pc in s.covered_branch_pcs
    }
    assert spec.branch_pcs == frozenset(covered)


def test_covered_problem_spec_falls_back_for_sliceless_workloads():
    workload = registry.build("parser", scale=0.05)
    spec = covered_problem_spec(workload)
    assert spec.branch_pcs == workload.problem_branch_pcs
    assert spec.load_pcs == workload.problem_load_pcs


def test_perfect_sweep_classifies_and_improves():
    result = run_perfect_sweep(registry.build("gzip", scale=0.08))
    assert result.classification.branch_pcs  # found problem branches
    assert result.problem_perfect.ipc > result.base.ipc
    assert result.all_perfect.ipc >= result.problem_perfect.ipc * 0.95
    # The classified problem branches include the annotated one.
    workload = result.workload
    assert workload.problem_branch_pcs & result.classification.branch_pcs

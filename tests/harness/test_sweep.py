"""Tests for the sensitivity-sweep helpers."""

from repro.harness.sweep import (
    render_sweep,
    sweep_memory_latency,
    sweep_prediction_slots,
    sweep_window_size,
)
from repro.workloads import registry


def test_memory_latency_sweep_moves_base_ipc():
    workload = registry.build("mcf", scale=0.1)
    points = sweep_memory_latency(workload, (50, 200))
    assert points[0].base.ipc > points[1].base.ipc
    assert all(p.assisted.ipc >= p.base.ipc * 0.95 for p in points)


def test_window_sweep_monotone_baseline():
    workload = registry.build("vpr", scale=0.08)
    points = sweep_window_size(workload, (32, 256))
    assert points[1].base.ipc > points[0].base.ipc


def test_prediction_slot_sweep_runs():
    workload = registry.build("vpr", scale=0.08)
    points = sweep_prediction_slots(workload, (2, 8))
    assert [p.value for p in points] == [2, 8]
    for p in points:
        assert p.assisted.committed == p.base.committed


def test_sweep_results_cacheable(tmp_path):
    """A repeated sweep is served from the cache with identical points."""
    from repro.harness.cache import RunCache

    workload = registry.build("vpr", scale=0.05)
    cache = RunCache(tmp_path / "cache")
    first = sweep_memory_latency(workload, (50, 200), cache=cache)
    assert cache.hits == 0 and cache.misses == 4
    second = sweep_memory_latency(workload, (50, 200), cache=cache)
    assert cache.hits == 4
    for a, b in zip(first, second):
        assert (a.base.ipc, a.assisted.ipc) == (b.base.ipc, b.assisted.ipc)


def test_sweep_falls_back_for_unregistered_workload():
    """Workloads built outside the registry still sweep (sequentially)."""
    workload = registry.build("vpr", scale=0.05)
    workload.name = "hand-rolled"
    points = sweep_window_size(workload, (64,))
    assert points[0].base.committed > 0


def test_render_sweep_format():
    workload = registry.build("vpr", scale=0.05)
    points = sweep_window_size(workload, (64,))
    text = render_sweep("Sweep: window", "entries", points)
    assert "Sweep: window" in text
    assert "64" in text and "%" in text

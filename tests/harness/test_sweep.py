"""Tests for the sensitivity-sweep helpers."""

from repro.harness.sweep import (
    render_sweep,
    sweep_memory_latency,
    sweep_prediction_slots,
    sweep_window_size,
)
from repro.workloads import registry


def test_memory_latency_sweep_moves_base_ipc():
    workload = registry.build("mcf", scale=0.1)
    points = sweep_memory_latency(workload, (50, 200))
    assert points[0].base.ipc > points[1].base.ipc
    assert all(p.assisted.ipc >= p.base.ipc * 0.95 for p in points)


def test_window_sweep_monotone_baseline():
    workload = registry.build("vpr", scale=0.08)
    points = sweep_window_size(workload, (32, 256))
    assert points[1].base.ipc > points[0].base.ipc


def test_prediction_slot_sweep_runs():
    workload = registry.build("vpr", scale=0.08)
    points = sweep_prediction_slots(workload, (2, 8))
    assert [p.value for p in points] == [2, 8]
    for p in points:
        assert p.assisted.committed == p.base.committed


def test_render_sweep_format():
    workload = registry.build("vpr", scale=0.05)
    points = sweep_window_size(workload, (64,))
    text = render_sweep("Sweep: window", "entries", points)
    assert "Sweep: window" in text
    assert "64" in text and "%" in text

"""Tests for the command-line interface."""

import io
import os

import pytest

from repro.errors import DeadlockError
from repro.harness import cli
from repro.harness.cache import RunCache
from repro.harness.cli import EXPERIMENTS, build_parser, main, run_experiment
from repro.harness.faults import FaultKind, FaultPlan
from repro.harness.parallel import RunRequest, run_matrix


def test_parser_accepts_all_experiments():
    parser = build_parser()
    for name in EXPERIMENTS:
        args = parser.parse_args([name])
        assert args.experiment == name


def test_parser_rejects_unknown():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["table99"])


def test_run_table1_renders():
    text = run_experiment("table1", scale=None)
    assert "Table 1" in text and "YAGS" in text


def test_main_table3_prints_and_writes(tmp_path, capsys):
    out = tmp_path / "out.txt"
    code = main(["table3", "--scale", "0.05", "--out", str(out)])
    assert code == 0
    captured = capsys.readouterr()
    assert "Table 3" in captured.out
    assert "vpr" in out.read_text()


def test_parser_accepts_resilience_flags():
    args = build_parser().parse_args(
        ["table4", "--timeout", "12.5", "--retries", "3", "--on-error", "skip"]
    )
    assert args.timeout == 12.5
    assert args.retries == 3
    assert args.on_error == "skip"


def test_parser_accepts_sampled_flags():
    args = build_parser().parse_args(
        ["figure11", "--sampled", "--horizon", "500000"]
    )
    assert args.sampled is True
    assert args.horizon == 500_000


def test_sampled_flag_reaches_experiment(monkeypatch):
    """--sampled routes to the experiment's sampled= keyword."""
    seen = {}

    def fake_table4(scale=None, jobs=None, cache=None, sampled=False,
                    horizon=None):
        seen.update(sampled=sampled, horizon=horizon)
        return [], "Table 4 (stub)"

    monkeypatch.setitem(EXPERIMENTS, "table4", fake_table4)
    text = run_experiment(
        "table4", scale=None, sampled=True, horizon=250_000
    )
    assert "Table 4" in text
    assert seen == {"sampled": True, "horizon": 250_000}


def test_parser_rejects_unknown_on_error():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["table4", "--on-error", "explode"])


def test_resilience_flags_mirror_to_env(monkeypatch):
    """The flags travel to nested run_matrix calls via env mirrors."""
    for key in ("REPRO_TIMEOUT", "REPRO_RETRIES", "REPRO_ON_ERROR"):
        monkeypatch.setenv(key, "stale")  # registers teardown restore
        monkeypatch.delenv(key)
    code = main(
        ["table1", "--timeout", "7", "--retries", "2", "--on-error", "skip"]
    )
    assert code == 0
    assert os.environ["REPRO_TIMEOUT"] == "7.0"
    assert os.environ["REPRO_RETRIES"] == "2"
    assert os.environ["REPRO_ON_ERROR"] == "skip"


def test_deadlock_exits_2_without_traceback(monkeypatch, capsys):
    def deadlocking(scale=None):
        raise DeadlockError(
            "simulated machine deadlock at cycle 42 "
            "(next_event_cycle=none)",
            cycle=42,
        )

    monkeypatch.setitem(cli.EXPERIMENTS, "table3", deadlocking)
    code = main(["table3"])
    assert code == 2
    captured = capsys.readouterr()
    assert "deadlock" in captured.err
    assert "Traceback" not in captured.err


def test_skipped_requests_exit_3_and_list_holes(monkeypatch, capsys):
    """--on-error skip finishes the run but the CLI reports the holes
    and exits nonzero."""
    request = RunRequest(workload="gzip", scale=0.05, mode="base")
    plan = FaultPlan.targeting({(request, 0): FaultKind.FLAKY})

    def holey(scale=None):
        run_matrix(
            [request],
            jobs=1,
            cache=RunCache(enabled=False),
            retries=0,
            on_error="skip",
            fault_plan=plan,
        )
        return {}, "Table 3 (partial)"

    monkeypatch.setitem(cli.EXPERIMENTS, "table3", holey)
    code = main(["table3"])
    assert code == 3
    captured = capsys.readouterr()
    assert "Table 3 (partial)" in captured.out
    assert "skipped" in captured.err
    assert "gzip/base" in captured.err
    assert "injected transient failure" in captured.err

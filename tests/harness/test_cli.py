"""Tests for the command-line interface."""

import io

import pytest

from repro.harness.cli import EXPERIMENTS, build_parser, main, run_experiment


def test_parser_accepts_all_experiments():
    parser = build_parser()
    for name in EXPERIMENTS:
        args = parser.parse_args([name])
        assert args.experiment == name


def test_parser_rejects_unknown():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["table99"])


def test_run_table1_renders():
    text = run_experiment("table1", scale=None)
    assert "Table 1" in text and "YAGS" in text


def test_main_table3_prints_and_writes(tmp_path, capsys):
    out = tmp_path / "out.txt"
    code = main(["table3", "--scale", "0.05", "--out", str(out)])
    assert code == 0
    captured = capsys.readouterr()
    assert "Table 3" in captured.out
    assert "vpr" in out.read_text()

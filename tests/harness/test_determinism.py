"""Determinism regression tests.

The run cache and the process pool both rely on one invariant: a
simulation is a pure function of its request. Two fresh ``Core.run()``
invocations — and one executed in a ``multiprocessing`` child — must
produce field-for-field identical :class:`RunStats`.
"""

import dataclasses
import multiprocessing

import pytest

from repro.harness.parallel import RunRequest, execute_request
from repro.uarch.stats import SIMULATOR_META_FIELDS, RunStats
from repro.workloads import registry
from repro.workloads.registry import SLICE_BENCHMARKS

REQUEST = RunRequest(workload="vpr", scale=0.05, mode="slice")


def assert_stats_identical(
    a: RunStats, b: RunStats, ignore: frozenset = frozenset()
) -> None:
    """Field-by-field comparison with a readable failure message."""
    for field in dataclasses.fields(RunStats):
        if field.name in ignore:
            continue
        va, vb = getattr(a, field.name), getattr(b, field.name)
        assert va == vb, f"RunStats.{field.name} differs: {va!r} != {vb!r}"


def test_two_fresh_runs_identical():
    assert_stats_identical(execute_request(REQUEST), execute_request(REQUEST))


def test_run_in_subprocess_identical():
    here = execute_request(REQUEST)
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(1) as pool:
        there = pool.apply(execute_request, (REQUEST,))
    assert_stats_identical(here, there)


def test_base_mode_deterministic_too():
    request = RunRequest(workload="mcf", scale=0.05, mode="base")
    assert_stats_identical(execute_request(request), execute_request(request))


@pytest.mark.parametrize("workload", registry.all_names())
def test_event_driven_matches_stepping(workload):
    """The event-driven loop is an optimization, not a model change:
    on every registered workload it must produce the same RunStats as
    per-cycle stepping, bar the skip counters themselves."""
    mode = "slice" if workload in SLICE_BENCHMARKS else "base"
    skipped = execute_request(
        RunRequest(workload=workload, scale=0.05, mode=mode, event_driven=True)
    )
    stepped = execute_request(
        RunRequest(workload=workload, scale=0.05, mode=mode, event_driven=False)
    )
    assert_stats_identical(skipped, stepped, ignore=SIMULATOR_META_FIELDS)
    assert stepped.cycles_skipped == 0 and stepped.skip_events == 0

"""Determinism regression tests.

The run cache and the process pool both rely on one invariant: a
simulation is a pure function of its request. Two fresh ``Core.run()``
invocations — and one executed in a ``multiprocessing`` child — must
produce field-for-field identical :class:`RunStats`.
"""

import dataclasses
import multiprocessing

from repro.harness.parallel import RunRequest, execute_request
from repro.uarch.stats import RunStats

REQUEST = RunRequest(workload="vpr", scale=0.05, mode="slice")


def assert_stats_identical(a: RunStats, b: RunStats) -> None:
    """Field-by-field comparison with a readable failure message."""
    for field in dataclasses.fields(RunStats):
        va, vb = getattr(a, field.name), getattr(b, field.name)
        assert va == vb, f"RunStats.{field.name} differs: {va!r} != {vb!r}"


def test_two_fresh_runs_identical():
    assert_stats_identical(execute_request(REQUEST), execute_request(REQUEST))


def test_run_in_subprocess_identical():
    here = execute_request(REQUEST)
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(1) as pool:
        there = pool.apply(execute_request, (REQUEST,))
    assert_stats_identical(here, there)


def test_base_mode_deterministic_too():
    request = RunRequest(workload="mcf", scale=0.05, mode="base")
    assert_stats_identical(execute_request(request), execute_request(request))

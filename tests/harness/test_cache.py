"""Tests for the content-addressed run cache."""

import dataclasses
import pickle

import pytest

from repro.harness import cache as cache_mod
from repro.harness.cache import RunCache, fingerprint
from repro.harness.parallel import RunRequest, execute_request, run_matrix

REQUEST = RunRequest(workload="gzip", scale=0.05, mode="base")


@pytest.fixture
def cache(tmp_path):
    return RunCache(tmp_path / "cache")


def test_hit_returns_identical_stats(cache):
    """Cached stats equal fresh stats, field for field."""
    fresh = execute_request(REQUEST)
    cache.put(REQUEST, fresh)
    cached = cache.get(REQUEST)
    assert cached is not None
    assert dataclasses.asdict(cached) == dataclasses.asdict(fresh)
    assert cache.hits == 1 and cache.misses == 0


def test_miss_then_hit_counters(cache):
    assert cache.get(REQUEST) is None
    cache.put(REQUEST, execute_request(REQUEST))
    assert cache.get(REQUEST) is not None
    assert (cache.hits, cache.misses) == (1, 1)


def test_source_hash_change_invalidates(cache, monkeypatch):
    """Any simulator-source change must turn hits back into misses."""
    cache.put(REQUEST, execute_request(REQUEST))
    assert cache.get(REQUEST) is not None
    monkeypatch.setattr(cache_mod, "_source_hash_cache", "0" * 64)
    assert cache.get(REQUEST) is None


def test_different_requests_different_keys():
    slice_request = dataclasses.replace(REQUEST, mode="slice")
    assert fingerprint(REQUEST) != fingerprint(slice_request)
    scaled = dataclasses.replace(REQUEST, scale=0.06)
    assert fingerprint(REQUEST) != fingerprint(scaled)


def test_corrupted_entry_recovers_by_rerunning(cache):
    """A truncated/garbage entry is deleted and treated as a miss."""
    stats = execute_request(REQUEST)
    cache.put(REQUEST, stats)
    path = cache._path(fingerprint(REQUEST))
    path.write_bytes(b"not a pickle")
    assert cache.get(REQUEST) is None
    assert not path.exists()
    # The full matrix path falls back to re-running, not crashing.
    cache.put(REQUEST, stats)
    path.write_bytes(pickle.dumps({"schema": -1, "stats": object()}))
    (result,) = run_matrix([REQUEST], jobs=1, cache=cache)
    assert dataclasses.asdict(result) == dataclasses.asdict(stats)


def test_disabled_cache_never_reads_or_writes(tmp_path):
    cache = RunCache(tmp_path / "cache", enabled=False)
    cache.put(REQUEST, execute_request(REQUEST))
    assert not (tmp_path / "cache").exists()
    assert cache.get(REQUEST) is None


def test_clear_removes_entries(cache):
    cache.put(REQUEST, execute_request(REQUEST))
    assert cache.clear() == 1
    assert cache.get(REQUEST) is None


# ---------------------------------------------------------------------------
# Corruption taxonomy: every flavor of rot is quarantined (moved to
# corrupt/, counted, warned) and falls back to a fresh identical run.
# ---------------------------------------------------------------------------


def _corrupt_dir(cache):
    return cache.root / cache_mod.CORRUPT_SUBDIR


def _assert_quarantined_and_recovers(cache, path, expected):
    assert cache.get(REQUEST) is None  # corrupt -> miss
    assert cache.corruptions == 1
    assert not path.exists()
    assert (_corrupt_dir(cache) / path.name).exists()
    # The matrix path falls back to a fresh, bit-identical run and
    # repopulates the cache.
    (result,) = run_matrix([REQUEST], jobs=1, cache=cache)
    assert dataclasses.asdict(result) == dataclasses.asdict(expected)
    assert cache.get(REQUEST) is not None
    assert cache.corruptions == 1  # no new corruption


def test_truncated_entry_is_quarantined(cache, caplog):
    stats = execute_request(REQUEST)
    cache.put(REQUEST, stats)
    path = cache._path(fingerprint(REQUEST))
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    with caplog.at_level("WARNING", logger="repro.harness.cache"):
        _assert_quarantined_and_recovers(cache, path, stats)
    assert any("quarantined" in r.message for r in caplog.records)


def test_bit_flipped_entry_fails_checksum(cache):
    """A single flipped byte in the payload blob trips the checksum."""
    stats = execute_request(REQUEST)
    cache.put(REQUEST, stats)
    path = cache._path(fingerprint(REQUEST))
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    path.write_bytes(bytes(raw))
    _assert_quarantined_and_recovers(cache, path, stats)


def test_foreign_schema_entry_is_quarantined(cache):
    stats = execute_request(REQUEST)
    cache.put(REQUEST, stats)
    path = cache._path(fingerprint(REQUEST))
    path.write_bytes(
        pickle.dumps({"schema": 99, "sha256": "0" * 64, "blob": b"x"})
    )
    _assert_quarantined_and_recovers(cache, path, stats)


def test_non_runstats_payload_is_quarantined(cache):
    """A checksum-valid payload holding the wrong object type is still
    rejected: the checksum proves integrity, not provenance."""
    import hashlib

    cache.put(REQUEST, execute_request(REQUEST))
    path = cache._path(fingerprint(REQUEST))
    blob = pickle.dumps({"request": REQUEST, "stats": {"ipc": 2.0}})
    digest = hashlib.sha256(blob).hexdigest().encode()
    path.write_bytes(cache_mod._MAGIC + digest + b"\n" + blob)
    assert cache.get(REQUEST) is None
    assert cache.corruptions == 1


def test_clear_sweeps_quarantine_too(cache):
    cache.put(REQUEST, execute_request(REQUEST))
    path = cache._path(fingerprint(REQUEST))
    path.write_bytes(b"rot")
    assert cache.get(REQUEST) is None
    cache.put(REQUEST, execute_request(REQUEST))
    # One live entry + one quarantined entry.
    assert cache.clear() == 2

"""Differential tests for sampled simulation
(:mod:`repro.harness.fastforward`).

The sampling layer must be *safe by default* (fast-forward = 0 is
bit-identical to a full detailed run), *architecturally exact* (a
functional prefix reaches the same machine state a detailed prefix
does), and *accurate* (a warmed snapshot's measured region agrees with
full detail on IPC). Each property is checked differentially against
the unsampled simulator rather than against golden values.
"""

import dataclasses
import math
import os

import pytest

from repro.harness import cli
from repro.harness.cache import RunCache
from repro.harness.fastforward import (
    DETAIL_WARMUP_CAP,
    Snapshot,
    SnapshotStore,
    build_sample_plan,
    chain_digest,
    ensure_chain,
    ensure_snapshot,
    fast_forward,
    sample_plan,
    snapshot_digest,
    snapshot_fingerprint,
)
from repro.harness.parallel import RunRequest, execute_request, run_matrix
from repro.harness.runner import run_baseline, run_with_slices
from repro.harness.sweep import sweep_memory_latency
from repro.uarch.config import FOUR_WIDE
from repro.uarch.core import Core
from repro.uarch.stats import RunStats, aggregate_stats, mean_ci95, t95
from repro.workloads import registry


@pytest.fixture
def cache_env(tmp_path, monkeypatch):
    """Point every store (run cache + snapshots) at a temp root."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path / "cache"


# ----------------------------------------------------------------------
# Safety: fast_forward=0 / sample=0 changes nothing
# ----------------------------------------------------------------------


@pytest.mark.parametrize("workload_name", sorted(registry.WORKLOAD_BUILDERS))
def test_ff_zero_bit_identical(workload_name):
    """An unsampled RunRequest reproduces the direct runner exactly —
    every stat, both modes, every workload."""
    for mode, runner in (("base", run_baseline), ("slice", run_with_slices)):
        # Fresh workload per mode: fused segments cache per-Program, so
        # sharing one across runs would skew the compile counters.
        workload = registry.build(workload_name, scale=0.05)
        request = RunRequest(
            workload=workload_name, scale=0.05, mode=mode,
            fast_forward=0, sample=0,
        )
        assert execute_request(request) == runner(workload, FOUR_WIDE)


def test_request_rejects_negative_sampling():
    with pytest.raises(ValueError):
        RunRequest(workload="vpr", scale=0.05, fast_forward=-1)
    with pytest.raises(ValueError):
        RunRequest(workload="vpr", scale=0.05, sample=-5)


def test_sampling_fields_join_the_cache_fingerprint():
    from repro.harness.cache import fingerprint

    plain = RunRequest(workload="vpr", scale=0.05)
    sampled = RunRequest(workload="vpr", scale=0.05, fast_forward=1000)
    regioned = RunRequest(workload="vpr", scale=0.05, sample=500)
    keys = {fingerprint(r) for r in (plain, sampled, regioned)}
    assert len(keys) == 3


def test_sample_plan_math():
    assert sample_plan(0) == (None, 0)
    assert sample_plan(-3) == (None, 0)
    assert sample_plan(4_000) == (4_000, 400)
    # The discard window caps: a huge region does not warm forever.
    assert sample_plan(1_000_000) == (1_000_000, DETAIL_WARMUP_CAP)


# ----------------------------------------------------------------------
# Architectural exactness of the functional tier
# ----------------------------------------------------------------------


def test_fast_forward_matches_interpreter():
    """Unwarmed fast-forward is exactly the raw interpreter: same PC,
    registers, and memory after N instructions."""
    from repro.arch.interpreter import execute
    from repro.arch.memory import Memory
    from repro.arch.state import ThreadState

    workload = registry.build("gzip", scale=0.05)
    n = 2_000
    snap = fast_forward(workload, FOUR_WIDE, n, warming=False)

    memory = Memory(workload.memory_image, journaling=False)
    state = ThreadState(memory, entry_pc=workload.program.entry_pc)
    for _ in range(n):
        inst = workload.program.at(state.pc)
        if inst is None or state.halted:
            break
        execute(inst, state)

    assert snap.executed == n
    assert snap.pc == state.pc
    assert snap.regs == state.regs.values()
    assert snap.memory_words == memory.snapshot()
    assert snap.hierarchy_image is None and snap.predictor_image is None


def test_warming_does_not_perturb_architecture():
    """Microarchitectural warming is observation-only: the
    architectural state it snapshots is identical to unwarmed."""
    workload = registry.build("mcf", scale=0.2)
    cold = fast_forward(workload, FOUR_WIDE, 3_000, warming=False)
    warm = fast_forward(workload, FOUR_WIDE, 3_000, warming=True)
    assert (cold.pc, cold.regs, cold.memory_words) == (
        warm.pc, warm.regs, warm.memory_words
    )
    assert warm.hierarchy_image is not None
    assert warm.predictor_image is not None


def test_restore_then_run_matches_straight_through():
    """Functional prefix + detailed suffix lands on the same final
    architectural state (and total work) as detailed start-to-HALT."""
    workload = registry.build("mcf", scale=0.2)
    straight = Core(
        workload.program, FOUR_WIDE, memory_image=workload.memory_image
    )
    straight_stats = straight.run()

    snap = fast_forward(workload, FOUR_WIDE, 3_000)
    resumed = Core(workload.program, FOUR_WIDE, snapshot=snap)
    resumed_stats = resumed.run()

    assert snap.executed + resumed_stats.committed == straight_stats.committed
    assert resumed._main.state.pc == straight._main.state.pc
    assert resumed._main.state.regs.values() == straight._main.state.regs.values()
    assert resumed.memory.snapshot() == straight.memory.snapshot()


def test_core_restore_drops_fused_segments():
    """Restoring into a Program invalidates its fused-segment caches —
    segments compiled against the cold image must not survive."""
    workload = registry.build("gzip", scale=0.05)
    before = workload.program.block_version
    snap = fast_forward(workload, FOUR_WIDE, 500)
    Core(workload.program, FOUR_WIDE, snapshot=snap)
    assert workload.program.block_version > before


def test_region_smaller_than_warmup_still_warms():
    """Regression: ``region`` counts post-warmup commits, so a region
    smaller than the warmup must not truncate the warmup (the detailed
    core used to stop at ``region`` *total* commits)."""
    workload = registry.build("gzip", scale=0.05)
    warmup, region = 2_000, 300
    sampled = Core(
        workload.program, FOUR_WIDE,
        memory_image=workload.memory_image,
        warmup=warmup, region=region,
    )
    stats = sampled.run()
    reference = Core(
        workload.program, FOUR_WIDE,
        memory_image=workload.memory_image,
        region=warmup + region,
    )
    reference.run()
    assert stats.committed == region
    # Both stopped after warmup+region total commits -> same point.
    assert sampled._main.state.pc == reference._main.state.pc


# ----------------------------------------------------------------------
# Snapshot content-addressing, determinism, and integrity
# ----------------------------------------------------------------------


def test_snapshot_build_is_deterministic():
    workload = registry.build("gzip", scale=0.05)
    a = fast_forward(workload, FOUR_WIDE, 1_000)
    b = fast_forward(registry.build("gzip", scale=0.05), FOUR_WIDE, 1_000)
    assert snapshot_digest(a) == snapshot_digest(b)


def test_fingerprint_keys_on_warming_inputs_only():
    base = snapshot_fingerprint("mcf", 0.5, 1_000, FOUR_WIDE)
    assert snapshot_fingerprint("mcf", 0.5, 2_000, FOUR_WIDE) != base
    assert snapshot_fingerprint("mcf", 0.2, 1_000, FOUR_WIDE) != base
    assert snapshot_fingerprint("mcf", 0.5, 1_000, FOUR_WIDE, warming=False) != base
    # Source-tree changes invalidate (content-addressing).
    assert snapshot_fingerprint("mcf", 0.5, 1_000, FOUR_WIDE, source_hash="x") != base
    # Timing-only parameters share the snapshot...
    timing = dataclasses.replace(
        FOUR_WIDE, memory_latency=999, window_entries=16
    )
    assert snapshot_fingerprint("mcf", 0.5, 1_000, timing) == base
    # ...but warmed-structure geometry does not.
    geometry = dataclasses.replace(
        FOUR_WIDE, l1d=dataclasses.replace(FOUR_WIDE.l1d, associativity=4)
    )
    assert snapshot_fingerprint("mcf", 0.5, 1_000, geometry) != base


def test_store_roundtrip_hit_and_quarantine(cache_env):
    workload = registry.build("gzip", scale=0.05)
    store = SnapshotStore(cache_env)
    snap, hit = ensure_snapshot(workload, FOUR_WIDE, 500, store=store)
    assert not hit
    again, hit = ensure_snapshot(workload, FOUR_WIDE, 500, store=store)
    assert hit
    assert snapshot_digest(again) == snapshot_digest(snap)
    assert isinstance(again, Snapshot)

    # Flip payload bytes: the checksum catches it BEFORE unpickling,
    # the entry is quarantined, and the build recovers.
    [path] = store.entry_paths()
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF
    path.write_bytes(bytes(blob))
    rebuilt, hit = ensure_snapshot(workload, FOUR_WIDE, 500, store=store)
    assert not hit  # corrupt -> miss -> rebuilt
    assert store.corruptions == 1
    assert (cache_env / "corrupt" / path.name).exists()
    assert snapshot_digest(rebuilt) == snapshot_digest(snap)


def test_snapshot_suffixes_keep_stores_disjoint(cache_env):
    """Run cache and snapshot store share the root + quarantine but
    never clear each other's entries."""
    workload = registry.build("gzip", scale=0.05)
    cache = RunCache(cache_env)
    run_matrix(
        [RunRequest(workload="gzip", scale=0.05, mode="base")],
        jobs=1, cache=cache,
    )
    store = SnapshotStore(cache_env)
    ensure_snapshot(workload, FOUR_WIDE, 500, store=store)
    assert store.clear() == 1
    assert len(list(cache.entry_paths())) == 1  # run survived
    ensure_snapshot(workload, FOUR_WIDE, 500, store=store)
    assert cache.clear() == 1
    assert len(store.ls()) == 1  # snapshot survived


# ----------------------------------------------------------------------
# Harness integration: requests, sweeps, accuracy
# ----------------------------------------------------------------------


def test_sampled_request_sets_meta_and_hits_store(cache_env):
    request = RunRequest(
        workload="gzip", scale=0.05, mode="base",
        fast_forward=1_000, sample=500,
    )
    cold = execute_request(request)
    warm = execute_request(request)
    assert cold.ff_insts == warm.ff_insts == 1_000
    assert not cold.snapshot_hit and warm.snapshot_hit
    assert cold.committed == warm.committed == 500
    # Meta aside, the sampled runs are identical.
    cold.snapshot_hit = warm.snapshot_hit
    assert cold == warm


def test_sweep_shares_one_snapshot(cache_env):
    """A memory-latency sweep pays the architectural prefix once: the
    warm-config key dedups every point onto a single .snap file."""
    workload = registry.build("mcf", scale=0.2)
    points = sweep_memory_latency(
        workload, latencies=(100, 400), jobs=1,
        cache=RunCache(enabled=False),
        fast_forward=2_000, sample=500,
    )
    store = SnapshotStore(cache_env)
    assert len(store.ls()) == 1
    for point in points:
        assert point.base.ff_insts == 2_000
        assert point.base.snapshot_hit  # prebuilt before the matrix
        assert point.base.committed == 500
    # The sweep still sees timing: far memory must not be free.
    assert points[1].base.cycles > points[0].base.cycles


def test_sampled_ipc_tracks_full_detail(cache_env):
    """The acceptance bound, non-timing flavor: a warmed sampled run's
    region IPC stays within 2% of full detail over the same region."""
    workload = registry.build("mcf", scale=0.2)
    ff, sample = 5_000, 1_000
    region, warmup = sample_plan(sample)
    snap, _ = ensure_snapshot(workload, FOUR_WIDE, ff)
    sampled = run_baseline(
        workload, FOUR_WIDE, snapshot=snap, warmup=warmup, region=region
    )
    full = run_baseline(
        workload, FOUR_WIDE, warmup=ff + warmup, region=sample
    )
    assert sampled.committed == full.committed == sample
    assert abs(sampled.ipc - full.ipc) / full.ipc < 0.02


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


def test_parser_accepts_sampling_flags():
    args = cli.build_parser().parse_args(
        ["table3", "--fast-forward", "5000", "--sample", "1000"]
    )
    assert args.fast_forward == 5000
    assert args.sample == 1000


def test_sampling_flags_mirror_to_env(monkeypatch, capsys, tmp_path):
    for key in ("REPRO_FAST_FORWARD", "REPRO_SAMPLE"):
        monkeypatch.setenv(key, "stale")  # registers teardown restore
        monkeypatch.delenv(key)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    code = cli.main(["snapshot", "ls", "--fast-forward", "9", "--sample", "4"])
    assert code == 0
    assert os.environ["REPRO_FAST_FORWARD"] == "9"
    assert os.environ["REPRO_SAMPLE"] == "4"


def test_cli_snapshot_ls_and_clear(cache_env, capsys):
    workload = registry.build("gzip", scale=0.05)
    ensure_snapshot(workload, FOUR_WIDE, 500)
    assert cli.main(["snapshot", "ls"]) == 0
    out = capsys.readouterr().out
    assert "gzip" in out and "1 snapshot(s)" in out
    assert cli.main(["snapshot", "clear"]) == 0
    assert "removed 1 snapshot(s)" in capsys.readouterr().out
    assert cli.main(["snapshot", "ls"]) == 0
    assert "no snapshots" in capsys.readouterr().out


def test_cli_cache_clear_covers_snapshots(cache_env, capsys):
    workload = registry.build("gzip", scale=0.05)
    cache = RunCache(cache_env)
    run_matrix(
        [RunRequest(workload="gzip", scale=0.05, mode="base")],
        jobs=1, cache=cache,
    )
    ensure_snapshot(workload, FOUR_WIDE, 500)
    assert cli.main(["cache", "clear"]) == 0
    out = capsys.readouterr().out
    assert "1 cached run(s)" in out and "1 snapshot(s)" in out
    assert len(list(RunCache(cache_env).entry_paths())) == 0
    assert len(SnapshotStore(cache_env).ls()) == 0


def test_cli_cache_clear_snapshots_only(cache_env, capsys):
    workload = registry.build("gzip", scale=0.05)
    cache = RunCache(cache_env)
    run_matrix(
        [RunRequest(workload="gzip", scale=0.05, mode="base")],
        jobs=1, cache=cache,
    )
    ensure_snapshot(workload, FOUR_WIDE, 500)
    assert cli.main(["cache", "clear", "--snapshots-only"]) == 0
    assert "removed 1 snapshot(s)" in capsys.readouterr().out
    assert len(list(RunCache(cache_env).entry_paths())) == 1  # runs kept


# ----------------------------------------------------------------------
# Confidence-interval math (multi-region sampling)
# ----------------------------------------------------------------------


def test_t95_table():
    assert t95(1) == pytest.approx(12.706)
    assert t95(4) == pytest.approx(2.776)
    assert t95(30) == pytest.approx(2.042)
    assert t95(200) == pytest.approx(1.960)  # beyond the table: normal
    with pytest.raises(ValueError):
        t95(0)


def test_mean_ci95_known_variance():
    # mean 3, sample variance 2.5, df 4 -> half-width t.sqrt(var/n)
    mean, half = mean_ci95([1.0, 2.0, 3.0, 4.0, 5.0])
    assert mean == pytest.approx(3.0)
    assert half == pytest.approx(2.776 * math.sqrt(2.5 / 5))


def test_ci_narrows_with_more_regions():
    """Same per-sample scatter, more samples: the interval tightens."""

    def half(n):
        return mean_ci95([1.0, 2.0] * (n // 2))[1]

    assert half(4) > half(8) > half(16) > 0.0


def test_single_sample_is_point_estimate():
    assert mean_ci95([1.7]) == (1.7, 0.0)
    assert mean_ci95([]) == (0.0, 0.0)
    stats = RunStats(committed=10, cycles=20, region_ipcs=(0.5,))
    assert stats.ipc_mean == 0.5
    assert stats.ipc_ci95 == 0.0


def test_ipc_mean_falls_back_to_pooled_ipc():
    stats = RunStats(committed=10, cycles=20)
    assert stats.ipc_mean == stats.ipc == 0.5
    assert stats.ipc_ci95 == 0.0


def test_aggregate_stats_merges_everything():
    a = RunStats(
        config_name="4-wide", workload_name="x", committed=100, cycles=200,
        load_misses=3, hierarchy={"l1_hits": 1}, cycle_breakdown={"busy": 5},
    )
    a.count_branch(0x40, True)
    a.count_mem(0x44, False)
    a.correlator.predictions_generated = 2
    b = RunStats(
        config_name="4-wide", workload_name="x", committed=300, cycles=300,
        load_misses=4, hierarchy={"l1_hits": 2, "l2_hits": 7},
        cycle_breakdown={"busy": 1}, hit_cycle_limit=True,
    )
    b.count_branch(0x40, False)
    b.count_branch(0x48, True)
    b.correlator.predictions_generated = 5

    total = aggregate_stats([a, b])
    assert (total.committed, total.cycles, total.load_misses) == (400, 500, 7)
    assert total.hierarchy == {"l1_hits": 3, "l2_hits": 7}
    assert total.cycle_breakdown == {"busy": 6}
    assert total.hit_cycle_limit  # one truncated window taints the run
    assert total.branch_pcs[0x40].executions == 2
    assert total.branch_pcs[0x40].events == 1
    assert total.branch_pcs[0x48].events == 1
    assert total.mem_pcs[0x44].executions == 1
    assert total.correlator.predictions_generated == 7
    assert total.region_ipcs == (0.5, 1.0)
    assert total.sample_regions == 2
    assert total.ipc == pytest.approx(0.8)       # pooled
    assert total.ipc_mean == pytest.approx(0.75)  # region mean
    with pytest.raises(ValueError):
        aggregate_stats([])


def test_build_sample_plan_math():
    plan = build_sample_plan(100_000, 0, 1_000, 4)
    assert plan.depths == (0, 25_000, 50_000, 75_000)
    assert plan.warmup == 100
    assert plan.window == 1_100
    plan = build_sample_plan(100_000, 10_000, 1_000, 3, period=20_000)
    assert plan.depths == (10_000, 30_000, 50_000)
    # The period clamps to the window so regions never overlap.
    plan = build_sample_plan(10_000, 0, 5_000, 2, period=1)
    assert plan.period == plan.window
    with pytest.raises(ValueError):
        build_sample_plan(100_000, 0, 1_000, 1)
    with pytest.raises(ValueError):
        build_sample_plan(100_000, 0, 0, 4)


# ----------------------------------------------------------------------
# Snapshot chains: incremental == straight-through
# ----------------------------------------------------------------------


def test_resume_split_equals_straight_warmup():
    """Satellite fix: warming trained through a snapshot resume is
    byte-identical to one uninterrupted pass — prefetcher and branch
    predictor included (the digest covers every warm image)."""
    workload = registry.build("vpr", scale=0.1)
    straight = fast_forward(workload, FOUR_WIDE, 30_000)
    first = fast_forward(workload, FOUR_WIDE, 13_337)  # mid-run split
    split = fast_forward(workload, FOUR_WIDE, 30_000, resume_from=first)
    assert snapshot_digest(split) == snapshot_digest(straight)


def test_warm_tiers_state_identical(monkeypatch):
    """The fused (codegen) warming tier and the per-instruction tier
    leave identical state: same digest over architectural state and
    all warm images."""
    from repro.harness import fastforward as ff

    workload = registry.build("mcf", scale=0.2)
    fused = fast_forward(workload, FOUR_WIDE, 8_000)
    monkeypatch.setattr(ff, "_warm_loop", ff._warm_steps)
    stepped = fast_forward(workload, FOUR_WIDE, 8_000)
    assert snapshot_digest(stepped) == snapshot_digest(fused)


def test_chain_members_match_straight_builds(cache_env):
    """Each chain member (built by resuming from its predecessor) is
    digest-identical to a from-scratch build of the same depth, so
    chained and unchained sweeps share store keys AND content."""
    workload = registry.build("mcf", scale=0.1)
    depths = [1_000, 2_500, 4_999]  # awkward splits vs block boundaries
    members, hits = ensure_chain(workload, FOUR_WIDE, depths)
    assert hits == 0
    assert [m.parent for m in members][1:] != [None, None]  # provenance kept
    for depth, member in zip(depths, members):
        straight = fast_forward(workload, FOUR_WIDE, depth)
        assert snapshot_digest(member) == snapshot_digest(straight)
    # Second walk: every member restored from the store.
    _members, hits = ensure_chain(workload, FOUR_WIDE, depths)
    assert hits == len(depths)


def test_chain_digest_deterministic_across_stores(tmp_path, monkeypatch):
    """CI's chained-determinism property: two independent builds in
    fresh stores produce the same chain digest."""
    digests = []
    for sub in ("a", "b"):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / sub))
        workload = registry.build("gzip", scale=0.05)
        members, _hits = ensure_chain(workload, FOUR_WIDE, [500, 1_000])
        digests.append(chain_digest([snapshot_digest(m) for m in members]))
    assert digests[0] == digests[1]


# ----------------------------------------------------------------------
# Multi-region requests
# ----------------------------------------------------------------------


def test_multi_region_request_validation():
    with pytest.raises(ValueError):
        RunRequest(workload="vpr", scale=0.05, sample_regions=2)  # no sample
    with pytest.raises(ValueError):
        RunRequest(workload="vpr", scale=0.05, sample=100, sample_regions=-1)
    with pytest.raises(ValueError):
        RunRequest(workload="vpr", scale=0.05, sample=100, sample_period=-1)


def test_multi_region_joins_fingerprint():
    from repro.harness.cache import fingerprint

    a = RunRequest(workload="vpr", scale=0.05, sample=500)
    b = RunRequest(workload="vpr", scale=0.05, sample=500, sample_regions=4)
    c = RunRequest(
        workload="vpr", scale=0.05, sample=500,
        sample_regions=4, sample_period=10_000,
    )
    assert len({fingerprint(r) for r in (a, b, c)}) == 3


def test_request_env_defaults_multi(monkeypatch):
    monkeypatch.setenv("REPRO_SAMPLE", "400")
    monkeypatch.setenv("REPRO_SAMPLE_REGIONS", "5")
    monkeypatch.setenv("REPRO_SAMPLE_PERIOD", "9000")
    request = RunRequest(workload="vpr", scale=0.05)
    assert request.sample == 400
    assert request.sample_regions == 5
    assert request.sample_period == 9_000


def test_multi_region_request_aggregates(cache_env):
    # Explicit period: gzip halts well before its ``region`` ceiling,
    # so evenly spaced windows over the ceiling would overshoot.
    request = RunRequest(
        workload="gzip", scale=0.1, mode="base",
        sample=500, sample_regions=3, sample_period=5_000,
    )
    stats = execute_request(request)
    assert stats.sample_regions == 3
    assert len(stats.region_ipcs) == 3
    assert stats.committed == 3 * 500
    assert stats.ipc_ci95 > 0.0
    again = execute_request(request)
    assert again.region_ipcs == stats.region_ipcs  # deterministic
    assert again.snapshot_hits == 2  # the depth-0 window needs no snapshot
    assert again.snapshot_hit  # every window that needed one, hit


def test_multi_region_drops_windows_past_halt(cache_env):
    """``workload.region`` is a ceiling, not a promise: windows planned
    past the actual halt are dropped instead of measured as empty."""
    workload = registry.build("mcf", scale=0.2)
    request = RunRequest(
        workload="mcf", scale=0.2, mode="base", sample=500,
        sample_regions=4, sample_period=workload.region,
    )
    stats = execute_request(request)
    assert 1 <= stats.sample_regions < 4
    assert len(stats.region_ipcs) == stats.sample_regions


def test_multi_region_ipc_tracks_full_detail(cache_env):
    """Small-scale version of the acceptance differential: the sampled
    estimator agrees with full detail within its own 95% interval (or
    a 15% guard band when the interval happens to be very tight)."""
    sampled = execute_request(RunRequest(
        workload="mcf", scale=0.5, mode="base", sample=1_000,
        sample_regions=5, sample_period=5_000,
    ))
    full = execute_request(RunRequest(workload="mcf", scale=0.5, mode="base"))
    assert sampled.sample_regions >= 2
    tolerance = max(sampled.ipc_ci95, 0.15 * full.ipc)
    assert abs(sampled.ipc_mean - full.ipc) <= tolerance


def test_sweep_shares_one_chain(cache_env):
    """The tentpole reuse property: a memory-latency sweep builds the
    snapshot chain once (prebuilt in the parent) and every point of
    both arms restores from it."""
    workload = registry.build("mcf", scale=0.2)
    points = sweep_memory_latency(
        workload, latencies=(100, 400), jobs=1,
        cache=RunCache(enabled=False),
        sample=500, sample_regions=3, sample_period=4_000,
    )
    entries = SnapshotStore(cache_env).ls()
    # One chain: regions-1 members with depth > 0 (window 0 is cold),
    # shared by all four runs (2 latencies x base/slice).
    assert len(entries) == 2
    assert sum(1 for e in entries if e["parent"]) == 1
    for point in points:
        for stats in (point.base, point.assisted):
            assert stats.sample_regions == 3
            assert stats.snapshot_hits == 2  # prebuilt before the matrix
        assert point.speedup_ci95 >= 0.0


def test_matrix_report_sampling_counters(cache_env):
    request = RunRequest(
        workload="gzip", scale=0.1, mode="base",
        sample=500, sample_regions=3, sample_period=5_000,
    )
    report = run_matrix(
        [request], jobs=1, cache=RunCache(enabled=False), return_report=True
    )
    stats = report.stats_list()[0]
    assert report.sampled_regions == stats.sample_regions == 3
    assert report.ff_insts == stats.ff_insts > 0
    assert report.snapshot_hits == 2  # chain prebuilt in the parent


def test_bench_sampled_multi_regime(cache_env):
    from repro.harness.bench import REGIMES, run_regime

    regime = dataclasses.replace(
        REGIMES["sampled_multi"],
        scale=0.5, sample=300, sample_regions=3, sample_period=2_000,
    )
    stats, elapsed = run_regime(regime)
    assert stats.sample_regions == 3
    assert elapsed > 0.0
    # Covered span: chain depth + warm windows + measured regions.
    assert regime.covered_insts(stats) > stats.committed


# ----------------------------------------------------------------------
# Multi-region CLI surface
# ----------------------------------------------------------------------


def test_parser_accepts_multi_region_flags():
    args = cli.build_parser().parse_args(
        ["table4", "--sample", "1000",
         "--sample-regions", "10", "--sample-period", "50000"]
    )
    assert args.sample_regions == 10
    assert args.sample_period == 50_000


def test_multi_region_flags_mirror_to_env(monkeypatch, tmp_path):
    for key in ("REPRO_SAMPLE_REGIONS", "REPRO_SAMPLE_PERIOD"):
        monkeypatch.setenv(key, "stale")  # registers teardown restore
        monkeypatch.delenv(key)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    code = cli.main(
        ["snapshot", "ls", "--sample-regions", "6", "--sample-period", "123"]
    )
    assert code == 0
    assert os.environ["REPRO_SAMPLE_REGIONS"] == "6"
    assert os.environ["REPRO_SAMPLE_PERIOD"] == "123"


def test_cli_snapshot_ls_shows_chain(cache_env, capsys):
    workload = registry.build("gzip", scale=0.05)
    ensure_chain(workload, FOUR_WIDE, [500, 1_000])
    assert cli.main(["snapshot", "ls"]) == 0
    out = capsys.readouterr().out
    assert "chain" in out
    assert "<-" in out  # the deeper member names its parent
    assert "2 snapshot(s) (1 chained" in out
    assert "bytes total" in out
    assert "serial" in out  # build provenance column


def test_cli_bench_warming_regime(monkeypatch, capsys):
    """`repro bench warming` wires through measure_warming_rate (the
    measurement itself runs at full scale only in CI's floors step)."""
    from repro.harness import bench

    monkeypatch.setattr(
        bench, "measure_warming_rate",
        lambda rounds=3: (1_234_567.0, bench.WARMING_INSTS),
    )
    assert cli.main(["bench", "warming"]) == 0
    out = capsys.readouterr().out
    assert "1,234,567 warmed instructions/second" in out


# ----------------------------------------------------------------------
# Flat-array warm hierarchy vs. legacy reference model
# ----------------------------------------------------------------------


class _LegacyWarmModel:
    """Compact reference model of the functional-warming state machine
    in the *legacy* representation the packed flat arrays replaced:
    cache sets as lists of ``(line, dirty)`` tuples (MRU last), the
    prefetch/victim buffer as an insertion-ordered dict, and a
    linearly-scanned stream table with first-match-in-table-order
    tie-break and FIFO eviction.

    Transcribed from the documented warm semantics — demand access,
    stream training, and untimed prefetch fill (an L2 prefetch hit does
    *not* touch LRU) — independently of the packed containers, so any
    transition the flat arrays or the fused closure get wrong shows up
    as an image mismatch here.
    """

    def __init__(self, config):
        l1, l2, pf = config.l1d, config.l2, config.prefetch
        self._l1_shift = l1.line_bytes.bit_length() - 1
        self._l1_mask = l1.num_sets - 1
        self._l1_assoc = l1.associativity
        self._l1 = [[] for _ in range(l1.num_sets)]
        self._l2_delta = (l2.line_bytes.bit_length() - 1) - self._l1_shift
        self._l2_mask = l2.num_sets - 1
        self._l2_assoc = l2.associativity
        self._l2 = [[] for _ in range(l2.num_sets)]
        self._buffer = {}  # line -> from_prefetch, insertion ordered
        self._buf_entries = pf.buffer_entries
        self._streams = []  # [last_line, stride, confirmed] rows
        self._table_entries = pf.stream_table_entries
        self._depth = pf.stream_depth
        self._sequential = pf.sequential_next_line

    def warm_access(self, addr, is_store):
        line = addr >> self._l1_shift
        bucket = self._l1[line & self._l1_mask]
        for i, (resident, dirty) in enumerate(bucket):
            if resident == line:
                del bucket[i]
                bucket.append((line, dirty or bool(is_store)))
                return
        if self._buffer.pop(line, None) is not None:
            # Buffer hit: promote into the L1, then train the streams.
            self._fill_l1(bucket, line, is_store)
            self._train(line)
            return
        # Full miss: train first (launches touch the same L2 sets),
        # then the L2 lookup/fill and the L1 demand fill.
        self._train(line)
        l2_line = line >> self._l2_delta
        l2b = self._l2[l2_line & self._l2_mask]
        for i, entry in enumerate(l2b):
            if entry[0] == l2_line:
                if i + 1 != len(l2b):
                    del l2b[i]
                    l2b.append(entry)
                break
        else:
            if len(l2b) >= self._l2_assoc:
                del l2b[0]
            l2b.append((l2_line, False))
        self._fill_l1(bucket, line, is_store)

    def _fill_l1(self, bucket, line, is_store):
        if len(bucket) >= self._l1_assoc:
            victim, _dirty = bucket.pop(0)
            buffer = self._buffer
            if victim in buffer:
                del buffer[victim]
            elif len(buffer) >= self._buf_entries:
                del buffer[next(iter(buffer))]
            buffer[victim] = False  # refreshed provenance and-s to False
        bucket.append((line, bool(is_store)))

    def _train(self, line):
        for stream in self._streams:
            last, stride, confirmed = stream
            if confirmed:
                matched = line == last + stride
            else:
                matched = line == last + 1 or line == last - 1
            if matched:
                if not confirmed:
                    stream[1] = line - last
                    stream[2] = True
                stream[0] = line
                self._launch(line, stream[1], self._depth)
                return
        if len(self._streams) >= self._table_entries:
            self._streams.pop(0)
        self._streams.append([line, 0, False])
        if self._sequential:
            self._launch(line, 1, 1)

    def _launch(self, line, stride, depth):
        for step in range(1, depth + 1):
            target = line + stride * step
            if target < 0:
                break
            if target in self._buffer:
                continue
            if any(
                resident == target
                for resident, _dirty in self._l1[target & self._l1_mask]
            ):
                continue
            l2_line = target >> self._l2_delta
            l2b = self._l2[l2_line & self._l2_mask]
            if all(entry[0] != l2_line for entry in l2b):
                if len(l2b) >= self._l2_assoc:
                    del l2b[0]
                l2b.append((l2_line, False))
            if len(self._buffer) >= self._buf_entries:
                del self._buffer[next(iter(self._buffer))]
            self._buffer[target] = True

    def warm_image(self):
        return {
            "l1": [list(bucket) for bucket in self._l1],
            "l2": [list(bucket) for bucket in self._l2],
            "buffer": dict(self._buffer),
        }

    def stream_image(self):
        return [(last, stride, confirmed)
                for last, stride, confirmed in self._streams]


def _demand_trace(workload, depth):
    """The (addr, is_store) demand stream of the first *depth* warmed
    instructions, captured by running the per-instruction warming tier
    against a record-only hierarchy stub (demand addresses depend only
    on architectural execution, never on cache state)."""
    from repro.harness import fastforward as ff

    run = ff._LiveRun(workload, FOUR_WIDE, warming=True)
    trace = []

    class _Recorder:
        @staticmethod
        def warm_access(addr, is_store):
            trace.append((addr, bool(is_store)))

    ff._warm_steps(run.program, run.state, depth, _Recorder, run.predictor)
    return trace


@pytest.mark.parametrize("workload_name", sorted(registry.WORKLOAD_BUILDERS))
def test_flat_warm_state_matches_legacy_reference(workload_name):
    """Tentpole differential: on every workload's own demand stream,
    the production warm path (packed flat arrays + fused closure +
    trace-compiled bodies, via fast_forward) leaves exactly the state
    the legacy tuple-and-scan model defines — identical warm_image()
    payloads, and an identical snapshot digest once the reference
    images are substituted into the snapshot."""
    depth = 2_500
    workload = registry.build(workload_name, scale=0.1)
    snapshot = fast_forward(workload, FOUR_WIDE, depth)
    trace = _demand_trace(workload, depth)

    legacy = _LegacyWarmModel(FOUR_WIDE)
    for addr, is_store in trace:
        legacy.warm_access(addr, is_store)

    assert legacy.warm_image() == snapshot.hierarchy_image
    assert legacy.stream_image() == snapshot.prefetcher_image
    twin = dataclasses.replace(
        snapshot,
        hierarchy_image=legacy.warm_image(),
        prefetcher_image=legacy.stream_image(),
    )
    assert snapshot_digest(twin) == snapshot_digest(snapshot)


# ----------------------------------------------------------------------
# Parallel chain prebuild
# ----------------------------------------------------------------------


def test_parallel_prebuild_matches_serial_digests(tmp_path):
    """Prebuilding chains with a worker pool lands byte-identical
    snapshots — same store keys, same digests — as the serial walk;
    only the digest-masked built_by provenance stamp differs."""
    from repro.harness.fastforward import prebuild_snapshots

    requests = [
        RunRequest(workload="mcf", scale=0.1, fast_forward=1_000,
                   sample=300, sample_regions=2, sample_period=2_500),
        RunRequest(workload="gzip", scale=0.05, fast_forward=1_000,
                   sample=300, sample_regions=2, sample_period=2_500),
    ]

    def build(jobs, root):
        store = SnapshotStore(root)
        built = prebuild_snapshots(requests, store=store, jobs=jobs)
        entries = {}
        for entry in store.ls():
            snap = store.get(entry["key"])
            entries[entry["key"]] = (snapshot_digest(snap), snap.built_by)
        return built, entries

    serial_built, serial = build(1, tmp_path / "serial")
    parallel_built, parallel = build(2, tmp_path / "parallel")
    assert serial_built == parallel_built > 0
    assert set(serial) == set(parallel)
    for key, (digest, _by) in serial.items():
        assert parallel[key][0] == digest
    assert {by for _digest, by in serial.values()} == {"serial"}
    assert {by for _digest, by in parallel.values()} == {"parallel"}

"""Tests for the table/figure text renderers."""

from repro.analysis.characterize import RunCharacterization, SliceCharacterization
from repro.analysis.problem import CoverageSummary
from repro.harness import report
from repro.uarch.config import FOUR_WIDE


def coverage(n=3):
    return CoverageSummary(
        mem_problem_count=n,
        mem_dynamic_share=0.05,
        mem_miss_coverage=0.97,
        branch_problem_count=n + 1,
        branch_dynamic_share=0.30,
        branch_misp_coverage=0.83,
    )


def test_render_table1_mentions_all_parameters():
    text = report.render_table1(FOUR_WIDE)
    for fragment in ("4-wide", "128-entry window", "YAGS", "2MB", "100-cycle"):
        assert fragment in text


def test_render_table2_rows_and_percentages():
    text = report.render_table2([("bzip2", coverage())])
    assert "bzip2" in text
    assert "97%" in text and "83%" in text


def test_render_table3_loop_annotations():
    row = SliceCharacterization(
        program="vpr",
        slice_name="vpr_heap",
        static_size=12,
        loop_size=7,
        live_ins=1,
        prefetches=2,
        prefetches_in_loop=2,
        predictions=1,
        predictions_in_loop=1,
        kills=2,
        kills_in_loop=1,
        max_iterations=4,
    )
    text = report.render_table3([row])
    assert "12 (7)" in text  # static (loop) formatting
    assert "2 (2)" in text


def test_render_table4_columns():
    row = RunCharacterization(
        program="vpr",
        base_fetched=100_000,
        base_mispredictions=1000,
        base_load_misses=500,
        base_ipc=2.0,
        slice_fetched_main=80_000,
        slice_fetched_helper=10_000,
        slice_retired_helper=9_000,
        fork_points=700,
        forks_squashed=100,
        forks_ignored=5,
        problem_branches_covered=1,
        predictions_generated=1500,
        mispredictions_remaining=300,
        incorrect_predictions=2,
        late_fraction=0.1,
        prefetches_performed=60,
        load_misses_remaining=200,
        slice_ipc=2.6,
    )
    text = report.render_table4([row])
    assert "70%" in text  # mispredictions removed
    assert "+30%" in text  # speedup
    assert "-10%" in text  # total fetch change (90k vs 100k)


def test_render_figure11_bars():
    from repro.harness.runner import TripleResult
    from repro.uarch.stats import RunStats
    from repro.workloads import registry

    workload = registry.build("vpr", scale=0.05)
    base = RunStats(cycles=100, committed=100)
    assisted = RunStats(cycles=80, committed=100)
    limit = RunStats(cycles=50, committed=100)
    result = TripleResult(workload, FOUR_WIDE, base, assisted, limit)
    text = report.render_figure11([result])
    assert "25.0%" in text and "100.0%" in text
    assert "s|" in text and "l|" in text


def test_render_figure1_stacked_bars():
    from repro.harness.runner import PerfectSweepResult
    from repro.uarch.stats import RunStats
    from repro.workloads import registry

    workload = registry.build("vpr", scale=0.05)
    result = PerfectSweepResult(
        workload=workload,
        config=FOUR_WIDE,
        base=RunStats(cycles=100, committed=100),
        problem_perfect=RunStats(cycles=50, committed=100),
        all_perfect=RunStats(cycles=40, committed=100),
    )
    text = report.render_figure1([result])
    assert "vpr" in text and "4-wide" in text
    bar_line = next(line for line in text.splitlines() if "vpr" in line)
    assert "B" in bar_line and "P" in bar_line and "A" in bar_line

"""Property tests: the executor against a direct Python oracle."""

from hypothesis import given, strategies as st

from repro.arch import Memory, ThreadState, execute
from repro.arch.memory import to_signed
from repro.isa import Opcode
from repro.isa.instruction import Instruction

VALUES = st.integers(-(2**63), 2**63 - 1)

ORACLES = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.CMPEQ: lambda a, b: int(a == b),
    Opcode.CMPLT: lambda a, b: int(a < b),
    Opcode.CMPLE: lambda a, b: int(a <= b),
    Opcode.S8ADD: lambda a, b: (a << 3) + b,
}


@given(
    st.sampled_from(sorted(ORACLES, key=lambda o: o.value)), VALUES, VALUES
)
def test_binary_ops_match_oracle(op, a, b):
    state = ThreadState(Memory(), 0)
    state.regs.write(1, a)
    state.regs.write(2, b)
    inst = Instruction(op, rd=3, ra=1, rb=2, pc=0)
    result = execute(inst, state)
    assert result.value == to_signed(ORACLES[op](a, b))
    assert state.regs.read(3) == result.value
    assert state.pc == 4


@given(VALUES, st.integers(0, 63))
def test_shift_identities(value, amount):
    """sll then srl recovers the low bits; sra preserves sign."""
    state = ThreadState(Memory(), 0)
    state.regs.write(1, value)
    execute(Instruction(Opcode.SLL, rd=2, ra=1, imm=amount, pc=0), state)
    execute(Instruction(Opcode.SRL, rd=3, ra=2, imm=amount, pc=4), state)
    mask = (1 << (64 - amount)) - 1
    assert state.regs.read(3) & mask == (value & mask)
    execute(Instruction(Opcode.SRA, rd=4, ra=1, imm=amount, pc=8), state)
    assert (state.regs.read(4) < 0) == (value < 0 and True)


@given(VALUES, VALUES)
def test_cmov_selects_correctly(cond, alt):
    state = ThreadState(Memory(), 0)
    state.regs.write(1, cond)
    state.regs.write(2, alt)
    state.regs.write(3, 111)
    execute(Instruction(Opcode.CMOVEQ, rd=3, ra=1, rb=2, pc=0), state)
    expected = to_signed(alt) if cond == 0 else 111
    assert state.regs.read(3) == expected


@given(VALUES, VALUES)
def test_div_matches_trunc_semantics(a, b):
    state = ThreadState(Memory(), 0)
    state.regs.write(1, a)
    state.regs.write(2, b)
    execute(Instruction(Opcode.DIV, rd=3, ra=1, rb=2, pc=0), state)
    if b == 0:
        expected = 0
    else:
        expected = to_signed(abs(a) // abs(b) * (-1 if (a < 0) != (b < 0) else 1))
    assert state.regs.read(3) == expected


@given(st.integers(0x100, 2**20), VALUES)
def test_store_load_roundtrip_through_executor(addr, value):
    state = ThreadState(Memory(), 0)
    state.regs.write(1, addr)
    state.regs.write(2, value)
    execute(Instruction(Opcode.ST, rd=2, ra=1, imm=0, pc=0), state)
    execute(Instruction(Opcode.LD, rd=3, ra=1, imm=0, pc=4), state)
    assert state.regs.read(3) == to_signed(value)


@given(st.lists(st.tuples(st.sampled_from(sorted(ORACLES, key=lambda o: o.value)), VALUES), max_size=20))
def test_checkpoint_rollback_after_random_ops(ops):
    """Rollback after arbitrary executed sequences restores registers."""
    state = ThreadState(Memory(), 0)
    state.regs.write(1, 5)
    state.regs.write(2, 7)
    before = state.regs.values()
    checkpoint = state.checkpoint(resume_pc=0)
    pc = 0
    for op, value in ops:
        state.regs.write(2, value)
        execute(Instruction(op, rd=1, ra=1, rb=2, pc=pc), state)
        pc += 4
    state.rollback(checkpoint)
    assert state.regs.values() == before

"""Tests for journaled memory and register file, incl. property tests."""

from hypothesis import given, strategies as st

from repro.arch import MASK64, Memory, RegFile, to_signed


def test_memory_unmapped_reads_zero():
    mem = Memory()
    assert mem.load(0x5000) == 0


def test_memory_store_load_roundtrip():
    mem = Memory()
    mem.store(0x1000, 42)
    assert mem.load(0x1000) == 42


def test_memory_alignment_down():
    mem = Memory()
    mem.store(0x1005, 9)
    assert mem.load(0x1000) == 9
    assert mem.load(0x1007) == 9


def test_memory_image_initialization():
    mem = Memory(image={0x10: 1, 0x18: 2})
    assert mem.load(0x10) == 1
    assert mem.load(0x18) == 2


def test_memory_rollback_restores_old_values():
    mem = Memory()
    mem.store(0x100, 1)
    mark = mem.mark()
    mem.store(0x100, 2)
    mem.store(0x108, 3)
    mem.rollback(mark)
    assert mem.load(0x100) == 1
    assert mem.load(0x108) == 0


def test_memory_nested_rollback():
    mem = Memory()
    mem.store(0x100, 1)
    outer = mem.mark()
    mem.store(0x100, 2)
    inner = mem.mark()
    mem.store(0x100, 3)
    mem.rollback(inner)
    assert mem.load(0x100) == 2
    mem.rollback(outer)
    assert mem.load(0x100) == 1


def test_memory_commit_truncates_journal():
    mem = Memory()
    mem.store(0x100, 1)
    mem.store(0x108, 2)
    mem.commit()
    assert mem.journal_length == 0
    assert mem.load(0x100) == 1


def test_memory_journaling_disabled():
    mem = Memory(journaling=False)
    mem.store(0x100, 1)
    assert mem.journal_length == 0


def test_regfile_r31_is_zero():
    regs = RegFile()
    regs.write(31, 123)
    assert regs.read(31) == 0


def test_regfile_rollback():
    regs = RegFile()
    regs.write(1, 10)
    mark = regs.mark()
    regs.write(1, 20)
    regs.write(2, 30)
    regs.rollback(mark)
    assert regs.read(1) == 10
    assert regs.read(2) == 0


def test_regfile_load_values_skips_zero_reg():
    regs = RegFile()
    regs.load_values({1: 5, 31: 7})
    assert regs.read(1) == 5
    assert regs.read(31) == 0


def test_to_signed_wraps():
    assert to_signed(MASK64) == -1
    assert to_signed(1 << 63) == -(1 << 63)
    assert to_signed(5) == 5


@given(st.lists(st.tuples(st.integers(0, 63), st.integers(-(2**63), 2**63 - 1)), max_size=30))
def test_regfile_rollback_is_exact_inverse(writes):
    """Property: rollback to a mark restores the exact pre-mark values."""
    regs = RegFile()
    for i, (index, value) in enumerate(writes[: len(writes) // 2]):
        regs.write(index % 31, value)
    before = regs.values()
    mark = regs.mark()
    for index, value in writes[len(writes) // 2 :]:
        regs.write(index % 31, value)
    regs.rollback(mark)
    assert regs.values() == before


@given(
    st.lists(
        st.tuples(st.integers(0, 100), st.integers(-(2**63), 2**63 - 1)),
        max_size=30,
    ),
    st.integers(0, 29),
)
def test_memory_rollback_is_exact_inverse(stores, split):
    """Property: memory rollback restores the exact pre-mark image."""
    mem = Memory()
    split = min(split, len(stores))
    for addr, value in stores[:split]:
        mem.store(addr * 8 + 0x1000, value)
    before = mem.snapshot()
    mark = mem.mark()
    for addr, value in stores[split:]:
        mem.store(addr * 8 + 0x1000, value)
    mem.rollback(mark)
    assert mem.snapshot() == before

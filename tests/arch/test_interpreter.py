"""Tests for the functional executor."""

import pytest
from hypothesis import given, strategies as st

from repro.arch import Fault, Memory, ThreadState, execute, run_functional
from repro.isa import Assembler, Opcode
from repro.isa.instruction import Instruction


def _run(build, max_instructions=10_000, data=None):
    """Assemble via *build*, run to completion, return final state."""
    asm = Assembler()
    build(asm)
    prog = asm.build()
    image = dict(prog.data)
    if data:
        image.update(data)
    state = ThreadState(Memory(image), prog.entry_pc)
    for _inst, _result in run_functional(prog, state, max_instructions):
        pass
    return state, prog


def test_arithmetic_basics():
    def build(asm):
        asm.li("r1", 6)
        asm.li("r2", 7)
        asm.mul("r3", "r1", rb="r2")
        asm.sub("r4", "r3", imm=2)
        asm.div("r5", "r4", imm=10)
        asm.halt()

    state, _ = _run(build)
    assert state.regs.read(3) == 42
    assert state.regs.read(4) == 40
    assert state.regs.read(5) == 4


def test_div_semantics():
    def build(asm):
        asm.li("r1", -7)
        asm.div("r2", "r1", imm=2)  # trunc toward zero: -3
        asm.li("r3", 5)
        asm.div("r4", "r3", imm=0)  # div by zero yields 0
        asm.halt()

    state, _ = _run(build)
    assert state.regs.read(2) == -3
    assert state.regs.read(4) == 0


def test_shifts():
    def build(asm):
        asm.li("r1", -8)
        asm.sra("r2", "r1", imm=1)  # arithmetic: -4
        asm.srl("r3", "r1", imm=1)  # logical on 64-bit pattern
        asm.li("r4", 3)
        asm.sll("r5", "r4", imm=2)  # 12
        asm.halt()

    state, _ = _run(build)
    assert state.regs.read(2) == -4
    assert state.regs.read(3) == (((-8) & ((1 << 64) - 1)) >> 1)
    assert state.regs.read(5) == 12


def test_scaled_adds():
    def build(asm):
        asm.li("r1", 5)
        asm.li("r2", 0x1000)
        asm.s8add("r3", "r1", "r2")  # 0x1000 + 40
        asm.s4add("r4", "r1", "r2")  # 0x1000 + 20
        asm.halt()

    state, _ = _run(build)
    assert state.regs.read(3) == 0x1028
    assert state.regs.read(4) == 0x1014


def test_compare_ops():
    def build(asm):
        asm.li("r1", -1)
        asm.cmplt("r2", "r1", imm=0)  # 1
        asm.cmpult("r3", "r1", imm=0)  # unsigned: huge < 0 -> 0
        asm.cmpeq("r4", "r1", imm=-1)  # 1
        asm.cmple("r5", "r1", imm=-1)  # 1
        asm.halt()

    state, _ = _run(build)
    assert state.regs.read(2) == 1
    assert state.regs.read(3) == 0
    assert state.regs.read(4) == 1
    assert state.regs.read(5) == 1


def test_conditional_moves():
    def build(asm):
        asm.li("r1", 0)
        asm.li("r2", 99)
        asm.li("r3", 7)
        asm.cmoveq("r3", "r1", "r2")  # r1 == 0 -> r3 = 99
        asm.li("r4", 7)
        asm.cmovne("r4", "r1", "r2")  # r1 != 0 false -> keep 7
        asm.halt()

    state, _ = _run(build)
    assert state.regs.read(3) == 99
    assert state.regs.read(4) == 7


def test_loads_stores_and_data_segment():
    def build(asm):
        base = asm.data_words("arr", [10, 20, 30])
        asm.li("r1", base)
        asm.ld("r2", "r1", 8)  # 20
        asm.add("r2", "r2", imm=1)
        asm.st("r2", "r1", 16)  # arr[2] = 21
        asm.ld("r3", "r1", 16)
        asm.halt()

    state, _ = _run(build)
    assert state.regs.read(3) == 21


def test_loop_executes_correct_count():
    def build(asm):
        asm.li("r1", 10)
        asm.li("r2", 0)
        asm.label("loop")
        asm.add("r2", "r2", imm=3)
        asm.sub("r1", "r1", imm=1)
        asm.bgt("r1", "loop")
        asm.halt()

    state, _ = _run(build)
    assert state.regs.read(2) == 30


def test_call_ret():
    def build(asm):
        asm.li("r1", 1)
        asm.call("fn")
        asm.add("r1", "r1", imm=100)  # runs after return
        asm.halt()
        asm.label("fn")
        asm.add("r1", "r1", imm=10)
        asm.ret()

    state, _ = _run(build)
    assert state.regs.read(1) == 111


def test_indirect_jump():
    def build(asm):
        asm.li("r1", 0)
        asm.li("r2", 0)  # patched below
        table = asm.data_word("table", 0)
        asm.la("r3", "table")
        asm.ld("r4", "r3")
        asm.jr("r4")
        asm.li("r1", 1)  # skipped
        asm.label("dest")
        asm.li("r1", 2)
        asm.halt()

    asm = Assembler()
    build(asm)
    prog = asm.build()
    prog.data[prog.addr_of("table")] = prog.pc_of("dest")
    state = ThreadState(Memory(prog.data), prog.entry_pc)
    for _ in run_functional(prog, state):
        pass
    assert state.regs.read(1) == 2


def test_null_deref_faults_but_does_not_raise():
    asm = Assembler()
    asm.li("r1", 0)
    asm.ld("r2", "r1")
    prog = asm.build()
    state = ThreadState(Memory(), prog.entry_pc)
    results = [r for _, r in run_functional(prog, state, max_instructions=2)]
    assert results[1].fault is Fault.NULL_DEREF
    assert state.regs.read(2) == 0


def test_null_store_faults_without_writing():
    asm = Assembler()
    asm.li("r1", 8)
    asm.li("r2", 77)
    asm.st("r2", "r1")
    prog = asm.build()
    mem = Memory()
    state = ThreadState(mem, prog.entry_pc)
    results = [r for _, r in run_functional(prog, state, max_instructions=3)]
    assert results[2].fault is Fault.NULL_DEREF
    assert mem.load(8) == 0


def test_halt_reports_fault_and_stops():
    asm = Assembler()
    asm.halt()
    asm.nop()
    prog = asm.build()
    state = ThreadState(Memory(), prog.entry_pc)
    executed = list(run_functional(prog, state))
    assert len(executed) == 1
    assert executed[0][1].fault is Fault.HALT


def test_branch_results_report_direction_and_target():
    asm = Assembler()
    asm.li("r1", 0)
    asm.label("t")
    asm.beq("r1", "t")  # taken: r1 == 0
    prog = asm.build()
    state = ThreadState(Memory(), prog.entry_pc)
    gen = run_functional(prog, state, max_instructions=2)
    next(gen)
    _, res = next(gen)
    assert res.taken is True
    assert res.next_pc == prog.pc_of("t")


def test_checkpoint_rollback_spans_regs_and_memory():
    asm = Assembler()
    prog = asm.build()
    mem = Memory()
    state = ThreadState(mem, 0)
    state.regs.write(1, 5)
    mem.store(0x200, 5)
    cp = state.checkpoint(resume_pc=0x1234)
    state.regs.write(1, 6)
    mem.store(0x200, 6)
    state.halted = True
    state.rollback(cp)
    assert state.regs.read(1) == 5
    assert mem.load(0x200) == 5
    assert state.pc == 0x1234
    assert not state.halted


@given(st.integers(-(2**62), 2**62), st.integers(-(2**62), 2**62))
def test_add_sub_roundtrip_property(a, b):
    """Property: (a + b) - b == a under 64-bit wrap semantics."""
    asm = Assembler()
    asm.li("r1", a)
    asm.li("r2", b)
    asm.add("r3", "r1", rb="r2")
    asm.sub("r4", "r3", rb="r2")
    asm.halt()
    prog = asm.build()
    state = ThreadState(Memory(), prog.entry_pc)
    for _ in run_functional(prog, state):
        pass
    assert state.regs.read(4) == a


@given(st.integers(min_value=0, max_value=2**62))
def test_sra_matches_division_by_two_for_nonnegative(value):
    """Property behind the paper's strength-reduction optimization."""
    asm = Assembler()
    asm.li("r1", value)
    asm.sra("r2", "r1", imm=1)
    asm.div("r3", "r1", imm=2)
    asm.halt()
    prog = asm.build()
    state = ThreadState(Memory(), prog.entry_pc)
    for _ in run_functional(prog, state):
        pass
    assert state.regs.read(2) == state.regs.read(3)


def test_unknown_pc_stops_run():
    asm = Assembler()
    asm.br(0xFF000)
    prog = asm.build()
    state = ThreadState(Memory(), prog.entry_pc)
    executed = list(run_functional(prog, state))
    assert len(executed) == 1  # the branch itself, then fetch fails


def test_execute_requires_handled_opcode():
    state = ThreadState(Memory(), 0)
    inst = Instruction(Opcode.NOP, pc=0)
    result = execute(inst, state)
    assert result.fault is Fault.NONE
    assert result.next_pc == 4

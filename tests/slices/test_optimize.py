"""Tests for the slice optimization passes."""

from repro.isa import Assembler, Opcode
from repro.slices.optimize import (
    OptimizationReport,
    bypass_memory,
    eliminate_moves,
    remove_dead_code,
    strength_reduce_division,
)


def build(fn):
    asm = Assembler()
    fn(asm)
    return list(asm.build().instructions)


def test_strength_reduce_division_idiom():
    insts = build(
        lambda a: (
            a.cmplt("r9", "r2", imm=0),
            a.add("r3", "r2", rb="r9"),
            a.sra("r3", "r3", imm=1),
            a.add("r4", "r3", imm=1),
        )
    )
    report = OptimizationReport()
    out = strength_reduce_division(insts, report)
    assert len(out) == 2
    assert out[0].op is Opcode.SRA and out[0].ra == 2 and out[0].rd == 3
    assert report.removed["strength reduction"] == 2


def test_strength_reduce_requires_exact_idiom():
    insts = build(
        lambda a: (
            a.cmplt("r9", "r2", imm=0),
            a.add("r3", "r2", rb="r8"),  # wrong register
            a.sra("r3", "r3", imm=1),
        )
    )
    assert len(strength_reduce_division(insts)) == 3


def test_bypass_memory_renames_consumers():
    insts = build(
        lambda a: (
            a.ld("r5", "r1", 8),
            a.cmplt("r6", "r5", rb="r7"),
        )
    )
    out = bypass_memory(insts, 0, value_reg=17)
    assert len(out) == 2 - 1
    assert out[0].op is Opcode.CMPLT
    assert out[0].ra == 17  # reads the live-in now


def test_bypass_memory_stops_at_redefinition():
    insts = build(
        lambda a: (
            a.ld("r5", "r1", 8),
            a.add("r6", "r5", imm=1),
            a.li("r5", 0),  # redefinition
            a.add("r7", "r5", imm=1),  # must NOT be renamed
        )
    )
    out = bypass_memory(insts, 0, value_reg=17)
    assert out[0].ra == 17
    assert out[2].ra == 5


def test_eliminate_moves():
    insts = build(
        lambda a: (
            a.mov("r2", "r6"),
            a.sra("r3", "r2", imm=1),
        )
    )
    out = eliminate_moves(insts)
    assert len(out) == 1
    assert out[0].ra == 6


def test_eliminate_moves_respects_redefinition():
    insts = build(
        lambda a: (
            a.mov("r2", "r6"),
            a.li("r6", 9),  # source redefined
            a.sra("r3", "r2", imm=1),  # must keep reading r2
        )
    )
    out = eliminate_moves(insts)
    assert len(out) == 3


def test_remove_dead_code_keeps_live_chain():
    insts = build(
        lambda a: (
            a.li("r1", 1),
            a.li("r2", 2),  # dead
            a.add("r3", "r1", imm=1),
        )
    )
    out = remove_dead_code(insts, live_out={3})
    ops = [(i.op, i.rd) for i in out]
    assert (Opcode.LI, 2) not in ops
    assert len(out) == 2


def test_remove_dead_code_keeps_loads_by_default():
    insts = build(
        lambda a: (
            a.ld("r5", "r1", 8),  # dead but a prefetch
            a.li("r3", 1),
        )
    )
    out = remove_dead_code(insts, live_out={3})
    assert any(i.is_load for i in out)
    out = remove_dead_code(insts, live_out={3}, keep_loads=False)
    assert not any(i.is_load for i in out)


def test_remove_dead_code_transitive():
    insts = build(
        lambda a: (
            a.li("r1", 1),
            a.add("r2", "r1", imm=1),  # feeds only dead r4
            a.add("r4", "r2", imm=1),  # dead
            a.li("r9", 5),
        )
    )
    out = remove_dead_code(insts, live_out={9})
    assert len(out) == 1


def test_passes_do_not_mutate_input():
    insts = build(lambda a: (a.mov("r2", "r6"), a.sra("r3", "r2", imm=1)))
    eliminate_moves(insts)
    assert insts[1].ra == 2  # original untouched


def test_remove_redundant_masking_after_narrower_and():
    from repro.slices.optimize import remove_redundant_masking

    insts = build(
        lambda a: (
            a.and_("r2", "r1", imm=0xFF),
            a.and_("r3", "r2", imm=0xFFFF),  # redundant: r2 fits 0xFF
            a.add("r4", "r3", imm=1),
        )
    )
    out = remove_redundant_masking(insts)
    assert len(out) == 2
    assert out[1].ra == 2  # uses renamed to the unmasked register


def test_remove_redundant_masking_keeps_narrowing_and():
    from repro.slices.optimize import remove_redundant_masking

    insts = build(
        lambda a: (
            a.and_("r2", "r1", imm=0xFFFF),
            a.and_("r3", "r2", imm=0xFF),  # narrows: must stay
        )
    )
    assert len(remove_redundant_masking(insts)) == 2


def test_remove_redundant_masking_uses_profile_bounds():
    from repro.slices.optimize import remove_redundant_masking

    insts = build(lambda a: (a.and_("r3", "r21", imm=0xFFF),))
    # Value profiling says the live-in r21 never exceeds 0x3F.
    out = remove_redundant_masking(insts, known_bounded={21: 0x3F})
    assert len(out) == 0


def test_remove_redundant_masking_invalidated_by_redefinition():
    from repro.slices.optimize import remove_redundant_masking

    insts = build(
        lambda a: (
            a.and_("r2", "r1", imm=0xFF),
            a.add("r2", "r2", imm=0x1000),  # bound no longer holds
            a.and_("r3", "r2", imm=0xFFFF),  # must stay
        )
    )
    assert len(remove_redundant_masking(insts)) == 3

"""Tests for the prediction correlator (Section 5).

Includes a faithful replay of the paper's Figure 9 scenario: a
conditionally-executed problem branch inside a loop, with loop-iteration
kills at block F and a slice kill at block G, along the fetch path
A B C F B C D F B G.
"""

import pytest

from repro.isa import Assembler
from repro.slices.correlator import PredictionCorrelator, SlotState
from repro.slices.spec import KillKind, KillSpec, PGISpec, SliceSpec
from repro.uarch.config import SliceHardwareConfig

BRANCH_PC = 0x2000  # the problem branch (block D)
LOOP_KILL_PC = 0x2100  # block F (loop back-edge target)
SLICE_KILL_PC = 0x2200  # block G (loop exit)


def figure8_slice(n_pgis=3):
    """A slice generating one prediction per loop iteration (Figure 8)."""
    asm = Assembler(base_pc=0x9000)
    asm.label("entry")
    pgi_insts = [asm.cmplt("r1", "r2", imm=0) for _ in range(n_pgis)]
    asm.halt()
    code = asm.build()
    return SliceSpec(
        name="fig8",
        fork_pc=0x1000,
        code=code,
        entry_pc=code.pc_of("entry"),
        live_in_regs=(2,),
        pgis=tuple(
            PGISpec(slice_pc=inst.pc, branch_pc=BRANCH_PC) for inst in pgi_insts
        ),
        kills=(
            KillSpec(kill_pc=LOOP_KILL_PC, kind=KillKind.LOOP),
            KillSpec(kill_pc=SLICE_KILL_PC, kind=KillKind.SLICE),
        ),
    )


def forked_correlator(n_pgis=3, instance_id=0, directions=None):
    """Correlator with one forked instance whose PGIs have all executed.

    ``directions`` sets each PGI's computed direction; a ``None`` element
    leaves that PGI fetched but not yet executed (EMPTY slot).
    """
    if directions is not None:
        n_pgis = len(directions)
    spec = figure8_slice(n_pgis)
    correlator = PredictionCorrelator()
    correlator.register_slice(spec)
    correlator.on_fork(spec, instance_id)
    slots = []
    for i, pgi in enumerate(spec.pgis):
        slot = correlator.on_pgi_fetched(spec, pgi, instance_id)
        slots.append(slot)
        if directions is None or directions[i] is not None:
            direction = True if directions is None else directions[i]
            correlator.on_pgi_executed(slot, direction)
    return correlator, spec, slots


def test_figure9_walkthrough():
    """The exact event sequence of Figure 9(b), path ABCFBCDFBG."""
    directions = [True, False, True]
    correlator, spec, slots = forked_correlator(directions=directions)
    p1, p2, p3 = slots
    vn = 100

    # Iteration 1: block D not fetched; block F fetched -> P1 killed.
    assert correlator.on_kill_fetched(LOOP_KILL_PC, vn) == 1
    assert p1.killed and not p2.killed

    # Iteration 2: block D fetched -> matched with P2 (second iteration).
    match = correlator.on_branch_fetched(BRANCH_PC, vn + 1)
    assert match is not None
    assert match.slot is p2
    assert match.direction is False

    # Block F fetched -> P2 killed.
    assert correlator.on_kill_fetched(LOOP_KILL_PC, vn + 2) == 1
    assert p2.killed

    # Loop exits (block G) -> remaining predictions killed.
    assert correlator.on_kill_fetched(SLICE_KILL_PC, vn + 3) == 1
    assert p3.killed
    assert correlator.live_predictions(BRANCH_PC) == []


def test_full_match_overrides_with_slice_direction():
    correlator, spec, slots = forked_correlator(directions=[False, True, True])
    match = correlator.on_branch_fetched(BRANCH_PC, 1)
    assert match.direction is False
    assert match.slot is slots[0]


def test_unmatched_branch_pc_returns_none():
    correlator, *_ = forked_correlator()
    assert correlator.on_branch_fetched(0xBEEF, 1) is None


def test_empty_match_then_late_binding():
    """Prediction arrives after the branch fetch (Section 5.3)."""
    correlator, spec, slots = forked_correlator(directions=[None])
    slot = slots[0]
    assert slot.state is SlotState.EMPTY
    match = correlator.on_branch_fetched(BRANCH_PC, 5)
    assert match.direction is None  # traditional predictor must be used
    correlator.bind_late(slot, vn=5, used_direction=True)
    assert slot.state is SlotState.LATE
    # PGI executes and disagrees: late mismatch -> early resolution.
    assert correlator.on_pgi_executed(slot, direction=False) is True
    assert correlator.stats.late_mismatches == 1


def test_late_agreement_is_not_a_mismatch():
    correlator, spec, slots = forked_correlator(directions=[None])
    slot = slots[0]
    correlator.on_branch_fetched(BRANCH_PC, 5)
    correlator.bind_late(slot, vn=5, used_direction=True)
    assert correlator.on_pgi_executed(slot, direction=True) is False


def test_late_slot_does_not_match_again():
    correlator, spec, slots = forked_correlator(n_pgis=1, directions=[None])
    slot = slots[0]
    correlator.on_branch_fetched(BRANCH_PC, 5)
    correlator.bind_late(slot, 5, True)
    assert correlator.on_branch_fetched(BRANCH_PC, 6) is None


def test_killed_slots_are_skipped_not_removed():
    correlator, spec, slots = forked_correlator()
    correlator.on_kill_fetched(LOOP_KILL_PC, 10)
    match = correlator.on_branch_fetched(BRANCH_PC, 11)
    assert match.slot is slots[1]
    assert len(correlator.queue_for(BRANCH_PC)) == 3  # still allocated


def test_squashed_kill_is_restored():
    """Section 5.2: squashing the killer clears the kill bit."""
    correlator, spec, slots = forked_correlator()
    correlator.on_kill_fetched(LOOP_KILL_PC, 50)
    assert slots[0].killed
    correlator.on_squash(min_squashed_vn=50)
    assert not slots[0].killed
    assert correlator.stats.kills_restored == 1
    # The restored prediction is matchable again.
    assert correlator.on_branch_fetched(BRANCH_PC, 51).slot is slots[0]


def test_kill_older_than_squash_survives():
    correlator, spec, slots = forked_correlator()
    correlator.on_kill_fetched(LOOP_KILL_PC, 50)
    correlator.on_squash(min_squashed_vn=60)
    assert slots[0].killed


def test_squash_reverts_late_binding():
    correlator, spec, slots = forked_correlator(directions=[None])
    slot = slots[0]
    correlator.on_branch_fetched(BRANCH_PC, 30)
    correlator.bind_late(slot, 30, used_direction=True)
    correlator.on_squash(min_squashed_vn=30)
    assert slot.state is SlotState.EMPTY
    assert slot.consumer_vn is None
    # If the value has arrived meanwhile, it reverts to FULL instead.
    correlator.on_branch_fetched(BRANCH_PC, 31)
    correlator.bind_late(slot, 31, used_direction=False)
    correlator.on_pgi_executed(slot, True)
    correlator.on_squash(min_squashed_vn=31)
    assert slot.state is SlotState.FULL


def test_retire_deallocates_killed_slots():
    correlator, spec, slots = forked_correlator()
    correlator.on_kill_fetched(LOOP_KILL_PC, 10)
    correlator.on_retire(vn=10)
    assert slots[0] not in correlator.queue_for(BRANCH_PC)
    # Deallocated slots can no longer be restored by a squash.
    correlator.on_squash(min_squashed_vn=5)
    assert slots[0].dead


def test_retire_does_not_deallocate_unretired_kills():
    correlator, spec, slots = forked_correlator()
    correlator.on_kill_fetched(LOOP_KILL_PC, 10)
    correlator.on_retire(vn=9)
    assert slots[0] in correlator.queue_for(BRANCH_PC)


def test_fork_squash_discards_all_instance_predictions():
    correlator, spec, slots = forked_correlator()
    correlator.on_fork_squashed(0)
    assert correlator.queue_for(BRANCH_PC) == []
    assert correlator.on_branch_fetched(BRANCH_PC, 1) is None


def test_slot_overflow_is_dropped_and_counted():
    config = SliceHardwareConfig(predictions_per_branch=2)
    spec = figure8_slice(n_pgis=3)
    correlator = PredictionCorrelator(config)
    correlator.register_slice(spec)
    correlator.on_fork(spec, 0)
    results = [correlator.on_pgi_fetched(spec, pgi, 0) for pgi in spec.pgis]
    assert results[2] is None
    assert correlator.stats.slot_overflow_drops == 1


def test_skip_first_loop_kill():
    """Back-edge-target kill blocks skip their first instance (5.1)."""
    spec_base = figure8_slice(n_pgis=2)
    spec = SliceSpec(
        name="skip",
        fork_pc=spec_base.fork_pc,
        code=spec_base.code,
        entry_pc=spec_base.entry_pc,
        live_in_regs=spec_base.live_in_regs,
        pgis=spec_base.pgis,
        kills=(
            KillSpec(LOOP_KILL_PC, KillKind.LOOP, skip_first=True),
            KillSpec(SLICE_KILL_PC, KillKind.SLICE),
        ),
    )
    correlator = PredictionCorrelator()
    correlator.register_slice(spec)
    correlator.on_fork(spec, 0)
    slots = [correlator.on_pgi_fetched(spec, pgi, 0) for pgi in spec.pgis]
    for slot in slots:
        correlator.on_pgi_executed(slot, True)
    # First fetch of the kill block: skipped.
    assert correlator.on_kill_fetched(LOOP_KILL_PC, 10) == 0
    assert not slots[0].killed
    # Second fetch kills.
    assert correlator.on_kill_fetched(LOOP_KILL_PC, 11) == 1
    assert slots[0].killed


def test_skip_first_restored_on_squash():
    spec_base = figure8_slice(n_pgis=2)
    spec = SliceSpec(
        name="skip2",
        fork_pc=spec_base.fork_pc,
        code=spec_base.code,
        entry_pc=spec_base.entry_pc,
        live_in_regs=spec_base.live_in_regs,
        pgis=spec_base.pgis,
        kills=(KillSpec(LOOP_KILL_PC, KillKind.LOOP, skip_first=True),),
    )
    correlator = PredictionCorrelator()
    correlator.register_slice(spec)
    correlator.on_fork(spec, 0)
    slots = [correlator.on_pgi_fetched(spec, pgi, 0) for pgi in spec.pgis]
    for slot in slots:
        correlator.on_pgi_executed(slot, True)
    correlator.on_kill_fetched(LOOP_KILL_PC, 10)  # consumes the skip
    correlator.on_squash(min_squashed_vn=10)  # skip consumption undone
    assert correlator.on_kill_fetched(LOOP_KILL_PC, 20) == 0  # skipped again
    assert correlator.on_kill_fetched(LOOP_KILL_PC, 21) == 1


def test_loop_kills_target_oldest_instance_first():
    spec = figure8_slice(n_pgis=1)
    correlator = PredictionCorrelator()
    correlator.register_slice(spec)
    correlator.on_fork(spec, 0)
    correlator.on_fork(spec, 1)
    slot_a = correlator.on_pgi_fetched(spec, spec.pgis[0], 0)
    slot_b = correlator.on_pgi_fetched(spec, spec.pgis[0], 1)
    correlator.on_pgi_executed(slot_a, True)
    correlator.on_pgi_executed(slot_b, False)
    correlator.on_kill_fetched(LOOP_KILL_PC, 10)
    assert slot_a.killed
    assert not slot_b.killed


def test_slice_kill_finishes_instance_and_next_kills_hit_successor():
    spec = figure8_slice(n_pgis=1)
    correlator = PredictionCorrelator()
    correlator.register_slice(spec)
    correlator.on_fork(spec, 0)
    correlator.on_fork(spec, 1)
    slot_a = correlator.on_pgi_fetched(spec, spec.pgis[0], 0)
    slot_b = correlator.on_pgi_fetched(spec, spec.pgis[0], 1)
    correlator.on_pgi_executed(slot_a, True)
    correlator.on_pgi_executed(slot_b, True)
    correlator.on_kill_fetched(SLICE_KILL_PC, 10)  # kills instance 0
    assert slot_a.killed and not slot_b.killed
    correlator.on_kill_fetched(LOOP_KILL_PC, 11)  # now targets instance 1
    assert slot_b.killed


def test_branch_queue_capacity_enforced():
    config = SliceHardwareConfig(branch_queue_entries=1)
    correlator = PredictionCorrelator(config)
    asm = Assembler(base_pc=0x9000)
    asm.label("entry")
    first = asm.cmplt("r1", "r2", imm=0)
    second = asm.cmplt("r3", "r2", imm=0)
    asm.halt()
    code = asm.build()
    spec = SliceSpec(
        name="wide",
        fork_pc=0x1000,
        code=code,
        entry_pc=code.pc_of("entry"),
        live_in_regs=(),
        pgis=(
            PGISpec(first.pc, branch_pc=0x2000),
            PGISpec(second.pc, branch_pc=0x2004),
        ),
    )
    with pytest.raises(ValueError, match="branch queue full"):
        correlator.register_slice(spec)


def test_override_outcome_accounting():
    correlator, spec, slots = forked_correlator()
    match = correlator.on_branch_fetched(BRANCH_PC, 1)
    correlator.record_override_outcome(match.slot, correct=True)
    correlator.record_override_outcome(match.slot, correct=False)
    assert correlator.stats.correct_overrides == 1
    assert correlator.stats.incorrect_overrides == 1


def test_pgi_executed_on_dead_slot_is_ignored():
    correlator, spec, slots = forked_correlator(directions=[None, None, None])
    correlator.on_fork_squashed(0)
    assert correlator.on_pgi_executed(slots[0], True) is False
    assert correlator.stats.predictions_generated == 0


def test_value_prediction_queue_full_match():
    """Value-prediction extension: FULL heads supply values."""
    from repro.slices.spec import PGIKind

    asm = Assembler(base_pc=0x9100)
    asm.label("entry")
    load = asm.ld("r1", "r2")
    asm.halt()
    code = asm.build()
    spec = SliceSpec(
        name="vp",
        fork_pc=0x1000,
        code=code,
        entry_pc=code.pc_of("entry"),
        live_in_regs=(2,),
        pgis=(PGISpec(load.pc, branch_pc=0x2400, kind=PGIKind.VALUE),),
        kills=(KillSpec(SLICE_KILL_PC, KillKind.SLICE),),
    )
    correlator = PredictionCorrelator()
    correlator.register_slice(spec)
    correlator.on_fork(spec, 0)
    slot = correlator.on_pgi_fetched(spec, spec.pgis[0], 0)
    # EMPTY head: no usable value, counted as late.
    assert correlator.on_load_fetched(0x2400, 1) is None
    assert correlator.stats.value_predictions_late == 1
    correlator.on_value_pgi_executed(slot, 0xCAFE)
    assert correlator.stats.value_predictions_generated == 1
    match = correlator.on_load_fetched(0x2400, 2)
    assert match is not None and match.value == 0xCAFE
    correlator.record_value_outcome(match.slot, correct=True)
    assert correlator.stats.correct_value_overrides == 1
    # Kills apply to value slots like any other.
    correlator.on_kill_fetched(SLICE_KILL_PC, 3)
    assert slot.killed


def test_value_pgi_on_dead_slot_is_ignored():
    from repro.slices.spec import PGIKind

    asm = Assembler(base_pc=0x9200)
    asm.label("entry")
    load = asm.ld("r1", "r2")
    asm.halt()
    code = asm.build()
    spec = SliceSpec(
        name="vp2",
        fork_pc=0x1000,
        code=code,
        entry_pc=code.pc_of("entry"),
        live_in_regs=(2,),
        pgis=(PGISpec(load.pc, branch_pc=0x2500, kind=PGIKind.VALUE),),
    )
    correlator = PredictionCorrelator()
    correlator.register_slice(spec)
    correlator.on_fork(spec, 0)
    slot = correlator.on_pgi_fetched(spec, spec.pgis[0], 0)
    correlator.on_fork_squashed(0)
    correlator.on_value_pgi_executed(slot, 1)
    assert correlator.stats.value_predictions_generated == 0

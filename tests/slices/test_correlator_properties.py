"""Property-based tests for the prediction correlator.

Random interleavings of fetch/kill/squash/retire events must never
violate the correlator's structural invariants:

* a branch entry never holds more slots than the hardware bound;
* a dead slot never matches;
* squash exactly undoes every kill/consumption performed by squashed
  instructions (kills are idempotent under squash+replay);
* retirement only deallocates slots whose killer has committed.
"""

from hypothesis import given, settings, strategies as st

from repro.isa import Assembler
from repro.slices.correlator import PredictionCorrelator, SlotState
from repro.slices.spec import (
    KillKind,
    KillSpec,
    PGISpec,
    SliceHardwareConfig,
    SliceSpec,
)

BRANCH_PC = 0x2000
LOOP_KILL = 0x2100
SLICE_KILL = 0x2200


def make_spec(n_pgis=4):
    asm = Assembler(base_pc=0x9000)
    asm.label("entry")
    pgis = [asm.cmplt(f"r{i + 1}", "r9", imm=0) for i in range(n_pgis)]
    asm.halt()
    code = asm.build()
    return SliceSpec(
        name="prop",
        fork_pc=0x1000,
        code=code,
        entry_pc=code.pc_of("entry"),
        live_in_regs=(9,),
        pgis=tuple(PGISpec(p.pc, BRANCH_PC) for p in pgis),
        kills=(
            KillSpec(LOOP_KILL, KillKind.LOOP),
            KillSpec(SLICE_KILL, KillKind.SLICE),
        ),
    )


EVENT = st.sampled_from(
    ["fork", "pgi", "exec", "branch", "loop_kill", "slice_kill",
     "squash", "retire", "fork_squash"]
)


@settings(max_examples=150, deadline=None)
@given(st.lists(EVENT, max_size=60), st.randoms(use_true_random=False))
def test_random_event_streams_preserve_invariants(events, rng):
    spec = make_spec()
    config = SliceHardwareConfig(predictions_per_branch=4)
    correlator = PredictionCorrelator(config)
    correlator.register_slice(spec)

    vn = 0
    instances: list[int] = []
    pending_pgis: dict[int, int] = {}  # instance -> next pgi index
    empty_slots: list = []
    live_instances: list[int] = []
    next_instance = 0

    for event in events:
        vn += 1
        if event == "fork":
            correlator.on_fork(spec, next_instance)
            instances.append(next_instance)
            live_instances.append(next_instance)
            pending_pgis[next_instance] = 0
            next_instance += 1
        elif event == "pgi" and live_instances:
            instance = rng.choice(live_instances)
            index = pending_pgis[instance]
            if index < len(spec.pgis):
                slot = correlator.on_pgi_fetched(
                    spec, spec.pgis[index], instance
                )
                pending_pgis[instance] = index + 1
                if slot is not None:
                    empty_slots.append(slot)
        elif event == "exec" and empty_slots:
            slot = empty_slots.pop(0)
            correlator.on_pgi_executed(slot, rng.random() < 0.5)
        elif event == "branch":
            match = correlator.on_branch_fetched(BRANCH_PC, vn)
            if match is not None:
                assert match.slot.live, "matched a dead/killed slot"
                if match.direction is None:
                    correlator.bind_late(match.slot, vn, rng.random() < 0.5)
        elif event == "loop_kill":
            correlator.on_kill_fetched(LOOP_KILL, vn)
        elif event == "slice_kill":
            correlator.on_kill_fetched(SLICE_KILL, vn)
        elif event == "squash":
            correlator.on_squash(rng.randrange(vn + 1))
        elif event == "retire":
            correlator.on_retire(rng.randrange(vn + 1))
        elif event == "fork_squash" and live_instances:
            instance = live_instances.pop(rng.randrange(len(live_instances)))
            correlator.on_fork_squashed(instance)
            empty_slots = [
                s for s in empty_slots if s.instance_id != instance
            ]

        # --- invariants, checked after every event -------------------
        queue = correlator.queue_for(BRANCH_PC)
        assert len(queue) <= config.predictions_per_branch
        for slot in queue:
            assert not slot.dead, "dead slot still in the queue"
            if slot.killed:
                assert slot.killer_vn is not None
            if slot.state is SlotState.LATE:
                assert slot.consumer_vn is not None


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 4), st.lists(st.booleans(), min_size=1, max_size=4))
def test_kill_then_squash_is_identity(n_kills, directions):
    """Applying kills then squashing them all restores every slot."""
    spec = make_spec(n_pgis=len(directions))
    correlator = PredictionCorrelator()
    correlator.register_slice(spec)
    correlator.on_fork(spec, 0)
    slots = []
    for pgi, direction in zip(spec.pgis, directions):
        slot = correlator.on_pgi_fetched(spec, pgi, 0)
        correlator.on_pgi_executed(slot, direction)
        slots.append(slot)
    before = [(s.state, s.direction, s.killed) for s in slots]
    for i in range(n_kills):
        correlator.on_kill_fetched(LOOP_KILL, 100 + i)
    correlator.on_squash(min_squashed_vn=100)
    after = [(s.state, s.direction, s.killed) for s in slots]
    assert before == after

"""Tests for SliceSpec validation and the slice/PGI tables (Figure 6)."""

import pytest

from repro.isa import Assembler
from repro.slices.hw import (
    PGITable,
    PGITableFullError,
    SliceTable,
    SliceTableFullError,
)
from repro.slices.spec import KillKind, KillSpec, PGISpec, SliceSpec


def make_slice(name="s", fork_pc=0x1000, base_pc=0x9000, n_pgis=1, loop=False):
    asm = Assembler(base_pc=base_pc)
    asm.label("entry")
    pgi_insts = []
    for i in range(n_pgis):
        pgi_insts.append(asm.cmplt(f"r{i + 1}", "r10", imm=5))
    if loop:
        asm.label("back")
        asm.bgt("r1", "entry")
    asm.halt()
    code = asm.build()
    return SliceSpec(
        name=name,
        fork_pc=fork_pc,
        code=code,
        entry_pc=code.pc_of("entry"),
        live_in_regs=(10,),
        pgis=tuple(
            PGISpec(slice_pc=inst.pc, branch_pc=0x2000 + 4 * i)
            for i, inst in enumerate(pgi_insts)
        ),
        kills=(KillSpec(kill_pc=0x3000, kind=KillKind.LOOP),),
        max_iterations=4 if loop else None,
        loop_back_pc=code.pc_of("back") if loop else None,
    )


def test_spec_reports_sizes_and_coverage():
    spec = make_slice(n_pgis=2)
    assert spec.static_size == len(spec.code)
    assert spec.covered_branch_pcs == {0x2000, 0x2004}
    assert spec.pgi_at(spec.pgis[0].slice_pc) is spec.pgis[0]
    assert spec.pgi_at(0xDEAD) is None


def test_spec_requires_loop_back_pc_with_max_iterations():
    asm = Assembler(base_pc=0x9000)
    asm.halt()
    code = asm.build()
    with pytest.raises(ValueError, match="loop_back_pc"):
        SliceSpec(
            name="bad",
            fork_pc=0x1000,
            code=code,
            entry_pc=0x9000,
            live_in_regs=(),
            max_iterations=3,
        )


def test_spec_validates_pgi_pcs():
    asm = Assembler(base_pc=0x9000)
    asm.halt()
    code = asm.build()
    with pytest.raises(ValueError, match="PGI"):
        SliceSpec(
            name="bad",
            fork_pc=0x1000,
            code=code,
            entry_pc=0x9000,
            live_in_regs=(),
            pgis=(PGISpec(slice_pc=0x100, branch_pc=0x2000),),
        )


def test_pgi_direction_and_invert():
    pgi = PGISpec(slice_pc=0, branch_pc=0)
    assert pgi.direction_of(1) is True
    assert pgi.direction_of(0) is False
    inverted = PGISpec(slice_pc=0, branch_pc=0, invert=True)
    assert inverted.direction_of(1) is False


def test_slice_table_match():
    table = SliceTable(entries=4)
    spec = make_slice()
    table.load(spec)
    assert table.match(spec.fork_pc) == [spec]
    assert table.match(0xBEEF) == []
    assert len(table) == 1
    assert table.all_slices() == [spec]


def test_slice_table_capacity_enforced():
    table = SliceTable(entries=1)
    table.load(make_slice("a", base_pc=0x9000))
    with pytest.raises(SliceTableFullError):
        table.load(make_slice("b", fork_pc=0x1100, base_pc=0xA000))


def test_two_slices_can_share_a_fork_pc():
    table = SliceTable(entries=4)
    a = make_slice("a", base_pc=0x9000)
    b = make_slice("b", base_pc=0xA000)
    table.load(a)
    table.load(b)
    assert table.match(a.fork_pc) == [a, b]


def test_pgi_table_lookup():
    table = PGITable(entries=8)
    spec = make_slice(n_pgis=2)
    table.load(spec)
    pgi = spec.pgis[1]
    assert table.lookup(spec.name, pgi.slice_pc) is pgi
    assert table.lookup(spec.name, 0xDEAD) is None
    assert table.lookup("other", pgi.slice_pc) is None
    assert len(table) == 2


def test_pgi_table_capacity_enforced():
    table = PGITable(entries=1)
    with pytest.raises(PGITableFullError):
        table.load(make_slice(n_pgis=2))

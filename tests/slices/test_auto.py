"""Tests for automatic slice construction (Section 3.3)."""

import pytest

from repro.harness.runner import run_baseline, run_with_slices
from repro.slices.auto import (
    SliceConstructionError,
    construct_slice,
    profile_memory_dependences,
)
from repro.slices.builder import collect_trace
from repro.workloads import registry, vpr


@pytest.fixture(scope="module")
def vpr_workload():
    return vpr.build(scale=0.1)


@pytest.fixture(scope="module")
def vpr_auto(vpr_workload):
    branch_pc = next(iter(vpr_workload.problem_branch_pcs))
    fork_pc = vpr_workload.slices[0].fork_pc
    return construct_slice(vpr_workload, branch_pc, fork_pc, name="vpr_auto")


def test_memory_profile_finds_cost_store(vpr_workload):
    """The paper's key profile fact: ``heap[ifrom]->cost`` is always the
    inserted ``cost`` (r17), detected by memory dependence profiling."""
    trace = collect_trace(vpr_workload.program, vpr_workload.memory_image, 60_000)
    profile = profile_memory_dependences(trace)
    ifrom_cost_pc = next(
        inst.pc
        for inst in vpr_workload.program.instructions
        if inst.is_load and inst.rd == 12 and inst.imm == 8
    )
    assert ifrom_cost_pc in profile.stable
    _store_pc, value_reg = profile.stable[ifrom_cost_pc]
    assert value_reg == 17  # hptr->cost = cost (r17)
    # The ito-side cost load reads values stored by *other* insertions,
    # so it must NOT be register-allocated.
    ito_cost_pc = next(
        pc
        for pc in vpr_workload.problem_load_pcs
        if vpr_workload.program.at(pc).imm == 8
    )
    assert ito_cost_pc not in profile.stable


def test_auto_slice_applies_paper_optimizations(vpr_auto):
    # Register allocation removed the memory-communicated loads and
    # strength reduction collapsed the division sequences.
    assert vpr_auto.report.removed.get("register allocation", 0) >= 1
    assert vpr_auto.report.removed.get("strength reduction", 0) >= 2
    # The result is small (Figure 5 scale), with few live-ins.
    assert vpr_auto.spec.static_size <= 16
    assert len(vpr_auto.spec.live_in_regs) <= 4
    assert vpr_auto.spec.max_iterations is not None
    # Slices never store.
    assert not any(i.is_store for i in vpr_auto.spec.code.instructions)


def test_auto_slice_covers_the_problem_instructions(vpr_workload, vpr_auto):
    assert vpr_auto.spec.covered_branch_pcs == vpr_workload.problem_branch_pcs
    cost_load_pc = next(
        pc
        for pc in vpr_workload.problem_load_pcs
        if vpr_workload.program.at(pc).imm == 8
    )
    assert cost_load_pc in vpr_auto.spec.covered_load_pcs


def test_auto_slice_is_competitive_with_hand_slice(vpr_workload, vpr_auto):
    base = run_baseline(vpr_workload)
    hand = run_with_slices(vpr_workload)
    auto = run_with_slices(vpr_workload, slices=(vpr_auto.spec,))
    hand_speedup = hand.ipc / base.ipc - 1
    auto_speedup = auto.ipc / base.ipc - 1
    assert auto_speedup > 0.10
    assert auto_speedup > hand_speedup - 0.10
    # Accuracy of overriding predictions stays near-perfect.
    c = auto.correlator
    judged = c.correct_overrides + c.incorrect_overrides
    assert judged > 50
    assert c.correct_overrides / judged > 0.95


def test_auto_slice_for_gzip_match_loop():
    workload = registry.build("gzip", scale=0.1)
    branch_pc = next(iter(workload.problem_branch_pcs))
    fork_pc = workload.slices[0].fork_pc
    auto = construct_slice(workload, branch_pc, fork_pc, name="gzip_auto")
    assert auto.spec.pgis[0].branch_pc == branch_pc
    assert auto.spec.max_iterations is not None  # found the cmp loop
    base = run_baseline(workload)
    auto_run = run_with_slices(workload, slices=(auto.spec,))
    assert auto_run.ipc > base.ipc


def test_auto_slice_on_twolf_constructs_but_may_not_profit():
    """Automatic construction succeeds on twolf but is not hand-tuned;
    the paper notes benefit estimation is "the most difficult issue"
    of automation (Section 3.3) — a valid-but-unprofitable slice is an
    acceptable outcome here, a crash or a corrupt spec is not."""
    workload = registry.build("twolf", scale=0.1)
    branch_pc = next(iter(workload.problem_branch_pcs))
    fork_pc = workload.slices[0].fork_pc
    auto = construct_slice(workload, branch_pc, fork_pc, name="twolf_auto")
    assert auto.spec.pgis[0].branch_pc == branch_pc
    base = run_baseline(workload)
    auto_run = run_with_slices(workload, slices=(auto.spec,))
    assert auto_run.ipc > base.ipc * 0.85


def test_construct_rejects_non_branch():
    workload = registry.build("vpr", scale=0.05)
    with pytest.raises(SliceConstructionError):
        construct_slice(workload, workload.program.entry_pc, 0x1000)

"""Tests for trace collection and backward slicing."""

import pytest

from repro.isa import Assembler
from repro.slices.builder import (
    backward_slice,
    build_static_slice,
    collect_trace,
)


def simple_program():
    """li a; li b; add c=a+b; xor junk; cmplt d=c<10; beq d."""
    asm = Assembler()
    li_a = asm.li("r1", 3)
    li_b = asm.li("r2", 4)
    junk = asm.li("r9", 99)
    add_c = asm.add("r3", "r1", rb="r2")
    junk2 = asm.xor("r10", "r9", imm=1)
    cmp_d = asm.cmplt("r4", "r3", imm=10)
    asm.label("t")
    branch = asm.beq("r4", "t2")
    asm.label("t2")
    asm.halt()
    return asm.build(), (li_a, li_b, junk, add_c, junk2, cmp_d, branch)


def test_trace_collection_stops_at_halt():
    program, _ = simple_program()
    trace = collect_trace(program, program.data)
    assert trace[-1].inst.op.value == "halt"
    assert [e.index for e in trace] == list(range(len(trace)))


def test_backward_slice_selects_only_contributors():
    program, insts = simple_program()
    li_a, li_b, junk, add_c, junk2, cmp_d, branch = insts
    trace = collect_trace(program, program.data)
    target_index = next(
        e.index for e in trace if e.inst.pc == branch.pc
    )
    result = backward_slice(trace, target_index)
    pcs = {trace[i].inst.pc for i in result.indices}
    assert pcs == {li_a.pc, li_b.pc, add_c.pc, cmp_d.pc}
    assert junk.pc not in pcs and junk2.pc not in pcs
    assert result.live_in_regs == frozenset()
    # chain: li -> add -> cmp -> branch = height 4.
    assert result.dataflow_height == 4


def test_backward_slice_stops_at_fork_and_reports_live_ins():
    program, insts = simple_program()
    li_a, li_b, junk, add_c, _junk2, cmp_d, branch = insts
    trace = collect_trace(program, program.data)
    target_index = next(e.index for e in trace if e.inst.pc == branch.pc)
    result = backward_slice(trace, target_index, stop_pc=junk.pc)
    pcs = {trace[i].inst.pc for i in result.indices}
    # The walk stops at the fork: the li's become live-ins.
    assert pcs == {add_c.pc, cmp_d.pc}
    assert result.live_in_regs == frozenset({1, 2})


def test_backward_slice_follows_memory_when_asked():
    asm = Assembler()
    addr = asm.data_word("x", 0)
    li_v = asm.li("r1", 7)
    asm.li("r2", addr)
    store = asm.st("r1", "r2")
    load = asm.ld("r3", "r2")
    cmp_i = asm.cmplt("r4", "r3", imm=10)
    asm.label("t")
    branch = asm.beq("r4", "t")
    asm.halt()
    program = asm.build()
    trace = collect_trace(program, program.data)
    target = next(e.index for e in trace if e.inst.pc == branch.pc)

    with_mem = backward_slice(trace, target, follow_memory=True)
    pcs = {trace[i].inst.pc for i in with_mem.indices}
    assert store.pc in pcs and li_v.pc in pcs

    without = backward_slice(trace, target, follow_memory=False)
    pcs = {trace[i].inst.pc for i in without.indices}
    assert store.pc not in pcs
    assert load.pc in pcs


def test_static_slice_unions_instances():
    asm = Assembler()
    asm.data_words("vals", [1, 0, 1, 0])
    asm.li("r1", 4)
    asm.la("r2", "vals")
    asm.label("loop")
    ld = asm.ld("r3", "r2")
    branch = asm.beq("r3", "skip")
    asm.label("skip")
    asm.add("r2", "r2", imm=8)
    asm.sub("r1", "r1", imm=1)
    asm.bgt("r1", "loop")
    asm.halt()
    program = asm.build()
    trace = collect_trace(program, program.data)
    static = build_static_slice(trace, branch.pc)
    assert static.instances == 4
    assert ld.pc in static.pcs
    assert static.mean_dynamic_size >= 1


def test_static_slice_unknown_target_raises():
    program, _ = simple_program()
    trace = collect_trace(program, program.data)
    with pytest.raises(ValueError):
        build_static_slice(trace, 0xDEAD)

"""Wire codecs: request round-trips preserve the cache key; result
payloads are checksum-verified before unpickling."""

import pytest

from repro.errors import ServiceError
from repro.harness.cache import fingerprint
from repro.harness.parallel import RunRequest
from repro.service.codec import (
    decode_request,
    decode_stats,
    encode_request,
    encode_stats,
)
from repro.uarch.stats import RunStats

REQUESTS = [
    RunRequest(workload="vpr", scale=0.05),
    RunRequest(workload="gzip", scale=0.05, mode="slice", dedicated=True),
    RunRequest(
        workload="mcf",
        scale=0.1,
        mode="perfect",
        perfect_branch_pcs=(12, 4),
        perfect_load_pcs=(7,),
        overrides=(("memory_latency", 400),),
    ),
    RunRequest(
        workload="vpr", scale=0.05, fast_forward=5000, sample=2000,
        sample_regions=3, sample_period=10_000,
    ),
]


@pytest.mark.parametrize("request_", REQUESTS, ids=lambda r: r.mode)
def test_request_roundtrip_is_exact(request_):
    decoded = decode_request(encode_request(request_))
    assert decoded == request_
    assert fingerprint(decoded) == fingerprint(request_)


def test_request_roundtrip_survives_json():
    import json

    for request in REQUESTS:
        wire = json.loads(json.dumps(encode_request(request)))
        assert fingerprint(decode_request(wire)) == fingerprint(request)


def test_stats_roundtrip():
    stats = RunStats(config_name="4-wide", workload_name="vpr")
    stats.committed = 1234
    stats.cycles = 5678
    decoded = decode_stats(encode_stats(stats))
    assert decoded.committed == 1234
    assert decoded.cycles == 5678


def test_stats_checksum_rejects_tampering():
    payload = encode_stats(RunStats(config_name="4-wide", workload_name="x"))
    import base64

    blob = bytearray(base64.b64decode(payload["payload"]))
    blob[len(blob) // 2] ^= 0xFF
    payload["payload"] = base64.b64encode(bytes(blob)).decode()
    with pytest.raises(ServiceError):
        decode_stats(payload)


def test_stats_rejects_malformed_payload():
    with pytest.raises(ServiceError):
        decode_stats({"payload": "not base64!!!", "sha256": "0" * 64})
    with pytest.raises(ServiceError):
        decode_stats({})

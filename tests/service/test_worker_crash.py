"""Queue crash safety: a worker process killed mid-lease (via the PR 3
FaultPlan, ``os._exit`` while the job is leased) must not lose the job
— the lease expires, another worker re-claims it, and the job
completes exactly once with a result bit-identical to an undisturbed
in-process run."""

import multiprocessing
import pickle
import time

from repro.harness.cache import RunCache, fingerprint
from repro.harness.faults import CRASH_EXIT_CODE, FaultKind, FaultPlan
from repro.harness.parallel import RunRequest, run_matrix
from repro.service.queue import JobQueue
from repro.service.store import ContentStore
from repro.service.worker import Worker

VPR = RunRequest(workload="vpr", scale=0.05)


def _run_crashing_worker(root: str) -> None:
    """Child-process entry: claim the job, then die holding the lease
    (FaultPlan CRASH at attempt 0 is ``os._exit``, not an exception)."""
    plan = FaultPlan.targeting({(VPR, 0): FaultKind.CRASH})
    worker = Worker(
        store=ContentStore(root),
        lease=1.0,
        poll=0.05,
        fault_plan=plan,
    )
    worker.run(max_jobs=1)


def test_killed_worker_job_is_releashed_and_completes_once(tmp_path):
    root = tmp_path / "cache"
    queue = JobQueue(root)
    key, _ = queue.submit(VPR)

    process = multiprocessing.Process(
        target=_run_crashing_worker, args=(str(root),)
    )
    process.start()
    process.join(60)
    assert process.exitcode == CRASH_EXIT_CODE

    # The corpse still owns the lease: the job is neither lost nor done.
    job = queue.job(key)
    assert job.status == "leased"
    assert job.attempts == 1

    # Before the lease deadline the job is invisible to other workers.
    if job.lease_deadline - time.time() > 0.05:
        assert queue.claim("early-bird") is None

    # Once the lease expires, a live worker re-claims and finishes it.
    time.sleep(max(0.0, job.lease_deadline - time.time()) + 0.05)
    store = ContentStore(root)
    survivor = Worker(store=store, queue=queue, lease=10.0, poll=0.05)
    assert survivor.run(drain=True) == 1
    assert survivor.completed == 1

    job = queue.job(key)
    assert job.status == "done"
    assert job.attempts == 2  # crash charged one, the re-run another
    assert queue.counters()["lease_expiries"] == 1
    assert queue.counters()["completed"] == 1

    # Exactly once: nothing left for anyone else.
    idle = Worker(store=store, queue=queue, poll=0.05)
    assert idle.run(drain=True) == 0

    # And the recovered result is bit-identical to an undisturbed run.
    expected = run_matrix([VPR], jobs=1, cache=RunCache(tmp_path / "ref"))
    recovered = store.runs.get_by_key(fingerprint(VPR))
    assert pickle.dumps(recovered) == pickle.dumps(expected[0])
    queue.close()


def test_zombie_worker_cannot_complete_a_relased_job(tmp_path):
    """Owner-checked completion: a worker that lost its lease cannot
    resolve the job out from under the current owner."""
    queue = JobQueue(tmp_path / "cache")
    key, _ = queue.submit(VPR)
    queue.claim("zombie", lease=0.01)
    time.sleep(0.05)
    release = queue.claim("live", lease=30.0)
    assert release is not None
    assert not queue.complete(key, "zombie")
    assert queue.job(key).status == "leased"
    assert queue.complete(key, "live")
    queue.close()

"""End-to-end service differential: a sweep executed by ``repro
serve`` + ``repro worker`` must be *bit-identical* to the in-process
pool — same ``RunStats`` pickle bytes, same content-addressed cache
keys — and a repeated sweep must be answered entirely from the
ContentStore with zero jobs enqueued."""

import pickle
import threading

import pytest

from repro.errors import ServiceError
from repro.harness.cache import RunCache, fingerprint
from repro.harness.parallel import (
    RunRequest,
    reset_skipped_log,
    run_matrix,
)
from repro.service.client import ServiceClient
from repro.service.queue import JobQueue
from repro.service.server import ExperimentServer, sweep_id
from repro.service.store import ContentStore
from repro.service.worker import Worker

MATRIX = [
    RunRequest(workload="vpr", scale=0.05, mode="base"),
    RunRequest(workload="vpr", scale=0.05, mode="slice"),
    RunRequest(workload="gzip", scale=0.05, mode="base"),
]


@pytest.fixture
def service(tmp_path):
    """A live ExperimentServer on an ephemeral port, with its store
    and queue under ``tmp_path/server``."""
    import asyncio

    store = ContentStore(tmp_path / "server")
    queue = JobQueue(store.root)
    server = ExperimentServer(store=store, queue=queue, port=0)
    loop = asyncio.new_event_loop()
    ready = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        ready.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10)
    yield server
    loop.call_soon_threadsafe(loop.stop)
    thread.join(10)
    queue.close()


def drain_in_background(server: ExperimentServer, max_jobs: int) -> Worker:
    """A worker thread that blocks until it resolves *max_jobs* jobs."""
    worker = Worker(
        store=server.store, queue=server.queue, lease=10.0, poll=0.05
    )
    thread = threading.Thread(
        target=worker.run, kwargs={"max_jobs": max_jobs}, daemon=True
    )
    thread.start()
    worker.thread = thread
    return worker


def test_service_mode_is_bit_identical_to_in_process(
    tmp_path, service, monkeypatch
):
    expected = run_matrix(
        MATRIX, jobs=1, cache=RunCache(tmp_path / "inproc")
    )

    worker = drain_in_background(service, max_jobs=len(MATRIX))
    monkeypatch.setenv(
        "REPRO_SERVICE_URL", f"http://127.0.0.1:{service.port}"
    )
    client_cache = RunCache(tmp_path / "client")
    got = run_matrix(MATRIX, jobs=1, cache=client_cache)
    worker.thread.join(120)
    assert not worker.thread.is_alive()

    assert [pickle.dumps(s) for s in got] == [
        pickle.dumps(s) for s in expected
    ]
    # Identical content addresses on both sides of the wire: the keys
    # the client re-published under match the keys the worker stored.
    keys = {fingerprint(request) for request in MATRIX}
    assert {p.stem for p in client_cache.entry_paths()} == keys
    assert {p.stem for p in service.store.runs.entry_paths()} == keys


def test_repeat_sweep_is_served_without_enqueueing(service):
    client = ServiceClient(f"http://127.0.0.1:{service.port}")
    first = client.submit_sweep(MATRIX)
    assert first["enqueued"] == len(MATRIX)
    worker = Worker(
        store=service.store, queue=service.queue, lease=10.0, poll=0.05
    )
    assert worker.run(drain=True) == len(MATRIX)

    submitted_before = service.queue.counters().get("submitted", 0)
    second = client.submit_sweep(MATRIX)
    assert second["sweep"] == first["sweep"]  # content-addressed sweep id
    assert second["enqueued"] == 0
    assert second["pending"] == []
    assert set(second["results"]) == set(first["keys"])
    # The queue saw no new work at all: pure ContentStore serve path.
    assert service.queue.counters().get("submitted", 0) == submitted_before
    assert service.queue.status_counts()["pending"] == 0

    # And the poll path re-serves the whole sweep from the store too.
    polled = client.poll_sweep(first["sweep"])
    assert set(polled["results"]) == set(first["keys"])
    assert polled["pending"] == []


def test_duplicate_requests_collapse_to_one_job(service):
    client = ServiceClient(f"http://127.0.0.1:{service.port}")
    response = client.submit_sweep([MATRIX[0], MATRIX[0], MATRIX[0]])
    assert response["enqueued"] == 1
    assert len(response["keys"]) == 3  # input order preserved
    assert response["keys"][0] == response["keys"][1]


def test_failed_job_surfaces_as_skip_not_hang(service, monkeypatch):
    # An unknown workload passes request validation but fails every
    # execution attempt; the queue quarantines it and the client's
    # on_error="skip" policy records the hole instead of waiting.
    bogus = RunRequest(workload="vpr", scale=0.05, overrides=(
        ("memory_latency", "not-a-latency"),
    ))
    worker = drain_in_background(
        service, max_jobs=service.queue.max_attempts
    )
    monkeypatch.setenv(
        "REPRO_SERVICE_URL", f"http://127.0.0.1:{service.port}"
    )
    reset_skipped_log()
    report = run_matrix(
        [bogus],
        jobs=1,
        cache=RunCache(None, enabled=False),
        on_error="skip",
        return_report=True,
    )
    worker.thread.join(60)
    assert report.skipped == 1
    outcome = report.outcomes[0]
    assert outcome.status == "skipped"
    assert "failed job" in outcome.error
    reset_skipped_log()


def test_unreachable_service_raises_service_error(monkeypatch):
    monkeypatch.setenv("REPRO_SERVICE_URL", "http://127.0.0.1:1")
    with pytest.raises(ServiceError):
        run_matrix(
            [MATRIX[0]], jobs=1, cache=RunCache(None, enabled=False)
        )


def test_local_cache_hits_never_reach_the_service(
    tmp_path, service, monkeypatch
):
    local = RunCache(tmp_path / "local")
    expected = run_matrix([MATRIX[0]], jobs=1, cache=local)
    monkeypatch.setenv(
        "REPRO_SERVICE_URL", f"http://127.0.0.1:{service.port}"
    )
    before = dict(service.counters)
    again = run_matrix([MATRIX[0]], jobs=1, cache=local)
    assert pickle.dumps(again[0]) == pickle.dumps(expected[0])
    assert service.counters == before  # no HTTP traffic at all


def test_http_surface(service):
    client = ServiceClient(f"http://127.0.0.1:{service.port}")
    assert client.healthz()
    status = client.status()
    assert set(status) == {"server", "queue", "store"}
    with pytest.raises(ServiceError):
        client.poll_sweep("doesnotexist")
    with pytest.raises(ServiceError):
        client._call("POST", "/api/sweep", {"requests": [{"bad": 1}]})
    with pytest.raises(ServiceError):
        client._call("GET", "/api/result/unknownkey")


def test_sweep_id_is_content_addressed():
    keys = [fingerprint(request) for request in MATRIX]
    assert sweep_id(keys) == sweep_id(list(keys))
    assert sweep_id(keys) != sweep_id(keys[::-1])

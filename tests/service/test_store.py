"""ContentStore: one stats/clear/quarantine contract over the run
cache, snapshot store, and fuzz corpus, plus cross-process counter
persistence."""

import json

import pytest

from repro.fuzz.diff import Divergence
from repro.fuzz.gen import generate
from repro.harness.parallel import RunRequest, run_matrix
from repro.service.store import NAMESPACES, ContentStore
from repro.uarch.stats import RunStats

VPR = RunRequest(workload="vpr", scale=0.05)


@pytest.fixture
def divergence():
    return Divergence(
        seed=3,
        scale=0.25,
        tier_a="interp",
        tier_b="event-fused",
        kind="stream",
        detail="synthetic fixture",
    )


def test_namespaces_share_one_root(tmp_path):
    store = ContentStore(tmp_path)
    assert tuple(store.namespaces()) == NAMESPACES
    assert store.runs.root == store.root
    assert store.snapshots.root == store.root / "snapshots"
    assert store.fuzz.root == store.root / "fuzz"
    # One shared quarantine directory across every namespace.
    assert store.snapshots.corrupt_dir == store.runs.corrupt_dir
    assert store.fuzz.corrupt_dir == store.runs.corrupt_dir


def test_stats_counts_entries_and_bytes(tmp_path, divergence):
    store = ContentStore(tmp_path)
    store.runs.put(VPR, RunStats(config_name="4-wide", workload_name="vpr"))
    store.fuzz.put(generate(3, 0.25), divergence)
    stats = store.stats()
    assert stats["runs"]["entries"] == 1
    assert stats["runs"]["bytes"] > 0
    assert stats["fuzz"]["entries"] == 1
    assert stats["snapshots"]["entries"] == 0
    assert stats["snapshots"]["hit_rate"] is None


def test_fuzz_namespace_quarantines_corrupt_case(tmp_path, divergence):
    store = ContentStore(tmp_path)
    path = store.fuzz.put(generate(3, 0.25), divergence)
    key = path.name.removesuffix(".repro.json")
    assert store.fuzz.get(key) is not None
    assert store.fuzz.get("nope") is None

    path.write_text("{ not json")
    assert store.fuzz.get(key) is None
    assert not path.exists()  # moved, not deleted: evidence survives
    assert store.fuzz.quarantined_count() == 1
    assert (store.fuzz.corrupt_dir / path.name).is_file()
    assert store.fuzz.corruptions == 1
    assert store.stats()["fuzz"]["quarantined"] == 1


def test_fuzz_namespace_rejects_wrong_schema(tmp_path, divergence):
    store = ContentStore(tmp_path)
    path = store.fuzz.put(generate(3, 0.25), divergence)
    case = json.loads(path.read_text())
    case["schema"] = 999
    path.write_text(json.dumps(case))
    key = path.name.removesuffix(".repro.json")
    assert store.fuzz.get(key) is None
    assert store.fuzz.quarantined_count() == 1


def test_clear_reports_per_namespace(tmp_path, divergence):
    store = ContentStore(tmp_path)
    store.runs.put(VPR, RunStats(config_name="4-wide", workload_name="vpr"))
    store.fuzz.put(generate(3, 0.25), divergence)
    removed = store.clear()
    assert removed["runs"] == 1
    assert removed["fuzz"] == 1
    assert removed["snapshots"] == 0
    assert store.stats()["runs"]["entries"] == 0


def test_clear_only_one_namespace(tmp_path, divergence):
    store = ContentStore(tmp_path)
    store.runs.put(VPR, RunStats(config_name="4-wide", workload_name="vpr"))
    store.fuzz.put(generate(3, 0.25), divergence)
    removed = store.clear(only="fuzz")
    assert removed == {"fuzz": 1}
    assert store.stats()["runs"]["entries"] == 1
    with pytest.raises(ValueError):
        store.clear(only="nope")


def test_counters_persist_across_processes(tmp_path):
    store = ContentStore(tmp_path)
    assert store.runs.get(VPR) is None  # miss
    store.runs.put(VPR, RunStats(config_name="4-wide", workload_name="vpr"))
    assert store.runs.get(VPR) is not None  # hit
    store.flush_counters()
    assert store.counters_path.is_file()

    fresh = ContentStore(tmp_path)  # simulates a new process
    stats = fresh.stats()
    assert stats["runs"]["hits"] == 1
    assert stats["runs"]["misses"] == 1
    assert stats["runs"]["hit_rate"] == 0.5


def test_flush_is_delta_based_not_double_counted(tmp_path):
    store = ContentStore(tmp_path)
    store.runs.get(VPR)
    store.flush_counters()
    store.flush_counters()  # no new events: no double count
    assert ContentStore(tmp_path).stats()["runs"]["misses"] == 1
    store.runs.get(VPR)
    store.flush_counters()
    assert ContentStore(tmp_path).stats()["runs"]["misses"] == 2


def test_run_matrix_flushes_store_counters(tmp_path):
    store = ContentStore(tmp_path)
    run_matrix([VPR], jobs=1, cache=store.runs)
    # The miss (and the re-read pattern of the matrix) must have been
    # persisted without an explicit flush call.
    persisted = json.loads(store.counters_path.read_text())
    assert persisted["runs"]["misses"] >= 1


def test_full_clear_drops_persistent_counters_and_queue(tmp_path):
    from repro.service.queue import JobQueue

    store = ContentStore(tmp_path)
    store.runs.get(VPR)
    store.flush_counters()
    queue = JobQueue(tmp_path)
    queue.submit(VPR)
    queue.close()
    removed = store.clear()
    assert removed["queue"] == 1
    assert not store.counters_path.exists()
    assert ContentStore(tmp_path).stats()["runs"]["misses"] == 0


def test_disabled_store_never_touches_disk(tmp_path):
    store = ContentStore(tmp_path, enabled=False)
    store.runs.put(VPR, RunStats(config_name="4-wide", workload_name="vpr"))
    assert store.runs.get(VPR) is None
    assert store.stats()["runs"]["entries"] == 0

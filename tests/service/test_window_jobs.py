"""Service-side window decomposition: ``repro serve`` turns a
multi-region sweep into per-window ``kind="window"`` jobs, workers
publish each window into the ``windows`` store namespace, and the poll
path reassembles the whole-run aggregate — so a half-warm re-sweep
(8 -> 10 regions, say) enqueues only the missing windows and a fully
warm one is answered with zero simulation.

These drive :meth:`ExperimentServer._route` directly (no HTTP): the
routing layer is exercised end-to-end by ``tests/service/test_service.py``
and the CI service-smoke job.
"""

import dataclasses
import json

import pytest

from repro.harness.cache import fingerprint, window_fingerprint
from repro.harness.parallel import (
    RunRequest,
    execute_request,
    window_depths,
)
from repro.service.codec import decode_stats, encode_request
from repro.service.queue import JobQueue
from repro.service.server import ExperimentServer
from repro.service.store import ContentStore
from repro.service.worker import Worker

#: gzip@0.1 runs ~17.6k dynamic instructions; depths up to 8k all fit.
SWEEP = RunRequest(
    workload="gzip", scale=0.1, mode="base",
    sample=300, sample_regions=3, sample_period=2_000,
)


@pytest.fixture
def server(tmp_path, monkeypatch):
    """A routed-but-unbound server over a temp store + queue (the
    snapshot store shares the same root via REPRO_CACHE_DIR so worker
    chain builds land in tmp too)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    store = ContentStore(tmp_path / "server")
    queue = JobQueue(store.root)
    server = ExperimentServer(store=store, queue=queue, port=0)
    yield server
    queue.close()


def submit(server, requests):
    body = json.dumps(
        {"requests": [encode_request(r) for r in requests]}
    ).encode()
    status, payload = server._route("POST", "/api/sweep", body)
    assert status == 200
    return payload


def poll(server, sid):
    status, payload = server._route("GET", f"/api/sweep/{sid}", b"")
    assert status == 200
    return payload


def drain(server, jobs=None):
    worker = Worker(store=server.store, queue=server.queue, lease=10.0)
    resolved = worker.run(drain=True)
    if jobs is not None:
        assert resolved == jobs
    return worker


def test_sweep_decomposes_into_window_jobs(server):
    first = submit(server, [SWEEP])
    assert first["enqueued"] == 3  # one job per window, not one per run
    assert server.counters["window_jobs"] == 3
    key = fingerprint(SWEEP)
    assert first["pending"] == [key]
    for depth in window_depths(SWEEP):
        job = server.queue.job(window_fingerprint(SWEEP, depth))
        assert job is not None and job.kind == "window"

    drain(server, jobs=3)
    polled = poll(server, first["sweep"])
    assert polled["pending"] == []
    got = decode_stats(polled["results"][key])
    # Bit-identical to the in-process serial loop, every field.
    want = execute_request(SWEEP)
    assert dataclasses.asdict(got) == dataclasses.asdict(want)
    assert server.counters["assembled"] == 1
    # Assembly published the aggregate: the run cache now owns the key.
    assert server.store.runs.get_by_key(key) is not None


def test_half_warm_resweep_enqueues_only_missing_windows(server):
    submit(server, [SWEEP])
    drain(server, jobs=3)
    poll(server, submit(server, [SWEEP])["sweep"])

    wider = dataclasses.replace(SWEEP, sample_regions=5)
    second = submit(server, [wider])
    # Parent run-cache key differs (sample_regions fingerprints), but
    # the 3 shared windows are already in the windows namespace: only
    # the 2 new depths become jobs.
    assert second["enqueued"] == 2
    drain(server, jobs=2)
    polled = poll(server, second["sweep"])
    got = decode_stats(polled["results"][fingerprint(wider)])
    want = execute_request(wider)
    assert dataclasses.asdict(got) == dataclasses.asdict(want)


def test_fully_warm_sweep_served_at_submit(server):
    """Once every window is published, a *new* parent over the same
    windows is assembled and served inline at submit time — zero jobs,
    zero simulation."""
    submit(server, [SWEEP])
    drain(server, jobs=3)
    # A distinct parent (different region count) whose schedule is a
    # prefix of the published windows.
    narrower = dataclasses.replace(SWEEP, sample_regions=2)
    response = submit(server, [narrower])
    assert response["enqueued"] == 0
    assert response["pending"] == []
    key = fingerprint(narrower)
    got = decode_stats(response["results"][key])
    want = execute_request(narrower)
    assert dataclasses.asdict(got) == dataclasses.asdict(want)


def test_requests_without_closed_form_schedule_stay_whole(server):
    """No explicit period -> the schedule depends on workload length,
    which the server must not compute (it never simulates): the request
    stays one ordinary kind='run' job. Unsampled requests likewise."""
    derived = dataclasses.replace(SWEEP, sample_period=0)
    plain = RunRequest(workload="gzip", scale=0.05, mode="base")
    response = submit(server, [derived, plain])
    assert response["enqueued"] == 2
    assert server.counters["window_jobs"] == 0
    for request in (derived, plain):
        job = server.queue.job(fingerprint(request))
        assert job is not None and job.kind == "run"


def test_worker_short_circuits_published_window(server):
    """A claimed window job whose result already landed (another worker
    or an in-process run sharing the store) completes without running."""
    submit(server, [SWEEP])
    depths = window_depths(SWEEP)
    keys = [window_fingerprint(SWEEP, d) for d in depths]
    donor = ContentStore(server.store.root)
    from repro.harness.parallel import window_request

    for depth, wkey in zip(depths, keys):
        donor.windows.put(wkey, execute_request(window_request(SWEEP, depth)))
    worker = drain(server, jobs=3)
    assert worker.completed == 3
    # All three were answered from the store: the queue shows them done.
    assert server.queue.status_counts()["done"] == 3


def test_queue_kind_and_assembly_roundtrip(tmp_path):
    queue = JobQueue(tmp_path)
    try:
        with pytest.raises(ValueError):
            queue.submit(SWEEP, kind="nonsense")
        with pytest.raises(ValueError):
            queue.submit(SWEEP, kind="window")  # window jobs need a key
        queue.save_assembly("k1", {"windows": [[0, "a"], [100, "b"]]})
        assert queue.load_assembly("k1") == {"windows": [[0, "a"], [100, "b"]]}
        assert queue.load_assembly("missing") is None
        queue.save_assembly("k1", {"windows": []})  # idempotent overwrite
        assert queue.load_assembly("k1") == {"windows": []}
    finally:
        queue.close()

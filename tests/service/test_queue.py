"""JobQueue lease semantics: idempotent submission, atomic claims,
expiry re-leasing with a bounded attempt budget, owner-checked
resolution, and sweep bookkeeping."""

import time

from repro.harness.cache import fingerprint
from repro.harness.parallel import RunRequest
from repro.service.queue import JobQueue

VPR = RunRequest(workload="vpr", scale=0.05)
GZIP = RunRequest(workload="gzip", scale=0.05)


def make_queue(tmp_path, **kwargs):
    return JobQueue(tmp_path / "cache", **kwargs)


def test_submit_is_idempotent(tmp_path):
    queue = make_queue(tmp_path)
    key, enqueued = queue.submit(VPR)
    assert enqueued
    assert key == fingerprint(VPR)
    key2, enqueued2 = queue.submit(VPR)
    assert key2 == key
    assert not enqueued2
    assert queue.status_counts()["pending"] == 1


def test_claim_is_fifo_and_charges_an_attempt(tmp_path):
    queue = make_queue(tmp_path)
    queue.submit(VPR)
    queue.submit(GZIP)
    first = queue.claim("w1")
    second = queue.claim("w2")
    assert first.request == VPR
    assert second.request == GZIP
    assert first.attempts == 1
    assert queue.claim("w3") is None  # nothing runnable left
    assert queue.status_counts()["leased"] == 2


def test_leased_job_is_invisible_until_deadline(tmp_path):
    queue = make_queue(tmp_path)
    queue.submit(VPR)
    job = queue.claim("w1", lease=30.0)
    assert queue.claim("w2") is None
    assert queue.job(job.key).owner == "w1"


def test_expired_lease_is_regranted_and_counted(tmp_path):
    queue = make_queue(tmp_path)
    key, _ = queue.submit(VPR)
    queue.claim("dead-worker", lease=0.01)
    time.sleep(0.05)
    job = queue.claim("live-worker")
    assert job is not None
    assert job.key == key
    assert job.owner == "live-worker"
    assert job.attempts == 2  # expiry charged the first attempt
    assert queue.counters()["lease_expiries"] == 1


def test_exhausted_attempts_quarantine_the_job(tmp_path):
    queue = make_queue(tmp_path, max_attempts=2)
    key, _ = queue.submit(VPR)
    for _ in range(2):
        assert queue.claim("crashy", lease=0.01) is not None
        time.sleep(0.05)
    # Both attempts spent on expired leases: the next scan fails the
    # job instead of re-granting it forever.
    assert queue.claim("crashy") is None
    job = queue.job(key)
    assert job.status == "failed"
    assert "retries exhausted" in job.error


def test_heartbeat_extends_only_the_owners_lease(tmp_path):
    queue = make_queue(tmp_path)
    key, _ = queue.submit(VPR)
    queue.claim("w1", lease=0.2)
    assert queue.heartbeat(key, "w1", lease=30.0)
    assert not queue.heartbeat(key, "imposter", lease=30.0)
    time.sleep(0.3)
    # The heartbeat pushed the deadline out; the job is not re-grantable.
    assert queue.claim("w2") is None


def test_complete_is_owner_checked(tmp_path):
    queue = make_queue(tmp_path)
    key, _ = queue.submit(VPR)
    queue.claim("w1")
    assert not queue.complete(key, "zombie")
    assert queue.complete(key, "w1")
    assert not queue.complete(key, "w1")  # exactly once
    assert queue.job(key).status == "done"
    assert queue.counters()["completed"] == 1


def test_fail_requeues_until_budget_then_quarantines(tmp_path):
    queue = make_queue(tmp_path, max_attempts=2)
    key, _ = queue.submit(VPR)
    queue.claim("w1")
    assert queue.fail(key, "w1", "boom")
    assert queue.job(key).status == "pending"  # budget remains
    queue.claim("w1")
    assert queue.fail(key, "w1", "boom again")
    job = queue.job(key)
    assert job.status == "failed"
    assert job.error == "boom again"


def test_resubmission_revives_a_failed_job(tmp_path):
    queue = make_queue(tmp_path, max_attempts=1)
    key, _ = queue.submit(VPR)
    queue.claim("w1")
    queue.fail(key, "w1", "boom")
    assert queue.job(key).status == "failed"
    key2, enqueued = queue.submit(VPR)
    assert key2 == key
    assert enqueued
    job = queue.job(key)
    assert job.status == "pending"
    assert job.attempts == 0  # fresh budget


def test_done_job_is_not_reenqueued(tmp_path):
    queue = make_queue(tmp_path)
    key, _ = queue.submit(VPR)
    queue.claim("w1")
    queue.complete(key, "w1")
    _, enqueued = queue.submit(VPR)
    assert not enqueued
    assert queue.job(key).status == "done"


def test_sweeps_roundtrip(tmp_path):
    queue = make_queue(tmp_path)
    keys = [fingerprint(VPR), fingerprint(GZIP)]
    queue.save_sweep("abc123", keys)
    assert queue.load_sweep("abc123") == keys
    assert queue.load_sweep("nope") is None


def test_clear_drops_jobs_keeps_lifetime_counters(tmp_path):
    queue = make_queue(tmp_path)
    queue.submit(VPR)
    key, _ = queue.submit(GZIP)
    queue.claim("w1")
    queue.complete(fingerprint(VPR), "w1")
    assert queue.clear() == 2
    assert queue.status_counts() == {
        "pending": 0, "leased": 0, "done": 0, "failed": 0
    }
    assert queue.counters()["completed"] == 1


def test_queue_survives_reopen(tmp_path):
    queue = make_queue(tmp_path)
    key, _ = queue.submit(VPR)
    queue.close()
    reopened = make_queue(tmp_path)
    job = reopened.job(key)
    assert job is not None
    assert job.status == "pending"
    assert job.request == VPR

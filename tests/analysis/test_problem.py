"""Tests for problem-instruction classification (Table 2 machinery)."""

from repro.analysis.problem import (
    ClassifierConfig,
    classify_problem_instructions,
)
from repro.uarch.stats import PcCounter, RunStats


def stats_with(branches=None, mems=None):
    stats = RunStats()
    for pc, (execs, events) in (branches or {}).items():
        stats.branch_pcs[pc] = PcCounter(execs, events)
    for pc, (execs, events) in (mems or {}).items():
        stats.mem_pcs[pc] = PcCounter(execs, events)
    return stats


def test_high_rate_high_count_is_problem():
    stats = stats_with(branches={0x100: (1000, 400), 0x200: (1000, 5)})
    result = classify_problem_instructions(stats)
    assert result.branch_pcs == {0x100}


def test_low_rate_is_not_problem_even_with_many_events():
    """A 5%-rate branch is excluded by the 10% rule (Section 2.2)."""
    stats = stats_with(branches={0x100: (100_000, 5000)})
    result = classify_problem_instructions(stats)
    assert result.branch_pcs == frozenset()


def test_trivial_event_count_is_excluded():
    stats = stats_with(
        branches={0x100: (10, 5), 0x200: (10_000, 5000)},
        mems={},
    )
    config = ClassifierConfig(min_event_share=0.01)
    result = classify_problem_instructions(stats, config)
    assert 0x200 in result.branch_pcs
    assert 0x100 not in result.branch_pcs  # 5 events < 1% of 5005


def test_memory_and_branch_categories_are_independent():
    stats = stats_with(
        branches={0x100: (100, 50)},
        mems={0x300: (100, 50)},
    )
    result = classify_problem_instructions(stats)
    assert result.branch_pcs == {0x100}
    assert result.load_pcs == {0x300}


def test_coverage_summary_fractions():
    stats = stats_with(
        branches={0x100: (500, 250), 0x200: (1500, 10)},
        mems={0x300: (100, 90), 0x400: (900, 10)},
    )
    result = classify_problem_instructions(stats)
    coverage = result.coverage()
    assert coverage.branch_problem_count == 1
    assert abs(coverage.branch_dynamic_share - 0.25) < 1e-9
    assert abs(coverage.branch_misp_coverage - 250 / 260) < 1e-9
    assert coverage.mem_problem_count == 1
    assert abs(coverage.mem_dynamic_share - 0.10) < 1e-9
    assert abs(coverage.mem_miss_coverage - 0.90) < 1e-9


def test_empty_stats_classify_cleanly():
    result = classify_problem_instructions(RunStats())
    assert result.branch_pcs == frozenset()
    coverage = result.coverage()
    assert coverage.branch_misp_coverage == 0.0

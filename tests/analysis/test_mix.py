"""Tests for the workload characterization utilities."""

import pytest

from repro.analysis.mix import instruction_mix, render_mix_table
from repro.workloads import registry

SCALE = 0.1


@pytest.fixture(scope="module")
def mixes():
    return {
        name: instruction_mix(registry.build(name, SCALE))
        for name in registry.all_names()
    }


def test_fractions_are_consistent(mixes):
    for name, mix in mixes.items():
        parts = (
            mix.loads + mix.stores + mix.branches
            + mix.simple_alu + mix.complex_alu
        )
        assert parts == mix.total, name
        assert 0 < mix.branch_fraction < 0.5, name


def test_mcf_is_memory_dominated(mixes):
    assert mixes["mcf"].load_fraction > 0.2
    # Scattered chains: large data working set relative to the region.
    assert mixes["mcf"].data_working_set_bytes > 12 * 1024


def test_eon_is_compute_dominated(mixes):
    eon = mixes["eon"]
    assert eon.simple_alu + eon.complex_alu > eon.total * 0.5


def test_working_sets_exceed_l1_where_documented(mixes):
    # These analogs are built so their data exceeds the 64KB L1 at
    # scale 1.0; at scale 0.1 they must still touch substantial data.
    for name in ("gcc", "twolf"):
        assert mixes[name].data_working_set_bytes > 16 * 1024, name


def test_static_footprints_are_kernel_sized(mixes):
    for name, mix in mixes.items():
        assert 10 <= mix.static_footprint <= 200, name


def test_render_mix_table(mixes):
    text = render_mix_table(sorted(mixes.items()))
    assert "program" in text
    for name in registry.all_names():
        assert name in text

"""Tests for Table 3 / Table 4 characterization."""

from repro.analysis.characterize import characterize_run, characterize_slice
from repro.uarch.stats import RunStats
from repro.workloads import registry


def test_characterize_vpr_slice_matches_spec():
    workload = registry.build("vpr", scale=0.05)
    spec = workload.slices[0]
    row = characterize_slice("vpr", spec)
    assert row.static_size == len(spec.code)
    assert row.live_ins == len(spec.live_in_regs)
    assert row.predictions == 1
    assert row.prefetches == 2
    assert row.kills == 2
    assert row.kills_in_loop == 1
    assert row.max_iterations == spec.max_iterations
    # The loop region excludes the slice header.
    assert row.loop_size < row.static_size
    assert row.predictions_in_loop == 1


def test_characterize_straight_line_slice_has_no_loop():
    workload = registry.build("twolf", scale=0.05)
    row = characterize_slice("twolf", workload.slices[0])
    assert row.loop_size is None
    assert row.max_iterations is None


def test_characterize_run_derived_metrics():
    base = RunStats(cycles=1000, committed=2000)
    base.branch_mispredictions = 100
    base.load_misses = 50
    base.main_fetched = 3000
    assisted = RunStats(cycles=800, committed=2000)
    assisted.branch_mispredictions = 40
    assisted.load_misses = 20
    assisted.main_fetched = 2500
    assisted.slice_fetched = 300
    row = characterize_run("x", base, assisted, covered_branches=2)
    assert row.mispredictions_removed == 60
    assert abs(row.misprediction_reduction - 0.6) < 1e-9
    assert abs(row.miss_reduction - 0.6) < 1e-9
    assert abs(row.speedup - 0.25) < 1e-9
    # 2800 total fetched vs 3000 base: net fetch reduction.
    assert row.total_fetch_change < 0

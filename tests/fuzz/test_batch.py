"""Seed-batch fan-out: pooled execution, dedupe, and fault holes."""

from repro.fuzz.batch import _FuzzTask, run_fuzz_batch
from repro.harness.faults import FaultKind, FaultPlan

SCALE = 0.25


def test_batch_dedupes_and_reports_clean():
    report = run_fuzz_batch([0, 1, 1, 0, 2], scale=SCALE, jobs=1)
    assert report.checked == [0, 1, 2]
    assert report.divergences == []
    assert report.skipped == []
    assert report.clean


def test_pooled_batch_matches_inline():
    inline = run_fuzz_batch(range(4), scale=SCALE, jobs=1)
    pooled = run_fuzz_batch(range(4), scale=SCALE, jobs=2)
    assert pooled.checked == inline.checked
    assert pooled.divergences == inline.divergences
    assert pooled.skipped == inline.skipped


def test_worker_crash_is_retried_to_completion():
    plan = FaultPlan.targeting(
        {(_FuzzTask(1, SCALE), 0): FaultKind.CRASH}
    )
    report = run_fuzz_batch(
        range(3), scale=SCALE, jobs=2, retries=2, fault_plan=plan
    )
    assert report.clean
    assert report.checked == [0, 1, 2]


def test_exhausted_retries_become_holes_not_verdicts():
    """A seed whose check cannot complete is reported as skipped — the
    rest of the batch still gets real verdicts."""
    plan = FaultPlan.targeting(
        {
            (_FuzzTask(1, SCALE), 0): FaultKind.FLAKY,
            (_FuzzTask(1, SCALE), 1): FaultKind.FLAKY,
        }
    )
    report = run_fuzz_batch(
        range(3), scale=SCALE, jobs=2, retries=1, fault_plan=plan
    )
    assert not report.clean
    assert report.divergences == []
    (hole,) = report.skipped
    assert hole[0] == 1
    assert report.checked == [0, 1, 2]

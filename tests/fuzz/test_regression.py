"""Promoted corpus cases: fixed bugs stay fixed.

Each ``corpus/*.repro.json`` here is a shrunk minimal repro promoted
from a fuzzing run (via ``repro fuzz --shrink``). Replaying runs the
full differential check against the *current* tree, so a case failing
this test means one of the execution tiers regressed into a previously
observed bug.

``0x6.repro.json``: seed 6, shrunk from 236 to 26 units. Found by
fuzzing an intentionally broken fused tier whose store path skipped the
rollback journal (wrong-path stores survived recovery and leaked into
architectural state through a later load). Pinned with the bug absent.
"""

from pathlib import Path

import pytest

from repro.fuzz import corpus
from repro.uarch import fusion

from tests.fuzz.test_diff import _BROKEN_ST_JOURNAL

CASES = sorted((Path(__file__).parent / "corpus").glob("*.repro.json"))


def test_corpus_is_populated():
    assert CASES, "tests/fuzz/corpus/ lost its promoted repro cases"


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_promoted_case_replays_clean(path):
    divergence = corpus.replay(path)
    assert divergence is None, (
        f"{path.name} regressed: {divergence}"
    )


def test_seed6_case_still_detects_its_bug(monkeypatch):
    """The fixture keeps its teeth: reintroducing the fused-store
    journal bug makes the same case diverge again."""
    monkeypatch.setattr(fusion, "_ST_JOURNAL_SRC", _BROKEN_ST_JOURNAL)
    path = Path(__file__).parent / "corpus" / "0x6.repro.json"
    divergence = corpus.replay(path)
    assert divergence is not None
    assert "fused" in divergence.tier_b

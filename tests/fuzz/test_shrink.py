"""Shrinker soundness: output still diverges, never grows, no-op when clean."""

import pytest

from repro.fuzz.gen import generate
from repro.fuzz.shrink import shrink, workload_size
from repro.uarch import fusion

from tests.fuzz.test_diff import _BROKEN_ST_JOURNAL


@pytest.fixture
def broken_fused_store(monkeypatch):
    monkeypatch.setattr(fusion, "_ST_JOURNAL_SRC", _BROKEN_ST_JOURNAL)


def test_shrink_of_clean_workload_is_noop():
    workload = generate(0, 0.25)
    result = shrink(workload, max_checks=10)
    assert result.divergence is None
    assert not result.shrunk
    assert result.workload is workload
    assert result.checks == 1


def test_shrink_keeps_divergence_and_never_grows(broken_fused_store, tmp_path):
    """ISSUE acceptance: the injected fused-store bug is shrunk to a
    smaller repro that still diverges."""
    workload = generate(12, 0.25)
    original = workload_size(workload)
    result = shrink(workload, max_checks=60)

    assert result.original_size == original
    assert result.shrunk_size <= result.original_size
    assert result.shrunk_size == workload_size(result.workload)
    assert result.checks <= 60
    # The recorded divergence is what a cold replay of the shrunk
    # workload reproduces. (Re-checking the same in-memory Program is
    # deliberately avoided: its compiled instruction caches are warm,
    # which can shift which tier diverges first.)
    assert result.divergence is not None
    from repro.fuzz import corpus

    path = corpus.save_case(
        result.workload, result.divergence, cache_root=tmp_path
    )
    assert corpus.replay(path) == result.divergence
    # The budget above reliably removes most of the program.
    assert result.shrunk
    # Every accepted candidate is a well-formed workload: the correct
    # path still halts and the region was re-measured.
    assert result.workload.region > 0

"""Differential cross-check: clean seeds agree, injected bugs diverge."""

from pathlib import Path

import pytest

from repro.fuzz.diff import check_seed
from repro.uarch import fusion

#: The injected-bug fixture: the fused tier stops journaling the word a
#: store overwrites, so wrong-path stores survive rollback. The classic
#: "tier that is fast and wrong" — exactly what the fuzzer exists for.
_BROKEN_ST_JOURNAL = "    pass"

#: Canonical seeds (scale 0.25) known to expose the fused-journal bug.
BUGGY_SEEDS = (6, 12)


@pytest.fixture
def broken_fused_store(monkeypatch):
    monkeypatch.setattr(fusion, "_ST_JOURNAL_SRC", _BROKEN_ST_JOURNAL)


def test_clean_seeds_agree_across_all_tiers():
    for seed in range(6):
        divergence = check_seed(seed, scale=0.25)
        assert divergence is None, str(divergence)


def test_injected_fused_store_bug_is_detected(broken_fused_store):
    """ISSUE acceptance: an intentionally-introduced tier bug (the
    fused tier skips the store journal) is caught by the cross-check
    and classified against the fused tiers."""
    found = [
        (seed, check_seed(seed, scale=0.25)) for seed in BUGGY_SEEDS
    ]
    for seed, divergence in found:
        assert divergence is not None, f"seed {seed} missed the bug"
        assert divergence.seed == seed
        assert "fused" in divergence.tier_b
        assert divergence.klass == f"{divergence.kind}:interp/{divergence.tier_b}"


def test_divergence_is_deterministic(broken_fused_store):
    a = check_seed(BUGGY_SEEDS[0], scale=0.25)
    b = check_seed(BUGGY_SEEDS[0], scale=0.25)
    assert a == b


def test_pinned_seed_batch_parses():
    """The CI batch file stays well-formed and pins the canonical
    bug-hunting seeds."""
    lines = (
        Path(__file__).with_name("seeds.txt").read_text().splitlines()
    )
    seeds = [
        int(text, 0)
        for text in (line.split("#", 1)[0].strip() for line in lines)
        if text
    ]
    assert len(seeds) == len(set(seeds)) == 50
    assert set(BUGGY_SEEDS) <= set(seeds)

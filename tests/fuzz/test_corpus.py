"""Corpus persistence: save/load/ls/replay/clear roundtrip."""

import pytest

from repro.fuzz import corpus
from repro.fuzz.diff import Divergence
from repro.fuzz.gen import generate


@pytest.fixture
def divergence():
    return Divergence(
        seed=3,
        scale=0.25,
        tier_a="interp",
        tier_b="event-fused",
        kind="stream",
        detail="synthetic fixture",
    )


def test_save_load_roundtrips_workload(tmp_path, divergence):
    workload = generate(3, 0.25)
    path = corpus.save_case(workload, divergence, cache_root=tmp_path)
    assert path.is_file() and path.suffix == ".json"

    case = corpus.load_case(path)
    rebuilt = corpus.case_workload(case)
    assert rebuilt.name == workload.name
    assert rebuilt.region == workload.region
    assert rebuilt.memory_image == workload.memory_image
    # Architectural identity (comments and label back-references are
    # display-only and intentionally not serialized).
    fields = lambda p: [  # noqa: E731
        (i.op, i.rd, i.ra, i.rb, i.imm, i.target, i.pc)
        for i in p.instructions
    ]
    assert fields(rebuilt.program) == fields(workload.program)
    assert rebuilt.program.entry_pc == workload.program.entry_pc
    assert rebuilt.program.labels == workload.program.labels
    assert len(rebuilt.slices) == len(workload.slices)


def test_schema_version_is_enforced(tmp_path, divergence):
    path = corpus.save_case(generate(3, 0.25), divergence, cache_root=tmp_path)
    text = path.read_text().replace('"schema": 1', '"schema": 99')
    path.write_text(text)
    with pytest.raises(ValueError, match="schema"):
        corpus.load_case(path)


def test_list_and_clear(tmp_path, divergence):
    assert corpus.list_cases(tmp_path) == []
    corpus.save_case(
        generate(3, 0.25), divergence, original_size=500, cache_root=tmp_path
    )
    (summary,) = corpus.list_cases(tmp_path)
    assert summary["seed"] == 3
    assert summary["klass"] == "stream:interp/event-fused"
    assert summary["original_size"] == 500
    assert summary["size"] <= 500
    assert corpus.clear(tmp_path) == 1
    assert corpus.list_cases(tmp_path) == []
    assert corpus.clear(tmp_path) == 0


def test_replay_runs_the_full_check(tmp_path, divergence):
    """Replaying a case whose 'bug' never existed returns clean — the
    verdict reflects the current tree, not the stored classification."""
    path = corpus.save_case(generate(3, 0.25), divergence, cache_root=tmp_path)
    assert corpus.replay(path) is None

"""Generator determinism and well-formedness."""

import pickle
import subprocess
import sys

import pytest

from repro.fuzz.gen import generate, parse_seed, seed_name
from repro.workloads import registry

SEEDS = (0, 1, 2, 5, 9)


def test_seed_name_roundtrip():
    assert seed_name(42) == "fuzz-0x2a"
    assert parse_seed("fuzz-0x2a") == 42
    for seed in (0, 7, 0xDEAD):
        assert parse_seed(seed_name(seed)) == seed
    with pytest.raises(ValueError):
        parse_seed("gzip")


def test_same_seed_is_pickle_identical():
    """Byte-identical workloads for the same (seed, scale) — the pool
    and the run-cache fingerprint depend on it."""
    for seed in SEEDS:
        a = pickle.dumps(generate(seed, 0.3))
        b = pickle.dumps(generate(seed, 0.3))
        assert a == b, f"seed {seed} not deterministic"


def test_different_seeds_differ():
    blobs = {pickle.dumps(generate(seed, 0.3)) for seed in SEEDS}
    assert len(blobs) == len(SEEDS)


def test_scale_scales_region():
    small = generate(3, 0.2)
    large = generate(3, 1.0)
    assert 0 < small.region < large.region


def test_workload_is_well_formed():
    for seed in SEEDS:
        workload = generate(seed, 0.3)
        assert workload.name == seed_name(seed)
        assert workload.region > 0
        assert workload.program.entry_pc is not None
        assert workload.memory_image
        for spec in workload.slices:
            assert spec.fork_pc in {
                inst.pc for inst in workload.program.instructions
            }


def test_cross_process_determinism():
    """A fresh interpreter builds the same bytes — no hash-order or
    ambient-state dependence."""
    snippet = (
        "import hashlib, pickle, sys\n"
        "from repro.fuzz.gen import generate\n"
        "blob = pickle.dumps(generate(5, 0.3))\n"
        "sys.stdout.write(hashlib.sha256(blob).hexdigest())\n"
    )
    digests = {
        subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        for _ in range(2)
    }
    import hashlib

    local = hashlib.sha256(pickle.dumps(generate(5, 0.3))).hexdigest()
    assert digests == {local}


def test_registry_dispatches_seed_names():
    workload = registry.build("fuzz-0x2a", scale=0.3)
    assert workload.name == "fuzz-0x2a"
    assert pickle.dumps(workload) == pickle.dumps(generate(42, 0.3))
    # The twelve paper benchmarks are untouched by the dispatch path.
    with pytest.raises(KeyError):
        registry.build("no-such-workload")

"""``repro fuzz`` CLI: batch, ls, replay, cache-clear integration."""

import pytest

from repro.fuzz import corpus
from repro.fuzz.diff import Divergence
from repro.fuzz.gen import generate
from repro.harness.cli import build_parser, main


@pytest.fixture
def cache_root(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


def _stored_case(cache_root, seed=3):
    divergence = Divergence(
        seed=seed,
        scale=0.25,
        tier_a="interp",
        tier_b="event-fused",
        kind="stream",
        detail="synthetic fixture",
    )
    return corpus.save_case(
        generate(seed, 0.25), divergence, cache_root=cache_root
    )


def test_parser_accepts_fuzz_flags():
    args = build_parser().parse_args(
        ["fuzz", "--seeds", "10", "--seed-start", "5", "--shrink"]
    )
    assert args.experiment == "fuzz"
    assert args.seeds == 10
    assert args.seed_start == 5
    assert args.shrink


def test_clean_batch_exits_0(cache_root, capsys):
    code = main(["fuzz", "--seeds", "3", "--scale", "0.25", "--jobs", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "3 seed(s)" in out
    assert "0 divergence(s)" in out


def test_seeds_file_batch(cache_root, tmp_path, capsys):
    seeds = tmp_path / "seeds.txt"
    seeds.write_text("# pinned\n0\n0x1\n2  # trailing comment\n")
    code = main(
        ["fuzz", "--seeds-file", str(seeds), "--scale", "0.25", "--jobs", "1"]
    )
    assert code == 0
    assert "3 seed(s)" in capsys.readouterr().out


def test_ls_lists_stored_cases(cache_root, capsys):
    assert main(["fuzz", "ls"]) == 0
    assert "no fuzz repros" in capsys.readouterr().out
    _stored_case(cache_root)
    assert main(["fuzz", "ls"]) == 0
    out = capsys.readouterr().out
    assert "0x3" in out
    assert "stream:interp/event-fused" in out


def test_replay_clean_case_exits_0(cache_root, capsys):
    path = _stored_case(cache_root)
    assert main(["fuzz", "--replay", str(path)]) == 0
    assert "replays clean" in capsys.readouterr().out


def test_unknown_fuzz_action_exits_2(cache_root, capsys):
    assert main(["fuzz", "frobnicate"]) == 2
    assert "unknown fuzz action" in capsys.readouterr().err


def test_cache_clear_reports_fuzz_corpus(cache_root, capsys):
    _stored_case(cache_root)
    assert main(["cache", "clear"]) == 0
    out = capsys.readouterr().out
    assert "1 fuzz repro(s)" in out
    assert corpus.list_cases() == []


def test_cache_clear_fuzz_only_keeps_other_stores(cache_root, capsys):
    from repro.harness.cache import RunCache
    from repro.harness.parallel import RunRequest, run_matrix

    run_matrix(
        [RunRequest(workload="gzip", scale=0.05, mode="base")],
        jobs=1,
        cache=RunCache(),
    )
    _stored_case(cache_root)
    assert main(["cache", "clear", "--fuzz-only"]) == 0
    assert "1 fuzz repro(s)" in capsys.readouterr().out
    assert corpus.list_cases() == []
    assert RunCache().get(
        RunRequest(workload="gzip", scale=0.05, mode="base")
    ) is not None

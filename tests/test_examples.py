"""Smoke tests: every shipped example must run and print its story."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)

EXPECTED_FRAGMENTS = {
    "quickstart.py": ["speedup", "predictions"],
    "heap_insertion_slice.py": ["Figure 5", "optimized slice"],
    "pointer_chasing_prefetch.py": ["background prefetch", "baseline"],
    "correlator_walkthrough.py": ["path a b c f b c d f b g", "P2"],
    "auto_slice_construction.py": ["register-allocated", "automatically"],
    "extensions_tour.py": ["forks suppressed", "dispatch mispredict"],
}


def test_every_example_has_expectations():
    assert {p.name for p in EXAMPLES} == set(EXPECTED_FRAGMENTS)


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(example):
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    output = result.stdout.lower()
    for fragment in EXPECTED_FRAGMENTS[example.name]:
        assert fragment.lower() in output, (
            f"{example.name}: missing {fragment!r}"
        )

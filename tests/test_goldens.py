"""Deterministic regression goldens.

Everything in the library is bit-reproducible (workload data comes from
a fixed LCG; the simulator has no randomness), so functional counters
are asserted *exactly* and timing is asserted within a band. If a
change shifts a functional golden, the workload's program or data
changed — update the golden deliberately. If timing drifts outside the
band, a model change altered first-order behavior — decide whether
that was intended before touching the numbers.

Goldens were captured at scale 0.1 on the 4-wide machine.
"""

import pytest

from repro.harness.runner import run_baseline, run_with_slices
from repro.workloads import registry

SCALE = 0.1

#: name -> (committed, branches, loads) — exact functional facts.
FUNCTIONAL = {
    "bzip2": (11685, 2546, 1663),
    "crafty": (6453, 1332, 520),
    "eon": (16790, 621, 3840),
    "gap": (3912, 912, 1089),
    "gcc": (6220, 1457, 2056),
    "gzip": (17580, 832, 3344),
    "mcf": (5546, 1164, 1734),
    "parser": (9772, 675, 650),
    "perl": (8513, 480, 2160),
    "twolf": (12435, 440, 2750),
    "vortex": (5284, 240, 1200),
    "vpr": (27430, 1353, 5580),
}

#: name -> (base_cycles, slice_cycles, base_misp, slice_misp) — timing
#: facts, allowed to drift +-15% (model refinements move constants).
TIMING = {
    "bzip2": (20006, 12689, 977, 778),
    "crafty": (9411, 9409, 390, 381),
    "eon": (7672, 7080, 98, 96),
    "gap": (8681, 5483, 294, 247),
    "gcc": (19870, 19837, 424, 424),
    "gzip": (16382, 14272, 277, 133),
    "mcf": (11437, 9338, 311, 307),
    "parser": (9563, 9563, 40, 40),
    "perl": (7199, 6364, 126, 125),
    "twolf": (11192, 10650, 124, 72),
    "vortex": (3642, 3545, 1, 1),
    "vpr": (14090, 9770, 230, 37),
}

TIMING_TOLERANCE = 0.15


@pytest.fixture(scope="module", params=sorted(FUNCTIONAL))
def measured(request):
    workload = registry.build(request.param, SCALE)
    return (
        request.param,
        run_baseline(workload),
        run_with_slices(workload),
    )


def test_functional_goldens_exact(measured):
    name, base, _assisted = measured
    committed, branches, loads = FUNCTIONAL[name]
    assert base.committed == committed, name
    assert base.branches_committed == branches, name
    assert base.loads_committed == loads, name


def test_timing_goldens_within_band(measured):
    name, base, assisted = measured
    base_cycles, slice_cycles, base_misp, slice_misp = TIMING[name]

    def close(measured_value, golden, label):
        if golden < 50:  # tiny counts: allow small absolute slack
            assert abs(measured_value - golden) <= 10, (name, label)
            return
        ratio = measured_value / golden
        assert 1 - TIMING_TOLERANCE <= ratio <= 1 + TIMING_TOLERANCE, (
            name,
            label,
            measured_value,
            golden,
        )

    close(base.cycles, base_cycles, "base cycles")
    close(assisted.cycles, slice_cycles, "slice cycles")
    close(base.branch_mispredictions, base_misp, "base mispredictions")
    close(assisted.branch_mispredictions, slice_misp, "slice mispredictions")


def test_slice_runs_commit_identically(measured):
    name, base, assisted = measured
    assert assisted.committed == base.committed, name
    assert assisted.branches_committed == base.branches_committed, name

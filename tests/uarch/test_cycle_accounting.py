"""Tests for the CPI-stack cycle accounting."""

from repro.isa import Assembler
from repro.uarch import Core, FOUR_WIDE


def accounted(asm_builder, **kw):
    asm = Assembler()
    asm_builder(asm)
    core = Core(asm.build(), FOUR_WIDE, cycle_accounting=True, **kw)
    stats = core.run()
    total = sum(stats.cycle_breakdown.values())
    return stats, {
        k: v / total for k, v in stats.cycle_breakdown.items()
    }


def test_breakdown_covers_all_cycles():
    def build(asm):
        asm.li("r1", 200)
        asm.label("loop")
        asm.sub("r1", "r1", imm=1)
        asm.bgt("r1", "loop")
        asm.halt()

    stats, _fracs = accounted(build)
    # The final iteration accounts before committing the region's last
    # instruction, so the tally can exceed the cycle count by one.
    assert 0 <= sum(stats.cycle_breakdown.values()) - stats.cycles <= 1


def test_parallel_code_is_busy_dominated():
    def build(asm):
        for reg in range(1, 9):
            asm.li(f"r{reg}", reg)
        for i in range(600):
            asm.add(f"r{1 + (i % 8)}", f"r{1 + (i % 8)}", imm=1)
        asm.halt()

    _stats, fracs = accounted(build)
    assert fracs.get("busy", 0) > 0.5


def test_serial_chain_is_execute_dominated():
    def build(asm):
        asm.li("r1", 0)
        for _ in range(600):
            asm.add("r1", "r1", imm=1)
        asm.halt()

    _stats, fracs = accounted(build)
    assert fracs.get("execute", 0) + fracs.get("drain", 0) > 0.5


def test_pointer_chase_is_memory_dominated():
    def build(asm):
        # Build a scattered chain in the data segment.
        chain = [0x10000 + 8 * ((i * 7919) % 4096) for i in range(300)]
        for addr, nxt in zip(chain, chain[1:]):
            asm._data[addr] = nxt  # direct image injection
        asm._data[chain[-1]] = 0
        asm.li("r1", chain[0])
        asm.label("loop")
        asm.ld("r1", "r1")
        asm.bne("r1", "loop")
        asm.halt()

    _stats, fracs = accounted(build)
    assert fracs.get("memory", 0) > 0.5


def test_unpredictable_branches_show_frontend_cycles():
    import random

    rng = random.Random(5)

    def build(asm):
        asm.data_words("vals", [rng.randrange(2) for _ in range(400)])
        asm.li("r1", 400)
        asm.la("r2", "vals")
        asm.label("loop")
        asm.ld("r3", "r2")
        asm.beq("r3", "skip")
        asm.add("r4", "r4", imm=1)
        asm.label("skip")
        asm.add("r2", "r2", imm=8)
        asm.sub("r1", "r1", imm=1)
        asm.bgt("r1", "loop")
        asm.halt()

    _stats, fracs = accounted(build)
    assert fracs.get("frontend", 0) > 0.1


def test_accounting_disabled_by_default():
    def build(asm):
        asm.li("r1", 1)
        asm.halt()

    asm = Assembler()
    build(asm)
    stats = Core(asm.build(), FOUR_WIDE).run()
    assert stats.cycle_breakdown == {}

"""Fetch-policy behavior: past-taken-branch fetch, ICOUNT sharing."""

from repro.isa import Assembler
from repro.uarch import Core, FOUR_WIDE
from repro.workloads import vpr


def test_fetch_past_taken_branches():
    """A chain of unconditional branches must not throttle fetch: the
    front end 'can fetch past taken branches' (Table 1)."""
    asm = Assembler()
    # 200 iterations of a 3-instruction loop linked by direct branches.
    asm.li("r1", 200)
    asm.label("a")
    asm.br("b")
    asm.nop()  # never fetched on the correct path
    asm.label("b")
    asm.sub("r1", "r1", imm=1)
    asm.bgt("r1", "a")
    asm.halt()
    stats = Core(asm.build(), FOUR_WIDE).run()
    # 3 committed instructions per iteration; with single-branch-per-
    # cycle fetch this would take >= 2 cycles/iter. Past-taken fetch
    # sustains better than that.
    assert stats.committed / stats.cycles > 1.3


def test_direct_branches_never_mispredict():
    asm = Assembler()
    asm.li("r1", 300)
    asm.label("loop")
    asm.br("skip")
    asm.nop()
    asm.label("skip")
    asm.sub("r1", "r1", imm=1)
    asm.bgt("r1", "loop")
    asm.halt()
    stats = Core(asm.build(), FOUR_WIDE).run()
    assert stats.branch_mispredictions <= 2  # only loop-exit warmup


def test_helper_threads_share_fetch_bandwidth():
    """With slices running, main-thread fetch slows only modestly: the
    ICOUNT policy biases fetch toward the main thread."""
    workload = vpr.build(scale=0.08)
    base = Core(
        workload.program,
        FOUR_WIDE,
        memory_image=workload.memory_image,
        region=workload.region,
    ).run()
    assisted = Core(
        workload.program,
        FOUR_WIDE,
        slices=workload.slices,
        memory_image=workload.memory_image,
        region=workload.region,
    ).run()
    # Helper-thread fetch is a bounded fraction of total fetch.
    total = assisted.main_fetched + assisted.slice_fetched
    assert assisted.slice_fetched / total < 0.35
    # And the run is faster despite sharing (the whole point).
    assert assisted.cycles < base.cycles


def test_window_fill_throttles_fetch_on_misses():
    """A pointer chase fills the window and stalls fetch; fetched-but-
    not-committed work stays bounded by the window size."""
    asm = Assembler()
    chain = [0x20000 + 8 * ((i * 6151) % 8192) for i in range(400)]
    for addr, nxt in zip(chain, chain[1:]):
        asm._data[addr] = nxt
    asm._data[chain[-1]] = 0
    asm.li("r1", chain[0])
    asm.label("loop")
    asm.ld("r1", "r1")
    asm.bne("r1", "loop")
    asm.halt()
    core = Core(asm.build(), FOUR_WIDE)
    stats = core.run()
    # Fetch can't run unboundedly ahead: total fetched is bounded by
    # committed + wrong-path work near the window size per redirect.
    assert stats.main_fetched < stats.committed * 3

"""Tests for the value-prediction correlation extension."""

import pytest

from repro.harness.runner import run_baseline, run_with_slices
from repro.workloads import mcf


@pytest.fixture(scope="module")
def runs():
    workload = mcf.build(scale=0.2)
    vp_slice = mcf.value_prediction_slice(workload)
    base = run_baseline(workload)
    assisted = run_with_slices(workload, slices=(vp_slice,))
    return workload, base, assisted


def test_value_predictions_bind_and_are_accurate(runs):
    _workload, _base, assisted = runs
    c = assisted.correlator
    assert c.value_predictions_generated > 100
    assert c.value_overrides > 50
    judged = c.correct_value_overrides + c.incorrect_value_overrides
    assert judged > 30
    assert c.correct_value_overrides / judged > 0.85


def test_wrong_value_predictions_squash_and_recover(runs):
    """Wrong predictions must be detected at load resolution and pay a
    squash; the run still completes with correct architectural state."""
    workload, base, assisted = runs
    assert assisted.value_mispredict_squashes > 0
    assert assisted.committed == base.committed


def test_value_prediction_does_not_regress(runs):
    _workload, base, assisted = runs
    assert assisted.ipc > base.ipc


def test_architectural_state_unaffected_by_value_predictions():
    from repro.uarch.config import FOUR_WIDE
    from repro.uarch.core import Core

    workload = mcf.build(scale=0.1)
    vp_slice = mcf.value_prediction_slice(workload)
    plain = Core(
        workload.program,
        FOUR_WIDE,
        memory_image=workload.memory_image,
        region=workload.region,
    )
    plain.run()
    assisted = Core(
        workload.program,
        FOUR_WIDE,
        slices=(vp_slice,),
        memory_image=workload.memory_image,
        region=workload.region,
    )
    assisted.run()
    assert plain.memory.snapshot() == assisted.memory.snapshot()


def test_correct_value_prediction_hides_latency():
    """A covered load bound to a correct FULL prediction completes at
    L1 latency even when the line misses."""
    workload = mcf.build(scale=0.2)
    vp_slice = mcf.value_prediction_slice(workload)
    assisted = run_with_slices(workload, slices=(vp_slice,))
    # Covered loads that bound correctly are not counted as misses, so
    # per-PC miss rates at covered loads drop vs baseline.
    base = run_baseline(workload)
    covered = {
        pgi.branch_pc
        for pgi in vp_slice.pgis
        if pgi.kind.value == "value"
    }
    base_events = sum(base.mem_pcs[pc].events for pc in covered)
    assisted_events = sum(assisted.mem_pcs[pc].events for pc in covered)
    assert assisted_events < base_events

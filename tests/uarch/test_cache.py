"""Tests for set-associative caches and the data hierarchy."""

import pytest
from hypothesis import given, strategies as st

from repro.uarch.cache import (
    DataHierarchy,
    PrefetchVictimBuffer,
    SetAssociativeCache,
)
from repro.uarch.config import FOUR_WIDE, CacheConfig


def small_cache(size=1024, assoc=2, line=64, latency=3):
    return SetAssociativeCache(CacheConfig(size, assoc, line, latency))


def test_cold_miss_then_hit():
    cache = small_cache()
    assert not cache.lookup(0x1000)
    cache.fill(0x1000)
    assert cache.lookup(0x1000)
    assert cache.hits == 1
    assert cache.misses == 1


def test_same_line_different_offsets_hit():
    cache = small_cache()
    cache.fill(0x1000)
    assert cache.lookup(0x103F)  # same 64B line
    assert not cache.lookup(0x1040)  # next line


def test_lru_eviction_order():
    cache = small_cache(size=256, assoc=2, line=64)  # 2 sets
    # Three lines mapping to set 0 (line addresses even).
    a, b, c = 0x0000, 0x0080, 0x0100
    cache.fill(a)
    cache.fill(b)
    cache.lookup(a)  # a becomes MRU
    victim = cache.fill(c)  # evicts b
    assert victim is not None
    assert victim[0] == cache.line_of(b)
    assert cache.probe(a)
    assert not cache.probe(b)


def test_fill_existing_line_is_not_duplicate():
    cache = small_cache()
    cache.fill(0x1000)
    assert cache.fill(0x1000, dirty=True) is None
    cache.invalidate(0x1000)
    assert not cache.probe(0x1000)


def test_store_sets_dirty_and_eviction_reports_it():
    cache = small_cache(size=128, assoc=1, line=64)  # 2 sets, direct mapped
    cache.fill(0x0000)
    cache.lookup(0x0000, is_store=True)
    victim = cache.fill(0x0080)  # same set, evicts dirty line
    assert victim == (0, True)


def test_config_rejects_non_power_of_two_sets():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=96, associativity=1, line_bytes=32, latency=1)


def test_victim_buffer_fifo_and_promotion():
    buf = PrefetchVictimBuffer(entries=2, line_bytes=64)
    buf.insert(0x0000, from_prefetch=True)
    buf.insert(0x0040, from_prefetch=False)
    buf.insert(0x0080, from_prefetch=False)  # evicts 0x0000
    assert buf.lookup(0x0000) is None
    assert buf.lookup(0x0040) is False
    # lookup removes the entry
    assert buf.lookup(0x0040) is None


def test_hierarchy_l1_hit_latency():
    hier = DataHierarchy(FOUR_WIDE)
    first = hier.access(0x4000, is_store=False, now=0)
    assert not first.l1_hit
    assert first.to_memory
    assert first.latency == 3 + 6 + 100
    second = hier.access(0x4000, is_store=False, now=500)
    assert second.l1_hit
    assert second.latency == 3


def test_hierarchy_inflight_miss_merges():
    """A second access while the fill is in flight pays the remainder."""
    hier = DataHierarchy(FOUR_WIDE)
    first = hier.access(0x4000, is_store=False, now=0)
    assert first.latency == 109
    second = hier.access(0x4000, is_store=False, now=50)
    assert second.l1_hit
    assert second.latency == 109 - 50
    assert second.counts_as_miss  # still mostly uncovered
    third = hier.access(0x4000, is_store=False, now=108)
    assert third.latency == 3
    assert not third.counts_as_miss


def test_hierarchy_l2_hit_latency():
    hier = DataHierarchy(FOUR_WIDE)
    hier.access(0x4000, is_store=False, now=0)  # now in L1+L2
    # Touch a different L1 line sharing the same L2 line (L2 lines are
    # 128B = two L1 lines).
    result = hier.access(0x4040, is_store=False, now=500)
    assert not result.l1_hit
    assert result.l2_hit
    assert result.latency == 3 + 6


def test_store_miss_absorbed_by_write_buffer():
    hier = DataHierarchy(FOUR_WIDE)
    result = hier.access(0x8000, is_store=True, now=0)
    assert not result.l1_hit
    assert result.latency == FOUR_WIDE.l1d.latency
    assert hier.stats.store_l1_misses == 1
    # Write-allocate: the line is now present.
    assert hier.access(0x8000, is_store=False, now=500).l1_hit


def test_prefetch_fill_lands_in_buffer_not_l1():
    hier = DataHierarchy(FOUR_WIDE)
    hier.prefetch_fill(0xC000, now=0)
    assert not hier.l1.probe(0xC000)
    result = hier.access(0xC000, is_store=False, now=500)
    assert result.buffer_hit
    assert not result.counts_as_miss
    assert result.latency == FOUR_WIDE.l1d.latency
    assert hier.stats.prefetch_buffer_hits == 1
    # Promotion: next access is an L1 hit.
    assert hier.access(0xC000, is_store=False, now=600).l1_hit


def test_prefetch_partial_coverage():
    """A demand access soon after the prefetch pays the remainder."""
    hier = DataHierarchy(FOUR_WIDE)
    hier.prefetch_fill(0xC000, now=0)  # arrives at 109
    result = hier.access(0xC000, is_store=False, now=40)
    assert result.buffer_hit
    assert result.latency == 109 - 40
    assert result.counts_as_miss


def test_prefetch_fill_skips_lines_already_cached():
    hier = DataHierarchy(FOUR_WIDE)
    hier.access(0x4000, is_store=False)
    hier.prefetch_fill(0x4000)
    assert hier.stats.prefetches_issued == 0


def test_miss_listener_fires_on_misses_and_buffer_hits():
    hier = DataHierarchy(FOUR_WIDE)
    seen = []
    hier.set_miss_listener(lambda addr, now: seen.append(addr))
    hier.access(0x4000, is_store=False)  # miss -> listener
    hier.access(0x4000, is_store=False)  # L1 hit: no training
    hier.prefetch_fill(0x9000)
    hier.access(0x9000, is_store=False)  # buffer hit: trains streams
    assert seen == [0x4000, 0x9000]


def test_would_miss_probe_is_non_destructive():
    hier = DataHierarchy(FOUR_WIDE)
    assert hier.would_miss(0x4000)
    before = hier.l1.accesses
    assert hier.l1.accesses == before
    hier.access(0x4000, is_store=False)
    assert not hier.would_miss(0x4000)


@given(st.lists(st.integers(0, 2**20), min_size=1, max_size=200))
def test_cache_contents_never_exceed_capacity(addresses):
    """Property: a set never holds more lines than its associativity."""
    cache = small_cache(size=512, assoc=2, line=64)
    for addr in addresses:
        if not cache.lookup(addr):
            cache.fill(addr)
    for bucket in cache._sets:
        assert len(bucket) <= 2
        assert len({entry >> 1 for entry in bucket}) == len(bucket)


@given(st.lists(st.integers(0, 2**16), max_size=120))
def test_hierarchy_access_hit_after_access(addresses):
    """Property: immediately re-accessing an address always hits L1."""
    hier = DataHierarchy(FOUR_WIDE)
    for addr in addresses:
        hier.access(addr, is_store=False)
        assert hier.access(addr, is_store=False).l1_hit


@given(
    st.lists(
        st.tuples(st.integers(0, 255), st.booleans()), min_size=1, max_size=300
    )
)
def test_lru_matches_reference_model(accesses):
    """Property: the set-associative cache behaves exactly like an
    ordered-dict LRU reference model."""
    from collections import OrderedDict

    cache = small_cache(size=512, assoc=2, line=64)  # 4 sets, 2 ways
    reference: dict[int, OrderedDict] = {i: OrderedDict() for i in range(4)}

    for line_index, is_store in accesses:
        addr = line_index * 64
        set_index = line_index % 4
        bucket = reference[set_index]

        expect_hit = line_index in bucket
        got_hit = cache.lookup(addr, is_store=is_store)
        assert got_hit == expect_hit, (line_index, is_store)

        if expect_hit:
            bucket.move_to_end(line_index)
            if is_store:
                bucket[line_index] = True
        else:
            cache.fill(addr, dirty=is_store)
            if len(bucket) == 2:
                victim_line, victim_dirty = bucket.popitem(last=False)
            bucket[line_index] = is_store

    # Final contents agree.
    for set_index, bucket in reference.items():
        for line_index in bucket:
            assert cache.probe(line_index * 64)

"""Unit tests for SMT thread contexts and the ICOUNT policy."""

from repro.arch.memory import Memory
from repro.uarch.smt import ThreadContext, ThreadKind, icount_order
from repro.workloads import vpr


def make_slice_spec():
    return vpr.build(scale=0.05).slices[0]


def test_activate_main():
    workload = vpr.build(scale=0.05)
    ctx = ThreadContext(0)
    ctx.activate_main(workload.program, Memory(workload.memory_image))
    assert ctx.is_main
    assert ctx.active and ctx.can_fetch
    assert ctx.state.pc == workload.program.entry_pc


def test_activate_slice_copies_live_ins():
    spec = make_slice_spec()
    ctx = ThreadContext(1)
    ctx.activate_slice(
        spec,
        Memory(),
        live_in_values={21: 0xBEEF},
        instance_id=7,
        fork_vn=100,
        livein_ready_cycle=5,
    )
    assert not ctx.is_main
    assert ctx.state.pc == spec.entry_pc
    assert ctx.state.regs.read(21) == 0xBEEF
    assert ctx.instance_id == 7
    assert ctx.fork_vn == 100


def test_release_returns_context_to_idle_pool():
    spec = make_slice_spec()
    ctx = ThreadContext(1)
    ctx.activate_slice(spec, Memory(), {}, 1, 10, 0)
    ctx.slice_misses = 3
    ctx.release()
    assert not ctx.active
    assert ctx.spec is None
    assert ctx.instance_id == -1
    # Reactivation resets per-instance counters.
    ctx.activate_slice(spec, Memory(), {}, 2, 20, 0)
    assert ctx.slice_misses == 0


def test_fetch_stall_blocks_can_fetch():
    workload = vpr.build(scale=0.05)
    ctx = ThreadContext(0)
    ctx.activate_main(workload.program, Memory())
    ctx.fetch_stalled = True
    assert not ctx.can_fetch


def make_thread(thread_id, kind, in_flight):
    ctx = ThreadContext(thread_id)
    ctx.kind = kind
    ctx.active = True
    ctx.in_flight = in_flight
    return ctx


def test_icount_prefers_main_despite_higher_count():
    main = make_thread(0, ThreadKind.MAIN, 12)
    helper = make_thread(1, ThreadKind.SLICE, 5)
    order = icount_order([helper, main], main_bias=4.0)
    assert order[0] is main  # 12/4 = 3 < 5


def test_icount_yields_when_main_far_ahead():
    main = make_thread(0, ThreadKind.MAIN, 100)
    helper = make_thread(1, ThreadKind.SLICE, 3)
    order = icount_order([main, helper], main_bias=4.0)
    assert order[0] is helper  # 100/4 = 25 > 3


def test_icount_skips_stalled_threads():
    main = make_thread(0, ThreadKind.MAIN, 0)
    helper = make_thread(1, ThreadKind.SLICE, 0)
    helper.fetch_stalled = True
    order = icount_order([main, helper], main_bias=4.0)
    assert order == [main]

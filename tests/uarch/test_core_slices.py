"""End-to-end tests of the slice machinery inside the timing core."""

import dataclasses

import pytest

from repro.harness.runner import run_baseline, run_with_slices
from repro.uarch.config import FOUR_WIDE
from repro.workloads import registry, vpr


@pytest.fixture(scope="module")
def vpr_small():
    return vpr.build(scale=0.1)


@pytest.fixture(scope="module")
def vpr_runs(vpr_small):
    return run_baseline(vpr_small), run_with_slices(vpr_small)


def test_slices_speed_up_vpr(vpr_runs):
    base, assisted = vpr_runs
    assert assisted.ipc > base.ipc * 1.15
    assert assisted.committed == base.committed  # same region


def test_slices_remove_mispredictions(vpr_runs):
    base, assisted = vpr_runs
    assert assisted.branch_mispredictions < base.branch_mispredictions * 0.6


def test_override_accuracy_exceeds_99_percent(vpr_runs):
    """Section 6.1: 'our slices and prediction correlation mechanism
    exceed a 99% prediction accuracy when they override'."""
    _base, assisted = vpr_runs
    c = assisted.correlator
    judged = c.correct_overrides + c.incorrect_overrides
    assert judged > 100
    assert c.correct_overrides / judged > 0.99


def test_forks_follow_insertions(vpr_small, vpr_runs):
    _base, assisted = vpr_runs
    # One fork per driver iteration reaches the correct path; wrong-path
    # refetches add more attempts, some squashed.
    assert assisted.forks_taken >= 150
    assert assisted.forks_squashed > 0
    assert assisted.fork_points_fetched >= assisted.forks_taken


def test_slice_instructions_fetched_and_retired(vpr_runs):
    _base, assisted = vpr_runs
    assert assisted.slice_fetched > 0
    assert 0 < assisted.slice_retired <= assisted.slice_fetched


def test_total_fetch_decreases_with_slices(vpr_runs):
    """The paper's Table 4 observation: despite slice overhead, total
    fetched instructions go down (fewer wrong-path fetches)."""
    base, assisted = vpr_runs
    assert assisted.main_fetched + assisted.slice_fetched < base.main_fetched


def test_kills_are_applied_and_some_restored(vpr_runs):
    _base, assisted = vpr_runs
    c = assisted.correlator
    assert c.kills_applied > 100
    # Wrong paths cross kill points; squashes must restore some.
    assert c.kills_restored > 0


def test_architectural_state_identical_with_and_without_slices(vpr_small):
    """Slices are 'completely microarchitectural in nature': final
    memory must be bit-identical."""
    from repro.uarch.core import Core

    base_core = Core(
        vpr_small.program,
        FOUR_WIDE,
        memory_image=vpr_small.memory_image,
        region=vpr_small.region,
    )
    base_core.run()
    slice_core = Core(
        vpr_small.program,
        FOUR_WIDE,
        slices=vpr_small.slices,
        memory_image=vpr_small.memory_image,
        region=vpr_small.region,
    )
    slice_core.run()
    assert base_core.memory.snapshot() == slice_core.memory.snapshot()


def test_two_contexts_force_ignored_forks():
    workload = registry.build("mcf", scale=0.2)  # ships two slices
    config = dataclasses.replace(FOUR_WIDE, thread_contexts=2)
    assisted = run_with_slices(workload, config)
    assert assisted.forks_ignored > 0


def test_dedicated_resources_do_not_regress(vpr_small):
    shared = run_with_slices(vpr_small)
    dedicated = run_with_slices(vpr_small, dedicated=True)
    assert dedicated.ipc >= shared.ipc * 0.98


def test_late_predictions_trigger_early_resolution():
    """mcf's slice runs behind: late mismatches must early-resolve."""
    workload = registry.build("mcf", scale=0.2)
    assisted = run_with_slices(workload)
    assert assisted.correlator.late_predictions > 0
    assert assisted.early_resolutions > 0


def test_eight_wide_also_benefits(vpr_small):
    from repro.uarch.config import EIGHT_WIDE

    base = run_baseline(vpr_small, EIGHT_WIDE)
    assisted = run_with_slices(vpr_small, EIGHT_WIDE)
    assert assisted.ipc > base.ipc


def test_parser_without_slices_equals_baseline():
    workload = registry.build("parser", scale=0.1)
    assert workload.slices == ()
    base = run_baseline(workload)
    assisted = run_with_slices(workload)
    assert assisted.cycles == base.cycles
    assert assisted.slice_fetched == 0

"""Unit tests for the perfect overlays, config presets, and stats."""

import dataclasses

import pytest

from repro.uarch.config import CacheConfig, EIGHT_WIDE, FOUR_WIDE
from repro.uarch.perfect import ALL_PERFECT, NO_PERFECT, problem_perfect
from repro.uarch.stats import PcCounter, RunStats


def test_no_perfect_is_empty():
    assert NO_PERFECT.is_empty
    assert not NO_PERFECT.branch_is_perfect(0x100)
    assert not NO_PERFECT.load_is_perfect(0x100)


def test_all_perfect_matches_everything():
    assert not ALL_PERFECT.is_empty
    assert ALL_PERFECT.branch_is_perfect(0xDEAD)
    assert ALL_PERFECT.load_is_perfect(0xBEEF)


def test_problem_perfect_is_selective():
    spec = problem_perfect(branch_pcs=[0x10], load_pcs=[0x20])
    assert spec.branch_is_perfect(0x10)
    assert not spec.branch_is_perfect(0x20)
    assert spec.load_is_perfect(0x20)
    assert not spec.load_is_perfect(0x10)
    assert not spec.is_empty


def test_table1_presets():
    assert FOUR_WIDE.width == 4
    assert FOUR_WIDE.simple_alus == 4
    assert EIGHT_WIDE.simple_alus == 8
    assert EIGHT_WIDE.l1d == FOUR_WIDE.l1d  # shared memory system
    assert FOUR_WIDE.l1d.num_sets == 64 * 1024 // (2 * 64)


def test_widened_derives_consistently():
    custom = FOUR_WIDE.widened("16-wide", width=16, window=512, ports=8)
    assert custom.width == 16
    assert custom.simple_alus == 16
    assert custom.window_entries == 512
    assert custom.l2 == FOUR_WIDE.l2


def test_cache_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1000, associativity=2, line_bytes=64, latency=1)


def test_pc_counter_rate():
    counter = PcCounter(executions=200, events=50)
    assert counter.rate == 0.25
    assert PcCounter().rate == 0.0


def test_run_stats_rates_and_counters():
    stats = RunStats(cycles=100, committed=250)
    assert stats.ipc == 2.5
    stats.count_branch(0x10, mispredicted=True)
    stats.count_branch(0x10, mispredicted=False)
    stats.count_mem(0x20, missed=True)
    assert stats.branch_pcs[0x10].executions == 2
    assert stats.branch_pcs[0x10].events == 1
    assert stats.mem_pcs[0x20].rate == 1.0
    assert RunStats().ipc == 0.0
    assert RunStats().mispredict_rate == 0.0
    assert RunStats().load_miss_rate == 0.0


def test_total_fetched_sums_threads():
    stats = RunStats(main_fetched=100, slice_fetched=40)
    assert stats.total_fetched == 140


def test_frozen_configs_are_immutable():
    with pytest.raises(dataclasses.FrozenInstanceError):
        FOUR_WIDE.width = 8

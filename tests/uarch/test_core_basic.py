"""Baseline-core tests: correctness of timing, squash, and statistics."""

import pytest

from repro.isa import Assembler
from repro.uarch import ALL_PERFECT, Core, EIGHT_WIDE, FOUR_WIDE, problem_perfect


def straight_line_program(n=200):
    asm = Assembler()
    asm.li("r1", 0)
    for _ in range(n):
        asm.add("r1", "r1", imm=1)
    asm.halt()
    return asm.build()


def counted_loop_program(iterations=500, body=4):
    asm = Assembler()
    asm.li("r1", iterations)
    asm.li("r2", 0)
    asm.label("loop")
    for _ in range(body):
        asm.add("r2", "r2", imm=1)
    asm.sub("r1", "r1", imm=1)
    asm.bgt("r1", "loop")
    asm.halt()
    return asm.build()


def test_straight_line_completes_and_counts():
    prog = straight_line_program(100)
    stats = Core(prog, FOUR_WIDE).run()
    assert stats.committed == 102  # li + 100 adds + halt
    assert not stats.hit_cycle_limit
    assert stats.cycles > 0


def test_serial_dependence_chain_is_one_ipc_at_best():
    """All adds depend on the previous one: IPC can't exceed 1."""
    prog = straight_line_program(400)
    stats = Core(prog, FOUR_WIDE).run()
    assert stats.ipc <= 1.05


def test_independent_instructions_reach_superscalar_ipc():
    asm = Assembler()
    for reg in range(1, 9):
        asm.li(f"r{reg}", reg)
    for i in range(400):
        asm.add(f"r{1 + (i % 8)}", f"r{1 + (i % 8)}", imm=1)
    asm.halt()
    stats = Core(asm.build(), FOUR_WIDE).run()
    assert stats.ipc > 2.5


def test_eight_wide_beats_four_wide_on_parallel_code():
    asm = Assembler()
    for reg in range(1, 17):
        asm.li(f"r{reg}", reg)
    for i in range(800):
        asm.add(f"r{1 + (i % 16)}", f"r{1 + (i % 16)}", imm=1)
    asm.halt()
    prog = asm.build()
    four = Core(prog, FOUR_WIDE).run()
    eight = Core(prog, EIGHT_WIDE).run()
    assert eight.ipc > four.ipc * 1.4


def test_loop_branch_is_learned_and_counted():
    prog = counted_loop_program(iterations=400)
    stats = Core(prog, FOUR_WIDE).run()
    assert stats.branches_committed == 400
    # The loop branch is TTT...N: near-perfect prediction after warmup.
    assert stats.branch_mispredictions < 20
    pc = next(iter(stats.branch_pcs))
    assert stats.branch_pcs[pc].executions == 400


def test_unpredictable_branch_causes_mispredictions():
    """Branch on a pseudo-random data value: predictor near 50%."""
    import random

    rng = random.Random(11)
    asm = Assembler()
    values = asm.data_words("vals", [rng.randrange(2) for _ in range(512)])
    asm.li("r1", 512)  # counter
    asm.la("r2", "vals")
    asm.li("r3", 0)
    asm.label("loop")
    asm.ld("r4", "r2")
    asm.beq("r4", "skip")
    asm.add("r3", "r3", imm=1)
    asm.label("skip")
    asm.add("r2", "r2", imm=8)
    asm.sub("r1", "r1", imm=1)
    asm.bgt("r1", "loop")
    asm.halt()
    stats = Core(asm.build(), FOUR_WIDE).run()
    assert stats.branch_mispredictions > 100  # ~50% of 512


def test_mispredictions_cost_cycles():
    """Same instruction mix; unpredictable direction must run slower."""

    def build(pattern):
        asm = Assembler()
        asm.data_words("vals", pattern)
        asm.li("r1", len(pattern))
        asm.la("r2", "vals")
        asm.li("r3", 0)
        asm.label("loop")
        asm.ld("r4", "r2")
        asm.beq("r4", "skip")
        asm.add("r3", "r3", imm=1)
        asm.label("skip")
        asm.add("r2", "r2", imm=8)
        asm.sub("r1", "r1", imm=1)
        asm.bgt("r1", "loop")
        asm.halt()
        return asm.build()

    import random

    rng = random.Random(5)
    biased = Core(build([1] * 512), FOUR_WIDE).run()
    random_pattern = [rng.randrange(2) for _ in range(512)]
    unbiased = Core(build(random_pattern), FOUR_WIDE).run()
    assert unbiased.branch_mispredictions > biased.branch_mispredictions + 50
    assert unbiased.ipc < biased.ipc * 0.8


def test_wrong_path_stores_are_rolled_back():
    """A mispredicted branch guards a store; memory must stay correct."""
    asm = Assembler()
    flag_addr = asm.data_word("flag", 0)
    out_addr = asm.data_word("out", 0)
    # Alternate the flag so the branch mispredicts sometimes.
    asm.data_words("vals", [i & 1 for i in range(64)])
    asm.li("r1", 64)
    asm.la("r2", "vals")
    asm.la("r5", "out")
    asm.li("r6", 0)  # correct-path accumulator
    asm.li("r7", 999)
    asm.label("loop")
    asm.ld("r4", "r2")
    asm.beq("r4", "skip")
    asm.st("r7", "r5")  # only stored when r4 != 0
    asm.add("r6", "r6", imm=1)
    asm.label("skip")
    asm.add("r2", "r2", imm=8)
    asm.sub("r1", "r1", imm=1)
    asm.bgt("r1", "loop")
    asm.st("r6", "r5", 8)  # out+8 = count of odd entries
    asm.halt()
    core = Core(asm.build(), FOUR_WIDE)
    core.run()
    assert core.memory.load(out_addr + 8) == 32


def test_cold_misses_show_up_in_load_stats():
    asm = Assembler()
    asm.data_space("arr", 4096)
    asm.li("r1", 128)
    asm.la("r2", "arr")
    asm.label("loop")
    asm.ld("r3", "r2")
    asm.add("r2", "r2", imm=256)  # new L1 line every 4 iterations... 256B strides
    asm.sub("r1", "r1", imm=1)
    asm.bgt("r1", "loop")
    asm.halt()
    stats = Core(asm.build(), FOUR_WIDE).run()
    assert stats.loads_committed == 128
    assert stats.load_misses > 0


def test_all_perfect_overlay_removes_pdes():
    prog = counted_loop_program(iterations=200)
    stats = Core(prog, FOUR_WIDE, perfect=ALL_PERFECT).run()
    assert stats.branch_mispredictions == 0


def test_all_perfect_is_fastest():
    import random

    rng = random.Random(3)
    asm = Assembler()
    asm.data_words("vals", [rng.randrange(2) for _ in range(256)])
    asm.data_space("big", 8192)
    asm.li("r1", 256)
    asm.la("r2", "vals")
    asm.la("r5", "big")
    asm.li("r6", 0)
    asm.label("loop")
    asm.ld("r4", "r2")
    asm.beq("r4", "skip")
    asm.ld("r7", "r5")
    asm.add("r6", "r6", rb="r7")
    asm.label("skip")
    asm.add("r2", "r2", imm=8)
    asm.add("r5", "r5", imm=136)
    asm.sub("r1", "r1", imm=1)
    asm.bgt("r1", "loop")
    asm.halt()
    prog = asm.build()
    base = Core(prog, FOUR_WIDE).run()
    perfect = Core(prog, FOUR_WIDE, perfect=ALL_PERFECT).run()
    assert perfect.ipc > base.ipc


def test_problem_perfect_overlay_targets_specific_pcs():
    import random

    rng = random.Random(9)
    asm = Assembler()
    asm.data_words("vals", [rng.randrange(2) for _ in range(256)])
    asm.li("r1", 256)
    asm.la("r2", "vals")
    asm.li("r3", 0)
    asm.label("loop")
    asm.ld("r4", "r2")
    problem = asm.beq("r4", "skip")
    asm.add("r3", "r3", imm=1)
    asm.label("skip")
    asm.add("r2", "r2", imm=8)
    asm.sub("r1", "r1", imm=1)
    asm.bgt("r1", "loop")
    asm.halt()
    prog = asm.build()
    base = Core(prog, FOUR_WIDE).run()
    spec = problem_perfect(branch_pcs=[problem.pc], load_pcs=[])
    fixed = Core(prog, FOUR_WIDE, perfect=spec).run()
    assert fixed.branch_pcs[problem.pc].events == 0
    assert base.branch_pcs[problem.pc].events > 50
    assert fixed.ipc > base.ipc


def test_region_limit_stops_run():
    prog = counted_loop_program(iterations=10_000)
    stats = Core(prog, FOUR_WIDE, region=5_000).run()
    assert stats.committed == 5_000


def test_call_ret_predicted_by_ras():
    asm = Assembler()
    asm.li("r1", 300)
    asm.label("loop")
    asm.call("fn")
    asm.sub("r1", "r1", imm=1)
    asm.bgt("r1", "loop")
    asm.halt()
    asm.label("fn")
    asm.add("r2", "r2", imm=1)
    asm.ret()
    stats = Core(asm.build(), FOUR_WIDE).run()
    # returns predicted by RAS; only the loop branch can mispredict.
    assert stats.branch_mispredictions < 10


def test_indirect_jump_table_predicted_after_warmup():
    asm = Assembler()
    asm.li("r1", 400)
    asm.label("loop")
    asm.li("r5", 0)  # patched to dest pc below
    asm.jr("r5")
    asm.label("dest")
    asm.sub("r1", "r1", imm=1)
    asm.bgt("r1", "loop")
    asm.halt()
    prog = asm.build()
    # Patch the li to carry the real target.
    li_inst = prog.instructions[1]
    li_inst.imm = prog.pc_of("dest")
    stats = Core(prog, FOUR_WIDE).run()
    # Monomorphic indirect: mispredicts a few times, then learns.
    jr_pc = prog.instructions[2].pc
    assert stats.branch_pcs[jr_pc].events < 10


def test_deadlock_detection_raises():
    asm = Assembler()
    asm.br(0x0)  # jumps outside the program on the correct path
    with pytest.raises(RuntimeError, match="deadlock"):
        Core(asm.build(), FOUR_WIDE).run()


def test_cycle_limit_flag():
    prog = counted_loop_program(iterations=100_000)
    stats = Core(prog, FOUR_WIDE).run(max_cycles=500)
    assert stats.hit_cycle_limit

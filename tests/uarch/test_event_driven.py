"""Tests for the event-driven cycle-skipping loop.

The differential guarantee (skipping vs. stepping is bit-identical on
every registered workload) lives in ``tests/harness/test_determinism``;
this module unit-tests the skip machinery itself: the next-event
computation, the skip-target decision, bulk CPI attribution, and the
event-aware deadlock diagnostic.
"""

import heapq
import types

import pytest

from repro.isa import Assembler
from repro.uarch import Core, FOUR_WIDE
from repro.uarch.smt import any_fetchable


def make_core(builder=None, **kw):
    asm = Assembler()
    if builder is None:
        asm.li("r1", 1)
        asm.halt()
    else:
        builder(asm)
    return Core(asm.build(), FOUR_WIDE, **kw)


def pointer_chase(asm):
    """A scattered pointer chase: long dependent-miss chains, so the
    event-driven loop has large idle spans to jump over."""
    chain = [0x10000 + 8 * ((i * 7919) % 4096) for i in range(300)]
    for addr, nxt in zip(chain, chain[1:]):
        asm._data[addr] = nxt
    asm._data[chain[-1]] = 0
    asm.li("r1", chain[0])
    asm.label("loop")
    asm.ld("r1", "r1")
    asm.bne("r1", "loop")
    asm.halt()


# ----------------------------------------------------------------------
# _next_event_cycle
# ----------------------------------------------------------------------


def test_next_event_cycle_empty_heaps():
    core = make_core()
    assert core._next_event_cycle() is None


def test_next_event_cycle_reads_completion_heap_head():
    core = make_core()
    heapq.heappush(core._completions, (42, 0, None))
    assert core._next_event_cycle() == 42


def test_next_event_cycle_takes_earliest_source():
    core = make_core()
    heapq.heappush(core._completions, (42, 0, None))
    heapq.heappush(core._ready, (7, 0, None))
    assert core._next_event_cycle() == 7


def test_next_event_cycle_sees_in_flight_fill():
    core = make_core()
    core.hierarchy.prefetch_fill(0x10000, now=0)
    arrival = core.hierarchy.next_fill_arrival(0)
    assert arrival is not None and arrival > 0
    assert core._next_event_cycle() == arrival


def test_next_fill_arrival_prunes_expired_entries():
    core = make_core()
    core.hierarchy.prefetch_fill(0x10000, now=0)
    arrival = core.hierarchy.next_fill_arrival(0)
    assert core.hierarchy.next_fill_arrival(arrival) is None
    assert not core.hierarchy._arrival


# ----------------------------------------------------------------------
# _skip_target
# ----------------------------------------------------------------------


def test_skip_target_steps_while_a_thread_can_fetch():
    core = make_core()
    assert any_fetchable(core.threads)
    assert core._skip_target(1000) == core.cycle + 1


def test_skip_target_steps_when_fork_activates_helper_context():
    # A fork makes the helper context fetchable the moment it fires, so
    # fetchability — not a separate timer — is the fork wake condition.
    core = make_core()
    core._main.fetch_stalled = True
    heapq.heappush(core._completions, (50, 0, None))
    helper = core.threads[1]
    helper.active = True
    helper.fetch_stalled = False
    assert core._skip_target(1000) == core.cycle + 1
    helper.active = False
    assert core._skip_target(1000) == 50


def test_skip_target_jumps_to_completion_and_clamps_to_limit():
    core = make_core()
    core._main.fetch_stalled = True
    heapq.heappush(core._completions, (50, 0, None))
    assert core._skip_target(1000) == 50
    assert core._skip_target(30) == 30


def test_skip_target_steps_for_imminent_event():
    core = make_core()
    core._main.fetch_stalled = True
    heapq.heappush(core._ready, (core.cycle + 1, 0, None))
    assert core._skip_target(1000) == core.cycle + 1


def test_skip_target_steps_while_head_awaits_commit_bandwidth():
    core = make_core()
    core._main.fetch_stalled = True
    heapq.heappush(core._completions, (50, 0, None))
    head = types.SimpleNamespace(completed=True, squashed=False)
    core._main.rob.append(head)
    assert core._skip_target(1000) == core.cycle + 1
    head.completed = False
    assert core._skip_target(1000) == 50


def test_skip_target_spins_to_ceiling_when_idle_but_not_deadlocked():
    # Nothing in flight, nothing fetchable, but a live ROB entry (e.g.
    # an issued-but-never-completing stub): stepping would spin to the
    # cycle limit, so the skip jumps straight there.
    core = make_core()
    core._main.fetch_stalled = True
    core._main.rob.append(
        types.SimpleNamespace(completed=False, squashed=False)
    )
    assert not core._is_deadlocked()
    assert core._skip_target(1000) == 1000


# ----------------------------------------------------------------------
# Skipping end-to-end
# ----------------------------------------------------------------------


def test_pointer_chase_skips_most_cycles():
    stats = make_core(pointer_chase).run()
    assert stats.skip_events > 0
    assert stats.cycles_skipped > stats.cycles // 3


def test_stepping_mode_never_skips():
    stats = make_core(pointer_chase, event_driven=False).run()
    assert stats.cycles_skipped == 0
    assert stats.skip_events == 0


def test_bulk_accounting_matches_stepping():
    skip = make_core(pointer_chase, cycle_accounting=True).run()
    step = make_core(
        pointer_chase, cycle_accounting=True, event_driven=False
    ).run()
    assert skip.cycles == step.cycles
    assert skip.cycle_breakdown == step.cycle_breakdown
    assert skip.cycles_skipped > 0
    assert skip.cycle_breakdown.get("memory", 0) > skip.cycles // 2


def test_cycle_limit_identical_between_modes():
    skip = make_core(pointer_chase).run(max_cycles=500)
    step = make_core(pointer_chase, event_driven=False).run(max_cycles=500)
    assert skip.hit_cycle_limit and step.hit_cycle_limit
    assert skip.cycles == step.cycles
    assert skip.committed == step.committed


# ----------------------------------------------------------------------
# Deadlock detection
# ----------------------------------------------------------------------


@pytest.mark.parametrize("event_driven", [True, False])
def test_deadlock_detected_with_event_state_in_message(event_driven):
    asm = Assembler()
    asm.li("r1", 1)  # no HALT: fetch runs off the program and stalls
    core = Core(asm.build(), FOUR_WIDE, event_driven=event_driven)
    with pytest.raises(RuntimeError, match="next_event_cycle=None"):
        core.run()


def test_deadlock_check_is_event_aware():
    core = make_core()
    core._main.fetch_stalled = True
    assert core._is_deadlocked()
    heapq.heappush(core._completions, (50, 0, None))
    assert not core._is_deadlocked()

"""Tests for the warm-up methodology (Section 6: "We warm-up the
caches and branch predictors by running 100 million instructions")."""

from repro.isa import Assembler
from repro.uarch import Core, FOUR_WIDE
from repro.workloads import vpr


def loop_program(iterations=600):
    asm = Assembler()
    asm.data_space("arr", 2048)
    asm.li("r1", iterations)
    asm.la("r2", "arr")
    asm.li("r3", 0)
    asm.label("loop")
    asm.ld("r4", "r2")
    asm.add("r3", "r3", rb="r4")
    asm.add("r2", "r2", imm=64)
    asm.and_("r5", "r1", imm=0x7F)
    asm.bne("r5", "skip")
    asm.la("r2", "arr")  # wrap
    asm.label("skip")
    asm.sub("r1", "r1", imm=1)
    asm.bgt("r1", "loop")
    asm.halt()
    return asm.build()


def test_warmup_resets_statistics_but_not_state():
    prog = loop_program()
    cold = Core(prog, FOUR_WIDE, region=2000).run()
    warm = Core(prog, FOUR_WIDE, region=2000, warmup=1500).run()
    # Post-warmup window: counters describe only the measured region.
    assert warm.committed == 2000
    assert warm.cycles < cold.cycles
    # Warm caches: the wrapped array stays resident, so the measured
    # window has (almost) no cold misses.
    assert warm.load_misses < cold.load_misses


def test_warmup_improves_measured_branch_accuracy():
    prog = loop_program()
    cold = Core(prog, FOUR_WIDE, region=1200).run()
    warm = Core(prog, FOUR_WIDE, region=1200, warmup=2000).run()
    assert warm.mispredict_rate <= cold.mispredict_rate


def test_warmup_with_slices_keeps_instances_consistent():
    workload = vpr.build(scale=0.1)
    stats = Core(
        workload.program,
        FOUR_WIDE,
        slices=workload.slices,
        memory_image=workload.memory_image,
        region=8000,
        warmup=5000,
    ).run()
    assert stats.committed == 8000
    c = stats.correlator
    judged = c.correct_overrides + c.incorrect_overrides
    assert judged > 20
    assert c.correct_overrides / judged > 0.95


def test_zero_warmup_is_default_behavior():
    prog = loop_program()
    a = Core(prog, FOUR_WIDE, region=1000).run()
    b = Core(prog, FOUR_WIDE, region=1000, warmup=0).run()
    assert a.cycles == b.cycles

"""Tests for the fused basic-block execution tier.

The fused tier is an optimization, not a model change: on every
registered workload — slices on and off — it must produce the same
``RunStats`` as the per-instruction tier, bar its own meta counters.
The adversarial cases cover the ways a fused segment can be entered or
left unexpectedly: wrong-path entry in the middle of a block (stale
indirect-predictor targets), a faulting load inside a compiled segment
(deopt mid-group), and an optimizer pass cloning instructions out from
under compiled closures (the ``drop_block_caches`` contract).
"""

import copy
import dataclasses
import os

import pytest

from repro.harness.cache import fingerprint
from repro.harness.parallel import RunRequest, execute_request
from repro.isa import Assembler
from repro.isa.instruction import Instruction
from repro.isa.opcodes import INSTRUCTION_BYTES, Opcode
from repro.uarch import Core, FOUR_WIDE
from repro.uarch.fusion import FUSABLE_OPS, fusion_default
from repro.uarch.stats import SIMULATOR_META_FIELDS, RunStats
from repro.workloads import registry
from repro.workloads.registry import SLICE_BENCHMARKS


def assert_stats_identical(
    a: RunStats, b: RunStats, ignore: frozenset = SIMULATOR_META_FIELDS
) -> None:
    for field in dataclasses.fields(RunStats):
        if field.name in ignore:
            continue
        va, vb = getattr(a, field.name), getattr(b, field.name)
        assert va == vb, f"RunStats.{field.name} differs: {va!r} != {vb!r}"


# ----------------------------------------------------------------------
# Differential: every workload, slices on and off
# ----------------------------------------------------------------------

_CASES = [(name, "base") for name in registry.all_names()] + [
    (name, "slice") for name in SLICE_BENCHMARKS
]


@pytest.mark.parametrize("workload,mode", _CASES)
def test_fused_matches_instruction_tier(workload, mode):
    fused = execute_request(
        RunRequest(workload=workload, scale=0.05, mode=mode, fused_blocks=True)
    )
    unfused = execute_request(
        RunRequest(workload=workload, scale=0.05, mode=mode, fused_blocks=False)
    )
    assert_stats_identical(fused, unfused)
    assert unfused.blocks_compiled == 0 and unfused.block_deopts == 0


# ----------------------------------------------------------------------
# Adversarial: mid-block wrong-path entry
# ----------------------------------------------------------------------


def _indirect_alternator(leader_pc=0, mid_pc=0):
    """A loop whose ``jr`` alternates between a block leader and a PC
    four instructions *inside* that block. The indirect predictor keeps
    serving the stale target, so wrong-path fetch regularly enters the
    block mid-body — never at a compiled segment's entry."""
    asm = Assembler()
    asm.li("r1", 0)  # accumulator
    asm.li("r7", 400)  # trip count
    asm.li("r8", 12345)  # LCG state: the target must look random
    asm.li("r2", leader_pc)
    asm.li("r3", mid_pc)
    asm.label("top")
    asm.mul("r8", "r8", imm=1103515245)
    asm.add("r8", "r8", imm=12345)
    asm.srl("r10", "r8", imm=13)
    asm.and_("r10", "r10", imm=1)
    asm.mov("r6", "r2")
    asm.cmovne("r6", "r10", "r3")  # ~half the trips jump mid-block
    asm.sub("r7", "r7", imm=1)
    asm.beq("r7", "end")
    asm.jr("r6")
    asm.label("leader")
    for _ in range(8):
        asm.add("r1", "r1", imm=1)
    asm.br("top")
    asm.label("end")
    asm.halt()
    return asm.build()


def test_mid_block_wrong_path_entry_is_identical():
    probe = _indirect_alternator()
    leader = probe.labels["leader"]
    mid = leader + 4 * INSTRUCTION_BYTES
    assert probe.at(mid) is not None and not probe.at(mid).is_branch

    fused_prog = _indirect_alternator(leader, mid)
    unfused_prog = _indirect_alternator(leader, mid)
    fused = Core(fused_prog, FOUR_WIDE, fused_blocks=True).run()
    unfused = Core(unfused_prog, FOUR_WIDE, fused_blocks=False).run()
    assert_stats_identical(fused, unfused)
    assert fused.blocks_compiled > 0
    # The alternating target defeats the indirect predictor, so fetch
    # really does run wrong paths into the block body.
    assert fused.branch_mispredictions > 50


# ----------------------------------------------------------------------
# Adversarial: faulting load inside a compiled segment
# ----------------------------------------------------------------------


def _faulting_loop():
    """A hot loop whose body block contains a null-page load: the
    segment compiles (the block is straight-line) but every execution
    faults mid-group and must deopt to the instruction tier."""
    asm = Assembler()
    asm.li("r1", 0x20)  # inside the null page
    asm.li("r2", 0)
    asm.li("r9", 60)
    asm.label("loop")
    asm.add("r2", "r2", imm=1)
    asm.add("r2", "r2", imm=1)
    asm.ld("r3", "r1")  # faults
    asm.add("r2", "r2", imm=1)
    asm.sub("r9", "r9", imm=1)
    asm.bgt("r9", "loop")
    asm.halt()
    return asm.build()


def test_faulting_block_deopts_and_stays_identical():
    fused = Core(_faulting_loop(), FOUR_WIDE, fused_blocks=True).run()
    unfused = Core(_faulting_loop(), FOUR_WIDE, fused_blocks=False).run()
    assert_stats_identical(fused, unfused)
    assert fused.blocks_compiled > 0
    # Once hot, every iteration enters the segment and faults out of it.
    assert fused.block_deopts > 20


# ----------------------------------------------------------------------
# Adversarial: optimizer-style clone + drop_block_caches
# ----------------------------------------------------------------------


def _hot_loop(body=6, trips=60):
    asm = Assembler()
    asm.li("r1", 0)
    asm.li("r9", trips)
    asm.label("loop")
    for _ in range(body):
        asm.add("r1", "r1", imm=1)
    asm.sub("r9", "r9", imm=1)
    asm.bgt("r9", "loop")
    asm.halt()
    return asm.build()


def test_optimizer_clone_invalidates_compiled_segments():
    """A pass that clones/renames instructions in place must be able to
    rely on ``drop_block_caches`` alone: after the call, no stale fused
    closure may execute, and fused results must track the *new*
    semantics bit-for-bit."""
    prog = _hot_loop()
    original = Core(prog, FOUR_WIDE, fused_blocks=True).run()
    assert original.blocks_compiled > 0

    # Clone one body instruction and change its opcode to MUL (latency
    # 7 vs 1) — the timing change is visible in RunStats.cycles, so a
    # stale closure would be caught, not silently tolerated.
    victim_index = next(
        i
        for i, inst in enumerate(prog.instructions)
        if inst.op is Opcode.ADD and inst.rd == 1
    )
    old = prog.instructions[victim_index]
    clone = Instruction(
        op=Opcode.MUL, rd=old.rd, ra=old.ra, imm=1, pc=old.pc
    )
    assert clone.op in FUSABLE_OPS
    prog.instructions[victim_index] = clone
    prog._by_pc[old.pc] = clone
    prog.drop_block_caches()

    fused = Core(prog, FOUR_WIDE, fused_blocks=True).run()
    unfused = Core(prog, FOUR_WIDE, fused_blocks=False).run()
    assert_stats_identical(fused, unfused)
    assert fused.cycles != original.cycles  # the mutation is observable
    assert fused.blocks_compiled > 0  # recompiled, not stale


def test_block_version_bump_rebuilds_core_state():
    """An existing Core notices the version bump on its next compile
    probe and drops everything it had compiled."""
    prog = _hot_loop()
    core = Core(prog, FOUR_WIDE, fused_blocks=True)
    core.run()
    assert core._fused
    version_before = core._fuse_version
    prog.drop_block_caches()
    assert not prog._segment_cache and not prog._segment_heat
    core._compile_fused(prog.entry_pc)
    assert core._fuse_version == prog.block_version > version_before
    assert not core._fused  # stale segments gone; entry not hot yet


def test_clone_via_copy_preserves_fusability():
    """``copy.copy`` keeps operands but drops the compiled-executor
    cache — the per-instruction contract the block tier mirrors."""
    prog = _hot_loop()
    inst = prog.instructions[2]
    clone = copy.copy(inst)
    assert clone.op is inst.op and clone._exec is None


# ----------------------------------------------------------------------
# Escape hatches
# ----------------------------------------------------------------------


def test_core_flag_disables_fusion():
    stats = Core(_hot_loop(), FOUR_WIDE, fused_blocks=False).run()
    assert stats.blocks_compiled == 0 and stats.block_deopts == 0


def test_env_flag_disables_fusion(monkeypatch):
    monkeypatch.setenv("REPRO_NO_FUSE", "1")
    assert fusion_default() is False
    stats = Core(_hot_loop(), FOUR_WIDE).run()
    assert stats.blocks_compiled == 0
    monkeypatch.delenv("REPRO_NO_FUSE")
    assert fusion_default() is True


def test_cli_no_fuse_flag_sets_env(tmp_path, monkeypatch):
    from repro.harness.cli import main

    monkeypatch.chdir(tmp_path)  # keep the cache clear away from repo state
    monkeypatch.delenv("REPRO_NO_FUSE", raising=False)
    try:
        assert main(["cache", "clear", "--no-fuse"]) == 0
        assert os.environ.get("REPRO_NO_FUSE") == "1"
    finally:
        os.environ.pop("REPRO_NO_FUSE", None)


def test_run_request_fingerprints_fusion_mode():
    """Cached runs must not be shared across fusion modes — the meta
    counters (blocks_compiled / block_deopts) differ."""
    on = RunRequest(workload="vpr", scale=0.05, mode="slice", fused_blocks=True)
    off = RunRequest(
        workload="vpr", scale=0.05, mode="slice", fused_blocks=False
    )
    assert fingerprint(on, "x") != fingerprint(off, "x")

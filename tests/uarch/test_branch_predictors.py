"""Tests for YAGS, cascading indirect, RAS, and the composite predictor."""

from repro.isa import Assembler
from repro.uarch.branch import (
    BimodalPredictor,
    CascadingIndirectPredictor,
    FrontEndPredictor,
    GsharePredictor,
    ReturnAddressStack,
    YagsPredictor,
)


def train(predictor, pc, outcomes):
    """Feed a direction predictor an outcome sequence, return accuracy."""
    correct = 0
    for taken in outcomes:
        history = predictor.history
        if predictor.predict(pc) == taken:
            correct += 1
        predictor.shift_history(taken)
        predictor.update(pc, taken, history)
    return correct / len(outcomes)


def test_yags_learns_biased_branch():
    yags = YagsPredictor()
    accuracy = train(yags, 0x1000, [True] * 200)
    assert accuracy > 0.95


def test_yags_learns_alternating_pattern():
    """A pattern predictable from global history: YAGS should lock on."""
    yags = YagsPredictor()
    pattern = [True, False] * 300
    accuracy = train(yags, 0x1000, pattern)
    assert accuracy > 0.9


def test_yags_learns_loop_exit_pattern():
    """TTTN repeating, the classic loop-branch pattern."""
    yags = YagsPredictor()
    pattern = ([True] * 3 + [False]) * 200
    accuracy = train(yags, 0x2000, pattern)
    assert accuracy > 0.9


def test_yags_random_branch_is_hard():
    """The paper's premise: data-dependent unbiased branches defeat YAGS."""
    import random

    rng = random.Random(42)
    yags = YagsPredictor()
    outcomes = [rng.random() < 0.5 for _ in range(2000)]
    accuracy = train(yags, 0x3000, outcomes)
    assert accuracy < 0.65


def test_yags_exception_cache_engages():
    """Two branches aliasing the same choice entry bias; history splits them."""
    yags = YagsPredictor()
    # One PC, direction fully determined by last outcome (period-2) —
    # requires the tagged caches, bimodal alone gets ~50%.
    accuracy = train(yags, 0x4000, [True, False] * 500)
    assert yags.cache_overrides > 0
    assert accuracy > 0.9


def test_yags_rejects_bad_geometry():
    import pytest

    with pytest.raises(ValueError):
        YagsPredictor(choice_entries=1000)


def test_cascading_learns_monomorphic_target():
    pred = CascadingIndirectPredictor()
    pc, target = 0x1000, 0x2000
    history = pred.path_history
    assert pred.predict(pc) in (None, target)
    pred.update(pc, target, history)
    assert pred.predict(pc) == target


def test_cascading_second_stage_separates_polymorphic_targets():
    """Targets alternate based on path: stage 2 should disambiguate."""
    pred = CascadingIndirectPredictor()
    pc = 0x1000
    correct = 0
    total = 400
    for i in range(total):
        # Path history differs because the preceding indirect target differs.
        lead_target = 0x8000 if i % 2 == 0 else 0x9000
        pred.shift_history(lead_target)
        target = 0x2000 if i % 2 == 0 else 0x3000
        history = pred.path_history
        if pred.predict(pc) == target:
            correct += 1
        pred.shift_history(target)
        pred.update(pc, target, history)
    assert correct / total > 0.8
    assert pred.stage2_hits > 0


def test_ras_push_pop_lifo():
    ras = ReturnAddressStack(4)
    ras.push(0x100)
    ras.push(0x200)
    assert ras.predict_and_pop() == 0x200
    assert ras.predict_and_pop() == 0x100
    assert ras.predict_and_pop() == 0  # empty


def test_ras_checkpoint_restore():
    ras = ReturnAddressStack(8)
    ras.push(0x100)
    cp = ras.checkpoint()
    ras.push(0x200)
    ras.predict_and_pop()
    ras.predict_and_pop()
    ras.restore(cp)
    assert ras.predict_and_pop() == 0x100


def test_ras_wraps_when_overflowing():
    ras = ReturnAddressStack(2)
    ras.push(0x1)
    ras.push(0x2)
    ras.push(0x3)  # overwrites the slot that held 0x1
    assert ras.predict_and_pop() == 0x3
    assert ras.predict_and_pop() == 0x2
    # The wrapped slot was overwritten: hardware-faithfully, the stale
    # prediction is 0x3 (the overwriting value), not the lost 0x1.
    assert ras.predict_and_pop() == 0x3


def _branch_insts():
    asm = Assembler()
    asm.label("target")
    cond = asm.beq("r1", "target")
    call = asm.call("target")
    ret = asm.ret()
    jr = asm.jr("r5")
    br = asm.br("target")
    asm.build()
    return cond, call, ret, jr, br


def test_frontend_direct_branches_have_perfect_targets():
    cond, call, ret, jr, br = _branch_insts()
    fe = FrontEndPredictor()
    assert fe.predict(br).target == br.target
    assert fe.predict(call).target == call.target


def test_frontend_call_then_ret_uses_ras():
    cond, call, ret, jr, br = _branch_insts()
    fe = FrontEndPredictor()
    fe.predict(call)
    prediction = fe.predict(ret)
    assert prediction.target == call.pc + 4


def test_frontend_conditional_records_history_snapshot():
    cond, *_ = _branch_insts()
    fe = FrontEndPredictor()
    before = fe.direction.history
    prediction = fe.predict(cond)
    assert prediction.ghr_before == before
    assert fe.direction.history != before or prediction.taken is False


def test_frontend_restore_rewinds_all_histories():
    cond, call, ret, jr, br = _branch_insts()
    fe = FrontEndPredictor()
    ghr0 = fe.direction.history
    ras0 = fe.ras.checkpoint()
    prediction = fe.predict(call)
    fe.predict(cond)
    fe.restore(prediction)
    assert fe.direction.history == ghr0
    assert fe.ras.checkpoint() == ras0


def test_frontend_override_direction_rewrites_target_and_history():
    cond, *_ = _branch_insts()
    fe = FrontEndPredictor()
    prediction = fe.predict(cond)
    fe.override_direction(prediction, cond, taken=True)
    assert prediction.taken is True
    assert prediction.target == cond.target
    assert prediction.from_correlator
    fe.override_direction(prediction, cond, taken=False)
    assert prediction.target == cond.pc + 4


def test_frontend_unknown_indirect_falls_through():
    cond, call, ret, jr, br = _branch_insts()
    fe = FrontEndPredictor()
    prediction = fe.predict(jr)
    assert prediction.target == jr.pc + 4  # no target known yet


def test_bimodal_and_gshare_interfaces():
    for predictor in (BimodalPredictor(), GsharePredictor()):
        accuracy = train(predictor, 0x100, [True] * 100)
        assert accuracy > 0.9
    # gshare handles history patterns that defeat bimodal.
    assert train(GsharePredictor(), 0x100, [True, False] * 200) > 0.85
    assert train(BimodalPredictor(), 0x100, [True, False] * 200) < 0.7


def test_tournament_chooser_picks_the_right_component():
    from repro.uarch.branch import TournamentPredictor

    # Period-2 pattern: global wins; a hammered bias: both fine.
    tournament = TournamentPredictor()
    accuracy = train(tournament, 0x500, [True, False] * 400)
    assert accuracy > 0.9
    accuracy = train(tournament, 0x600, [True] * 300)
    assert accuracy > 0.95


def test_tournament_history_interface_matches_protocol():
    from repro.uarch.branch import TournamentPredictor

    tournament = TournamentPredictor()
    before = tournament.history
    tournament.shift_history(True)
    assert tournament.history == ((before << 1) | 1) & tournament.history_mask
    tournament.history = before  # restorable (squash recovery)
    assert tournament.history == before


def test_tournament_rejects_bad_geometry():
    import pytest

    from repro.uarch.branch import TournamentPredictor

    with pytest.raises(ValueError):
        TournamentPredictor(chooser_entries=1000)

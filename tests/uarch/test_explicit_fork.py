"""Tests for explicit fork instructions (Section 4.2's alternative).

"There are two ways of marking a fork point: inserting explicit fork
instructions or designating an existing instruction as a fork point...
the hardware can be simplified by the former approach." The FORK
opcode is architecturally a no-op, so binaries stay correct on
hardware without slice support; with slice hardware it forks the
indexed slice-table entry directly, without the fork-PC CAM.
"""

import dataclasses

from repro.arch import Fault, Memory, ThreadState, execute
from repro.isa import Assembler, Opcode
from repro.isa.instruction import Instruction
from repro.uarch import Core, FOUR_WIDE
from repro.workloads import vpr


def test_fork_is_architecturally_a_nop():
    state = ThreadState(Memory(), 0)
    before = state.regs.values()
    result = execute(Instruction(Opcode.FORK, imm=3, pc=0), state)
    assert result.fault is Fault.NONE
    assert result.next_pc == 4
    assert state.regs.values() == before


def test_fork_without_slice_hardware_changes_nothing():
    asm = Assembler()
    asm.li("r1", 5)
    asm.fork(0)
    asm.add("r2", "r1", imm=1)
    asm.halt()
    prog = asm.build()
    stats = Core(prog, FOUR_WIDE).run()
    assert stats.committed == 4
    assert stats.forks_taken == 0


def _vpr_with_explicit_fork(scale=0.08):
    """Rebuild vpr's slice to trigger from an inserted FORK instruction.

    We re-point the slice's fork at a FORK instruction appended to the
    driver loop by... simpler: reuse the existing fork PC for squash
    bookkeeping but drive the actual fork through the explicit opcode
    placed at the same spot in a wrapper program. For this test it is
    sufficient to exercise the at_index path on a small program.
    """
    workload = vpr.build(scale=scale)
    return workload


def test_explicit_fork_drives_the_slice_table():
    workload = _vpr_with_explicit_fork()
    spec = workload.slices[0]

    # A wrapper program: FORK 0 placed where the CAM fork point was.
    # Easiest equivalent: a program that forks explicitly then runs a
    # heap insertion's worth of work. We reuse the workload program but
    # replace the CAM trigger by relocating the spec's fork_pc to an
    # unused address, so only the explicit FORK can fire it.
    relocated = dataclasses.replace(spec, fork_pc=0xDEAD0)
    asm = Assembler(base_pc=0xE0000)
    asm.li("r21", workload.program.addr_of("costs"))
    asm.fork(0)
    # Enough driver work for the slice's memory accesses to complete
    # before the region ends.
    asm.li("r1", 200)
    asm.label("spin")
    asm.sub("r1", "r1", imm=1)
    asm.bgt("r1", "spin")
    asm.halt()
    driver = asm.build()
    core = Core(
        driver,
        FOUR_WIDE,
        slices=(relocated,),
        memory_image=workload.memory_image,
    )
    stats = core.run()
    assert stats.forks_taken == 1
    assert stats.slice_fetched > 0
    assert stats.correlator.predictions_generated >= 1


def test_fork_index_out_of_range_is_ignored():
    workload = _vpr_with_explicit_fork()
    relocated = dataclasses.replace(workload.slices[0], fork_pc=0xDEAD0)
    asm = Assembler(base_pc=0xE0000)
    asm.fork(7)  # no such entry
    asm.halt()
    core = Core(
        asm.build(),
        FOUR_WIDE,
        slices=(relocated,),
        memory_image=workload.memory_image,
    )
    stats = core.run()
    assert stats.forks_taken == 0


def test_fork_disassembles():
    from repro.isa import format_instruction

    inst = Instruction(Opcode.FORK, imm=2, pc=0)
    assert format_instruction(inst) == "fork    2"

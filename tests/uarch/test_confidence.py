"""Tests for the confidence-gated forking extension."""

from repro.harness.runner import run_baseline
from repro.uarch.confidence import ForkConfidenceEstimator
from repro.uarch.config import FOUR_WIDE
from repro.uarch.core import Core
from repro.workloads import vpr


def test_estimator_counter_dynamics():
    estimator = ForkConfidenceEstimator(
        max_count=7, threshold=3, initial=4, up=2, down=1, probe_interval=4
    )
    assert estimator.should_fork("s")
    for _ in range(10):
        estimator.update("s", useful=False)
    assert estimator.confidence("s") == 0
    # Gated, but every 4th request probes through.
    decisions = [estimator.should_fork("s") for _ in range(8)]
    assert decisions.count(True) == 2
    assert estimator.forks_gated == 6
    # Useful outcomes re-open the gate.
    for _ in range(3):
        estimator.update("s", useful=True)
    assert estimator.should_fork("s")


def test_estimator_saturates():
    estimator = ForkConfidenceEstimator(max_count=5, initial=5)
    estimator.update("s", useful=True)
    assert estimator.confidence("s") == 5
    for _ in range(100):
        estimator.update("s", useful=False)
    assert estimator.confidence("s") == 0


def _run(workload, slices, estimator):
    core = Core(
        workload.program,
        FOUR_WIDE,
        slices=slices,
        memory_image=workload.memory_image,
        region=workload.region,
        fork_confidence=estimator,
    )
    return core.run()


def test_useful_slice_is_not_gated():
    workload = vpr.build(scale=0.1)
    estimator = ForkConfidenceEstimator()
    stats = _run(workload, workload.slices, estimator)
    assert stats.forks_gated <= stats.forks_taken * 0.05
    base = run_baseline(workload)
    assert stats.ipc > base.ipc * 1.1


def test_useless_slice_is_gated_and_overhead_recovered():
    workload = vpr.build(scale=0.1)
    useless = (vpr.unoptimized_slice(workload),)
    plain = _run(workload, useless, None)
    estimator = ForkConfidenceEstimator()
    gated = _run(workload, useless, estimator)
    assert gated.forks_gated > 50
    assert gated.slice_fetched < plain.slice_fetched * 0.6
    assert gated.ipc >= plain.ipc * 0.99

"""Tests for slice-generated indirect-target predictions (TARGET PGIs).

The paper's §7 contrasts its kill-based correlation with Roth et al.'s
virtual-function-target pre-computation; TARGET-kind PGIs bring that
complement into this framework: a slice computes an indirect branch's
target ahead of time and the front end uses it over the cascading
predictor.

The micro-workload is a bytecode interpreter whose dispatch `jr` hops
through a jump table on a random opcode stream — the cascading
predictor gets ~1/k of these right, while a slice that reads the *next*
opcode one iteration ahead predicts them near-perfectly.
"""

import pytest

from repro.uarch import Core
from repro.workloads import dispatch


def build_interpreter(ops=600):
    workload = dispatch.build(scale=ops / 2400)
    return (
        workload.program,
        workload.memory_image,
        workload.slices[0],
        next(iter(workload.problem_branch_pcs)),
        ops,
    )


#: This pattern forks every ~12 instructions — far denser than the
#: paper's slices (one per 60-130) — so it needs more idle contexts.
CONFIG = dispatch.RECOMMENDED_CONFIG


@pytest.fixture(scope="module")
def runs():
    program, image, spec, dispatch_pc, ops = build_interpreter()
    base = Core(
        program, CONFIG, memory_image=image, region=ops * 40
    ).run()
    assisted = Core(
        program,
        CONFIG,
        slices=(spec,),
        memory_image=image,
        region=ops * 40,
    ).run()
    return base, assisted, dispatch_pc, ops


def test_dispatch_defeats_the_cascading_predictor(runs):
    base, _assisted, dispatch_pc, ops = runs
    # Random 4-way dispatch: most dynamic instances mispredict.
    assert base.branch_pcs[dispatch_pc].rate > 0.5


def test_target_slice_removes_indirect_mispredictions(runs):
    base, assisted, dispatch_pc, _ops = runs
    base_rate = base.branch_pcs[dispatch_pc].rate
    assisted_rate = assisted.branch_pcs[dispatch_pc].rate
    assert assisted_rate < base_rate * 0.7
    assert assisted.ipc > base.ipc * 1.2


def test_target_predictions_are_accurate(runs):
    _base, assisted, _pc, _ops = runs
    c = assisted.correlator
    assert c.value_overrides > 100  # targets ride the value queue
    judged = c.correct_value_overrides + c.incorrect_value_overrides
    # Outcome accounting for targets happens via branch commit, so the
    # direction counters are unused; accuracy shows as removed
    # mispredictions instead (asserted above) and overrides are real.
    assert c.value_predictions_generated > 100


def test_architectural_results_identical(runs):
    """Target overrides are microarchitectural only."""
    program, image, spec, _pc, ops = build_interpreter()
    plain = Core(program, CONFIG, memory_image=image, region=ops * 40)
    plain.run()
    assisted = Core(
        program, CONFIG, slices=(spec,), memory_image=image,
        region=ops * 40,
    )
    assisted.run()
    assert (
        plain._main.state.regs.read(28)
        == assisted._main.state.regs.read(28)
    )

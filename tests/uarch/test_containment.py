"""Slice containment guardrails: the fuse, fault quarantine, and the
typed deadlock diagnostic.

The paper's safety contract (§2, §4) is that speculative slices are
pure helpers: a slice that faults, runs away, or scribbles must never
affect architectural correctness. These tests patch a workload with
deliberately misbehaving slices — an infinite loop and a null
dereference — and assert the run completes with unchanged
architectural results while the containment counters record the kills.
"""

import dataclasses

import pytest

from repro.errors import DeadlockError, SimulationError, SliceRunawayError
from repro.isa import Assembler
from repro.slices.hw import SliceTable, is_statically_bounded
from repro.slices.spec import SLICE_CODE_BASE, SliceSpec
from repro.uarch import Core, FOUR_WIDE


def _fused(config, max_slice_insts):
    return dataclasses.replace(
        config,
        slice_hw=dataclasses.replace(
            config.slice_hw, max_slice_insts=max_slice_insts
        ),
    )


def main_program(iterations=300):
    """A store-heavy counted loop; the first loop body PC is the fork
    point, so a slice forks on (nearly) every iteration."""
    asm = Assembler()
    asm.data_words("out", [0] * 8)
    asm.li("r1", iterations)
    asm.li("r2", 0)
    asm.la("r3", "out")
    asm.label("loop")
    fork_pc = asm.add("r2", "r2", imm=1).pc
    asm.and_("r4", "r2", imm=7)
    asm.s8add("r5", "r4", "r3")
    asm.st("r2", "r5")
    asm.sub("r1", "r1", imm=1)
    asm.bgt("r1", "loop")
    asm.halt()
    return asm.build(), fork_pc


def runaway_slice(fork_pc):
    """An infinite loop: no iteration cap, no fault, no exit."""
    asm = Assembler(base_pc=SLICE_CODE_BASE)
    asm.label("spin")
    asm.add("r30", "r30", imm=1)
    asm.br("spin")
    code = asm.build()
    return SliceSpec(
        name="runaway",
        fork_pc=fork_pc,
        code=code,
        entry_pc=code.pc_of("spin"),
        live_in_regs=(),
    )


def faulting_slice(fork_pc):
    """A guaranteed null dereference on the second instruction."""
    asm = Assembler(base_pc=SLICE_CODE_BASE + 0x1000)
    asm.label("slice")
    asm.li("r29", 0)
    asm.ld("r28", "r29")
    asm.halt()
    code = asm.build()
    return SliceSpec(
        name="faulting",
        fork_pc=fork_pc,
        code=code,
        entry_pc=code.pc_of("slice"),
        live_in_regs=(),
    )


@pytest.fixture(scope="module")
def program_and_fork():
    return main_program()


def _run(program, slices=(), config=FOUR_WIDE, **kwargs):
    core = Core(program, config, slices=slices, **kwargs)
    stats = core.run()
    return core, stats


def test_runaway_slice_is_killed_by_the_fuse(program_and_fork):
    program, fork_pc = program_and_fork
    config = _fused(FOUR_WIDE, 64)
    base_core, base = _run(program)
    slice_core, assisted = _run(
        program, slices=(runaway_slice(fork_pc),), config=config
    )
    assert not assisted.hit_cycle_limit
    assert assisted.slices_killed_fuse >= 1
    assert assisted.slices_killed_fault == 0
    # Containment: architectural results are bit-identical to base mode.
    assert assisted.committed == base.committed
    assert assisted.branches_committed == base.branches_committed
    assert assisted.loads_committed == base.loads_committed
    assert assisted.stores_committed == base.stores_committed
    assert base_core.memory.snapshot() == slice_core.memory.snapshot()


def test_fuse_bounds_every_activation(program_and_fork):
    program, fork_pc = program_and_fork
    fuse = 48
    _core, stats = _run(
        program, slices=(runaway_slice(fork_pc),), config=_fused(FOUR_WIDE, fuse)
    )
    # Every activation (killed or squashed) fetched at most `fuse`
    # instructions: the check precedes each fetch.
    assert stats.slices_killed_fuse > 0
    activations = stats.fork_points_fetched - stats.forks_ignored
    assert stats.slice_fetched <= activations * fuse


def test_faulting_slice_is_quarantined(program_and_fork):
    program, fork_pc = program_and_fork
    base_core, base = _run(program)
    slice_core, assisted = _run(program, slices=(faulting_slice(fork_pc),))
    assert assisted.slices_killed_fault >= 1
    assert assisted.slices_killed_fuse == 0
    assert assisted.committed == base.committed
    assert assisted.branch_mispredictions == base.branch_mispredictions
    assert base_core.memory.snapshot() == slice_core.memory.snapshot()


def test_both_misbehaving_slices_together(program_and_fork):
    """Runaway + faulting slices sharing the machine: still contained."""
    program, fork_pc = program_and_fork
    _base_core, base = _run(program)
    _core, stats = _run(
        program,
        slices=(runaway_slice(fork_pc), faulting_slice(fork_pc)),
        config=_fused(FOUR_WIDE, 64),
    )
    assert stats.slices_killed_fuse >= 1
    assert stats.slices_killed_fault >= 1
    assert stats.committed == base.committed


def test_strict_mode_raises_on_runaway(program_and_fork):
    program, fork_pc = program_and_fork
    core = Core(
        program,
        _fused(FOUR_WIDE, 32),
        slices=(runaway_slice(fork_pc),),
        strict_slices=True,
    )
    with pytest.raises(SliceRunawayError) as excinfo:
        core.run()
    assert excinfo.value.slice_name == "runaway"
    assert excinfo.value.fetched >= 32
    assert isinstance(excinfo.value, SimulationError)


def test_fuse_disabled_via_none_lets_the_run_finish_slowly(program_and_fork):
    """With the fuse off, a runaway monopolizes a context forever but
    the main thread still commits its region (ICOUNT keeps it fed)."""
    program, fork_pc = program_and_fork
    _core, stats = _run(
        program,
        slices=(runaway_slice(fork_pc),),
        config=_fused(FOUR_WIDE, None),
    )
    assert stats.slices_killed_fuse == 0
    assert not stats.hit_cycle_limit


def test_well_behaved_slices_never_hit_the_fuse():
    """Real workload slices stay far under the default fuse."""
    from repro.harness.runner import run_with_slices
    from repro.workloads import registry

    stats = run_with_slices(registry.build("vpr", scale=0.05))
    assert stats.slices_killed_fuse == 0


def test_static_boundedness_analysis(program_and_fork):
    program, fork_pc = program_and_fork
    from repro.workloads import registry

    assert not is_statically_bounded(runaway_slice(fork_pc))
    assert is_statically_bounded(faulting_slice(fork_pc))
    # A real capped-loop slice is statically bounded.
    vpr = registry.build("vpr", scale=0.05)
    assert all(is_statically_bounded(spec) for spec in vpr.slices)
    table = SliceTable()
    table.load(runaway_slice(fork_pc))
    table.load(vpr.slices[0])
    assert table.unbounded_slices == {"runaway"}


def test_deadlock_raises_typed_error_with_diagnostic():
    """The deadlock path raises DeadlockError (still a RuntimeError for
    old callers) carrying the cycle and next-event diagnostic."""
    asm = Assembler()
    asm.li("r1", 1)
    asm.jr("r2")  # jump to PC 0: fetch runs off the program
    asm.halt()
    core = Core(asm.build(), FOUR_WIDE)
    with pytest.raises(DeadlockError) as excinfo:
        core.run()
    assert isinstance(excinfo.value, RuntimeError)
    assert excinfo.value.cycle is not None
    assert "next_event_cycle" in str(excinfo.value)

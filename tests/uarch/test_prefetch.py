"""Tests for the stream prefetcher."""

from repro.uarch.cache import DataHierarchy
from repro.uarch.config import FOUR_WIDE, PrefetchConfig
from repro.uarch.prefetch import StreamPrefetcher


def make_prefetcher(**overrides):
    config = PrefetchConfig(**overrides) if overrides else FOUR_WIDE.prefetch
    hier = DataHierarchy(FOUR_WIDE)
    pf = StreamPrefetcher(config, hier)
    pf.attach()
    return pf, hier


def test_sequential_next_line_prefetch_on_first_miss():
    pf, hier = make_prefetcher()
    hier.access(0x4000, is_store=False, now=0)  # miss, prefetches 0x4040
    result = hier.access(0x4040, is_store=False, now=500)
    assert result.buffer_hit
    assert not result.counts_as_miss


def test_positive_unit_stride_stream_confirms_and_runs_ahead():
    pf, hier = make_prefetcher()
    line = FOUR_WIDE.l1d.line_bytes
    base = 0x10000
    hier.access(base, is_store=False, now=0)  # allocate tracker
    hier.access(base + line, is_store=False, now=500)  # confirm stride +1
    assert pf.streams_confirmed == 1
    # The next several lines should now be covered.
    for i in range(2, 2 + FOUR_WIDE.prefetch.stream_depth):
        result = hier.access(base + i * line, is_store=False, now=500 + 500 * i)
        assert not result.counts_as_miss, f"line {i} not covered"


def test_negative_unit_stride_detected():
    pf, hier = make_prefetcher()
    line = FOUR_WIDE.l1d.line_bytes
    base = 0x40000
    hier.access(base, is_store=False, now=0)
    hier.access(base - line, is_store=False, now=500)
    assert pf.streams_confirmed == 1
    result = hier.access(base - 2 * line, is_store=False, now=1000)
    assert not result.counts_as_miss


def test_non_unit_stride_is_not_confirmed():
    pf, hier = make_prefetcher()
    line = FOUR_WIDE.l1d.line_bytes
    base = 0x80000
    hier.access(base, is_store=False)
    hier.access(base + 7 * line, is_store=False)
    hier.access(base + 14 * line, is_store=False)
    assert pf.streams_confirmed == 0


def test_stream_table_capacity_is_bounded():
    pf, hier = make_prefetcher()
    line = FOUR_WIDE.l1d.line_bytes
    for i in range(100):
        hier.access(0x100000 + i * 37 * line, is_store=False)
    assert len(pf._streams) <= FOUR_WIDE.prefetch.stream_table_entries


def test_stream_eviction_is_lru_by_allocation_order():
    """A full table evicts the *oldest* stream, and the evicted
    stream's expected-next-line index entries go with it.

    Pins the order the O(1) index must preserve: after eviction the
    old stream can no longer match, while younger streams still can.
    """
    pf, hier = make_prefetcher(
        stream_table_entries=2, sequential_next_line=False
    )
    line = FOUR_WIDE.l1d.line_bytes
    la, lb, lc = 0x100000, 0x200000, 0x300000
    hier.access(la, is_store=False)  # allocate A (oldest)
    hier.access(lb, is_store=False)  # allocate B
    hier.access(lc, is_store=False)  # table full: evicts A
    assert [s.last_line for s in pf._streams] == [
        hier.l1.line_of(lb),
        hier.l1.line_of(lc),
    ]
    # A would have confirmed on la+line; evicted, it must not match —
    # this miss allocates instead (evicting B, now the oldest).
    hier.access(la + line, is_store=False)
    assert pf.streams_confirmed == 0
    # C survived both evictions and still matches normally.
    hier.access(lc + line, is_store=False)
    assert pf.streams_confirmed == 1


def test_prefetch_never_targets_negative_lines():
    pf, hier = make_prefetcher()
    line = FOUR_WIDE.l1d.line_bytes
    hier.access(line, is_store=False)
    hier.access(0, is_store=False)  # stride -1 confirmed at line 0
    # Must not raise or issue prefetches below address zero.
    assert pf.prefetches_launched >= 0


def test_sequential_prefetch_can_be_disabled():
    pf, hier = make_prefetcher(sequential_next_line=False)
    hier.access(0x4000, is_store=False)
    result = hier.access(0x4040, is_store=False)
    assert result.counts_as_miss


def test_pointer_chase_defeats_stream_prefetcher():
    """The paper's premise: irregular strides get no prefetch coverage."""
    pf, hier = make_prefetcher()
    import random

    rng = random.Random(7)
    line = FOUR_WIDE.l1d.line_bytes
    addr = 0x200000
    covered = 0
    for _ in range(50):
        addr += rng.randrange(3, 100) * line  # irregular stride
        result = hier.access(addr, is_store=False)
        if not result.counts_as_miss:
            covered += 1
    assert covered <= 5

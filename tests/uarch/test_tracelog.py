"""Tests for the pipeline trace-log utility."""

from repro.isa import Assembler
from repro.uarch import Core, FOUR_WIDE
from repro.uarch.tracelog import attach_trace, render_trace


def traced_run(build, **kw):
    asm = Assembler()
    build(asm)
    core = Core(asm.build(), FOUR_WIDE)
    log = attach_trace(core, **kw)
    core.run()
    return core, log


def test_trace_records_lifecycle():
    def build(asm):
        asm.li("r1", 1)
        asm.add("r2", "r1", imm=1)
        asm.halt()

    _core, log = traced_run(build)
    records = log.ordered()
    assert len(records) == 3
    first = records[0]
    assert first.text.startswith("li")
    assert first.complete_cycle >= first.fetch_cycle
    assert first.commit_cycle >= first.complete_cycle
    assert not first.squashed


def test_trace_marks_squashed_wrong_path():
    import random

    rng = random.Random(2)

    def build(asm):
        asm.data_words("vals", [rng.randrange(2) for _ in range(64)])
        asm.li("r1", 64)
        asm.la("r2", "vals")
        asm.label("loop")
        asm.ld("r3", "r2")
        asm.beq("r3", "skip")
        asm.add("r4", "r4", imm=1)
        asm.label("skip")
        asm.add("r2", "r2", imm=8)
        asm.sub("r1", "r1", imm=1)
        asm.bgt("r1", "loop")
        asm.halt()

    _core, log = traced_run(build, max_entries=400)
    assert any(r.squashed for r in log.records.values())
    # Squashed records never commit.
    for record in log.records.values():
        if record.squashed:
            assert record.commit_cycle is None


def test_trace_truncates_at_limit():
    def build(asm):
        asm.li("r1", 100)
        asm.label("loop")
        asm.sub("r1", "r1", imm=1)
        asm.bgt("r1", "loop")
        asm.halt()

    _core, log = traced_run(build, max_entries=10)
    assert len(log.records) == 10
    assert log.truncated


def test_render_trace_output():
    def build(asm):
        asm.li("r1", 1)
        asm.halt()

    _core, log = traced_run(build)
    text = render_trace(log)
    assert "instruction" in text
    assert "li" in text

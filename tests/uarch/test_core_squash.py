"""Core squash/recovery correctness under adversarial control flow."""

import random

from repro.arch import Memory, ThreadState, run_functional
from repro.isa import Assembler
from repro.uarch import Core, FOUR_WIDE


def run_core(prog, **kw):
    core = Core(prog, FOUR_WIDE, **kw)
    stats = core.run()
    return core, stats


def reference_regs(prog, watch, max_insts=500_000):
    state = ThreadState(Memory(prog.data), prog.entry_pc)
    for _ in run_functional(prog, state, max_insts):
        pass
    return {r: state.regs.read(r) for r in watch}


def nested_branch_program(seed, n=200):
    """Random nested data-dependent branches with accumulator effects."""
    rng = random.Random(seed)
    asm = Assembler()
    asm.data_words("vals", [rng.randrange(4) for _ in range(n)])
    asm.li("r1", n)
    asm.la("r2", "vals")
    asm.li("r5", 0)
    asm.li("r6", 0)
    asm.li("r7", 0)
    asm.label("loop")
    asm.ld("r3", "r2")
    asm.beq("r3", "case0")
    asm.sub("r4", "r3", imm=1)
    asm.beq("r4", "case1")
    asm.sub("r4", "r3", imm=2)
    asm.beq("r4", "case2")
    asm.xor("r7", "r7", rb="r3")  # case 3
    asm.br("next")
    asm.label("case0")
    asm.add("r5", "r5", imm=1)
    asm.br("next")
    asm.label("case1")
    asm.add("r6", "r6", rb="r3")
    asm.br("next")
    asm.label("case2")
    asm.sll("r7", "r7", imm=1)
    asm.add("r7", "r7", imm=1)
    asm.label("next")
    asm.add("r2", "r2", imm=8)
    asm.sub("r1", "r1", imm=1)
    asm.bgt("r1", "loop")
    asm.halt()
    return asm.build()


def test_nested_unpredictable_branches_commit_correct_state():
    """Despite constant squashing, final architectural state must equal
    the functional reference (journals roll back exactly)."""
    for seed in (1, 2, 3):
        prog = nested_branch_program(seed)
        want = reference_regs(prog, (5, 6, 7))
        core, stats = run_core(prog)
        got = {r: core._main.state.regs.read(r) for r in (5, 6, 7)}
        assert got == want, f"seed {seed}"
        assert stats.branch_mispredictions > 20  # it really squashed


def test_memory_state_matches_reference_under_squashes():
    rng = random.Random(9)
    asm = Assembler()
    out = asm.data_space("out", 64)
    asm.data_words("vals", [rng.randrange(2) for _ in range(128)])
    asm.li("r1", 128)
    asm.la("r2", "vals")
    asm.la("r5", "out")
    asm.label("loop")
    asm.ld("r3", "r2")
    asm.beq("r3", "skip")
    asm.and_("r6", "r1", imm=63)
    asm.s8add("r7", "r6", "r5")
    asm.st("r1", "r7")  # store only on taken path
    asm.label("skip")
    asm.add("r2", "r2", imm=8)
    asm.sub("r1", "r1", imm=1)
    asm.bgt("r1", "loop")
    asm.halt()
    prog = asm.build()

    reference = Memory(prog.data)
    state = ThreadState(reference, prog.entry_pc)
    for _ in run_functional(prog, state, 100_000):
        pass
    core, _ = run_core(prog)
    assert core.memory.snapshot() == reference.snapshot()


def test_calls_inside_mispredicted_regions():
    """Wrong paths that call/return must not corrupt the RAS beyond its
    checkpointed recovery (returns stay predictable on the correct path)."""
    rng = random.Random(4)
    asm = Assembler()
    asm.data_words("vals", [rng.randrange(2) for _ in range(256)])
    asm.li("r1", 256)
    asm.la("r2", "vals")
    asm.li("r6", 0)
    asm.label("loop")
    asm.ld("r3", "r2")
    asm.beq("r3", "skip")
    asm.call("helper")
    asm.label("skip")
    asm.add("r2", "r2", imm=8)
    asm.sub("r1", "r1", imm=1)
    asm.bgt("r1", "loop")
    asm.halt()
    asm.label("helper")
    asm.add("r6", "r6", imm=1)
    asm.ret()
    prog = asm.build()
    _, stats = run_core(prog)
    # Returns are RAS-predicted: the only mispredicting branch is the
    # unbiased beq (plus warmup), so ~128, not ~256+.
    assert stats.branch_mispredictions < 180


def test_window_never_exceeds_capacity():
    prog = nested_branch_program(seed=7, n=100)
    core = Core(prog, FOUR_WIDE)
    max_seen = 0
    original_fetch = core._fetch

    def checked_fetch():
        nonlocal max_seen
        original_fetch()
        max_seen = max(max_seen, core._window_count)

    core._fetch = checked_fetch
    core.run()
    assert 0 < max_seen <= FOUR_WIDE.window_entries


def test_runs_are_deterministic():
    prog = nested_branch_program(seed=11)
    first = Core(prog, FOUR_WIDE).run()
    second = Core(prog, FOUR_WIDE).run()
    assert first.cycles == second.cycles
    assert first.branch_mispredictions == second.branch_mispredictions
    assert first.main_fetched == second.main_fetched


def test_slice_runs_are_deterministic():
    from repro.workloads import vpr

    workload = vpr.build(scale=0.05)

    def once():
        return Core(
            workload.program,
            FOUR_WIDE,
            slices=workload.slices,
            memory_image=workload.memory_image,
            region=workload.region,
        ).run()

    a, b = once(), once()
    assert (a.cycles, a.slice_fetched, a.forks_taken) == (
        b.cycles,
        b.slice_fetched,
        b.forks_taken,
    )

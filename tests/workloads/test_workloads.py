"""Cross-workload validity tests.

Every workload must assemble, run functionally to HALT within its
region budget, and carry consistent problem-instruction annotations.
Slice-bearing workloads must have slices whose prediction streams
functionally match the main thread's branch outcomes.
"""

import pytest

from repro.arch import Fault, Memory, ThreadState, run_functional
from repro.workloads import registry

SCALE = 0.05


@pytest.fixture(scope="module", params=registry.all_names())
def workload(request):
    return registry.build(request.param, scale=SCALE)


def run_main(workload, collect_pc=None, max_instructions=3_000_000):
    state = ThreadState(Memory(workload.memory_image), workload.program.entry_pc)
    collected = []
    count = 0
    halted = False
    for inst, result in run_functional(
        workload.program, state, max_instructions
    ):
        count += 1
        if collect_pc is not None and inst.pc == collect_pc:
            collected.append(result)
        if result.fault is Fault.HALT:
            halted = True
    return state, count, halted, collected


def test_program_runs_to_halt_within_region(workload):
    _state, count, halted, _ = run_main(workload)
    assert halted, f"{workload.name} did not halt"
    assert count <= workload.region, (
        f"{workload.name}: region cap {workload.region} < actual {count}"
    )
    assert count > 500, f"{workload.name} too short to be meaningful"


def test_no_correct_path_faults(workload):
    state = ThreadState(
        Memory(workload.memory_image), workload.program.entry_pc
    )
    for inst, result in run_functional(workload.program, state, 3_000_000):
        assert result.fault in (Fault.NONE, Fault.HALT), (
            f"{workload.name}: fault {result.fault} at {inst.pc:#x}"
        )
        if result.fault is Fault.HALT:
            break


def test_problem_annotations_point_at_real_instructions(workload):
    for pc in workload.problem_branch_pcs:
        inst = workload.program.at(pc)
        assert inst is not None and inst.is_branch
    for pc in workload.problem_load_pcs:
        inst = workload.program.at(pc)
        assert inst is not None and inst.is_mem


def test_slices_are_well_formed(workload):
    for spec in workload.slices:
        # Fork PC is a real main-program instruction.
        assert workload.program.at(spec.fork_pc) is not None
        # Kill PCs are real main-program instructions.
        for kill in spec.kills:
            assert workload.program.at(kill.kill_pc) is not None
        # PGIs target annotated problem branches.
        for pgi in spec.pgis:
            assert workload.program.at(pgi.branch_pc) is not None
        # Covered problem loads are real loads.
        for slice_pc, main_pc in spec.prefetch_for.items():
            assert spec.code.at(slice_pc).is_load
            assert workload.program.at(main_pc).is_load
        # Slice code is store-free (enforced at build, re-checked here).
        assert not any(i.is_store for i in spec.code.instructions)
        # Paper Table 3 scale: slices are small.
        assert spec.static_size <= 40


def test_slice_sizes_follow_paper_rule_of_thumb(workload):
    """"Typically a slice has fewer instructions than 4 times the
    number of problem instructions it covers" (Section 3.2)."""
    for spec in workload.slices:
        covered = len(spec.pgis) + len(spec.prefetch_for)
        if covered == 0:
            continue
        assert spec.static_size <= 4 * covered + 12, (
            f"{spec.name}: {spec.static_size} static for {covered} covered"
        )


def test_live_ins_are_few(workload):
    """"rarely are more than 4 values required" (Section 3.2)."""
    for spec in workload.slices:
        assert len(spec.live_in_regs) <= 4

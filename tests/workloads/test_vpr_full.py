"""Tests for the extended insert+pop vpr workload (two slices)."""

import pytest

from repro.arch import Memory, ThreadState, run_functional
from repro.harness.runner import run_baseline, run_with_slices
from repro.workloads import vpr_full


@pytest.fixture(scope="module")
def workload():
    return vpr_full.build(scale=0.08)


def test_heap_invariant_survives_inserts_and_pops(workload):
    state = ThreadState(Memory(workload.memory_image), workload.program.entry_pc)
    count = 0
    for _ in run_functional(workload.program, state, 3_000_000):
        count += 1
    assert count <= workload.region
    heap = workload.program.addr_of("heap")
    tail = state.memory.load(workload.program.addr_of("heap_tail"))
    mem = state.memory
    for i in range(2, tail):
        child = mem.load(mem.load(heap + 8 * i) + 8)
        parent = mem.load(mem.load(heap + 8 * (i // 2)) + 8)
        assert parent <= child, f"heap violated at {i}"


def test_pops_return_nondecreasing_costs_eventually(workload):
    """Each pop returns the minimum: with small-biased inserts, the
    accumulated pops must include the smallest initial costs."""
    state = ThreadState(Memory(workload.memory_image), workload.program.entry_pc)
    for _ in run_functional(workload.program, state, 3_000_000):
        pass
    # r28 accumulated all popped costs; it must be nonzero and the heap
    # size must be back at its initial value (one pop per insert).
    initial_tail = workload.memory_image[workload.program.addr_of("heap_tail")]
    final_tail = state.memory.load(workload.program.addr_of("heap_tail"))
    assert final_tail == initial_tail


def test_two_slices_cooperate(workload):
    base = run_baseline(workload)
    assisted = run_with_slices(workload)
    assert assisted.ipc > base.ipc
    c = assisted.correlator
    judged = c.correct_overrides + c.incorrect_overrides
    assert judged > 30
    assert c.correct_overrides / judged > 0.95
    # Both slices fork (two fork PCs in the slice table).
    assert assisted.forks_taken > 2 * 0.8 * (workload.region / 330)


def test_pop_slice_covers_both_descent_branches(workload):
    pop = workload.slices[1]
    assert len(pop.pgis) == 2
    assert len(pop.prefetch_for) == 4
    assert pop.live_in_regs == ()  # everything from globals

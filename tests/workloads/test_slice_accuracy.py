"""Functional slice-accuracy tests.

For each prediction-bearing slice, replay the main program, fork the
slice functionally at each fork point (copying live-ins, as the
hardware does), and check that the slice's PGI value stream matches the
main thread's actual branch outcomes — the property behind the paper's
">99% prediction accuracy" claim (Section 6.1).
"""

import pytest

from repro.arch import Fault, Memory, ThreadState, execute, run_functional
from repro.workloads import registry

SCALE = 0.05

CASES = [
    name
    for name in registry.all_names()
    if any(spec.pgis for spec in registry.build(name, scale=SCALE).slices)
]


def run_slice_functionally(spec, memory, live_values, max_insts=4000):
    """Execute a slice against (a copy of) *memory*; return PGI values."""
    state = ThreadState(memory, spec.entry_pc, journaling=False)
    state.regs.load_values(live_values)
    iterations = 0
    outputs = {pgi.slice_pc: [] for pgi in spec.pgis}
    for _ in range(max_insts):
        inst = spec.code.at(state.pc)
        if inst is None:
            break
        result = execute(inst, state)
        if inst.pc in outputs:
            outputs[inst.pc].append(result.value)
        if result.fault is not Fault.NONE:
            break
        if inst.pc == spec.loop_back_pc and result.taken:
            iterations += 1
            if (
                spec.max_iterations is not None
                and iterations >= spec.max_iterations
            ):
                state.pc = inst.pc + 4
    return outputs


@pytest.mark.parametrize("name", CASES)
def test_slice_predictions_match_main_outcomes(name):
    """Per-fork windows: a fork's predictions for branch B must agree
    with the actual outcomes of B observed between this fork and the
    next (extra slice predictions are killed by the correlator and
    extra actual iterations are simply uncovered, so the comparison is
    over the common prefix — exactly the pairing the kill mechanism of
    Section 5.1 enforces)."""
    workload = registry.build(name, scale=SCALE)
    program = workload.program
    memory = Memory(workload.memory_image)
    state = ThreadState(memory, program.entry_pc)

    specs = [spec for spec in workload.slices if spec.pgis]
    fork_pcs = {spec.fork_pc: spec for spec in specs}
    covered = {pgi.branch_pc for spec in specs for pgi in spec.pgis}

    # window: {branch_pc: (predictions, outcomes)}
    window: dict[int, tuple[list, list]] | None = None
    agree = 0
    compared = 0
    forks = 0

    def close_window():
        nonlocal agree, compared
        if window is None:
            return
        for predicted, actual in window.values():
            for p, a in zip(predicted, actual):
                compared += 1
                agree += p == a

    for inst, result in run_functional(program, state, 2_000_000):
        if inst.pc in fork_pcs and forks < 80:
            close_window()
            spec = fork_pcs[inst.pc]
            live = {r: state.regs.read(r) for r in spec.live_in_regs}
            outputs = run_slice_functionally(spec, memory, live)
            window = {}
            for pgi in spec.pgis:
                if pgi.conditional:
                    # Conditionally-consumed predictions (Figure 8) only
                    # pair up through the correlator's kills; they are
                    # exercised by the timing tests instead.
                    continue
                window.setdefault(pgi.branch_pc, ([], []))[0].extend(
                    pgi.direction_of(v) for v in outputs[pgi.slice_pc]
                )
            forks += 1
        if window is not None and inst.pc in covered and inst.pc in window:
            window[inst.pc][1].append(bool(result.taken))
        if result.fault is Fault.HALT:
            break
    close_window()

    assert forks >= 5, f"{name}: too few forks observed"
    assert compared > 20, f"{name}: too few comparisons"
    assert agree / compared > 0.95, (
        f"{name}: slice accuracy {agree}/{compared}"
    )

"""Tests for the assembler DSL and program container."""

import pytest

from repro.isa import Assembler, AssemblerError, INSTRUCTION_BYTES, Opcode


def test_pcs_are_sequential():
    asm = Assembler(base_pc=0x2000)
    asm.li("r1", 5)
    asm.add("r2", "r1", imm=1)
    asm.halt()
    prog = asm.build()
    assert [i.pc for i in prog.instructions] == [0x2000, 0x2004, 0x2008]
    assert prog.end_pc == 0x2000 + 3 * INSTRUCTION_BYTES


def test_labels_resolve_forward_and_backward():
    asm = Assembler()
    asm.label("top")
    asm.br("bottom")
    asm.label("bottom")
    asm.br("top")
    prog = asm.build()
    assert prog.instructions[0].target == prog.pc_of("bottom")
    assert prog.instructions[1].target == prog.pc_of("top")


def test_unresolved_label_raises():
    asm = Assembler()
    asm.br("nowhere")
    with pytest.raises(AssemblerError, match="nowhere"):
        asm.build()


def test_duplicate_label_raises():
    asm = Assembler()
    asm.label("x")
    asm.nop()
    with pytest.raises(AssemblerError, match="duplicate"):
        asm.label("x")


def test_alu_requires_exactly_one_of_rb_imm():
    asm = Assembler()
    with pytest.raises(AssemblerError):
        asm.add("r1", "r2")
    with pytest.raises(AssemblerError):
        asm.add("r1", "r2", rb="r3", imm=4)


def test_register_aliases():
    asm = Assembler()
    inst = asm.mov("sp", "gp")
    assert inst.rd == 30
    assert inst.ra == 29


def test_data_allocation_is_word_granular():
    asm = Assembler()
    a = asm.data_word("a", 7)
    b = asm.data_words("b", [1, 2, 3])
    c = asm.data_space("c", 2)
    prog = asm.build()
    assert b == a + 8
    assert c == b + 24
    assert prog.data[a] == 7
    assert prog.data[b + 16] == 3
    assert prog.data[c] == 0
    assert prog.addr_of("b") == b


def test_data_align():
    asm = Assembler()
    asm.data_word("a", 1)
    asm.data_align(64)
    b = asm.data_word("b", 2)
    assert b % 64 == 0


def test_duplicate_data_symbol_raises():
    asm = Assembler()
    asm.data_word("a")
    with pytest.raises(AssemblerError, match="duplicate"):
        asm.data_word("a")


def test_entry_point():
    asm = Assembler()
    asm.nop()
    asm.label("start")
    asm.halt()
    asm.entry("start")
    prog = asm.build()
    assert prog.entry_pc == prog.pc_of("start")


def test_entry_defaults_to_base():
    asm = Assembler(base_pc=0x400)
    asm.halt()
    assert asm.build().entry_pc == 0x400


def test_call_writes_return_register():
    asm = Assembler()
    asm.label("f")
    inst = asm.call("f")
    assert inst.op is Opcode.CALL
    assert inst.rd == 26


def test_program_at_and_contains():
    asm = Assembler()
    asm.nop()
    asm.halt()
    prog = asm.build()
    assert prog.at(prog.base_pc).op is Opcode.NOP
    assert prog.base_pc + 4 in prog
    assert prog.at(0xDEAD) is None


def test_comment_attaches_to_next_instruction():
    asm = Assembler()
    asm.comment("the loop counter")
    inst = asm.li("r1", 0)
    assert inst.comment == "the loop counter"
    assert asm.nop().comment == ""


def test_merged_with_combines_programs():
    main = Assembler(base_pc=0x1000)
    main.label("m")
    main.halt()
    slice_asm = Assembler(base_pc=0x9000)
    slice_asm.label("s")
    slice_asm.halt()
    merged = main.build().merged_with(slice_asm.build())
    assert merged.at(0x1000) is not None
    assert merged.at(0x9000) is not None
    assert merged.pc_of("m") == 0x1000
    assert merged.pc_of("s") == 0x9000
    assert merged.entry_pc == 0x1000


def test_merged_with_rejects_overlap():
    a = Assembler(base_pc=0x1000)
    a.halt()
    b = Assembler(base_pc=0x1000)
    b.halt()
    with pytest.raises(ValueError, match="overlap"):
        a.build().merged_with(b.build())

"""Tests for the disassembler."""

from repro.isa import Assembler, disassemble, format_instruction


def _single(build):
    asm = Assembler()
    asm.label("t")
    inst = build(asm)
    return format_instruction(inst, {asm.build().pc_of("t"): "t"})


def test_format_alu_reg_and_imm():
    assert _single(lambda a: a.add("r1", "r2", rb="r3")).startswith("add")
    assert "r1, r2, 7" in _single(lambda a: a.add("r1", "r2", imm=7))


def test_format_memory_ops():
    assert _single(lambda a: a.ld("r1", "r2", 16)) == "ld      r1, 16(r2)"
    assert _single(lambda a: a.st("r3", "r4", -8)) == "st      r3, -8(r4)"


def test_format_branch_uses_label():
    assert _single(lambda a: a.beq("r1", "t")) == "beq     r1, t"
    assert _single(lambda a: a.br("t")) == "br      t"


def test_format_comment_appended():
    def build(asm):
        asm.comment("heap tail")
        return asm.li("r1", 0)

    assert "# heap tail" in _single(build)


def test_disassemble_marks_problem_pcs():
    asm = Assembler()
    asm.label("loop")
    asm.ld("r1", "r2")
    asm.bgt("r1", "loop")
    asm.halt()
    prog = asm.build()
    text = disassemble(prog, mark_pcs={prog.base_pc})
    lines = text.splitlines()
    assert lines[0] == "loop:"
    assert lines[1].lstrip().startswith("*")
    assert "ld" in lines[1]
    assert not lines[2].lstrip().startswith("*")

"""Tests for instruction classification and operand parsing."""

import pytest

from repro.isa import Assembler, Opcode, parse_reg
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass, base_latency, op_class


def test_parse_reg_forms():
    assert parse_reg(0) == 0
    assert parse_reg("r17") == 17
    assert parse_reg("zero") == 31
    assert parse_reg("RA") == 26


@pytest.mark.parametrize("bad", ["x1", "r32", "r-1", 99, "reg3"])
def test_parse_reg_rejects_garbage(bad):
    with pytest.raises(ValueError):
        parse_reg(bad)


def test_branch_classification():
    asm = Assembler()
    asm.label("t")
    beq = asm.beq("r1", "t")
    br = asm.br("t")
    jr = asm.jr("r2")
    ret = asm.ret()
    ld = asm.ld("r1", "r2")
    assert beq.is_branch and beq.is_conditional and not beq.is_indirect
    assert br.is_branch and not br.is_conditional
    assert jr.is_indirect and ret.is_indirect
    assert not ld.is_branch and ld.is_mem and ld.is_load


def test_store_reads_its_value_register():
    asm = Assembler()
    st = asm.st("r5", "r6", 8)
    assert set(st.source_regs()) == {5, 6}
    assert not st.writes_dest
    assert st.is_store


def test_cmov_reads_old_destination():
    asm = Assembler()
    cmov = asm.cmoveq("r1", "r2", "r3")
    assert set(cmov.source_regs()) == {1, 2, 3}
    assert cmov.writes_dest


def test_zero_register_carries_no_dependence():
    asm = Assembler()
    add = asm.add("r1", "zero", rb="r31")
    assert add.source_regs() == ()


def test_op_classes_and_latencies():
    assert op_class(Opcode.ADD) is OpClass.SIMPLE
    assert op_class(Opcode.MUL) is OpClass.COMPLEX
    assert op_class(Opcode.LD) is OpClass.MEM
    assert op_class(Opcode.BEQ) is OpClass.CONTROL
    assert op_class(Opcode.HALT) is OpClass.OTHER
    assert base_latency(Opcode.ADD) == 1
    assert base_latency(Opcode.DIV) > base_latency(Opcode.MUL) > 1


def test_load_writes_dest_store_does_not():
    ld = Instruction(Opcode.LD, rd=1, ra=2, imm=0)
    st = Instruction(Opcode.ST, rd=1, ra=2, imm=0)
    assert ld.writes_dest
    assert not st.writes_dest

"""Tests for the textual assembly parser."""

import pytest

from repro.arch import Memory, ThreadState, run_functional
from repro.isa import Opcode, disassemble
from repro.isa.parser import ParseError, parse_assembly


def run_program(program, max_insts=100_000):
    state = ThreadState(Memory(program.data), program.entry_pc)
    for _ in run_functional(program, state, max_insts):
        pass
    return state


def test_parse_counted_loop():
    program = parse_assembly(
        """
        ; sum 1..10
            li      r1, 10
            li      r2, 0
        loop:
            add     r2, r2, r1
            sub     r1, r1, 1
            bgt     r1, loop
            halt
        """
    )
    state = run_program(program)
    assert state.regs.read(2) == 55


def test_parse_data_directives_and_memory_ops():
    program = parse_assembly(
        """
        .word   table 5 6 7
        .space  out 1
            la      r1, @table
            ld      r2, 8(r1)       ; table[1] == 6
            li      r3, @out
            st      r2, 0(r3)
            halt
        """
    )
    state = run_program(program)
    assert state.memory.load(program.addr_of("out")) == 6


def test_parse_register_forms_and_hex():
    program = parse_assembly(
        """
            li      r1, 0x10
            sll     r2, r1, 2
            s8add   r3, r1, r2
            cmoveq  r3, r31, r1
            halt
        """
    )
    state = run_program(program)
    assert state.regs.read(2) == 0x40
    assert state.regs.read(3) == 0x10  # cmoveq on zero reg always moves


def test_parse_calls_and_entry():
    program = parse_assembly(
        """
        .entry  main
        helper:
            add     r5, r5, 1
            ret
        main:
            call    helper
            call    helper
            halt
        """
    )
    assert program.entry_pc == program.pc_of("main")
    state = run_program(program)
    assert state.regs.read(5) == 2


def test_label_on_same_line_as_instruction():
    program = parse_assembly(
        """
            li r1, 3
        top:    sub r1, r1, 1
            bgt r1, top
            halt
        """
    )
    assert "top" in program.labels
    state = run_program(program)
    assert state.regs.read(1) == 0


def test_roundtrip_through_disassembler():
    source = """
        li      r1, 4
    loop:
        sub     r1, r1, 1
        bgt     r1, loop
        halt
    """
    import re

    first = parse_assembly(source)
    text = disassemble(first)
    # Strip PC columns; reparse the remaining assembly.
    lines = [
        line if line.endswith(":")
        else re.sub(r"^\s*\*?\s*0x[0-9a-f]+\s+", "", line)
        for line in text.splitlines()
    ]
    second = parse_assembly("\n".join(lines))
    assert [i.op for i in second.instructions] == [
        i.op for i in first.instructions
    ]
    assert second.instructions[2].op is Opcode.BGT


@pytest.mark.parametrize(
    "bad,fragment",
    [
        ("frobnicate r1, r2", "unknown opcode"),
        ("ld r1, blah", "bad memory operand"),
        ("li r1, xyz", "bad immediate"),
        (".bogus x", "unknown directive"),
        ("la r1, @missing", "unknown data symbol"),
    ],
)
def test_parse_errors_carry_line_numbers(bad, fragment):
    with pytest.raises(ParseError, match=fragment):
        parse_assembly(bad)


def test_comments_and_blank_lines_ignored():
    program = parse_assembly(
        """
        # full-line comment
            li r1, 1   ; trailing

            halt
        """
    )
    assert len(program) == 2


def test_parse_fork_instruction():
    from repro.isa import Opcode

    program = parse_assembly(
        """
            fork    0
            halt
        """
    )
    assert program.instructions[0].op is Opcode.FORK
    assert program.instructions[0].imm == 0

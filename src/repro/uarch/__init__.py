"""Timing microarchitecture: caches, predictors, and the OOO SMT core."""

from repro.uarch.cache import AccessResult, DataHierarchy, SetAssociativeCache
from repro.uarch.config import EIGHT_WIDE, FOUR_WIDE, MachineConfig
from repro.uarch.core import Core
from repro.uarch.perfect import ALL_PERFECT, NO_PERFECT, PerfectSpec, problem_perfect
from repro.uarch.prefetch import StreamPrefetcher
from repro.uarch.stats import PcCounter, RunStats

__all__ = [
    "ALL_PERFECT",
    "AccessResult",
    "Core",
    "DataHierarchy",
    "EIGHT_WIDE",
    "FOUR_WIDE",
    "MachineConfig",
    "NO_PERFECT",
    "PcCounter",
    "PerfectSpec",
    "RunStats",
    "SetAssociativeCache",
    "StreamPrefetcher",
    "problem_perfect",
]

"""Fused basic-block execution tier (third tier, code generation).

The simulator has three execution tiers for a static instruction:

1. **decode** — :func:`repro.arch.interpreter.execute` table dispatch,
   used exactly once per static instruction;
2. **per-instruction closure** — the specialized ``inst._exec`` closure
   compiled on first execution (PR 1);
3. **fused block** — this module: one ``exec``-generated function per
   *fetch segment* (up to ``width`` consecutive non-control
   instructions of one basic block) that performs, for the whole
   segment, everything :meth:`Core._fetch_one` + the closure +
   :meth:`Core._dispatch` + :meth:`Core._make_ready` would do
   per-instruction — architectural effects with operand register
   indices and immediates folded in as literals, journaled writes,
   :class:`~repro.uarch.window.WindowEntry` creation straight from
   scalars (no ``ExecResult`` is ever allocated), dependence edges
   (in-segment edges are resolved *statically* at compile time), and
   ready-queue insertion — in one Python call.

Safety rules (see DESIGN.md):

* Segments contain no control transfers, ``HALT``, or ``FORK`` — those
  always deopt to the instruction tier, which owns prediction,
  checkpoints, fork CAMs, and fetch-stall semantics. "Deopt on taken
  branches" therefore holds by construction: a block ends *before* its
  terminator.
* A null-page access **deopts**: the faulting instruction's exact
  architectural effects (write 0 / skip the store, raise the fault
  flag) are performed inline, the group ends at that instruction, and
  ``stats.block_deopts`` is incremented. The rest of the fetch group
  is refetched by the instruction tier, bit-identically.
* Segments are compiled only for *main-thread* code: helper-thread
  slices keep the instruction tier (PGI lookups, instruction fuses,
  and fault quarantine are per-instruction events).
* PCs CAMed by the slice hardware (kill map, fork map, value-PGI
  loads) are never fused; those maps are static after ``Core.__init__``.

The generated function has the signature ``run(core, ctx, count)``
where ``count`` is the fetch budget (clamped internally to the segment
length); it returns the number of instructions actually fetched.
"""

from __future__ import annotations

import os
from heapq import heappush
from typing import Sequence

from repro.arch.exceptions import NULL_PAGE_LIMIT, Fault
from repro.arch.interpreter import _div
from repro.arch.memory import MASK64, to_signed
from repro.isa.instruction import ZERO_REG, Instruction
from repro.isa.opcodes import INSTRUCTION_BYTES, Opcode
from repro.uarch.window import WindowEntry

_MIN64 = -(1 << 63)
_MAX64 = (1 << 63) - 1

#: ALU value expressions; ``{a}``/``{b}`` are operand expressions
#: (register subscripts or immediate literals). Semantics match the
#: per-instruction closures in :mod:`repro.arch.interpreter` exactly.
_ALU_EXPR = {
    Opcode.ADD: "{a} + ({b})",
    Opcode.SUB: "{a} - ({b})",
    Opcode.AND: "{a} & ({b})",
    Opcode.OR: "{a} | ({b})",
    Opcode.XOR: "{a} ^ ({b})",
    Opcode.SLL: "{a} << (({b}) & 63)",
    Opcode.SRL: "({a} & {m}) >> (({b}) & 63)",
    Opcode.SRA: "{a} >> (({b}) & 63)",
    Opcode.CMPEQ: "int({a} == ({b}))",
    Opcode.CMPLT: "int({a} < ({b}))",
    Opcode.CMPLE: "int({a} <= ({b}))",
    Opcode.CMPULT: "int(({a} & {m}) < (({b}) & {m}))",
    Opcode.S4ADD: "({a} << 2) + ({b})",
    Opcode.S8ADD: "({a} << 3) + ({b})",
    Opcode.MUL: "{a} * ({b})",
    Opcode.DIV: "_div({a}, {b})",
}

_CMOV_TEST = {
    Opcode.CMOVEQ: "== 0",
    Opcode.CMOVNE: "!= 0",
    Opcode.CMOVLT: "< 0",
    Opcode.CMOVGE: ">= 0",
}

#: Source line the ST path emits to journal the overwritten word before
#: a fused store lands. Hoisted to a module constant so differential
#: tests can monkeypatch it (e.g. to ``"    pass"``) and prove the
#: fuzzer detects a fused tier that skips journaled writes — wrong-path
#: stores then survive rollback and diverge architecturally.
_ST_JOURNAL_SRC = "    if mjon: mj((wa, mw_get(wa)))"

#: Opcodes the code generator can fuse. Everything else (control
#: transfers, HALT, FORK) terminates a block by construction.
FUSABLE_OPS = (
    frozenset(_ALU_EXPR)
    | frozenset(_CMOV_TEST)
    | {Opcode.LI, Opcode.MOV, Opcode.LD, Opcode.ST, Opcode.NOP}
)


def fusion_default() -> bool:
    """Process-wide default for ``Core(fused_blocks=...)``.

    ``REPRO_NO_FUSE`` (set by the ``--no-fuse`` CLI flag) disables the
    fused tier everywhere for differential testing and bisection.
    """
    return not os.environ.get("REPRO_NO_FUSE")


def compile_segment(
    insts: Sequence[Instruction],
    thread_id: int,
    frontend_stages: int,
):
    """Compile one fetch segment into a single fused function.

    *insts* must be consecutive non-terminator instructions of one
    basic block (the caller — :meth:`Core._compile_fused` — guarantees
    this and the CAM exclusions).
    """
    k_total = len(insts)
    assert k_total > 0
    ns: dict[str, object] = {
        "_E": WindowEntry,
        "_new": WindowEntry.__new__,
        "_div": _div,
        "_ts": to_signed,
        "_heappush": heappush,
        "_F0": Fault.NONE,
        "_FND": Fault.NULL_DEREF,
    }
    src: list[str] = []
    emit = src.append
    emit("def _fused_run(core, ctx, count):")
    emit(f"    if count > {k_total}: count = {k_total}")
    emit("    state = ctx.state")
    emit("    regs = state.regs")
    emit("    r = regs._regs")
    emit("    ja = regs._journal.append")
    emit("    lw = ctx.last_writer")
    emit("    rob_append = ctx.rob.append")
    emit("    ready = core._ready")
    emit("    seq = core._seq")
    emit("    push = _heappush")
    emit("    st = core.stats")
    emit("    cycle = core.cycle")
    emit(f"    rc = cycle + {frontend_stages}")
    emit("    vn = core._next_vn")
    # Memory fast paths: mirror ``Memory.load`` / ``Memory.store``
    # inline (word-align, default-zero reads, journaled writes).
    # Register values are always wrapped signed 64-bit, so the store's
    # ``to_signed`` reduces to the same range check the ALU wrap uses.
    if any(i.is_mem for i in insts):
        emit("    mem = state.memory")
        emit("    mw = mem._words")
        emit("    mw_get = mw.get")
    if any(i.op is Opcode.ST for i in insts):
        emit("    mj = mem._journal.append")
        emit("    mjon = mem.journaling")

    def vn_expr(k: int) -> str:
        return "vn" if k == 0 else f"vn + {k}"

    def entry(
        k: int,
        value: str,
        addr: str,
        store: str,
        next_pc: int,
        fault: str,
        indent: str = "    ",
    ) -> None:
        """``WindowEntry.__init__`` unrolled into direct slot stores —
        identical state, no per-entry Python frame."""
        ev = f"e{k}"
        emit(f"{indent}{ev} = _new(_E)")
        emit(
            f"{indent}{ev}.inst = i{k}; {ev}.thread_id = {thread_id}; "
            f"{ev}.vn = {vn_expr(k)}; {ev}.fetch_cycle = cycle"
        )
        emit(
            f"{indent}{ev}.rvalue = {value}; {ev}.raddr = {addr}; "
            f"{ev}.rstore = {store}; {ev}.rtaken = None"
        )
        emit(f"{indent}{ev}.rnext_pc = {next_pc}; {ev}.rfault = {fault}")
        emit(
            f"{indent}{ev}.prediction = None; {ev}.checkpoint = None; "
            f"{ev}.mispredicted = False"
        )
        emit(
            f"{indent}{ev}.effective_taken = None; "
            f"{ev}.early_resolved = False"
        )
        emit(
            f"{indent}{ev}.completed = False; {ev}.squashed = False; "
            f"{ev}.committed = False"
        )
        emit(f"{indent}{ev}.pending_deps = 0; {ev}.waiters = []")
        emit(
            f"{indent}{ev}.prev_writer = None; {ev}.pgi_slot = None; "
            f"{ev}.match_slot = None"
        )
        emit(
            f"{indent}{ev}.counts_as_miss = False; "
            f"{ev}.value_predicted = False; {ev}.value_correct = False"
        )

    def epilogue(k: int, next_pc: int, indent: str) -> None:
        """Account for ``k+1`` fetched instructions and return."""
        n = k + 1
        emit(f"{indent}state.pc = {next_pc}")
        emit(f"{indent}core._next_vn = vn + {n}")
        emit(f"{indent}st.main_fetched += {n}")
        emit(f"{indent}core._window_count += {n}")
        emit(f"{indent}ctx.in_flight += {n}")
        emit(f"{indent}return {n}")

    # Latest in-segment writer per register: reg -> entry variable name.
    seg_writer: dict[int, str] = {}

    def dispatch(k: int, inst: Instruction, indent: str) -> None:
        """Dependence edges + rename update + readiness for ``e{k}``.

        Mirrors ``Core._dispatch`` / ``_make_ready`` exactly, except
        that edges from producers *inside this segment* are emitted
        statically: such a producer was created microseconds ago in
        this very call and cannot be completed or squashed yet, so the
        runtime checks are provably dead. ``_make_ready``'s clamp of
        the ready cycle to "now" is dead too: ``fetch_cycle`` *is* now
        and ``frontend_stages >= 0``.
        """
        ev = f"e{k}"
        sources = inst.unique_source_regs()
        static = [seg_writer[s] for s in sources if s in seg_writer]
        external = [s for s in sources if s not in seg_writer]
        for producer in static:
            emit(f"{indent}{producer}.waiters.append({ev})")
        if external:
            emit(f"{indent}pend = {len(static)}")
            for reg in external:
                emit(f"{indent}p = lw.get({reg})")
                emit(
                    f"{indent}if p is not None and not p.completed"
                    " and not p.squashed:"
                )
                emit(f"{indent}    pend += 1")
                emit(f"{indent}    p.waiters.append({ev})")
        if inst._op_writes and inst.rd is not None:
            rd = inst.rd
            prev = seg_writer.get(rd)
            if prev is not None:
                emit(f"{indent}{ev}.prev_writer = ({rd}, {prev})")
            else:
                emit(f"{indent}{ev}.prev_writer = ({rd}, lw.get({rd}))")
            emit(f"{indent}lw[{rd}] = {ev}")
        if external:
            emit(f"{indent}if pend:")
            emit(f"{indent}    {ev}.pending_deps = pend")
            emit(f"{indent}else:")
            emit(f"{indent}    push(ready, (rc, next(seq), {ev}))")
        elif static:
            emit(f"{indent}{ev}.pending_deps = {len(static)}")
        else:
            emit(f"{indent}push(ready, (rc, next(seq), {ev}))")

    for k, inst in enumerate(insts):
        op = inst.op
        next_pc = inst.pc + INSTRUCTION_BYTES
        ev = f"e{k}"
        iv = f"i{k}"
        ns[iv] = inst
        rd = inst.rd
        dead = rd == ZERO_REG
        a = f"r[{inst.ra}]"
        b = f"r[{inst.rb}]" if inst.rb is not None else repr(inst.imm)
        if op in _ALU_EXPR:
            expr = _ALU_EXPR[op].format(a=a, b=b, m=MASK64)
            emit(f"    v = {expr}")
            emit(f"    if v < {_MIN64} or v > {_MAX64}: v = _ts(v)")
            if not dead:
                emit(f"    ja(({rd}, r[{rd}])); r[{rd}] = v")
            entry(k, "v", "None", "None", next_pc, "_F0")
        elif op in _CMOV_TEST:
            emit(
                f"    v = r[{inst.rb}] if {a} {_CMOV_TEST[op]} else r[{rd}]"
            )
            if not dead:
                emit(f"    ja(({rd}, r[{rd}])); r[{rd}] = v")
            entry(k, "v", "None", "None", next_pc, "_F0")
        elif op is Opcode.MOV:
            emit(f"    v = {a}")
            if not dead:
                emit(f"    ja(({rd}, r[{rd}])); r[{rd}] = v")
            entry(k, "v", "None", "None", next_pc, "_F0")
        elif op is Opcode.LI:
            # The register holds the wrapped value; the *reported*
            # value is the raw immediate (closure contract).
            if not dead:
                stored = to_signed(inst.imm)
                emit(f"    ja(({rd}, r[{rd}])); r[{rd}] = {stored}")
            entry(k, repr(inst.imm), "None", "None", next_pc, "_F0")
        elif op is Opcode.NOP:
            entry(k, "None", "None", "None", next_pc, "_F0")
        elif op is Opcode.LD:
            emit(f"    addr = {a} + ({inst.imm})")
            emit(f"    if addr < {NULL_PAGE_LIMIT}:")
            # Fault path: exact architectural effects, then deopt.
            if not dead:
                emit(f"        ja(({rd}, r[{rd}])); r[{rd}] = 0")
            entry(k, "0", "addr", "None", next_pc, "_FND", "        ")
            emit(f"        rob_append({ev})")
            dispatch(k, inst, "        ")
            emit("        st.block_deopts += 1")
            epilogue(k, next_pc, "        ")
            emit("    v = mw_get(addr & -8, 0)")
            if not dead:
                emit(f"    ja(({rd}, r[{rd}])); r[{rd}] = v")
            entry(k, "v", "addr", "None", next_pc, "_F0")
        elif op is Opcode.ST:
            emit(f"    addr = {a} + ({inst.imm})")
            emit(f"    sv = r[{rd}]")
            emit(f"    if addr < {NULL_PAGE_LIMIT}:")
            entry(k, "None", "addr", "sv", next_pc, "_FND", "        ")
            emit(f"        rob_append({ev})")
            dispatch(k, inst, "        ")
            emit("        st.block_deopts += 1")
            epilogue(k, next_pc, "        ")
            emit("    wa = addr & -8")
            emit(_ST_JOURNAL_SRC)
            emit(f"    mw[wa] = sv if {_MIN64} <= sv <= {_MAX64} else _ts(sv)")
            entry(k, "None", "addr", "sv", next_pc, "_F0")
        else:  # pragma: no cover - callers filter on FUSABLE_OPS
            raise NotImplementedError(f"unfusable opcode {op}")

        emit(f"    rob_append({ev})")
        dispatch(k, inst, "    ")
        if inst._op_writes and rd is not None:
            seg_writer[rd] = ev
        if k + 1 < k_total:
            emit(f"    if count == {k + 1}:")
            epilogue(k, next_pc, "        ")
        else:
            epilogue(k, next_pc, "    ")

    code = "\n".join(src)
    exec(compile(code, f"<fused:{insts[0].pc:#x}>", "exec"), ns)
    fn = ns["_fused_run"]
    fn._source = code  # debugging aid
    return fn


#: Fetch-group entries at one PC before its segment is compiled.
#: Compilation costs ~0.5 ms per segment (mostly ``compile()``); a
#: cold or wrong-path-only entry PC never earns that back, so the
#: fused tier warms up through the instruction tier first.
HOT_THRESHOLD = 8

#: Shortest segment worth generating. The prologue (a dozen local
#: binds) is amortized over the segment body; a single-instruction
#: stub is no faster than the per-instruction tier, so those stay
#: uncompiled instead of paying codegen for nothing.
MIN_FUSE_LEN = 2

"""Hardware stream prefetcher (Table 1).

Detects cache misses with unit stride (positive or negative) and
launches prefetches once a stream is confirmed. Before a stride is
detected, sequential next blocks are prefetched to exploit spatial
locality beyond one 64-byte line. Prefetched lines land in the unified
prefetch/victim buffer via :meth:`DataHierarchy.prefetch_fill`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uarch.cache import DataHierarchy
from repro.uarch.config import PrefetchConfig


@dataclass(slots=True)
class _Stream:
    """One tracked miss stream, keyed by its last miss line."""

    last_line: int
    stride: int  # lines; 0 until confirmed
    confirmed: bool


class StreamPrefetcher:
    """Unit-stride stream detector and prefetch launcher.

    Attach with :meth:`attach`, which registers the prefetcher as the
    hierarchy's miss listener; every demand L1 miss then trains it.
    """

    def __init__(self, config: PrefetchConfig, hierarchy: DataHierarchy):
        self._config = config
        self._hierarchy = hierarchy
        self._line_bytes = hierarchy.config.l1d.line_bytes
        self._streams: list[_Stream] = []
        self.prefetches_launched = 0
        self.streams_confirmed = 0

    def attach(self) -> None:
        """Register as the hierarchy's L1-miss listener."""
        self._hierarchy.set_miss_listener(self.on_miss)

    def on_miss(self, addr: int, now: int = 0) -> None:
        """Train on a demand L1 miss at cycle *now*; launch prefetches."""
        line = addr // self._line_bytes

        stream = self._match(line)
        if stream is not None:
            if not stream.confirmed:
                stream.stride = line - stream.last_line
                stream.confirmed = True
                self.streams_confirmed += 1
            stream.last_line = line
            self._launch(line, stream.stride, self._config.stream_depth, now)
            return

        # No stream matched: allocate a tracker for this miss and,
        # before any stride is known, prefetch the sequential next block.
        self._allocate(line)
        if self._config.sequential_next_line:
            self._launch(line, stride=1, depth=1, now=now)

    # ------------------------------------------------------------------

    def _match(self, line: int) -> _Stream | None:
        """Find a stream this miss continues (unit stride, +/-1 line)."""
        for stream in self._streams:
            if stream.confirmed:
                if line == stream.last_line + stream.stride:
                    return stream
            elif line in (stream.last_line + 1, stream.last_line - 1):
                return stream
        return None

    def _allocate(self, line: int) -> None:
        if len(self._streams) >= self._config.stream_table_entries:
            self._streams.pop(0)
        self._streams.append(_Stream(last_line=line, stride=0, confirmed=False))

    # ------------------------------------------------------------------
    # Functional-warming images (sampled simulation)
    # ------------------------------------------------------------------

    def warm_image(self) -> list[tuple[int, int, bool]]:
        """Picklable copy of the stream table for a warmed-state
        snapshot. Without it, a detailed region resumed from a snapshot
        would start with a cold stream table while a straight-through
        run would not — the divergence the split-vs-straight warmup
        differential pins down."""
        return [
            (stream.last_line, stream.stride, stream.confirmed)
            for stream in self._streams
        ]

    def load_warm_image(self, image: list[tuple[int, int, bool]]) -> None:
        """Install a :meth:`warm_image` (stream order is LRU order and
        is preserved — :meth:`_allocate` evicts the oldest entry)."""
        self._streams = [
            _Stream(last_line=last_line, stride=stride, confirmed=confirmed)
            for last_line, stride, confirmed in image
        ]

    # ------------------------------------------------------------------

    def _launch(self, line: int, stride: int, depth: int, now: int = 0) -> None:
        for step in range(1, depth + 1):
            target_line = line + stride * step
            if target_line < 0:
                break
            self.prefetches_launched += 1
            self._hierarchy.prefetch_fill(target_line * self._line_bytes, now)

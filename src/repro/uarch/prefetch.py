"""Hardware stream prefetcher (Table 1).

Detects cache misses with unit stride (positive or negative) and
launches prefetches once a stream is confirmed. Before a stride is
detected, sequential next blocks are prefetched to exploit spatial
locality beyond one 64-byte line. Prefetched lines land in the unified
prefetch/victim buffer via :meth:`DataHierarchy.prefetch_fill`.

**O(1) matching.** The stream table used to be scanned linearly per
miss — the second-hottest operation of the functional-warming loop
after the L1 access. Streams are now also indexed by the line a miss
would have to land on to continue them (``last_line + stride`` once
confirmed; ``last_line ± 1`` before): a miss resolves to its stream
with one dict probe. The legacy scan returned the *first* match in
table order, streams are never reordered by a match, and eviction pops
the oldest entry — so table order is allocation order, and a
per-stream allocation sequence number reproduces the first-match
tie-break exactly when two streams expect the same line.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.uarch.cache import DataHierarchy
from repro.uarch.config import PrefetchConfig


@dataclass(slots=True)
class _Stream:
    """One tracked miss stream, keyed by its last miss line."""

    last_line: int
    stride: int  # lines; 0 until confirmed
    confirmed: bool
    #: Allocation order, for the first-match-in-table-order tie-break.
    seq: int = 0


class StreamPrefetcher:
    """Unit-stride stream detector and prefetch launcher.

    Attach with :meth:`attach`, which registers the prefetcher as the
    hierarchy's miss listener; every demand L1 miss then trains it.
    """

    def __init__(self, config: PrefetchConfig, hierarchy: DataHierarchy):
        self._config = config
        self._hierarchy = hierarchy
        self._line_bytes = hierarchy.config.l1d.line_bytes
        self._line_shift = self._line_bytes.bit_length() - 1
        #: L1-line -> L2-line shift, for the inlined warm fill path.
        self._l2_delta = hierarchy.l2._line_shift - self._line_shift
        #: Allocation order, oldest first (so eviction is an O(1)
        #: ``popleft`` instead of ``list.pop(0)``).
        self._streams: deque[_Stream] = deque()
        #: expected-next-line -> the stream(s) a miss on that line
        #: would continue. Values are a bare ``_Stream`` in the
        #: (overwhelmingly common) single-stream case and collapse to
        #: a list only while two or more streams expect the same line
        #: — the miss path allocates no bookkeeping list that way.
        self._index: dict[int, _Stream | list[_Stream]] = {}
        #: Preallocated stream records: the table's worth of ``_Stream``
        #: objects is built once here, handed out as the table fills,
        #: and recycled in place on eviction — the steady-state
        #: allocate path constructs nothing.
        self._spare: list[_Stream] = [
            _Stream(0, 0, False, 0)
            for _ in range(config.stream_table_entries)
        ]
        self._seq = 0
        self.prefetches_launched = 0
        self.streams_confirmed = 0

    def attach(self) -> None:
        """Register as the hierarchy's L1-miss listener."""
        self._hierarchy.set_miss_listener(self.on_miss)

    def on_miss(self, addr: int, now: int = 0) -> None:
        """Train on a demand L1 miss at cycle *now*; launch prefetches."""
        line = addr >> self._line_shift

        candidates = self._index.get(line)
        if candidates is not None:
            # First match in table order == smallest allocation seq
            # (matches never reorder the table; eviction is FIFO).
            if type(candidates) is list:
                stream = candidates[0]
                for other in candidates:
                    if other.seq < stream.seq:
                        stream = other
            else:
                stream = candidates
            self._index_remove(stream)
            if not stream.confirmed:
                stream.stride = line - stream.last_line
                stream.confirmed = True
                self.streams_confirmed += 1
            stream.last_line = line
            self._index_add(stream)
            self._launch(line, stream.stride, self._config.stream_depth, now)
            return

        # No stream matched: allocate a tracker for this miss and,
        # before any stride is known, prefetch the sequential next block.
        self._allocate(line)
        if self._config.sequential_next_line:
            self._launch(line, stride=1, depth=1, now=now)

    # ------------------------------------------------------------------

    def _expected_lines(self, stream: _Stream) -> tuple[int, ...]:
        """The lines a miss must land on to continue *stream* (the
        legacy ``_match`` predicate, inverted into index keys)."""
        if stream.confirmed:
            return (stream.last_line + stream.stride,)
        return (stream.last_line + 1, stream.last_line - 1)

    def _index_add(self, stream: _Stream) -> None:
        index = self._index
        for key in self._expected_lines(stream):
            prev = index.setdefault(key, stream)
            if prev is not stream:
                if type(prev) is list:
                    prev.append(stream)
                else:
                    index[key] = [prev, stream]

    def _index_remove(self, stream: _Stream) -> None:
        # ``pop`` folds the lookup and the delete into one dict
        # operation; the (rare) shared-line bucket is trimmed and
        # reinserted.
        index = self._index
        for key in self._expected_lines(stream):
            bucket = index.pop(key)
            if type(bucket) is list:
                bucket.remove(stream)
                index[key] = bucket[0] if len(bucket) == 1 else bucket

    def _allocate(self, line: int) -> None:
        streams = self._streams
        if len(streams) >= self._config.stream_table_entries:
            # Evict the oldest tracker and recycle its record in place.
            stream = streams.popleft()
            self._index_remove(stream)
        else:
            stream = self._spare.pop()
        self._seq += 1
        stream.last_line = line
        stream.stride = 0
        stream.confirmed = False
        stream.seq = self._seq
        streams.append(stream)
        self._index_add(stream)

    # ------------------------------------------------------------------
    # Functional-warming images (sampled simulation)
    # ------------------------------------------------------------------

    def warm_image(self) -> list[tuple[int, int, bool]]:
        """Picklable copy of the stream table for a warmed-state
        snapshot. Without it, a detailed region resumed from a snapshot
        would start with a cold stream table while a straight-through
        run would not — the divergence the split-vs-straight warmup
        differential pins down. The payload is the table in allocation
        order (the legacy list order), so snapshot bytes are unchanged
        by the deque + index representation."""
        return [
            (stream.last_line, stream.stride, stream.confirmed)
            for stream in self._streams
        ]

    def load_warm_image(self, image: list[tuple[int, int, bool]]) -> None:
        """Install a :meth:`warm_image` (image order is table order and
        is preserved — :meth:`_allocate` evicts the oldest entry)."""
        self._streams = deque()
        self._index = {}
        self._seq = 0
        for last_line, stride, confirmed in image:
            self._seq += 1
            stream = _Stream(
                last_line=last_line,
                stride=stride,
                confirmed=confirmed,
                seq=self._seq,
            )
            self._streams.append(stream)
            self._index_add(stream)
        # Refill the record pool for whatever table headroom remains.
        self._spare = [
            _Stream(0, 0, False, 0)
            for _ in range(
                max(0, self._config.stream_table_entries - len(image))
            )
        ]

    # ------------------------------------------------------------------

    def _launch(self, line: int, stride: int, depth: int, now: int = 0) -> None:
        hierarchy = self._hierarchy
        buffer_lines = hierarchy.buffer._lines
        l1 = hierarchy.l1
        l1_sets = l1._sets
        l1_mask = l1._set_mask
        prefetch_fill = hierarchy.prefetch_fill
        line_bytes = self._line_bytes
        launched = self.prefetches_launched
        for step in range(1, depth + 1):
            target = line + stride * step
            if target < 0:
                break
            launched += 1
            # Side-effect-free prechecks: a line already buffered or
            # resident in the L1 makes prefetch_fill — timed or warm —
            # return before any state or statistics update, so skipping
            # the call is behavior-identical. It is also the dominant
            # case: consecutive launch windows of one stream overlap in
            # all but one line.
            if target in buffer_lines:
                continue
            covered = False
            for entry in l1_sets[target & l1_mask]:
                if entry >> 1 == target:
                    covered = True
                    break
            if covered:
                continue
            prefetch_fill(target * line_bytes, now)
        self.prefetches_launched = launched


# ----------------------------------------------------------------------
# Combined warm miss path (functional warming)
# ----------------------------------------------------------------------


def build_warm_access(hierarchy: DataHierarchy, prefetcher: StreamPrefetcher):
    """One-frame warm demand access: hierarchy transitions *and*
    stream training fused into a single closure.

    Returns a ``warm_access(addr, is_store)`` function that performs
    exactly what :meth:`DataHierarchy.warm_access` with *prefetcher*
    attached as the miss listener performs — same state transitions,
    same order (buffer promote before training on a buffer hit;
    training before the L2/L1 fills on a full miss, whose launches
    touch the same L2 sets), same ``prefetches_launched`` /
    ``streams_confirmed`` counters — with the listener call, the
    stream-index maintenance, and every
    :meth:`DataHierarchy.warm_prefetch_fill` body inlined, and all
    geometry and containers held in closure cells instead of being
    re-read through three objects per miss. The warming driver
    installs it over ``warm_access`` on its (private) hierarchy.

    The cells bind the *current* container objects, so the closure
    must be rebuilt after any ``load_warm_image`` (which replaces
    them) — the same contract as ``warmfuse.WarmContext``.
    """
    l1 = hierarchy.l1
    l1_shift = l1._line_shift
    l1_mask = l1._set_mask
    l1_sets = l1._sets
    l1_assoc = l1.config.associativity
    l2 = hierarchy.l2
    l2_delta = l2._line_shift - l1_shift
    l2_mask = l2._set_mask
    l2_sets = l2._sets
    l2_assoc = l2.config.associativity
    buffer = hierarchy.buffer
    buf_lines = buffer._lines
    buf_entries = buffer._entries
    streams = prefetcher._streams
    index = prefetcher._index
    index_pop = index.pop
    spare = prefetcher._spare
    config = prefetcher._config
    table_entries = config.stream_table_entries
    depth = config.stream_depth
    sequential = config.sequential_next_line
    # The allocation sequence counter lives in a cell while the
    # closure is active; only relative order among live streams is
    # ever observed (the first-match tie-break), and a warm-image
    # load — the only other writer — forces a closure rebuild.
    seq = prefetcher._seq

    def warm_access(addr: int, is_store: bool) -> None:
        nonlocal seq
        line = addr >> l1_shift
        bucket = l1_sets[line & l1_mask]
        # MRU-first, iterator-free probe (the matching entry is unique,
        # so scan order is unobservable; a hit at MRU is a dirty-OR in
        # place, the exact legacy del+append reduction).
        n = len(bucket)
        if n:
            entry = bucket[n - 1]
            if entry >> 1 == line:
                if is_store:
                    bucket[n - 1] = entry | 1
                return
            i = n - 2
            while i >= 0:
                entry = bucket[i]
                if entry >> 1 == line:
                    del bucket[i]
                    bucket.append(entry | is_store)
                    return
                i -= 1
        # ---- L1 miss: buffer checked in parallel ----
        from_buffer = buf_lines.pop(line, None) is not None
        if from_buffer:
            # Promote into the L1 (inlined ``_fill_l1``; the victim
            # spills into the buffer, whose pop above freed a slot).
            if n >= l1_assoc:
                victim = bucket.pop(0) >> 1
                if victim in buf_lines:
                    del buf_lines[victim]
                elif len(buf_lines) >= buf_entries:
                    del buf_lines[next(iter(buf_lines))]
                buf_lines[victim] = False
            bucket.append((line << 1) | is_store)
        # ---- Train the stream table (the miss listener, inlined) ----
        candidates = index.get(line)
        if candidates is None:
            # No stream continues here: allocate a tracker (evicting
            # and recycling the oldest) and prefetch the sequential
            # next block.
            if len(streams) >= table_entries:
                # Evict the oldest tracker; its index entries come out
                # with one ``pop`` each (lookup + delete fused), and
                # its record is recycled in place.
                stream = streams.popleft()
                last = stream.last_line
                if stream.confirmed:
                    key = last + stream.stride
                    ob = index_pop(key)
                    if type(ob) is list:
                        ob.remove(stream)
                        index[key] = ob[0] if len(ob) == 1 else ob
                else:
                    ob = index_pop(last + 1)
                    if type(ob) is list:
                        ob.remove(stream)
                        index[last + 1] = ob[0] if len(ob) == 1 else ob
                    ob = index_pop(last - 1)
                    if type(ob) is list:
                        ob.remove(stream)
                        index[last - 1] = ob[0] if len(ob) == 1 else ob
            else:
                # Preallocated at construction: nothing to build here.
                stream = spare.pop()
            seq += 1
            stream.last_line = line
            stream.stride = 0
            stream.confirmed = False
            stream.seq = seq
            streams.append(stream)
            up = line + 1
            prev = index.setdefault(up, stream)
            if prev is not stream:
                if type(prev) is list:
                    prev.append(stream)
                else:
                    index[up] = [prev, stream]
            down = line - 1
            prev = index.setdefault(down, stream)
            if prev is not stream:
                if type(prev) is list:
                    prev.append(stream)
                else:
                    index[down] = [prev, stream]
            if sequential:
                # _launch(line, stride=1, depth=1) with the warm fill
                # inlined; ``up`` is never negative (line >= 0).
                prefetcher.prefetches_launched += 1
                if up not in buf_lines:
                    b2 = l1_sets[up & l1_mask]
                    i = len(b2) - 1
                    while i >= 0:
                        if b2[i] >> 1 == up:
                            break
                        i -= 1
                    if i < 0:
                        l2_line = up >> l2_delta
                        l2b = l2_sets[l2_line & l2_mask]
                        i = len(l2b) - 1
                        while i >= 0:
                            if l2b[i] >> 1 == l2_line:
                                break
                            i -= 1
                        if i < 0:
                            if len(l2b) >= l2_assoc:
                                del l2b[0]
                            l2b.append(l2_line << 1)
                        if len(buf_lines) >= buf_entries:
                            del buf_lines[next(iter(buf_lines))]
                        buf_lines[up] = True
        else:
            # A stream continues here: first match in table order ==
            # smallest allocation seq (see ``on_miss``).
            if type(candidates) is list:
                stream = candidates[0]
                for other in candidates:
                    if other.seq < stream.seq:
                        stream = other
            else:
                stream = candidates
            last = stream.last_line
            if stream.confirmed:
                key = last + stream.stride
                ob = index_pop(key)
                if type(ob) is list:
                    ob.remove(stream)
                    index[key] = ob[0] if len(ob) == 1 else ob
            else:
                ob = index_pop(last + 1)
                if type(ob) is list:
                    ob.remove(stream)
                    index[last + 1] = ob[0] if len(ob) == 1 else ob
                ob = index_pop(last - 1)
                if type(ob) is list:
                    ob.remove(stream)
                    index[last - 1] = ob[0] if len(ob) == 1 else ob
                stream.stride = line - last
                stream.confirmed = True
                prefetcher.streams_confirmed += 1
            stream.last_line = line
            stride = stream.stride
            nkey = line + stride
            prev = index.setdefault(nkey, stream)
            if prev is not stream:
                if type(prev) is list:
                    prev.append(stream)
                else:
                    index[nkey] = [prev, stream]
            # _launch(line, stride, stream_depth), warm fills inlined.
            launched = prefetcher.prefetches_launched
            target = line
            for _step in range(depth):
                target += stride
                if target < 0:
                    break
                launched += 1
                if target in buf_lines:
                    continue
                b2 = l1_sets[target & l1_mask]
                i = len(b2) - 1
                while i >= 0:
                    if b2[i] >> 1 == target:
                        break
                    i -= 1
                if i >= 0:
                    continue
                l2_line = target >> l2_delta
                l2b = l2_sets[l2_line & l2_mask]
                i = len(l2b) - 1
                while i >= 0:
                    if l2b[i] >> 1 == l2_line:
                        break
                    i -= 1
                if i < 0:
                    if len(l2b) >= l2_assoc:
                        del l2b[0]
                    l2b.append(l2_line << 1)
                if len(buf_lines) >= buf_entries:
                    del buf_lines[next(iter(buf_lines))]
                buf_lines[target] = True
            prefetcher.prefetches_launched = launched
        if from_buffer:
            return
        # ---- L2 lookup (MRU-last move, no store from the L1's view)
        # or fill (victim dropped), then the L1 demand fill ----
        l2_line = line >> l2_delta
        l2b = l2_sets[l2_line & l2_mask]
        n2 = len(l2b)
        i = n2 - 1
        while i >= 0:
            entry = l2b[i]
            if entry >> 1 == l2_line:
                if i + 1 != n2:
                    del l2b[i]
                    l2b.append(entry)
                break
            i -= 1
        if i < 0:
            if n2 >= l2_assoc:
                del l2b[0]
            l2b.append(l2_line << 1)
        if n >= l1_assoc:
            victim = bucket.pop(0) >> 1
            if victim in buf_lines:
                del buf_lines[victim]
            elif len(buf_lines) >= buf_entries:
                del buf_lines[next(iter(buf_lines))]
            buf_lines[victim] = False
        bucket.append((line << 1) | is_store)

    return warm_access

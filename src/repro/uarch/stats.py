"""Run statistics collected by the core.

Per-static-PC counters feed the problem-instruction profiler (Table 2);
aggregate counters feed the run characterization (Table 4). All
"committed" counters reflect the architecturally-correct path only;
"fetched" counters include wrong-path work.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass, field

from repro.slices.correlator import CorrelatorStats

#: Fields describing how the simulation ran rather than what the
#: simulated machine did. Differential tests (event-driven skipping vs
#: cycle stepping, fused-block vs per-instruction execution) compare
#: every field *except* these.
SIMULATOR_META_FIELDS = frozenset(
    {
        "cycles_skipped",
        "skip_events",
        "blocks_compiled",
        "block_deopts",
        "ff_insts",
        "snapshot_hit",
        "sample_regions",
        "snapshot_hits",
    }
)

#: Two-sided 95% Student-t critical values by degrees of freedom.
#: Hardcoded (no scipy in the container); beyond df=30 the normal
#: critical value 1.960 is within 1.5% and is used directly.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}


def t95(df: int) -> float:
    """Two-sided 95% Student-t critical value for *df* degrees of
    freedom (1.960 beyond the table)."""
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1 (got {df})")
    return _T95.get(df, 1.960)


def mean_ci95(samples) -> tuple[float, float]:
    """``(mean, half_width)`` of the 95% confidence interval on the
    mean of *samples*.

    Uses the sample standard deviation and the Student-t critical
    value, per SMARTS-style sampled-simulation error reporting. A
    single sample is a point estimate: half-width 0.0 (the interval is
    *unknown*, not tight — callers should surface N alongside it).
    """
    samples = list(samples)
    n = len(samples)
    if not n:
        return 0.0, 0.0
    mean = sum(samples) / n
    if n < 2:
        return mean, 0.0
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    return mean, t95(n - 1) * math.sqrt(variance / n)


@dataclass
class PcCounter:
    """Executions and performance-degrading events for one static PC."""

    executions: int = 0
    events: int = 0

    @property
    def rate(self) -> float:
        return self.events / self.executions if self.executions else 0.0


@dataclass
class RunStats:
    """Everything measured during one simulation run."""

    config_name: str = ""
    workload_name: str = ""
    cycles: int = 0
    #: Main-thread instructions committed (the run's length).
    committed: int = 0
    #: Main-thread instructions fetched, including wrong-path.
    main_fetched: int = 0
    slice_fetched: int = 0
    slice_retired: int = 0
    #: Committed branch mispredictions (squash-causing).
    branch_mispredictions: int = 0
    #: Committed conditional/indirect branches.
    branches_committed: int = 0
    #: Committed loads that missed the L1 (post prefetch-buffer).
    load_misses: int = 0
    loads_committed: int = 0
    stores_committed: int = 0
    store_misses: int = 0
    #: Early resolutions triggered by late predictions.
    early_resolutions: int = 0
    #: Squashes caused by wrong slice value predictions (extension).
    value_mispredict_squashes: int = 0
    # Fork accounting (Table 4).
    fork_points_fetched: int = 0
    forks_taken: int = 0
    forks_ignored: int = 0
    forks_squashed: int = 0
    #: Fork requests suppressed by confidence gating (Section 6.3).
    forks_gated: int = 0
    slices_completed: int = 0
    #: Containment kills: helper threads terminated by the
    #: per-activation instruction fuse (``slice_hw.max_slice_insts``)
    #: and helper threads terminated by an architectural fault
    #: (null-pointer dereference, §3.2). Both are contained events —
    #: the main thread never observes them except as freed resources.
    slices_killed_fuse: int = 0
    slices_killed_fault: int = 0
    #: Per-static-PC branch behavior (conditional + indirect).
    branch_pcs: dict[int, PcCounter] = field(default_factory=dict)
    #: Per-static-PC memory behavior (loads and stores).
    mem_pcs: dict[int, PcCounter] = field(default_factory=dict)
    correlator: CorrelatorStats = field(default_factory=CorrelatorStats)
    hierarchy: dict[str, int] = field(default_factory=dict)
    #: True when the run hit its cycle ceiling before committing the region.
    hit_cycle_limit: bool = False
    #: Idle cycles the event-driven loop jumped over instead of
    #: stepping, and how many jumps it made. These are *simulator
    #: mechanics*, not simulated-machine state: they are the only
    #: fields allowed to differ between ``event_driven=True`` and
    #: ``False`` runs (see :data:`SIMULATOR_META_FIELDS`).
    cycles_skipped: int = 0
    skip_events: int = 0
    #: Fused-tier mechanics (:mod:`repro.uarch.fusion`): segments
    #: compiled by the block code generator, and fused groups that
    #: ended early at a faulting instruction (the rest of the group is
    #: refetched by the instruction tier). Simulator meta, like the
    #: skip counters above.
    blocks_compiled: int = 0
    block_deopts: int = 0
    #: Sampled-simulation provenance (:mod:`repro.harness.fastforward`):
    #: instructions executed on the functional fast-forward tier before
    #: the detailed region, and whether the warmed snapshot came from
    #: the on-disk store (vs. built fresh). Simulator meta: the measured
    #: region's counters above are unaffected by either.
    ff_insts: int = 0
    snapshot_hit: bool = False
    #: Multi-region sampling (:func:`aggregate_stats`): how many
    #: detailed windows this result aggregates (0 = not a multi-region
    #: run), each window's IPC (feeding :attr:`ipc_mean` /
    #: :attr:`ipc_ci95`), and how many chain members were restored from
    #: the snapshot store rather than built. ``region_ipcs`` is
    #: *measured* data and must match across differential modes;
    #: ``sample_regions`` / ``snapshot_hits`` are simulator meta like
    #: ``ff_insts`` / ``snapshot_hit`` above.
    sample_regions: int = 0
    region_ipcs: tuple[float, ...] = ()
    snapshot_hits: int = 0
    #: Optional cycle accounting (fill with Core(cycle_accounting=True)):
    #: cycles attributed to commit-slot activity at the main thread's
    #: ROB head: "busy" (full commit width used), "memory" (head waits
    #: on a load miss), "execute" (head waits on computation),
    #: "frontend" (ROB empty: mispredict refill / fetch starvation),
    #: "drain" (partially filled commit).
    cycle_breakdown: dict[str, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def ipc_mean(self) -> float:
        """Mean of the per-region IPCs for a multi-region run (each
        window weighted equally, the sampled estimator of whole-run
        IPC); falls back to the pooled :attr:`ipc` otherwise."""
        if self.region_ipcs:
            return sum(self.region_ipcs) / len(self.region_ipcs)
        return self.ipc

    @property
    def ipc_ci95(self) -> float:
        """95% confidence half-width on :attr:`ipc_mean` across the
        sampled regions (0.0 for point estimates: full-detail runs and
        N=1 sampling)."""
        if len(self.region_ipcs) < 2:
            return 0.0
        return mean_ci95(self.region_ipcs)[1]

    @property
    def cpi(self) -> float:
        """Cycles per committed instruction over the measured region —
        the region-CPI of a sampled run (fast-forward prefix and the
        detailed-warming discard window are excluded by construction:
        stats reset at the warmup boundary)."""
        return self.cycles / self.committed if self.committed else 0.0

    @property
    def total_fetched(self) -> int:
        return self.main_fetched + self.slice_fetched

    @property
    def mispredict_rate(self) -> float:
        if not self.branches_committed:
            return 0.0
        return self.branch_mispredictions / self.branches_committed

    @property
    def load_miss_rate(self) -> float:
        if not self.loads_committed:
            return 0.0
        return self.load_misses / self.loads_committed

    def count_branch(self, pc: int, mispredicted: bool) -> None:
        counter = self.branch_pcs.get(pc)
        if counter is None:
            counter = self.branch_pcs[pc] = PcCounter()
        counter.executions += 1
        if mispredicted:
            counter.events += 1

    def count_mem(self, pc: int, missed: bool) -> None:
        counter = self.mem_pcs.get(pc)
        if counter is None:
            counter = self.mem_pcs[pc] = PcCounter()
        counter.executions += 1
        if missed:
            counter.events += 1


def stats_digest(stats: RunStats, *, meta: bool = False) -> str:
    """Hex SHA-256 of a canonical serialization of *stats*.

    By default the :data:`SIMULATOR_META_FIELDS` are masked out, so the
    digest captures what the simulated machine did and is stable across
    execution strategies that are required to agree architecturally —
    serial vs. window-parallel sampling, cold vs. warm snapshot chains,
    fresh runs vs. per-window cache replays. Pass ``meta=True`` to
    digest every field (full bit-identity, provenance included).
    """
    payload = dataclasses.asdict(stats)
    if not meta:
        for name in SIMULATOR_META_FIELDS:
            payload.pop(name, None)
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


#: Fields :func:`aggregate_stats` handles specially rather than
#: summing: identity strings, booleans (OR'd), container merges, and
#: the sampling meta it derives itself.
_NON_SUMMED_FIELDS = frozenset(
    {
        "config_name",
        "workload_name",
        "hit_cycle_limit",
        "snapshot_hit",
        "sample_regions",
        "region_ipcs",
        "snapshot_hits",
        "branch_pcs",
        "mem_pcs",
        "correlator",
        "hierarchy",
        "cycle_breakdown",
    }
)


def aggregate_stats(per_region) -> RunStats:
    """Fold one :class:`RunStats` per sampled region into a whole-run
    estimate.

    Event counters sum (the aggregate reads like one long run:
    ``committed`` is regions x sample length, miss/mispredict rates
    are instruction-weighted); per-PC counter maps, the hierarchy and
    cycle-breakdown maps, and the correlator merge field-wise;
    ``hit_cycle_limit`` ORs (one truncated window taints the whole
    estimate). The per-region IPCs are kept in ``region_ipcs`` so
    :attr:`RunStats.ipc_mean` / :attr:`RunStats.ipc_ci95` can report
    the sampled estimator with its confidence interval, and
    ``sample_regions`` / ``snapshot_hits`` record the sampling
    provenance.
    """
    regions = list(per_region)
    if not regions:
        raise ValueError("aggregate_stats needs at least one region")
    first = regions[0]
    total = RunStats(
        config_name=first.config_name, workload_name=first.workload_name
    )
    for f in dataclasses.fields(RunStats):
        if f.name in _NON_SUMMED_FIELDS:
            continue
        setattr(total, f.name, sum(getattr(s, f.name) for s in regions))
    correlator_fields = dataclasses.fields(CorrelatorStats)
    for stats in regions:
        total.hit_cycle_limit = total.hit_cycle_limit or stats.hit_cycle_limit
        for pcs, merged in (
            (stats.branch_pcs, total.branch_pcs),
            (stats.mem_pcs, total.mem_pcs),
        ):
            for pc, counter in pcs.items():
                into = merged.get(pc)
                if into is None:
                    into = merged[pc] = PcCounter()
                into.executions += counter.executions
                into.events += counter.events
        for mapping, merged in (
            (stats.hierarchy, total.hierarchy),
            (stats.cycle_breakdown, total.cycle_breakdown),
        ):
            for key, value in mapping.items():
                merged[key] = merged.get(key, 0) + value
        for f in correlator_fields:
            setattr(
                total.correlator,
                f.name,
                getattr(total.correlator, f.name)
                + getattr(stats.correlator, f.name),
            )
    total.region_ipcs = tuple(s.ipc for s in regions)
    total.sample_regions = len(regions)
    total.snapshot_hits = sum(s.snapshot_hits for s in regions) + sum(
        1 for s in regions if s.snapshot_hit
    )
    # "Hit" for the aggregate: every window that *needed* a snapshot
    # got it from the store (a cold depth-0 window needs none).
    needed = [s for s in regions if s.ff_insts]
    total.snapshot_hit = bool(needed) and all(s.snapshot_hit for s in needed)
    return total

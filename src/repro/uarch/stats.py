"""Run statistics collected by the core.

Per-static-PC counters feed the problem-instruction profiler (Table 2);
aggregate counters feed the run characterization (Table 4). All
"committed" counters reflect the architecturally-correct path only;
"fetched" counters include wrong-path work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.slices.correlator import CorrelatorStats

#: Fields describing how the simulation ran rather than what the
#: simulated machine did. Differential tests (event-driven skipping vs
#: cycle stepping, fused-block vs per-instruction execution) compare
#: every field *except* these.
SIMULATOR_META_FIELDS = frozenset(
    {
        "cycles_skipped",
        "skip_events",
        "blocks_compiled",
        "block_deopts",
        "ff_insts",
        "snapshot_hit",
    }
)


@dataclass
class PcCounter:
    """Executions and performance-degrading events for one static PC."""

    executions: int = 0
    events: int = 0

    @property
    def rate(self) -> float:
        return self.events / self.executions if self.executions else 0.0


@dataclass
class RunStats:
    """Everything measured during one simulation run."""

    config_name: str = ""
    workload_name: str = ""
    cycles: int = 0
    #: Main-thread instructions committed (the run's length).
    committed: int = 0
    #: Main-thread instructions fetched, including wrong-path.
    main_fetched: int = 0
    slice_fetched: int = 0
    slice_retired: int = 0
    #: Committed branch mispredictions (squash-causing).
    branch_mispredictions: int = 0
    #: Committed conditional/indirect branches.
    branches_committed: int = 0
    #: Committed loads that missed the L1 (post prefetch-buffer).
    load_misses: int = 0
    loads_committed: int = 0
    stores_committed: int = 0
    store_misses: int = 0
    #: Early resolutions triggered by late predictions.
    early_resolutions: int = 0
    #: Squashes caused by wrong slice value predictions (extension).
    value_mispredict_squashes: int = 0
    # Fork accounting (Table 4).
    fork_points_fetched: int = 0
    forks_taken: int = 0
    forks_ignored: int = 0
    forks_squashed: int = 0
    #: Fork requests suppressed by confidence gating (Section 6.3).
    forks_gated: int = 0
    slices_completed: int = 0
    #: Containment kills: helper threads terminated by the
    #: per-activation instruction fuse (``slice_hw.max_slice_insts``)
    #: and helper threads terminated by an architectural fault
    #: (null-pointer dereference, §3.2). Both are contained events —
    #: the main thread never observes them except as freed resources.
    slices_killed_fuse: int = 0
    slices_killed_fault: int = 0
    #: Per-static-PC branch behavior (conditional + indirect).
    branch_pcs: dict[int, PcCounter] = field(default_factory=dict)
    #: Per-static-PC memory behavior (loads and stores).
    mem_pcs: dict[int, PcCounter] = field(default_factory=dict)
    correlator: CorrelatorStats = field(default_factory=CorrelatorStats)
    hierarchy: dict[str, int] = field(default_factory=dict)
    #: True when the run hit its cycle ceiling before committing the region.
    hit_cycle_limit: bool = False
    #: Idle cycles the event-driven loop jumped over instead of
    #: stepping, and how many jumps it made. These are *simulator
    #: mechanics*, not simulated-machine state: they are the only
    #: fields allowed to differ between ``event_driven=True`` and
    #: ``False`` runs (see :data:`SIMULATOR_META_FIELDS`).
    cycles_skipped: int = 0
    skip_events: int = 0
    #: Fused-tier mechanics (:mod:`repro.uarch.fusion`): segments
    #: compiled by the block code generator, and fused groups that
    #: ended early at a faulting instruction (the rest of the group is
    #: refetched by the instruction tier). Simulator meta, like the
    #: skip counters above.
    blocks_compiled: int = 0
    block_deopts: int = 0
    #: Sampled-simulation provenance (:mod:`repro.harness.fastforward`):
    #: instructions executed on the functional fast-forward tier before
    #: the detailed region, and whether the warmed snapshot came from
    #: the on-disk store (vs. built fresh). Simulator meta: the measured
    #: region's counters above are unaffected by either.
    ff_insts: int = 0
    snapshot_hit: bool = False
    #: Optional cycle accounting (fill with Core(cycle_accounting=True)):
    #: cycles attributed to commit-slot activity at the main thread's
    #: ROB head: "busy" (full commit width used), "memory" (head waits
    #: on a load miss), "execute" (head waits on computation),
    #: "frontend" (ROB empty: mispredict refill / fetch starvation),
    #: "drain" (partially filled commit).
    cycle_breakdown: dict[str, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        """Cycles per committed instruction over the measured region —
        the region-CPI of a sampled run (fast-forward prefix and the
        detailed-warming discard window are excluded by construction:
        stats reset at the warmup boundary)."""
        return self.cycles / self.committed if self.committed else 0.0

    @property
    def total_fetched(self) -> int:
        return self.main_fetched + self.slice_fetched

    @property
    def mispredict_rate(self) -> float:
        if not self.branches_committed:
            return 0.0
        return self.branch_mispredictions / self.branches_committed

    @property
    def load_miss_rate(self) -> float:
        if not self.loads_committed:
            return 0.0
        return self.load_misses / self.loads_committed

    def count_branch(self, pc: int, mispredicted: bool) -> None:
        counter = self.branch_pcs.get(pc)
        if counter is None:
            counter = self.branch_pcs[pc] = PcCounter()
        counter.executions += 1
        if mispredicted:
            counter.events += 1

    def count_mem(self, pc: int, missed: bool) -> None:
        counter = self.mem_pcs.get(pc)
        if counter is None:
            counter = self.mem_pcs[pc] = PcCounter()
        counter.executions += 1
        if missed:
            counter.events += 1

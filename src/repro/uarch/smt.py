"""SMT thread contexts and the ICOUNT fetch policy (Section 4.1).

The machine has ``thread_contexts`` hardware contexts: context 0 runs
the main program; the others are idle until the slice table forks a
helper thread into one. Helper threads share fetch bandwidth, window
slots, functional units, and the L1 D-cache with the main thread; fetch
slots are handed out ICOUNT-style, biased toward the main thread.
"""

from __future__ import annotations

import enum
from collections import deque

from repro.arch.memory import Memory
from repro.arch.state import ThreadState
from repro.isa.program import Program
from repro.slices.spec import SliceSpec
from repro.uarch.window import WindowEntry


class ThreadKind(enum.Enum):
    MAIN = "main"
    SLICE = "slice"


class ThreadContext:
    """One hardware thread context."""

    __slots__ = (
        "thread_id",
        "_kind",
        "is_main",
        "program",
        "prog_by_pc",
        "state",
        "active",
        "fetch_stalled",
        "rob",
        "in_flight",
        "last_writer",
        "spec",
        "instance_id",
        "fork_vn",
        "iterations",
        "livein_ready_cycle",
        "fetched",
        "retired",
        "slice_misses",
    )

    def __init__(self, thread_id: int):
        self.thread_id = thread_id
        self._kind = ThreadKind.SLICE
        #: Cached ``kind is ThreadKind.MAIN`` — read on every fetch,
        #: dispatch, and commit of the hot loop; kept in sync by the
        #: ``kind`` setter.
        self.is_main = False
        self.program: Program | None = None
        #: Cached ``program._by_pc`` mapping for fetch-path lookups.
        self.prog_by_pc: dict[int, object] | None = None
        self.state: ThreadState | None = None
        self.active = False
        #: Fetch blocked (wrong path ran off the program / slice done);
        #: already-fetched instructions continue to drain.
        self.fetch_stalled = False
        self.rob: deque[WindowEntry] = deque()
        self.in_flight = 0
        self.last_writer: dict[int, WindowEntry] = {}
        # Slice-thread fields.
        self.spec: SliceSpec | None = None
        self.instance_id: int = -1
        self.fork_vn: int = -1
        self.iterations = 0
        self.livein_ready_cycle = 0
        self.fetched = 0
        self.retired = 0
        #: L1-missing loads this helper thread performed (confidence
        #: gating treats them as evidence of useful prefetching).
        self.slice_misses = 0

    # ------------------------------------------------------------------

    @property
    def kind(self) -> ThreadKind:
        return self._kind

    @kind.setter
    def kind(self, value: ThreadKind) -> None:
        self._kind = value
        self.is_main = value is ThreadKind.MAIN

    def activate_main(self, program: Program, memory: Memory) -> None:
        self.kind = ThreadKind.MAIN
        self.program = program
        self.prog_by_pc = program._by_pc
        self.state = ThreadState(memory, program.entry_pc, journaling=True)
        self.active = True

    def activate_slice(
        self,
        spec: SliceSpec,
        memory: Memory,
        live_in_values: dict[int, int],
        instance_id: int,
        fork_vn: int,
        livein_ready_cycle: int,
    ) -> None:
        """Fork a slice into this context (Section 4.3 register copy)."""
        self.kind = ThreadKind.SLICE
        self.program = spec.code
        self.prog_by_pc = spec.code._by_pc
        # Helper threads perform no stores, so they need no journaling.
        self.state = ThreadState(memory, spec.entry_pc, journaling=False)
        self.state.regs.load_values(live_in_values)
        self.spec = spec
        self.instance_id = instance_id
        self.fork_vn = fork_vn
        self.iterations = 0
        self.livein_ready_cycle = livein_ready_cycle
        self.slice_misses = 0
        self.active = True
        self.fetch_stalled = False
        self.rob.clear()
        self.in_flight = 0
        self.last_writer.clear()
        self.fetched = 0
        self.retired = 0

    def release(self) -> None:
        """Return the context to the idle pool."""
        self.active = False
        self.fetch_stalled = False
        self.spec = None
        self.instance_id = -1
        self.fork_vn = -1
        self.rob.clear()
        self.in_flight = 0
        self.last_writer.clear()

    @property
    def can_fetch(self) -> bool:
        return self.active and not self.fetch_stalled

    def fuse_blown(self, max_slice_insts: int | None) -> bool:
        """Containment check: has this helper-thread activation used up
        its per-activation instruction fuse?

        Checked before every helper fetch; a blown fuse means the slice
        is a runaway (infinite loop, unbounded recurrence) and must be
        killed before it can monopolize fetch bandwidth and window
        slots. Main-thread contexts never blow the fuse.
        """
        return (
            max_slice_insts is not None
            and not self.is_main
            and self.fetched >= max_slice_insts
        )


def any_fetchable(threads: list[ThreadContext]) -> bool:
    """True while any context can fetch this cycle.

    The event-driven core may not skip cycles while this holds: a
    fetchable thread performs work every cycle, so fetch stalls (and
    their release by a squash) are the per-thread wake-up condition
    aggregated into :meth:`Core._next_event_cycle`'s skip decision.
    """
    for thread in threads:
        if thread.active and not thread.fetch_stalled:
            return True
    return False


def icount_order(
    threads: list[ThreadContext], main_bias: float
) -> list[ThreadContext]:
    """Order fetchable threads by biased in-flight count (ICOUNT).

    The main thread's count is divided by *main_bias* so it wins ties
    and keeps priority until it is well ahead of the helpers.
    """
    fetchable = [t for t in threads if t.active and not t.fetch_stalled]
    if len(fetchable) <= 1:
        return fetchable

    def key(thread: ThreadContext) -> float:
        if thread.is_main:
            return thread.in_flight / main_bias
        return float(thread.in_flight)

    return sorted(fetchable, key=key)

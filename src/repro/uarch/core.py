"""The out-of-order SMT core (Table 1) with slice-execution hardware.

Execution-driven simulation: the front end follows *predicted* PCs and
executes instructions functionally at fetch against journaled state, so
wrong paths are really fetched and executed; branch resolution rolls the
journal back and redirects fetch. Scheduling is dataflow-driven with
same-cycle schedule/execute and a perfect load hit/miss predictor, as in
the paper.

Slice extensions (Sections 4-5): the slice table CAMs every fetched
main-thread PC; on a match an idle context is forked (live-in registers
copied), and the helper thread's fetched instructions share bandwidth,
window slots, functional units, and the L1 D-cache. PGIs route computed
directions to the prediction correlator; fetched main-thread PCs are
also CAMed against the correlator's kill and branch-queue entries.
"""

from __future__ import annotations

import gc
import heapq
from collections import deque
from itertools import count as _counter

from repro.arch.exceptions import Fault
from repro.arch.interpreter import execute
from repro.errors import DeadlockError, SliceRunawayError
from repro.arch.memory import Memory
from repro.isa.opcodes import INSTRUCTION_BYTES, OpClass, Opcode
from repro.isa.program import Program
from repro.slices.correlator import PredictionCorrelator
from repro.slices.hw import PGITable, SliceTable
from repro.slices.spec import PGIKind, SliceSpec
from repro.uarch.branch.frontend_predictor import BranchPrediction, FrontEndPredictor
from repro.uarch.cache import DataHierarchy
from repro.uarch.confidence import ForkConfidenceEstimator
from repro.uarch.config import FOUR_WIDE, MachineConfig
from repro.uarch.fusion import (
    FUSABLE_OPS,
    HOT_THRESHOLD,
    MIN_FUSE_LEN,
    compile_segment,
    fusion_default,
)
from repro.uarch.perfect import NO_PERFECT, PerfectSpec
from repro.uarch.prefetch import StreamPrefetcher
from repro.uarch.smt import ThreadContext, ThreadKind, any_fetchable, icount_order
from repro.uarch.stats import RunStats
from repro.uarch.window import WindowEntry


class Core:
    """A simulated machine instance, ready to :meth:`run` one program."""

    def __init__(
        self,
        program: Program,
        config: MachineConfig = FOUR_WIDE,
        slices: tuple[SliceSpec, ...] = (),
        perfect: PerfectSpec = NO_PERFECT,
        memory_image: dict[int, int] | None = None,
        region: int | None = None,
        warmup: int = 0,
        dedicated_slice_resources: bool = False,
        fork_confidence: "ForkConfidenceEstimator | None" = None,
        direction_predictor=None,
        cycle_accounting: bool = False,
        workload_name: str = "",
        event_driven: bool = True,
        strict_slices: bool = False,
        fused_blocks: bool | None = None,
        snapshot=None,
        memory_normalized: bool = False,
    ):
        #: Optional restore point: a warmed-state snapshot from
        #: :mod:`repro.harness.fastforward` (duck-typed so the uarch
        #: layer stays independent of the harness). The run starts at
        #: the snapshot's architectural state — PC, registers, memory —
        #: with its warmed cache/predictor images installed below, and
        #: the program's block caches dropped so fused segments rebuild
        #: cleanly against the restored machine.
        self.snapshot = snapshot
        if snapshot is not None:
            program.drop_block_caches()
        self.program = program
        self.config = config
        self.perfect = perfect
        self.region = region
        #: Committed instructions to run before measurement begins (the
        #: paper warms caches and predictors before its 100M regions).
        #: All statistics are reset at the warmup boundary; ``region``
        #: counts post-warmup commits.
        self.warmup = warmup
        self._warmed = warmup == 0
        self.dedicated_slice_resources = dedicated_slice_resources
        #: Optional Section 6.3 extension: confidence-gated forking.
        self.fork_confidence = fork_confidence
        #: Per-instance cold-miss evidence, kept until the correlator
        #: retires the instance and its usefulness is finally known.
        self._instance_missed: dict[int, bool] = {}
        self.cycle_accounting = cycle_accounting
        #: Event-driven cycle skipping: when the machine is provably
        #: idle (nothing fetchable, issuable, or committable), jump
        #: straight to the next wake-up event instead of stepping every
        #: cycle. ``False`` preserves the classic stepping loop (the
        #: ``--no-skip`` escape hatch); both produce identical stats.
        self.event_driven = event_driven
        #: Debug mode for slice authors: raise
        #: :class:`~repro.errors.SliceRunawayError` when a helper
        #: thread blows its instruction fuse instead of silently
        #: containing it.
        self.strict_slices = strict_slices
        #: Fused basic-block execution tier (:mod:`repro.uarch.fusion`):
        #: fetch groups inside a basic block execute as one generated
        #: call. ``False`` keeps the per-instruction tier everywhere
        #: (the ``--no-fuse`` escape hatch); both produce identical
        #: stats up to :data:`~repro.uarch.stats.SIMULATOR_META_FIELDS`.
        #: ``None`` defers to :func:`~repro.uarch.fusion.fusion_default`
        #: (the ``REPRO_NO_FUSE`` environment switch).
        if fused_blocks is None:
            fused_blocks = fusion_default()
        self.fused_blocks = fused_blocks

        if snapshot is not None:
            # Snapshot images are Memory.snapshot() output: already
            # aligned and signed, so skip per-word re-normalization
            # (a 10^7-instruction prefix carries millions of words).
            self.memory = Memory(snapshot.memory_words, normalized=True)
        else:
            # memory_normalized promises the image is already in
            # Memory's internal form (aligned keys, signed values) —
            # true of Workload images, which normalize at build time —
            # so the restore is a dict copy, not a per-word pass over
            # what can be millions of words.
            self.memory = Memory(
                memory_image if memory_image is not None else program.data,
                normalized=memory_normalized and memory_image is not None,
            )
        self.hierarchy = DataHierarchy(config)
        self.prefetcher = StreamPrefetcher(config.prefetch, self.hierarchy)
        self.prefetcher.attach()
        self.predictor = FrontEndPredictor(
            config.branch, direction_predictor=direction_predictor
        )

        self.slice_table = SliceTable(config.slice_hw.slice_table_entries)
        self.pgi_table = PGITable(config.slice_hw.pgi_table_entries)
        self.correlator = PredictionCorrelator(config.slice_hw)
        for spec in slices:
            self.slice_table.load(spec)
            self.pgi_table.load(spec)
            self.correlator.register_slice(spec)
        if fork_confidence is not None:
            self.correlator.instance_retired_listener = self._on_instance_retired
        self._slices_enabled = bool(slices)
        #: Fetch-path CAM views: live references to the slice table's
        #: fork-PC map and the correlator's kill map (dict membership is
        #: checked on every main-thread fetch).
        self._fork_pc_map = self.slice_table._by_fork_pc
        self._kill_pc_map = self.correlator._kill_map
        #: Loads covered by VALUE-kind PGIs (the value-prediction
        #: extension from the paper's conclusion).
        self._value_load_pcs = {
            pgi.branch_pc
            for spec in slices
            for pgi in spec.pgis
            if pgi.kind is PGIKind.VALUE
        }
        #: Indirect branches covered by TARGET-kind PGIs.
        self._target_branch_pcs = {
            pgi.branch_pc
            for spec in slices
            for pgi in spec.pgis
            if pgi.kind is PGIKind.TARGET
        }

        self.threads = [ThreadContext(i) for i in range(config.thread_contexts)]
        self._main = self.threads[0]
        self._main.activate_main(program, self.memory)
        if snapshot is not None:
            # Architectural restore: the functional fast-forward's
            # registers and PC. Memory was restored above; the warmed
            # microarchitectural images (if the snapshot carries them)
            # overwrite the cold-start hierarchy/predictor.
            state = self._main.state
            state.pc = snapshot.pc
            state.regs.load_values(dict(enumerate(snapshot.regs)))
            if snapshot.hierarchy_image is not None:
                self.hierarchy.load_warm_image(snapshot.hierarchy_image)
            if snapshot.predictor_image is not None:
                self.predictor.load_warm_image(snapshot.predictor_image)
            prefetcher_image = getattr(snapshot, "prefetcher_image", None)
            if prefetcher_image is not None:
                self.prefetcher.load_warm_image(prefetcher_image)

        self.stats = RunStats(
            config_name=config.name, workload_name=workload_name
        )
        self.cycle = 0
        self._next_vn = 0
        self._next_instance = 0
        self._window_count = 0
        #: Live helper-thread contexts; lets the per-cycle fetch/commit
        #: loops take a main-thread-only fast path between activations.
        self._active_slice_count = 0
        #: The same contexts as a list in thread order, maintained at
        #: activation/release so the per-cycle loops never rebuild it.
        self._active_slices: list[ThreadContext] = []
        #: The perfect overlay covers at least one load (issue-path
        #: fast-out: the common no-overlay run skips the per-load call).
        self._has_perfect_loads = bool(
            perfect.all_loads or perfect.load_pcs
        )
        self._ready: list[tuple[int, int, WindowEntry]] = []
        self._completions: list[tuple[int, int, WindowEntry]] = []
        self._seq = _counter()
        self._done = False
        #: Slice-thread live-in producers: thread id -> {reg: producer}.
        self._livein_producers: dict[int, dict[int, WindowEntry]] = {}
        #: Fork bookkeeping that outlives the slice's thread context: a
        #: fork squash must reach the correlator even if the helper
        #: thread already finished and released its context.
        self._forked: deque[tuple[int, int]] = deque()  # (fork_vn, instance)

        #: Fused-tier state: compiled segments keyed by entry PC, the
        #: set of PCs worth compiling (block leaders, later extended
        #: with resume points of partial groups) and the program block
        #: version the compiles are valid for. The containers are
        #: mutated in place — ``_fetch`` holds local references.
        self._fused: dict[int, object] = {}
        self._fusable_pcs: set[int] = set()
        self._fuse_version = program.block_version
        if self._slices_enabled:
            cam_pcs = frozenset(
                set(self._kill_pc_map)
                | set(self._fork_pc_map)
                | self._value_load_pcs
            )
        else:
            cam_pcs = frozenset()
        #: Program-wide segment-cache key: two Cores over the same
        #: Program share compiled segments iff their fetch width,
        #: front-end depth, and CAM exclusions agree.
        self._fuse_key = (config.width, config.frontend_stages, cam_pcs)
        if fused_blocks:
            self._fusable_pcs.update(program.basic_blocks().keys())

    # ==================================================================
    # Top-level loop
    # ==================================================================

    def run(self, max_cycles: int = 50_000_000) -> RunStats:
        """Simulate until the region commits (or *max_cycles*).

        The cyclic-garbage collector is paused for the duration of the
        loop: the window churns through short-lived entry/result objects
        whose periodic generation scans cost ~20% of simulation time.
        Entries break their reference cycles when they die (commit or
        squash clears ``waiters``/``prev_writer``), so plain reference
        counting reclaims the steady state; one collection at the end
        sweeps whatever remains.
        """
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            process_completions = self._process_completions
            commit = self._commit
            fetch = self._fetch
            issue = self._issue
            accounting = self.cycle_accounting
            skipping = self.event_driven
            skip_target = self._skip_target
            while not self._done:
                if self.cycle >= max_cycles:
                    self.stats.hit_cycle_limit = True
                    break
                process_completions()
                if accounting:
                    self._account_cycle()
                commit()
                if self._done:
                    break
                fetched = fetch()
                issue()
                next_cycle = self.cycle + 1
                # Only probe for a skip on cycles where fetch made no
                # progress: a fetching front end blocks skipping anyway,
                # and stepping is always correct, so a missed probe
                # costs at most one stepped cycle at a stall's onset.
                if skipping and not fetched:
                    target = skip_target(max_cycles)
                    if target > next_cycle:
                        if accounting:
                            self._account_span(next_cycle, target)
                        self.stats.cycles_skipped += target - next_cycle
                        self.stats.skip_events += 1
                        next_cycle = target
                self.cycle = next_cycle
                if self._is_deadlocked():
                    raise DeadlockError(
                        self._deadlock_message(), cycle=self.cycle
                    )
        finally:
            if gc_was_enabled:
                gc.enable()
        self.stats.cycles = self.cycle - self._measure_start_cycle
        self.stats.correlator = self.correlator.stats
        self.stats.hierarchy = self.hierarchy.stats.snapshot()
        return self.stats

    def _main_rob_head(self) -> WindowEntry | None:
        """Oldest live main-thread ROB entry.

        Squashed heads are drained eagerly (commit performs the exact
        same pops, so the order is immaterial), making this O(1)
        amortized instead of the previous per-cycle linear rescan of
        the ROB for the first unsquashed entry.
        """
        rob = self._main.rob
        while rob and rob[0].squashed:
            rob.popleft()
        return rob[0] if rob else None

    def _account_cycle(self) -> None:
        """Attribute this cycle for the CPI stack (main-thread view)."""
        breakdown = self.stats.cycle_breakdown
        rob = self._main.rob
        head = self._main_rob_head()
        if head is None:
            kind = "frontend"
        elif (
            not head.completed
            and head.fetch_cycle + self.config.frontend_stages > self.cycle
        ):
            # The oldest instruction is still traversing the front end:
            # a redirect/refill period (mispredict penalty).
            kind = "frontend"
        elif head.completed:
            # The head can commit this cycle; count how much of the
            # commit width the ready prefix covers.
            ready = 0
            for entry in rob:
                if entry.squashed:
                    continue
                if not entry.completed or ready >= self.config.width:
                    break
                ready += 1
            kind = "busy" if ready >= self.config.width else "drain"
        elif head.inst.is_load:
            kind = "memory"
        else:
            kind = "execute"
        breakdown[kind] = breakdown.get(kind, 0) + 1

    def _account_span(self, start: int, end: int) -> None:
        """Bulk CPI attribution for the skipped cycles ``[start, end)``.

        Bit-identical to stepping :meth:`_account_cycle` through the
        span: while cycles are skipped no completion, commit, fetch, or
        issue occurs, so the main ROB head is frozen and the per-cycle
        classification can only flip once — at the cycle the head
        leaves the front end (``fetch_cycle + frontend_stages``). The
        head is never completed here (commit drained every completed
        head before the skip was taken), so the busy/drain buckets
        cannot appear inside a span.
        """
        breakdown = self.stats.cycle_breakdown
        span = end - start
        head = self._main_rob_head()
        if head is None:
            breakdown["frontend"] = breakdown.get("frontend", 0) + span
            return
        boundary = head.fetch_cycle + self.config.frontend_stages
        frontend = boundary - start
        if frontend > span:
            frontend = span
        if frontend > 0:
            breakdown["frontend"] = breakdown.get("frontend", 0) + frontend
        else:
            frontend = 0
        rest = span - frontend
        if rest:
            kind = "memory" if head.inst.is_load else "execute"
            breakdown[kind] = breakdown.get(kind, 0) + rest

    # ==================================================================
    # Event-driven cycle skipping
    # ==================================================================

    def _next_event_cycle(self) -> int | None:
        """Earliest future cycle at which any machine state can change.

        Aggregates every wake-up source: the completion heap's head
        (execution results, branch resolutions, squashes), the ready
        heap's head (instructions still traversing the front end or
        deferred by structural hazards), and the data hierarchy's
        earliest in-flight fill arrival. Returns ``None`` when nothing
        at all is pending.
        """
        target = None
        completions = self._completions
        if completions:
            target = completions[0][0]
        ready = self._ready
        if ready:
            arrival = ready[0][0]
            if target is None or arrival < target:
                target = arrival
        fill = self.hierarchy.next_fill_arrival(self.cycle)
        if fill is not None and (target is None or fill < target):
            target = fill
        return target

    def _skip_target(self, max_cycles: int) -> int:
        """Next cycle the loop must actually simulate (``>= cycle+1``).

        Returns ``cycle + 1`` (no skip) whenever anything could happen
        next cycle: an event fires immediately, a thread can fetch into
        a non-full window, or a completed (or squashed) ROB head is
        waiting on commit bandwidth. Otherwise jumps to the next event,
        clamped to *max_cycles* so the cycle-limit path is identical to
        stepping.

        Unlike :meth:`_next_event_cycle`, in-flight cache fills are
        deliberately *not* wake-up events here: no core-visible state
        changes when a fill lands — a fill is only observed by a later
        demand access, and every access cycle is preserved exactly by
        the completion/ready/fetch conditions — so waking for them
        would only fragment skips (and scan the arrival map) for no
        semantic effect.
        """
        step = self.cycle + 1
        target = None
        completions = self._completions
        if completions:
            target = completions[0][0]
        ready = self._ready
        if ready:
            arrival = ready[0][0]
            if target is None or arrival < target:
                target = arrival
        if target is not None and target <= step:
            return step
        if self._window_count < self.config.window_entries and any_fetchable(
            self.threads
        ):
            return step
        for ctx in self.threads:
            if ctx.active:
                rob = ctx.rob
                if rob and (rob[0].completed or rob[0].squashed):
                    return step
        if target is None:
            # Nothing in flight and nothing fetchable: either a genuine
            # deadlock (the caller's check raises on the next cycle) or
            # a spin straight to the cycle ceiling.
            return step if self._is_deadlocked() else max_cycles
        return target if target < max_cycles else max_cycles

    def _is_deadlocked(self) -> bool:
        """O(1) liveness check: any pending event or fetchable thread
        short-circuits before the per-thread ROB scan."""
        if self._ready or self._completions:
            return False
        if any_fetchable(self.threads):
            return False
        return all(not t.rob for t in self.threads if t.active)

    def _deadlock_message(self) -> str:
        """Diagnostic for a deadlocked core, including the computed
        next-event state (what the event-driven loop would wait on)."""
        fetchable = [t.thread_id for t in self.threads if t.can_fetch]
        return (
            f"core deadlock at cycle {self.cycle}: main thread stalled at "
            f"pc={self._main.state.pc:#x} with nothing in flight "
            f"(next_event_cycle={self._next_event_cycle()!r}, "
            f"ready={len(self._ready)}, completions={len(self._completions)}, "
            f"fetchable_threads={fetchable}, "
            f"window={self._window_count}/{self.config.window_entries})"
        )

    # ==================================================================
    # Completion / branch resolution
    # ==================================================================

    def _process_completions(self) -> None:
        completions = self._completions
        if not completions:
            return
        cycle = self.cycle
        heappop = heapq.heappop
        heappush = heapq.heappush
        ready = self._ready
        seq = self._seq
        frontend = self.config.frontend_stages
        while completions and completions[0][0] <= cycle:
            _, _, entry = heappop(completions)
            if entry.squashed:
                continue
            entry.completed = True
            for waiter in entry.waiters:
                if waiter.squashed or waiter.completed:
                    continue
                waiter.pending_deps -= 1
                if waiter.pending_deps == 0:
                    # _make_ready, inlined for the wakeup storm.
                    earliest = waiter.fetch_cycle + frontend
                    if earliest < cycle:
                        earliest = cycle
                    heappush(ready, (earliest, next(seq), waiter))
            entry.waiters.clear()
            if entry.pgi_slot is not None:
                self._route_pgi(entry)
            if entry.value_predicted and not entry.value_correct:
                self._resolve_value_mispredict(entry)
            elif entry.prediction is not None and not entry.squashed:
                self._resolve_branch(entry)

    def _resolve_branch(self, entry: WindowEntry) -> None:
        """Compare the path fetch followed with the actual outcome."""
        inst = entry.inst
        actual_target = entry.rnext_pc
        effective_target = self._effective_target(entry)
        if effective_target == actual_target:
            return
        entry.mispredicted = True
        self._squash_after(
            entry,
            resume_pc=actual_target,
            replay_taken=bool(entry.rtaken),
            replay_target=actual_target,
        )
        entry.effective_taken = entry.rtaken

    def _resolve_value_mispredict(self, entry: WindowEntry) -> None:
        """A wrong slice value prediction: consumers ran with a bogus
        value, so everything younger re-executes (like a branch
        misprediction, but fetch resumes on the same path)."""
        self.stats.value_mispredict_squashes += 1
        self._squash_after(
            entry,
            resume_pc=entry.rnext_pc,
            replay_taken=True,
            replay_target=entry.rnext_pc,
        )

    def _effective_target(self, entry: WindowEntry) -> int:
        inst = entry.inst
        if inst.is_conditional:
            if entry.effective_taken:
                return inst.target
            return inst.pc + INSTRUCTION_BYTES
        return entry.prediction.target

    def _route_pgi(self, entry: WindowEntry) -> None:
        """A slice PGI executed: hand its result to the correlator."""
        slot, pgi = entry.pgi_slot
        if slot is None:
            return
        if pgi.kind in (PGIKind.VALUE, PGIKind.TARGET):
            self.correlator.on_value_pgi_executed(
                slot, entry.rvalue or 0
            )
            return
        direction = pgi.direction_of(entry.rvalue or 0)
        late_mismatch = self.correlator.on_pgi_executed(slot, direction)
        if late_mismatch:
            self._early_resolution(slot, direction)

    def _early_resolution(self, slot, direction: bool) -> None:
        """Late prediction disagrees with the in-flight traditional one:
        reverse the prediction and redirect fetch (Section 5.3)."""
        consumer = None
        for candidate in self._main.rob:
            if candidate.vn == slot.consumer_vn:
                consumer = candidate
                break
        if consumer is None or consumer.completed or consumer.squashed:
            return
        inst = consumer.inst
        if not inst.is_conditional:
            return
        new_target = (
            inst.target if direction else inst.pc + INSTRUCTION_BYTES
        )
        if new_target == self._effective_target(consumer):
            return
        self.stats.early_resolutions += 1
        consumer.early_resolved = True
        self._squash_after(
            consumer,
            resume_pc=new_target,
            replay_taken=direction,
            replay_target=new_target,
        )
        consumer.effective_taken = direction

    # ==================================================================
    # Squash
    # ==================================================================

    def _squash_after(
        self,
        branch: WindowEntry,
        resume_pc: int,
        replay_taken: bool,
        replay_target: int,
    ) -> None:
        """Squash everything younger than *branch* and redirect fetch."""
        main = self._main
        min_vn = branch.vn + 1

        # Main thread: unwind the ROB tail, restoring the rename map.
        while main.rob and main.rob[-1].vn > branch.vn:
            victim = main.rob.pop()
            self._discard_entry(main, victim)

        # Helper threads forked on the squashed path die with it — both
        # still-running contexts and already-finished slices whose
        # predictions must be discarded.
        for ctx in self.threads:
            if (
                ctx.active
                and ctx.kind is ThreadKind.SLICE
                and ctx.fork_vn >= min_vn
            ):
                self._release_slice_context(ctx)
        while self._forked and self._forked[-1][0] >= min_vn:
            _, instance_id = self._forked.pop()
            self.correlator.on_fork_squashed(instance_id)
            self.stats.forks_squashed += 1

        # Architectural state, predictor histories, correlator.
        main.state.rollback(branch.checkpoint)
        main.state.pc = resume_pc
        self.predictor.restore(branch.prediction)
        self.predictor.replay_actual(branch.inst, replay_taken, replay_target)
        self.correlator.on_squash(min_vn)
        main.fetch_stalled = False

    def _discard_entry(self, ctx: ThreadContext, victim: WindowEntry) -> None:
        victim.squashed = True
        self._window_count -= 1
        ctx.in_flight -= 1
        if victim.prev_writer is not None:
            reg, previous = victim.prev_writer
            if ctx.last_writer.get(reg) is victim:
                if previous is None or previous.squashed:
                    ctx.last_writer.pop(reg, None)
                else:
                    ctx.last_writer[reg] = previous
        # Break reference cycles so refcounting reclaims the entry while
        # the GC is paused (see Core.run): a squashed entry never
        # completes, so its waiter list is dead weight.
        victim.prev_writer = None
        victim.waiters.clear()

    def _on_instance_retired(
        self, slice_name: str, instance_id: int, consumed_any: bool
    ) -> None:
        """Late usefulness judgment for confidence gating: an instance
        was useful if a prediction of its was consumed or its loads
        prefetched something cold."""
        missed = self._instance_missed.pop(instance_id, False)
        if self.fork_confidence is not None:
            self.fork_confidence.update(slice_name, consumed_any or missed)

    def _kill_runaway_slice(self, ctx: ThreadContext) -> None:
        """Containment fuse (§3.2 backstop): a helper activation that
        fetched ``slice_hw.max_slice_insts`` instructions is a runaway.
        Kill it — squash its window entries, discard its pending
        predictions, free the context — and count the event. The main
        thread only ever observes the freed resources."""
        self.stats.slices_killed_fuse += 1
        if self.strict_slices:
            raise SliceRunawayError(
                f"slice {ctx.spec.name!r} blew its instruction fuse "
                f"({ctx.fetched} fetched, fuse "
                f"{self.config.slice_hw.max_slice_insts}) at cycle "
                f"{self.cycle}",
                slice_name=ctx.spec.name,
                fetched=ctx.fetched,
            )
        self._release_slice_context(ctx)

    def _release_slice_context(self, ctx: ThreadContext) -> None:
        """Free a helper thread's window entries and return its context."""
        if ctx.active:
            self._active_slice_count -= 1
            self._active_slices.remove(ctx)
        for victim in ctx.rob:
            if not victim.squashed:
                victim.squashed = True
                self._window_count -= 1
            victim.prev_writer = None
            victim.waiters.clear()
        self._livein_producers.pop(ctx.thread_id, None)
        ctx.release()

    # ==================================================================
    # Commit
    # ==================================================================

    def _commit(self) -> None:
        budget = self.config.width
        watermark = None
        main = self._main
        if self._active_slice_count:
            ordered = [main] + self._active_slices
        else:
            ordered = (main,)
        for ctx in ordered:
            rob = ctx.rob
            is_main = ctx.is_main
            while rob:
                head = rob[0]
                if head.squashed:
                    rob.popleft()
                    continue
                if not head.completed or budget <= 0:
                    break
                rob.popleft()
                head.committed = True
                # A committed entry can never be squashed; drop its
                # rename-rollback link so refcounting can reclaim the
                # chain while the GC is paused (see Core.run).
                head.prev_writer = None
                self._window_count -= 1
                ctx.in_flight -= 1
                budget -= 1
                if is_main:
                    watermark = head.vn
                    self._commit_main(head)
                    if self._done:
                        break
                else:
                    ctx.retired += 1
                    self.stats.slice_retired += 1
            if not is_main and ctx.active and ctx.fetch_stalled and not rob:
                self.stats.slices_completed += 1
                if self.fork_confidence is not None:
                    if ctx.spec.pgis:
                        # Predictions may be consumed after the helper
                        # finishes: defer judgment to instance retirement.
                        self._instance_missed[ctx.instance_id] = (
                            ctx.slice_misses > 0
                        )
                    else:
                        # Prefetch-only slice: cold misses are the signal.
                        self.fork_confidence.update(
                            ctx.spec.name, ctx.slice_misses > 0
                        )
                self._release_slice_context(ctx)
            if self._done:
                break
        if watermark is not None:
            self.correlator.on_retire(watermark)
            # Forks older than the commit point can no longer be squashed.
            while self._forked and self._forked[0][0] <= watermark:
                self._forked.popleft()

    def _commit_main(self, entry: WindowEntry) -> None:
        stats = self.stats
        stats.committed += 1
        inst = entry.inst
        if inst.is_mem:
            stats.count_mem(inst.pc, entry.counts_as_miss)
            if entry.value_predicted and entry.match_slot is not None:
                self.correlator.record_value_outcome(
                    entry.match_slot, entry.value_correct
                )
            if inst.is_load:
                stats.loads_committed += 1
                if entry.counts_as_miss:
                    stats.load_misses += 1
            else:
                stats.stores_committed += 1
                if entry.counts_as_miss:
                    stats.store_misses += 1
        elif entry.prediction is not None and (
            inst.is_conditional or inst.is_indirect
        ):
            stats.branches_committed += 1
            caused_squash = entry.mispredicted or entry.early_resolved
            stats.count_branch(inst.pc, caused_squash)
            if caused_squash:
                stats.branch_mispredictions += 1
            self.predictor.train(
                inst, bool(entry.rtaken), entry.rnext_pc, entry.prediction
            )
            if entry.match_slot is not None and entry.prediction.from_correlator:
                self.correlator.record_override_outcome(
                    entry.match_slot,
                    correct=not (entry.mispredicted or entry.early_resolved),
                )
        if (
            not self._warmed
            and stats.committed >= self.warmup
        ):
            self._reset_measurement()
            stats = self.stats
        if inst.op is Opcode.HALT:
            self._done = True
        # ``region`` counts post-warmup commits only: until the warmup
        # boundary resets the stats, the running count is discard-window
        # work and must not terminate the region (a sampled run's
        # region is routinely smaller than its warmup prefix).
        if (
            self.region is not None
            and self._warmed
            and stats.committed >= self.region
        ):
            self._done = True

    def _reset_measurement(self) -> None:
        """Warmup boundary: discard statistics, keep all machine state."""
        self._warmed = True
        self._measure_start_cycle = self.cycle
        self.stats = RunStats(
            config_name=self.stats.config_name,
            workload_name=self.stats.workload_name,
        )
        self.hierarchy.stats = type(self.hierarchy.stats)()
        self.correlator.stats = type(self.correlator.stats)()

    _measure_start_cycle = 0

    # ==================================================================
    # Fetch
    # ==================================================================

    def _fetch(self) -> bool:
        """Fetch this cycle; returns True if any instruction was fetched
        (the event-driven loop only probes for a skip on empty cycles)."""
        budget = self.config.width
        window_limit = self.config.window_entries
        fetch_one = self._fetch_one
        fetched = False
        fused = self._fused if self.fused_blocks else None
        fusable = self._fusable_pcs
        # With dedicated slice resources (the Section 6.3 ablation),
        # helper threads draw on their own fetch budget instead of
        # stealing main-thread slots.
        slice_budget = (
            self.config.width if self.dedicated_slice_resources else None
        )
        main = self._main
        if self._active_slice_count:
            ordered = icount_order(
                [main] + self._active_slices, self.config.icount_main_bias
            )
        else:
            ordered = (main,) if main.active and not main.fetch_stalled else ()
        for ctx in ordered:
            uses_shared = ctx.is_main or slice_budget is None
            while True:
                if self._window_count >= window_limit:
                    return fetched
                if not ctx.active or ctx.fetch_stalled:
                    break
                if uses_shared:
                    if budget <= 0:
                        break
                elif slice_budget <= 0:
                    break
                if fused is not None and ctx.is_main:
                    # Fused tier: a whole fetch group inside a basic
                    # block costs one generated call. Mid-block PCs not
                    # known as leaders or resume points fall through to
                    # the instruction tier (wrong-path safety).
                    pc = ctx.state.pc
                    fn = fused.get(pc)
                    if fn is None and pc in fusable:
                        fn = self._compile_fused(pc)
                    if fn is not None:
                        room = window_limit - self._window_count
                        n = fn(self, ctx, budget if budget < room else room)
                        fetched = True
                        budget -= n
                        continue
                if not fetch_one(ctx):
                    break
                fetched = True
                if uses_shared:
                    budget -= 1
                else:
                    slice_budget -= 1
            if budget <= 0 and slice_budget is None:
                break
        return fetched

    def _compile_fused(self, pc: int):
        """Compile the fetch segment entered at *pc*, or rule it out.

        Invalidation mirrors the ``Instruction.__copy__`` cache-drop
        contract at block granularity: if the program's
        ``block_version`` moved (a pass renamed/cloned instructions in
        place and called :meth:`Program.drop_block_caches`), every
        compiled segment and the fusable-entry set are rebuilt before
        anything stale can execute.
        """
        program = self.program
        if program.block_version != self._fuse_version:
            self._fused.clear()
            self._fusable_pcs.clear()
            self._fusable_pcs.update(program.basic_blocks().keys())
            self._fuse_version = program.block_version
            if pc not in self._fusable_pcs:
                return None
        # Same-process Cores over the same Program (and the same
        # width / front-end depth / CAM exclusions) share generated
        # segments; ``drop_block_caches`` clears this cache too. A hit
        # installs immediately — the hot-threshold below only amortizes
        # codegen, and a cached segment has none left to amortize.
        cache = program._segment_cache
        key = (pc, self._fuse_key)
        cached = cache.get(key)
        if cached is None:
            # Hot-threshold: codegen costs ~0.5 ms a segment; a cold or
            # wrong-path-only entry PC never earns that back. Warm up
            # through the instruction tier first. Heat lives on the
            # Program so it accumulates across Cores in-process.
            heat = program._segment_heat
            n = heat.get(key, 0) + 1
            if n < HOT_THRESHOLD:
                heat[key] = n
                return None
            heat.pop(key, None)
            insts = self._fusable_run_from(pc)
            if len(insts) < MIN_FUSE_LEN:
                # Too short to out-run the instruction tier. If the
                # walk stopped on a CAM exclusion (the instruction
                # there is present and fusable by opcode), the block
                # resumes — and may fuse — right after it.
                stop_pc = pc + len(insts) * INSTRUCTION_BYTES
                inst = self._main.prog_by_pc.get(stop_pc)
                resume = (
                    stop_pc + INSTRUCTION_BYTES
                    if inst is not None and inst.op in FUSABLE_OPS
                    else 0
                )
                cached = cache[key] = (None, resume)
            else:
                fn = compile_segment(
                    insts, self._main.thread_id, self.config.frontend_stages
                )
                cached = cache[key] = (fn, len(insts))
        fn, n_insts = cached
        if fn is None:
            # Cached rule-out: n_insts carries the post-exclusion
            # resume PC (0 when there is none).
            self._fusable_pcs.discard(pc)
            if n_insts:
                self._fusable_pcs.add(n_insts)
            return None
        self._fused[pc] = fn
        self.stats.blocks_compiled += 1
        # Every internal offset is a legitimate resume point after a
        # budget- or window-limited partial group; the PC one past the
        # segment is the natural continuation when the block is wider
        # than the fetch width. Register them all as fusable entries
        # (compiled lazily, and only if actually reached).
        step = INSTRUCTION_BYTES
        fusable = self._fusable_pcs
        for k in range(1, n_insts + 1):
            resume = pc + k * step
            if resume not in self._fused:
                fusable.add(resume)
        return fn

    def _fusable_run_from(self, pc: int) -> list:
        """Consecutive fusable instructions from *pc*, up to one fetch
        group wide.

        Stops at control transfers / ``HALT`` / ``FORK`` (block
        terminators) and at any PC the slice hardware CAMs at fetch
        (kill map, fork map, value-PGI loads) — those must reach
        :meth:`_fetch_one` individually. All three maps are static
        after ``__init__``, so compile-time exclusion is sound.
        """
        by_pc = self._main.prog_by_pc
        width = self.config.width
        if self._slices_enabled:
            kill = self._kill_pc_map
            fork = self._fork_pc_map
            vload = self._value_load_pcs
        else:
            kill = fork = vload = ()
        insts = []
        step = INSTRUCTION_BYTES
        while len(insts) < width:
            inst = by_pc.get(pc)
            if inst is None or inst.op not in FUSABLE_OPS:
                break
            if pc in kill or pc in fork or pc in vload:
                break
            insts.append(inst)
            pc += step
        return insts

    def _fetch_one(self, ctx: ThreadContext) -> bool:
        if not ctx.is_main and ctx.fuse_blown(
            self.config.slice_hw.max_slice_insts
        ):
            self._kill_runaway_slice(ctx)
            return False
        state = ctx.state
        inst = ctx.prog_by_pc.get(state.pc)
        if inst is None:
            ctx.fetch_stalled = True
            return False
        vn = self._next_vn
        self._next_vn = vn + 1
        stats = self.stats

        if ctx.is_main:
            stats.main_fetched += 1
            if self._slices_enabled:
                pc = inst.pc
                if pc in self._kill_pc_map:
                    self.correlator.on_kill_fetched(pc, vn)
                if inst.op is Opcode.FORK:
                    # Explicit fork instruction (Section 4.2 alternative).
                    spec = self.slice_table.at_index(inst.imm or 0)
                    if spec is not None:
                        self._try_fork(spec, ctx, vn)
                else:
                    specs = self._fork_pc_map.get(pc)
                    if specs:
                        for spec in specs:
                            self._try_fork(spec, ctx, vn)
        else:
            ctx.fetched += 1
            stats.slice_fetched += 1

        fn = inst._exec
        if fn is None:
            result = execute(inst, state)
        else:
            result = fn(state)
        entry = WindowEntry(
            inst,
            ctx.thread_id,
            vn,
            self.cycle,
            result.value,
            result.addr,
            result.store_value,
            result.taken,
            result.next_pc,
            result.fault,
        )
        self._window_count += 1
        ctx.rob.append(entry)
        ctx.in_flight += 1

        if inst.is_branch:
            if ctx.is_main:
                self._fetch_branch_main(ctx, entry)
            else:
                self._fetch_branch_slice(ctx, entry)
        elif (
            ctx.is_main
            and inst.is_load
            and inst.pc in self._value_load_pcs
        ):
            match = self.correlator.on_load_fetched(inst.pc, vn)
            if match is not None and match.value is not None:
                entry.match_slot = match.slot
                entry.value_predicted = True
                entry.value_correct = match.value == result.value
                # A wrong value prediction squashes like a branch: it
                # needs a checkpoint and a history snapshot to recover.
                entry.checkpoint = ctx.state.checkpoint(result.next_pc)
                entry.prediction = BranchPrediction(
                    taken=True,
                    target=result.next_pc,
                    ghr_before=self.predictor.direction.history,
                    path_before=self.predictor.indirect.path_history,
                    ras_before=self.predictor.ras.checkpoint(),
                )
        if not ctx.is_main:
            pgi = self.pgi_table.lookup(ctx.spec.name, inst.pc)
            if pgi is not None:
                slot = self.correlator.on_pgi_fetched(
                    ctx.spec, pgi, ctx.instance_id
                )
                entry.pgi_slot = (slot, pgi)
            if result.fault is Fault.NULL_DEREF:
                # Exceptions terminate slices (Section 3.2): the fault
                # is quarantined to the helper context — fetch stops,
                # in-flight work drains, nothing reaches the main
                # thread. Counted so containment is observable.
                ctx.fetch_stalled = True
                self.stats.slices_killed_fault += 1
        if result.fault is Fault.HALT:
            ctx.fetch_stalled = True

        self._dispatch(ctx, entry)
        return True

    def _fetch_branch_main(self, ctx: ThreadContext, entry: WindowEntry) -> None:
        inst = entry.inst
        if self.perfect.branch_is_perfect(inst.pc) and (
            inst.is_conditional or inst.is_indirect
        ):
            entry.prediction = BranchPrediction(
                taken=bool(entry.rtaken),
                target=entry.rnext_pc,
                ghr_before=self.predictor.direction.history,
                path_before=self.predictor.indirect.path_history,
                ras_before=self.predictor.ras.checkpoint(),
            )
            entry.effective_taken = entry.rtaken
            entry.checkpoint = ctx.state.checkpoint(entry.rnext_pc)
            return

        prediction = self.predictor.predict(inst)
        if (
            inst.is_indirect
            and inst.pc in self._target_branch_pcs
        ):
            match = self.correlator.on_target_fetched(inst.pc, entry.vn)
            if match is not None and match.value is not None:
                self.predictor.override_target(prediction, match.value)
                entry.match_slot = match.slot
        if inst.is_conditional and self._slices_enabled:
            match = self.correlator.on_branch_fetched(inst.pc, entry.vn)
            if match is not None:
                if match.direction is not None:
                    self.predictor.override_direction(
                        prediction, inst, match.direction
                    )
                    entry.match_slot = match.slot
                else:
                    self.correlator.bind_late(
                        match.slot, entry.vn, prediction.taken
                    )
        entry.prediction = prediction
        entry.effective_taken = prediction.taken
        entry.checkpoint = ctx.state.checkpoint(entry.rnext_pc)
        if prediction.target != entry.rnext_pc:
            # Steer fetch down the (wrong) predicted path.
            ctx.state.pc = prediction.target
            entry.mispredicted = True

    def _fetch_branch_slice(self, ctx: ThreadContext, entry: WindowEntry) -> None:
        """Slice branches follow their computed outcome; the loop
        back-edge honors the slice's maximum iteration count."""
        spec = ctx.spec
        inst = entry.inst
        if (
            spec.loop_back_pc is not None
            and inst.pc == spec.loop_back_pc
            and entry.rtaken
        ):
            ctx.iterations += 1
            if (
                spec.max_iterations is not None
                and ctx.iterations >= spec.max_iterations
            ):
                # Iteration bound reached: fall through out of the loop.
                ctx.state.pc = inst.pc + INSTRUCTION_BYTES

    def _try_fork(self, spec: SliceSpec, main: ThreadContext, vn: int) -> None:
        self.stats.fork_points_fetched += 1
        if (
            self.fork_confidence is not None
            and not self.fork_confidence.should_fork(spec.name)
        ):
            self.stats.forks_gated += 1
            return
        idle = next(
            (t for t in self.threads if not t.active and not t.is_main), None
        )
        if idle is None:
            self.stats.forks_ignored += 1
            return
        live_in_values = {
            reg: main.state.regs.read(reg) for reg in spec.live_in_regs
        }
        instance_id = self._next_instance
        self._next_instance += 1
        idle.activate_slice(
            spec,
            self.memory,
            live_in_values,
            instance_id,
            fork_vn=vn,
            livein_ready_cycle=self.cycle,
        )
        self._active_slice_count += 1
        self._active_slices.append(idle)
        if len(self._active_slices) > 1:
            self._active_slices.sort(key=lambda t: t.thread_id)
        producers = {}
        for reg in spec.live_in_regs:
            producer = main.last_writer.get(reg)
            if producer is not None and not producer.completed:
                producers[reg] = producer
        self._livein_producers[idle.thread_id] = producers
        self.correlator.on_fork(spec, instance_id)
        self._forked.append((vn, instance_id))
        self.stats.forks_taken += 1

    # ==================================================================
    # Dispatch / issue
    # ==================================================================

    def _dispatch(self, ctx: ThreadContext, entry: WindowEntry) -> None:
        inst = entry.inst
        pending = 0
        last_writer = ctx.last_writer
        livein_producers = (
            None if ctx.is_main else self._livein_producers.get(ctx.thread_id)
        )
        for reg in inst.unique_source_regs():
            producer = last_writer.get(reg)
            if producer is None and livein_producers:
                producer = livein_producers.get(reg)
            if producer is not None and not producer.completed and not producer.squashed:
                pending += 1
                producer.waiters.append(entry)
        if inst._op_writes and inst.rd is not None:
            rd = inst.rd
            entry.prev_writer = (rd, last_writer.get(rd))
            last_writer[rd] = entry
        entry.pending_deps = pending
        if pending == 0:
            self._make_ready(entry)

    def _make_ready(self, entry: WindowEntry) -> None:
        earliest = entry.fetch_cycle + self.config.frontend_stages
        cycle = self.cycle
        if earliest < cycle:
            earliest = cycle
        heapq.heappush(self._ready, (earliest, next(self._seq), entry))

    def _issue(self) -> None:
        ready = self._ready
        if not ready:
            return
        cycle = self.cycle
        if ready[0][0] > cycle:
            return
        config = self.config
        budget = config.width
        simple = config.simple_alus
        complex_units = config.complex_alus
        mem_ports = config.load_store_ports
        deferred: list[tuple[int, int, WindowEntry]] = []
        completions = self._completions
        seq_counter = self._seq
        heappop = heapq.heappop
        heappush = heapq.heappush
        dedicated = self.dedicated_slice_resources
        main_thread_id = self._main.thread_id
        next_cycle = cycle + 1
        while ready and budget > 0:
            earliest, seq, entry = ready[0]
            if earliest > cycle:
                break
            heappop(ready)
            if entry.squashed or entry.completed:
                continue
            if dedicated and entry.thread_id != main_thread_id:
                # Dedicated slice execution resources: no FU contention.
                latency = self._execution_latency(entry)
                heappush(
                    completions, (cycle + latency, next(seq_counter), entry)
                )
                continue
            inst = entry.inst
            op_class = inst.op_class
            if op_class is OpClass.MEM:
                if mem_ports <= 0:
                    deferred.append((next_cycle, seq, entry))
                    continue
                mem_ports -= 1
                latency = self._execution_latency(entry)
            elif op_class is OpClass.COMPLEX:
                if complex_units <= 0:
                    deferred.append((next_cycle, seq, entry))
                    continue
                complex_units -= 1
                latency = inst.latency
            else:
                if simple <= 0:
                    deferred.append((next_cycle, seq, entry))
                    continue
                simple -= 1
                latency = inst.latency
            budget -= 1
            heappush(completions, (cycle + latency, next(seq_counter), entry))
        for item in deferred:
            heappush(ready, item)

    def _execution_latency(self, entry: WindowEntry) -> int:
        inst = entry.inst
        if not inst.is_mem:
            return inst.latency
        addr = entry.raddr
        if entry.rfault is Fault.NULL_DEREF or addr is None:
            return self.config.l1d.latency
        is_slice = entry.thread_id != self._main.thread_id
        if entry.value_predicted and entry.value_correct:
            # Consumers already have the (correct) predicted value; the
            # line fetch proceeds in the background.
            self.hierarchy.access(addr, is_store=False, now=self.cycle)
            entry.counts_as_miss = False
            return self.config.l1d.latency
        if (
            self._has_perfect_loads
            and not is_slice
            and inst.is_load
            and self.perfect.load_is_perfect(inst.pc)
        ):
            # Perfect-cache overlay: still install the line, charge a hit.
            self.hierarchy.access(addr, is_store=False, now=self.cycle)
            entry.counts_as_miss = False
            return self.config.l1d.latency
        access = self.hierarchy.access(
            addr, inst.is_store, is_slice, self.cycle
        )
        entry.counts_as_miss = access.counts_as_miss
        if is_slice and access.counts_as_miss:
            ctx = self.threads[entry.thread_id]
            if ctx.active and ctx.instance_id >= 0:
                ctx.slice_misses += 1
        return access.latency

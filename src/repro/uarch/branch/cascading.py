"""Cascaded indirect branch target predictor (Driesen & Hoelzle, MICRO-31).

Two stages: a simple PC-indexed table, and a history-indexed tagged
table that is only filled on a first-stage misprediction ("cascading"
filter). The paper's front end allots it 32Kb (Table 1); the default
geometry models 512 + 512 target entries with a short path history of
recent indirect targets.
"""

from __future__ import annotations


class CascadingIndirectPredictor:
    """Two-stage cascaded predictor for indirect branch targets."""

    def __init__(
        self,
        stage1_entries: int = 512,
        stage2_entries: int = 512,
        history_targets: int = 4,
    ):
        if stage1_entries & (stage1_entries - 1) or stage2_entries & (stage2_entries - 1):
            raise ValueError("table sizes must be powers of two")
        self._stage1: list[int | None] = [None] * stage1_entries
        self._stage2: list[tuple[int, int] | None] = [None] * stage2_entries
        self._s1_mask = stage1_entries - 1
        self._s2_mask = stage2_entries - 1
        self._history_targets = history_targets
        self.path_history = 0
        self.predictions = 0
        self.stage2_hits = 0

    def _s2_index_tag(self, pc: int, history: int) -> tuple[int, int]:
        word_pc = pc >> 2
        index = (word_pc ^ history) & self._s2_mask
        tag = word_pc & 0xFFFF
        return index, tag

    def predict(self, pc: int) -> int | None:
        """Predict the target of the indirect branch at *pc*.

        Returns ``None`` when neither stage has a target (the front end
        then stalls until the branch executes, modeled as a
        misprediction by the core).
        """
        self.predictions += 1
        index, tag = self._s2_index_tag(pc, self.path_history)
        entry = self._stage2[index]
        if entry is not None and entry[0] == tag:
            self.stage2_hits += 1
            return entry[1]
        return self._stage1[(pc >> 2) & self._s1_mask]

    def shift_history(self, target: int) -> None:
        """Speculatively mix a predicted target into the path history.

        The target's high bits are folded down so that aligned targets
        (whose distinguishing bits sit high) still perturb the low index
        bits of the second-stage table.
        """
        bits = self._history_targets * 4
        value = target >> 2
        value ^= value >> 7
        value ^= value >> 13
        self.path_history = (
            ((self.path_history << 3) ^ value) & ((1 << bits) - 1)
        )

    def update(self, pc: int, target: int, history: int) -> None:
        """Train with the resolved target, using the prediction-time history."""
        s1_index = (pc >> 2) & self._s1_mask
        stage1_correct = self._stage1[s1_index] == target
        self._stage1[s1_index] = target
        if not stage1_correct:
            # Cascade: second stage only learns what stage 1 gets wrong.
            index, tag = self._s2_index_tag(pc, history)
            self._stage2[index] = (tag, target)

"""YAGS direction predictor (Eden & Mudge, MICRO-31).

YAGS ("Yet Another Global Scheme") keeps a bimodal *choice* PHT plus two
tagged *direction caches* that record only the exceptions to the bias:
the T-cache holds not-taken behavior for branches the choice predictor
biases taken, and vice versa for the NT-cache. The paper's front end
uses a 64Kb YAGS (Table 1); the default geometry here spends its budget
as 8K 2-bit choice counters plus two 4K-entry caches of 2-bit counters
with 6-bit tags (16Kb + 2 x 32Kb).
"""

from __future__ import annotations


def _saturate(counter: int, taken: bool) -> int:
    """Advance a 2-bit saturating counter."""
    if taken:
        return min(counter + 1, 3)
    return max(counter - 1, 0)


class YagsPredictor:
    """YAGS conditional-branch direction predictor.

    Global history is maintained speculatively by the front end:
    :meth:`predict` does not shift history; the core calls
    :meth:`shift_history` with the predicted direction, checkpoints the
    history register at each branch, and restores it on a squash.
    Counters/tags are updated non-speculatively via :meth:`update`.
    """

    def __init__(
        self,
        choice_entries: int = 8192,
        cache_entries: int = 4096,
        tag_bits: int = 6,
        history_bits: int = 12,
    ):
        if choice_entries & (choice_entries - 1) or cache_entries & (cache_entries - 1):
            raise ValueError("table sizes must be powers of two")
        self._choice = [2] * choice_entries  # weakly taken
        self._choice_mask = choice_entries - 1
        self._cache_mask = cache_entries - 1
        self._tag_mask = (1 << tag_bits) - 1
        self.history_mask = (1 << history_bits) - 1
        self.history = 0
        # Direction caches: index -> (tag, counter). The T-cache stores
        # exceptions for choice==taken; NT-cache for choice==not-taken.
        self._t_cache: list[tuple[int, int] | None] = [None] * cache_entries
        self._nt_cache: list[tuple[int, int] | None] = [None] * cache_entries
        self.predictions = 0
        self.cache_overrides = 0

    # ------------------------------------------------------------------

    def _indices(self, pc: int) -> tuple[int, int, int]:
        word_pc = pc >> 2
        choice_index = word_pc & self._choice_mask
        cache_index = (word_pc ^ self.history) & self._cache_mask
        tag = word_pc & self._tag_mask
        return choice_index, cache_index, tag

    def predict(self, pc: int) -> bool:
        """Predict the direction of the conditional branch at *pc*."""
        self.predictions += 1
        choice_index, cache_index, tag = self._indices(pc)
        choice_taken = self._choice[choice_index] >= 2
        cache = self._nt_cache if choice_taken else self._t_cache
        entry = cache[cache_index]
        if entry is not None and entry[0] == tag:
            self.cache_overrides += 1
            return entry[1] >= 2
        return choice_taken

    def shift_history(self, taken: bool) -> None:
        """Speculatively shift the global history register."""
        self.history = ((self.history << 1) | int(taken)) & self.history_mask

    def update(self, pc: int, taken: bool, history: int) -> None:
        """Train with the resolved outcome of the branch at *pc*.

        *history* is the global history value that was live when the
        branch was predicted (the core records it per branch).
        """
        word_pc = pc >> 2
        choice_index = word_pc & self._choice_mask
        cache_index = (word_pc ^ history) & self._cache_mask
        tag = word_pc & self._tag_mask

        choice_counter = self._choice[choice_index]
        choice_taken = choice_counter >= 2
        cache = self._nt_cache if choice_taken else self._t_cache
        entry = cache[cache_index]
        cache_hit = entry is not None and entry[0] == tag

        if cache_hit:
            cache[cache_index] = (tag, _saturate(entry[1], taken))
        elif taken != choice_taken:
            # Allocate an exception entry when the choice predictor errs.
            cache[cache_index] = (tag, 2 if taken else 1)

        # The choice PHT is not updated when the direction cache provided
        # a correct exception (standard YAGS update rule).
        if not (cache_hit and (entry[1] >= 2) == taken and taken != choice_taken):
            self._choice[choice_index] = _saturate(choice_counter, taken)

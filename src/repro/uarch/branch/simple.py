"""Simple direction predictors: bimodal and gshare.

These serve as baselines for the predictor-comparison ablation and as
reference implementations; the machine of Table 1 uses YAGS.
"""

from __future__ import annotations


class BimodalPredictor:
    """PC-indexed table of 2-bit saturating counters."""

    def __init__(self, entries: int = 8192):
        if entries & (entries - 1):
            raise ValueError("table size must be a power of two")
        self._table = [2] * entries
        self._mask = entries - 1
        self.history_mask = 0
        self.history = 0

    def predict(self, pc: int) -> bool:
        return self._table[(pc >> 2) & self._mask] >= 2

    def shift_history(self, taken: bool) -> None:
        """Bimodal keeps no history; provided for interface parity."""

    def update(self, pc: int, taken: bool, history: int = 0) -> None:
        index = (pc >> 2) & self._mask
        counter = self._table[index]
        if taken:
            self._table[index] = min(counter + 1, 3)
        else:
            self._table[index] = max(counter - 1, 0)


class GsharePredictor:
    """Global-history-XOR-PC indexed table of 2-bit counters."""

    def __init__(self, entries: int = 16384, history_bits: int = 12):
        if entries & (entries - 1):
            raise ValueError("table size must be a power of two")
        self._table = [2] * entries
        self._mask = entries - 1
        self.history_mask = (1 << history_bits) - 1
        self.history = 0

    def predict(self, pc: int) -> bool:
        return self._table[((pc >> 2) ^ self.history) & self._mask] >= 2

    def shift_history(self, taken: bool) -> None:
        self.history = ((self.history << 1) | int(taken)) & self.history_mask

    def update(self, pc: int, taken: bool, history: int) -> None:
        index = ((pc >> 2) ^ history) & self._mask
        counter = self._table[index]
        if taken:
            self._table[index] = min(counter + 1, 3)
        else:
            self._table[index] = max(counter - 1, 0)

"""Composite front-end branch predictor (Table 1).

Combines, as in the paper's front end:

* a YAGS direction predictor for conditional branches,
* a cascading indirect predictor for register-target jumps/calls,
* a 64-entry return address stack for returns,
* a perfect BTB for direct branches (targets available at decode).

Histories (YAGS global history, indirect path history, RAS top) are
updated *speculatively* at prediction time; each prediction carries the
pre-branch snapshot so the core can restore on a squash and replay the
actual outcome.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.isa.instruction import Instruction
from repro.isa.opcodes import INSTRUCTION_BYTES, Opcode
from repro.uarch.branch.cascading import CascadingIndirectPredictor
from repro.uarch.branch.ras import ReturnAddressStack
from repro.uarch.branch.yags import YagsPredictor
from repro.uarch.config import BranchPredictorConfig


@dataclass(slots=True)
class BranchPrediction:
    """A front-end prediction plus the history snapshot behind it."""

    taken: bool
    target: int
    ghr_before: int
    path_before: int
    ras_before: int
    #: True when a slice-generated prediction overrode the predictor
    #: (set by the core; used for accuracy accounting, Section 6.1).
    from_correlator: bool = False


class FrontEndPredictor:
    """The composite predictor the fetch stage consults."""

    def __init__(
        self,
        config: BranchPredictorConfig | None = None,
        direction_predictor=None,
    ):
        config = config or BranchPredictorConfig()
        self.direction = direction_predictor or YagsPredictor()
        self.indirect = CascadingIndirectPredictor()
        self.ras = ReturnAddressStack(config.ras_entries)

    # ------------------------------------------------------------------

    def predict(self, inst: Instruction) -> BranchPrediction:
        """Predict *inst* and speculatively update histories."""
        snapshot = BranchPrediction(
            taken=True,
            target=inst.pc + INSTRUCTION_BYTES,
            ghr_before=self.direction.history,
            path_before=self.indirect.path_history,
            ras_before=self.ras.checkpoint(),
        )
        op = inst.op
        if inst.is_conditional:
            taken = self.direction.predict(inst.pc)
            self.direction.shift_history(taken)
            snapshot.taken = taken
            snapshot.target = inst.target if taken else inst.pc + INSTRUCTION_BYTES
        elif op is Opcode.BR:
            snapshot.target = inst.target
        elif op is Opcode.CALL:
            self.ras.push(inst.pc + INSTRUCTION_BYTES)
            snapshot.target = inst.target
        elif op is Opcode.RET:
            snapshot.target = self.ras.predict_and_pop()
        elif op in (Opcode.JR, Opcode.CALLR):
            predicted = self.indirect.predict(inst.pc)
            if predicted is None:
                # No target known: fall through (will mispredict).
                predicted = inst.pc + INSTRUCTION_BYTES
            self.indirect.shift_history(predicted)
            snapshot.target = predicted
            if op is Opcode.CALLR:
                self.ras.push(inst.pc + INSTRUCTION_BYTES)
        else:
            raise ValueError(f"not a branch: {inst.op}")
        return snapshot

    def override_direction(
        self, prediction: BranchPrediction, inst: Instruction, taken: bool
    ) -> None:
        """Replace a conditional prediction's direction (correlator override).

        Re-applies the speculative history shift with the new direction.
        """
        self.direction.history = prediction.ghr_before
        self.direction.shift_history(taken)
        prediction.taken = taken
        prediction.target = (
            inst.target if taken else inst.pc + INSTRUCTION_BYTES
        )
        prediction.from_correlator = True

    def override_target(
        self, prediction: BranchPrediction, target: int
    ) -> None:
        """Replace an indirect prediction's target (slice override).

        Re-applies the speculative path-history shift with the new
        target (extension: TARGET-kind PGIs).
        """
        self.indirect.path_history = prediction.path_before
        self.indirect.shift_history(target)
        prediction.target = target
        prediction.from_correlator = True

    # ------------------------------------------------------------------

    def restore(self, prediction: BranchPrediction) -> None:
        """Restore all histories to their pre-branch snapshot (squash)."""
        self.direction.history = prediction.ghr_before
        self.indirect.path_history = prediction.path_before
        self.ras.restore(prediction.ras_before)

    def replay_actual(self, inst: Instruction, taken: bool, target: int) -> None:
        """After a restore, re-apply the *actual* outcome's history effects."""
        if inst.is_conditional:
            self.direction.shift_history(taken)
        elif inst.op in (Opcode.JR, Opcode.CALLR):
            self.indirect.shift_history(target)
            if inst.op is Opcode.CALLR:
                self.ras.push(inst.pc + INSTRUCTION_BYTES)
        elif inst.op is Opcode.CALL:
            self.ras.push(inst.pc + INSTRUCTION_BYTES)
        elif inst.op is Opcode.RET:
            self.ras.predict_and_pop()

    def train(
        self,
        inst: Instruction,
        taken: bool,
        target: int,
        prediction: BranchPrediction,
    ) -> None:
        """Non-speculative table update at branch resolution."""
        if inst.is_conditional:
            self.direction.update(inst.pc, taken, prediction.ghr_before)
        elif inst.op in (Opcode.JR, Opcode.CALLR):
            self.indirect.update(inst.pc, target, prediction.path_before)

    # ------------------------------------------------------------------
    # Functional-warming images (sampled simulation)
    # ------------------------------------------------------------------

    def warm_image(self) -> tuple:
        """Deep, picklable copy of the predictor state (direction
        tables + history, indirect tables + path history, RAS) for a
        warmed-state snapshot. The component predictors are plain
        lists/ints, so ``deepcopy`` both detaches the image from the
        live predictor and keeps it pickle-stable."""
        return copy.deepcopy((self.direction, self.indirect, self.ras))

    def load_warm_image(self, image: tuple) -> None:
        """Install a :meth:`warm_image`. The image is deep-copied so
        several cores restored from one in-memory snapshot (a shared
        sweep prefix) never alias predictor state."""
        self.direction, self.indirect, self.ras = copy.deepcopy(image)

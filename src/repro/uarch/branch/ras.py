"""Return address stack (64 entries, Table 1).

A circular stack with top-of-stack checkpointing: on a squash the core
restores the TOS pointer captured at prediction time (entries
overwritten by wrong-path calls are not recovered — the standard,
slightly lossy hardware mechanism).
"""

from __future__ import annotations


class ReturnAddressStack:
    """Circular return-address stack predictor."""

    def __init__(self, entries: int = 64):
        self._stack = [0] * entries
        self._entries = entries
        self._top = 0  # index of the next free slot

    def push(self, return_pc: int) -> None:
        self._stack[self._top % self._entries] = return_pc
        self._top += 1

    def predict_and_pop(self) -> int:
        """Predict a return target by popping the stack."""
        if self._top == 0:
            return 0
        self._top -= 1
        return self._stack[self._top % self._entries]

    def checkpoint(self) -> int:
        """Capture the TOS pointer for squash recovery."""
        return self._top

    def restore(self, checkpoint: int) -> None:
        self._top = checkpoint

    @property
    def depth(self) -> int:
        return self._top

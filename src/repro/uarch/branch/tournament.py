"""Tournament (Alpha 21264-style) direction predictor.

A meta-predictor chooses per-branch between a global (gshare) and a
local (bimodal) component. Included as a comparison point for the
predictor ablation: the paper's premise is that *problem branches* stay
mispredicted no matter which history-based predictor is used, because
their outcomes depend on loaded data, not on branch history.
"""

from __future__ import annotations

from repro.uarch.branch.simple import BimodalPredictor, GsharePredictor


class TournamentPredictor:
    """Chooser-selected gshare/bimodal hybrid."""

    def __init__(
        self,
        chooser_entries: int = 8192,
        gshare_entries: int = 16384,
        bimodal_entries: int = 8192,
        history_bits: int = 12,
    ):
        if chooser_entries & (chooser_entries - 1):
            raise ValueError("table sizes must be powers of two")
        self._chooser = [2] * chooser_entries  # 2-3 prefer global
        self._chooser_mask = chooser_entries - 1
        self.global_component = GsharePredictor(gshare_entries, history_bits)
        self.local_component = BimodalPredictor(bimodal_entries)
        self.history_mask = self.global_component.history_mask

    @property
    def history(self) -> int:
        return self.global_component.history

    @history.setter
    def history(self, value: int) -> None:
        self.global_component.history = value

    def predict(self, pc: int) -> bool:
        if self._chooser[(pc >> 2) & self._chooser_mask] >= 2:
            return self.global_component.predict(pc)
        return self.local_component.predict(pc)

    def shift_history(self, taken: bool) -> None:
        self.global_component.shift_history(taken)

    def update(self, pc: int, taken: bool, history: int) -> None:
        global_correct = (
            self._predict_global_with(pc, history) == taken
        )
        local_correct = self.local_component.predict(pc) == taken
        index = (pc >> 2) & self._chooser_mask
        if global_correct != local_correct:
            counter = self._chooser[index]
            if global_correct:
                self._chooser[index] = min(counter + 1, 3)
            else:
                self._chooser[index] = max(counter - 1, 0)
        self.global_component.update(pc, taken, history)
        self.local_component.update(pc, taken)

    def _predict_global_with(self, pc: int, history: int) -> bool:
        saved = self.global_component.history
        self.global_component.history = history
        prediction = self.global_component.predict(pc)
        self.global_component.history = saved
        return prediction

"""Branch prediction: YAGS, cascading indirect, RAS, and the composite."""

from repro.uarch.branch.cascading import CascadingIndirectPredictor
from repro.uarch.branch.frontend_predictor import BranchPrediction, FrontEndPredictor
from repro.uarch.branch.ras import ReturnAddressStack
from repro.uarch.branch.simple import BimodalPredictor, GsharePredictor
from repro.uarch.branch.tournament import TournamentPredictor
from repro.uarch.branch.yags import YagsPredictor

__all__ = [
    "BimodalPredictor",
    "BranchPrediction",
    "CascadingIndirectPredictor",
    "FrontEndPredictor",
    "GsharePredictor",
    "ReturnAddressStack",
    "TournamentPredictor",
    "YagsPredictor",
]

"""Instruction-window entries for the out-of-order core.

Each fetched dynamic instruction gets a :class:`WindowEntry`. Entries
carry the functional outcome (computed at fetch, possibly down a wrong
path), the branch prediction behind the fetch, dependence links for
dataflow scheduling, and slice/correlator hooks.

The functional outcome is stored as scalar slots (``rvalue`` /
``raddr`` / ``rstore`` / ``rtaken`` / ``rnext_pc`` / ``rfault``) rather
than a nested :class:`~repro.arch.interpreter.ExecResult`: the fused
block tier (:mod:`repro.uarch.fusion`) passes observables straight into
``__init__`` as scalars, so the hot path performs no per-instruction
``ExecResult`` allocation at all. The :attr:`result` property
materializes an ``ExecResult`` view on demand for debugging and cold
consumers (the trace-driven slice builder).
"""

from __future__ import annotations

from repro.arch.exceptions import Fault
from repro.arch.interpreter import ExecResult
from repro.arch.state import Checkpoint
from repro.isa.instruction import Instruction
from repro.uarch.branch.frontend_predictor import BranchPrediction


class WindowEntry:
    """One in-flight dynamic instruction."""

    __slots__ = (
        "inst",
        "thread_id",
        "vn",
        "fetch_cycle",
        # Per-instruction observables (the ExecResult fields, unpacked).
        "rvalue",
        "raddr",
        "rstore",
        "rtaken",
        "rnext_pc",
        "rfault",
        "prediction",
        "checkpoint",
        "mispredicted",
        "effective_taken",
        "early_resolved",
        "completed",
        "squashed",
        "committed",
        "pending_deps",
        "waiters",
        "prev_writer",
        "pgi_slot",
        "match_slot",
        "counts_as_miss",
        "value_predicted",
        "value_correct",
    )

    def __init__(
        self,
        inst: Instruction,
        thread_id: int,
        vn: int,
        fetch_cycle: int,
        rvalue: int | None = None,
        raddr: int | None = None,
        rstore: int | None = None,
        rtaken: bool | None = None,
        rnext_pc: int = 0,
        rfault: Fault = Fault.NONE,
    ):
        self.inst = inst
        self.thread_id = thread_id
        self.vn = vn
        self.fetch_cycle = fetch_cycle
        self.rvalue = rvalue
        self.raddr = raddr
        self.rstore = rstore
        self.rtaken = rtaken
        self.rnext_pc = rnext_pc
        self.rfault = rfault
        self.prediction: BranchPrediction | None = None
        self.checkpoint: Checkpoint | None = None
        #: Fetch steered down a path inconsistent with the actual outcome.
        self.mispredicted = False
        #: Direction fetch is currently following for this branch (may be
        #: flipped by a late-prediction early resolution, Section 5.3).
        self.effective_taken: bool | None = None
        #: An early resolution already redirected fetch for this branch.
        self.early_resolved = False
        self.completed = False
        self.squashed = False
        self.committed = False
        self.pending_deps = 0
        self.waiters: list[WindowEntry] = []
        #: (reg, previous writer) pairs for rename-map rollback on squash.
        self.prev_writer: tuple[int, WindowEntry | None] | None = None
        self.pgi_slot = None  # PredictionSlot for slice-thread PGIs
        self.match_slot = None  # consumed PredictionSlot for main branches
        self.counts_as_miss = False
        #: Value-prediction extension: a slice-supplied value prediction
        #: was bound to this load at fetch, and whether it was right.
        self.value_predicted = False
        self.value_correct = False

    @property
    def result(self) -> ExecResult:
        """ExecResult view of the observable slots (debug / cold paths)."""
        return ExecResult(
            value=self.rvalue,
            addr=self.raddr,
            store_value=self.rstore,
            taken=self.rtaken,
            next_pc=self.rnext_pc,
            fault=self.rfault,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flags = "".join(
            flag
            for flag, on in (
                ("C", self.completed),
                ("S", self.squashed),
                ("M", self.mispredicted),
            )
            if on
        )
        return f"<W vn={self.vn} t{self.thread_id} pc={self.inst.pc:#x} {flags}>"

"""Per-static-instruction perfect overlays (Section 2.3, Figure 1).

The paper augments its simulator "to give the appearance of a perfect
branch predictor and perfect cache on a per static instruction basis".
A :class:`PerfectSpec` names the static PCs to idealize:

* a branch at a perfect PC is always fetched down its correct path
  (no misprediction, no squash);
* a load at a perfect PC always completes with the L1 hit latency (the
  line is still installed, modeling a magically-zero-latency fill).

:data:`ALL_PERFECT` idealizes every branch and every load — the "all
perfect" bars of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PerfectSpec:
    """Which static instructions are treated as perfect."""

    branch_pcs: frozenset[int] = field(default_factory=frozenset)
    load_pcs: frozenset[int] = field(default_factory=frozenset)
    all_branches: bool = False
    all_loads: bool = False

    def branch_is_perfect(self, pc: int) -> bool:
        return self.all_branches or pc in self.branch_pcs

    def load_is_perfect(self, pc: int) -> bool:
        return self.all_loads or pc in self.load_pcs

    @property
    def is_empty(self) -> bool:
        return not (
            self.all_branches
            or self.all_loads
            or self.branch_pcs
            or self.load_pcs
        )


#: No idealization: the baseline machine.
NO_PERFECT = PerfectSpec()

#: Every branch predicted perfectly and every load an L1 hit (Figure 1
#: "all perfect").
ALL_PERFECT = PerfectSpec(all_branches=True, all_loads=True)


def problem_perfect(branch_pcs, load_pcs) -> PerfectSpec:
    """Idealize exactly the given problem instructions (Figure 1,
    "prob. inst. perfect")."""
    return PerfectSpec(
        branch_pcs=frozenset(branch_pcs), load_pcs=frozenset(load_pcs)
    )

"""Set-associative caches and the two-level data hierarchy of Table 1.

The hierarchy is a latency model with full hit/miss/fill behavior:
write-back write-allocate caches with true LRU, a write buffer that
absorbs store misses, a unified 64-entry prefetch/victim buffer checked
in parallel with the L1, and hooks for the stream prefetcher.

Timing is returned per access as a load-use latency; port and bandwidth
contention are enforced by the core (which owns the load/store ports).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.uarch.config import CacheConfig, MachineConfig, PrefetchConfig


class SetAssociativeCache:
    """A write-back, write-allocate set-associative cache with LRU.

    Lines are tracked by line address (``addr // line_bytes``); data
    contents live in the functional memory, so the cache stores presence
    and dirtiness only.

    **Packed representation.** Each set is a flat list of ints, one per
    resident line, most recent last: ``(line_addr << 1) | dirty``. A
    tag compare is one shift, a dirty update is one ``|=``, and no
    tuples are allocated on the access path — the functional-warming
    loop probes these sets on every memory operation, so the entry
    layout is its hottest data structure. :meth:`image` /
    :meth:`load_image` convert to and from the legacy picklable
    ``(line_addr, dirty_bool)`` form, so snapshot payloads (and
    therefore digests) are unchanged.
    """

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.config = config
        self.name = name
        self._set_mask = config.num_sets - 1
        self._line_shift = config.line_bytes.bit_length() - 1
        # Each set is a list of (line_addr << 1) | dirty, MRU last.
        self._sets: list[list[int]] = [[] for _ in range(config.num_sets)]
        self.hits = 0
        self.misses = 0

    def line_of(self, addr: int) -> int:
        """Return the line address containing byte address *addr*."""
        return addr >> self._line_shift

    def lookup(self, addr: int, is_store: bool = False) -> bool:
        """Access the cache; return True on hit. Updates LRU and dirty."""
        line = addr >> self._line_shift
        bucket = self._sets[line & self._set_mask]
        for i, entry in enumerate(bucket):
            if entry >> 1 == line:
                del bucket[i]
                bucket.append(entry | is_store)
                self.hits += 1
                return True
        self.misses += 1
        return False

    def probe(self, addr: int) -> bool:
        """Check presence without updating LRU or counters."""
        line = addr >> self._line_shift
        for entry in self._sets[line & self._set_mask]:
            if entry >> 1 == line:
                return True
        return False

    def fill(self, addr: int, dirty: bool = False) -> tuple[int, bool] | None:
        """Insert the line containing *addr*.

        Returns the evicted ``(line_addr, dirty)`` victim, or ``None``.
        Filling a line already present only updates its dirty bit.
        """
        line = addr >> self._line_shift
        bucket = self._sets[line & self._set_mask]
        for i, entry in enumerate(bucket):
            if entry >> 1 == line:
                del bucket[i]
                bucket.append(entry | dirty)
                return None
        victim = None
        if len(bucket) >= self.config.associativity:
            evicted = bucket.pop(0)
            victim = (evicted >> 1, bool(evicted & 1))
        bucket.append((line << 1) | dirty)
        return victim

    def invalidate(self, addr: int) -> None:
        """Drop the line containing *addr* if present."""
        line = addr >> self._line_shift
        bucket = self._sets[line & self._set_mask]
        self._sets[line & self._set_mask] = [
            entry for entry in bucket if entry >> 1 != line
        ]

    def image(self) -> list[list[tuple[int, bool]]]:
        """Picklable copy of the sets in the legacy
        ``(line_addr, dirty_bool)`` tuple form (MRU last)."""
        return [
            [(entry >> 1, bool(entry & 1)) for entry in bucket]
            for bucket in self._sets
        ]

    def load_image(self, image: list[list[tuple[int, bool]]]) -> None:
        """Install a legacy-form :meth:`image` into the packed sets."""
        self._sets = [
            [(line << 1) | (1 if dirty else 0) for line, dirty in bucket]
            for bucket in image
        ]

    @property
    def accesses(self) -> int:
        return self.hits + self.misses


class PrefetchVictimBuffer:
    """Unified fully-associative prefetch/victim buffer (64 entries).

    Checked in parallel with the L1 on every access; holds both
    prefetched lines and L1 victims, at L1-line granularity. A hit
    promotes the line into the L1.
    """

    def __init__(self, entries: int, line_bytes: int):
        self._entries = entries
        self._line_shift = line_bytes.bit_length() - 1
        self._lines: dict[int, bool] = {}  # line -> was_prefetch
        self.hits = 0
        self.prefetch_hits = 0

    def line_of(self, addr: int) -> int:
        return addr >> self._line_shift

    def lookup(self, addr: int) -> bool | None:
        """Remove and return the line's provenance if present.

        Returns ``None`` on miss; otherwise True if the line was brought
        in by a prefetch, False if it was an L1 victim.
        """
        line = self.line_of(addr)
        was_prefetch = self._lines.pop(line, None)
        if was_prefetch is None:
            return None
        self.hits += 1
        if was_prefetch:
            self.prefetch_hits += 1
        return was_prefetch

    def contains(self, addr: int) -> bool:
        return self.line_of(addr) in self._lines

    def insert(self, addr: int, from_prefetch: bool) -> None:
        """Insert a line, evicting the oldest entry if full (FIFO)."""
        line = self.line_of(addr)
        if line in self._lines:
            # Keep the existing entry's provenance; refresh recency.
            from_prefetch = self._lines.pop(line) and from_prefetch
        elif len(self._lines) >= self._entries:
            oldest = next(iter(self._lines))
            del self._lines[oldest]
        self._lines[line] = from_prefetch

    def __len__(self) -> int:
        return len(self._lines)


@dataclass(slots=True)
class AccessResult:
    """Outcome of one data access through the hierarchy."""

    latency: int
    l1_hit: bool
    l2_hit: bool = False
    buffer_hit: bool = False
    to_memory: bool = False
    #: An L1 miss as observed by the program (false when the prefetch
    #: buffer or write buffer absorbed it).
    counts_as_miss: bool = False


@dataclass
class HierarchyStats:
    """Aggregate statistics for the data hierarchy."""

    loads: int = 0
    stores: int = 0
    load_l1_misses: int = 0
    store_l1_misses: int = 0
    l2_misses: int = 0
    buffer_hits: int = 0
    prefetches_issued: int = 0
    prefetch_buffer_hits: int = 0
    slice_prefetches: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(self.__dict__)


class DataHierarchy:
    """L1D + unified L2 + memory, with prefetch/victim buffer hooks.

    The stream prefetcher (:mod:`repro.uarch.prefetch`) is attached by
    the core and notified of L1 misses; its prefetches land in the
    prefetch/victim buffer via :meth:`prefetch_fill`.
    """

    def __init__(self, config: MachineConfig):
        self.config = config
        self.l1 = SetAssociativeCache(config.l1d, "L1D")
        self.l2 = SetAssociativeCache(config.l2, "L2")
        self.buffer = PrefetchVictimBuffer(
            config.prefetch.buffer_entries, config.l1d.line_bytes
        )
        self.stats = HierarchyStats()
        self._miss_listener = None
        #: MSHR-style arrival tracking: L1 line -> cycle its fill
        #: completes. A second access to an in-flight line merges and
        #: waits only for the remaining latency.
        self._arrival: dict[int, int] = {}

    def set_miss_listener(self, listener) -> None:
        """Register ``listener(addr, now)``, invoked on L1 misses."""
        self._miss_listener = listener

    # ------------------------------------------------------------------

    def _pending_extra(self, addr: int, now: int) -> int:
        """Remaining fill latency if *addr*'s line is still in flight."""
        line = self.l1.line_of(addr)
        arrival = self._arrival.get(line)
        if arrival is None:
            return 0
        if arrival <= now:
            del self._arrival[line]
            return 0
        return arrival - now

    def access(
        self, addr: int, is_store: bool, from_slice: bool = False, now: int = 0
    ) -> AccessResult:
        """Perform a demand access at cycle *now*; return timing/outcome.

        Store misses retire into the write buffer: the line is still
        allocated (write-allocate), but the store's latency is the L1
        latency and the miss does not stall the pipeline. Accesses to
        lines with an in-flight fill (demand or prefetch) pay only the
        remaining latency; an access fully covered by an earlier
        prefetch does not count as a miss.
        """
        l1_latency = self.config.l1d.latency
        if is_store:
            self.stats.stores += 1
        else:
            self.stats.loads += 1

        if self.l1.lookup(addr, is_store):
            extra = self._pending_extra(addr, now)
            return AccessResult(
                latency=max(l1_latency, extra),
                l1_hit=True,
                counts_as_miss=extra > l1_latency,
            )

        # L1 miss: the prefetch/victim buffer is checked in parallel.
        was_prefetch = self.buffer.lookup(addr)
        if was_prefetch is not None:
            self.stats.buffer_hits += 1
            if was_prefetch:
                self.stats.prefetch_buffer_hits += 1
            self._fill_l1(addr, dirty=is_store)
            # A buffer hit still trains the stream prefetcher: the
            # access would have missed the L1, so the stream is live and
            # must keep running ahead.
            if self._miss_listener is not None:
                self._miss_listener(addr, now)
            extra = self._pending_extra(addr, now)
            latency = l1_latency if is_store else max(l1_latency, extra)
            return AccessResult(
                latency=latency,
                l1_hit=False,
                buffer_hit=True,
                counts_as_miss=extra > l1_latency,
            )

        if is_store:
            self.stats.store_l1_misses += 1
        else:
            self.stats.load_l1_misses += 1
        if self._miss_listener is not None:
            self._miss_listener(addr, now)
        if from_slice:
            self.stats.slice_prefetches += 1

        if self.l2.lookup(addr, is_store=False):
            latency = l1_latency + self.config.l2.latency
            self._fill_l1(addr, dirty=is_store)
            result = AccessResult(
                latency=latency, l1_hit=False, l2_hit=True, counts_as_miss=True
            )
        else:
            latency = (
                l1_latency + self.config.l2.latency + self.config.memory_latency
            )
            self.l2.fill(addr)
            self._fill_l1(addr, dirty=is_store)
            result = AccessResult(
                latency=latency,
                l1_hit=False,
                to_memory=True,
                counts_as_miss=True,
            )
        self._arrival[self.l1.line_of(addr)] = now + result.latency
        if is_store:
            # Write buffer absorbs the store's latency.
            result.latency = l1_latency
        return result

    def prefetch_fill(self, addr: int, now: int = 0) -> None:
        """Launch a prefetch of *addr*'s line into the prefetch buffer.

        The line is installed immediately but its *arrival time* is
        tracked: a demand access before the fill completes pays the
        remaining latency (partial coverage).
        """
        if self.l1.probe(addr) or self.buffer.contains(addr):
            return
        self.stats.prefetches_issued += 1
        if self.l2.probe(addr):
            fill_latency = self.config.l1d.latency + self.config.l2.latency
        else:
            fill_latency = (
                self.config.l1d.latency
                + self.config.l2.latency
                + self.config.memory_latency
            )
            self.l2.fill(addr)
        self.buffer.insert(addr, from_prefetch=True)
        self._arrival[self.l1.line_of(addr)] = now + fill_latency

    def next_fill_arrival(self, now: int) -> int | None:
        """Earliest cycle after *now* at which an in-flight fill lands.

        Exposes pending-fill timing to the event-driven core's
        next-event computation instead of leaving it buried in the
        latencies of already-scheduled completions. Arrivals at or
        before *now* are pruned as a side effect — the same lazy
        expiry :meth:`_pending_extra` performs per line — so the
        tracking map cannot grow without bound between demand accesses.
        """
        arrival = self._arrival
        if not arrival:
            return None
        best = None
        expired = None
        for line, cycle in arrival.items():
            if cycle <= now:
                if expired is None:
                    expired = [line]
                else:
                    expired.append(line)
            elif best is None or cycle < best:
                best = cycle
        if expired is not None:
            for line in expired:
                del arrival[line]
        return best

    def would_miss(self, addr: int) -> bool:
        """Non-destructive check: would a load of *addr* miss the L1?"""
        return not (self.l1.probe(addr) or self.buffer.contains(addr))

    # ------------------------------------------------------------------
    # Functional-warming access path (sampled simulation)
    # ------------------------------------------------------------------

    def warm_access(self, addr: int, is_store: bool) -> None:
        """State-only demand access for functional warming.

        Performs exactly the cache/buffer/stream state transitions of
        :meth:`access` — same LRU updates, same fill and victim motion,
        same miss-listener (prefetcher) training, in the same order —
        with the timing machinery stripped: no latency computation, no
        MSHR arrival tracking, no :class:`AccessResult`, no statistics.
        None of that is part of :meth:`warm_image` (a restored run
        starts its clock and counters fresh), and this is the hottest
        call of the fast-forward tier, so the whole transition — L1
        probe, buffer promote, L2 lookup/fill, L1 fill with victim
        motion — is flattened into this one function over the packed
        sets: the only remaining call on the miss path is the miss
        listener (the stream prefetcher), which mutates its own state.

        Order matters on a miss: the listener fires *before* the L2
        update and the L1 fill (as in :meth:`access`), and its prefetch
        launches touch the same L2 sets — adjacent L1 lines share an
        L2 line — so the relative order is observable in the LRU state.
        """
        l1 = self.l1
        line = addr >> l1._line_shift
        bucket = l1._sets[line & l1._set_mask]
        for i, entry in enumerate(bucket):
            if entry >> 1 == line:
                del bucket[i]
                bucket.append(entry | is_store)
                return
        # L1 miss: the prefetch/victim buffer is checked in parallel
        # (a hit promotes into the L1 and still trains the prefetcher,
        # exactly as in :meth:`access`). Buffer lines are L1-line
        # granularity, so `line` is the buffer key too.
        buffer = self.buffer
        buf_lines = buffer._lines
        if buf_lines.pop(line, None) is not None:
            # Promote: ``_fill_l1`` inlined (the line is absent — the
            # scan above proved it — so this is evict-if-full + append,
            # with the victim spilling into the buffer).
            if len(bucket) >= l1.config.associativity:
                victim = bucket.pop(0) >> 1
                # ``buffer.insert(victim, from_prefetch=False)``: a
                # refreshed entry's provenance is and-ed with False.
                if victim in buf_lines:
                    del buf_lines[victim]
                elif len(buf_lines) >= buffer._entries:
                    del buf_lines[next(iter(buf_lines))]
                buf_lines[victim] = False
            bucket.append((line << 1) | is_store)
            if self._miss_listener is not None:
                self._miss_listener(addr, 0)
            return
        if self._miss_listener is not None:
            self._miss_listener(addr, 0)
        # L2 lookup (LRU update, never a store from the L1's view) or
        # fill (victim dropped), as in :meth:`access`.
        l2 = self.l2
        l2_line = addr >> l2._line_shift
        l2_bucket = l2._sets[l2_line & l2._set_mask]
        for i, entry in enumerate(l2_bucket):
            if entry >> 1 == l2_line:
                if i + 1 != len(l2_bucket):
                    del l2_bucket[i]
                    l2_bucket.append(entry)
                break
        else:
            if len(l2_bucket) >= l2.config.associativity:
                del l2_bucket[0]
            l2_bucket.append(l2_line << 1)
        # ``_fill_l1`` inlined again (same absent-line reduction).
        if len(bucket) >= l1.config.associativity:
            victim = bucket.pop(0) >> 1
            if victim in buf_lines:
                del buf_lines[victim]
            elif len(buf_lines) >= buffer._entries:
                del buf_lines[next(iter(buf_lines))]
            buf_lines[victim] = False
        bucket.append((line << 1) | is_store)

    def warm_prefetch_fill(self, addr: int, now: int = 0) -> None:
        """State-only :meth:`prefetch_fill` for functional warming —
        same L2/buffer state transitions, no arrival tracking or
        statistics. The warming loop installs this over
        ``prefetch_fill`` on its (private) hierarchy so the stream
        prefetcher's launches take the untimed path too.

        Runs several times per demand miss (the stream depth), so the
        presence probes and the insert are inlined: the buffer dict
        membership test goes first (cheapest, most often decisive —
        overlapping launch windows re-request the same lines), then
        the L1 probe; both are pure reads, so the reordering relative
        to :meth:`prefetch_fill` is unobservable.
        """
        buffer = self.buffer
        lines = buffer._lines
        line = addr >> buffer._line_shift
        if line in lines:
            return
        l1 = self.l1
        for entry in l1._sets[line & l1._set_mask]:
            if entry >> 1 == line:
                return
        l2 = self.l2
        l2_line = addr >> l2._line_shift
        l2_bucket = l2._sets[l2_line & l2._set_mask]
        for entry in l2_bucket:
            if entry >> 1 == l2_line:
                break
        else:
            # Absent: evict-if-full + append, exactly ``l2.fill`` for a
            # missing line (the L2 victim is dropped, as in
            # ``prefetch_fill``).
            if len(l2_bucket) >= l2.config.associativity:
                del l2_bucket[0]
            l2_bucket.append(l2_line << 1)
        # ``buffer.insert`` for an absent line with from_prefetch=True.
        if len(lines) >= buffer._entries:
            del lines[next(iter(lines))]
        lines[line] = True

    # ------------------------------------------------------------------
    # Functional-warming images (sampled simulation)
    # ------------------------------------------------------------------

    def warm_image(self) -> dict:
        """Picklable copy of the cache *contents* (L1/L2 sets and the
        prefetch/victim buffer) for a warmed-state snapshot.

        Contents only: hit/miss counters and in-flight fill arrivals
        are measurement/timing state, which a restored run must start
        fresh (the snapshot's warming pass ran with no clock). The
        payload stays in the legacy ``(line_addr, dirty_bool)`` tuple
        form — :meth:`SetAssociativeCache.image` converts from the
        packed sets — so snapshot bytes (and digests) are identical
        across the representation change.
        """
        return {
            "l1": self.l1.image(),
            "l2": self.l2.image(),
            "buffer": dict(self.buffer._lines),
        }

    def load_warm_image(self, image: dict) -> None:
        """Install a :meth:`warm_image` into this hierarchy.

        The image's geometry must match this hierarchy's configuration —
        snapshot keys include the cache geometry precisely so a stale
        image can never be applied to a differently-shaped machine.
        """
        if len(image["l1"]) != len(self.l1._sets) or len(image["l2"]) != len(
            self.l2._sets
        ):
            raise ValueError(
                "warm image geometry does not match this hierarchy "
                f"(image {len(image['l1'])}/{len(image['l2'])} sets, "
                f"config {len(self.l1._sets)}/{len(self.l2._sets)})"
            )
        self.l1.load_image(image["l1"])
        self.l2.load_image(image["l2"])
        self.buffer._lines.clear()
        self.buffer._lines.update(image["buffer"])
        self._arrival.clear()

    # ------------------------------------------------------------------

    def _fill_l1(self, addr: int, dirty: bool) -> None:
        victim = self.l1.fill(addr, dirty=dirty)
        if victim is not None:
            victim_line, _victim_dirty = victim
            victim_addr = victim_line << self.l1._line_shift
            self.buffer.insert(victim_addr, from_prefetch=False)

"""Pipeline event tracing (debug utility).

Wraps a :class:`~repro.uarch.core.Core` to record per-instruction
pipeline events — fetch, issue (approximated by readiness), completion,
commit, squash — over a bounded cycle window, and renders them as a
classic pipeline diagram. Intended for debugging slices and workloads:

.. code-block:: python

    core = Core(program, FOUR_WIDE, ...)
    log = attach_trace(core, start_cycle=0, max_entries=200)
    core.run()
    print(render_trace(log))
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.disasm import format_instruction
from repro.uarch.core import Core


@dataclass
class TraceRecord:
    """Lifecycle of one traced dynamic instruction."""

    vn: int
    thread_id: int
    pc: int
    text: str
    fetch_cycle: int
    complete_cycle: int | None = None
    commit_cycle: int | None = None
    squashed: bool = False


@dataclass
class TraceLog:
    records: dict[int, TraceRecord] = field(default_factory=dict)
    max_entries: int = 200
    start_cycle: int = 0
    #: Set True once max_entries tracing stopped early.
    truncated: bool = False

    def ordered(self) -> list[TraceRecord]:
        return [self.records[vn] for vn in sorted(self.records)]


def attach_trace(
    core: Core, start_cycle: int = 0, max_entries: int = 200
) -> TraceLog:
    """Instrument *core* (before ``run``) and return the live log."""
    log = TraceLog(max_entries=max_entries, start_cycle=start_cycle)

    original_fetch_one = core._fetch_one

    def traced_fetch_one(ctx):
        ok = original_fetch_one(ctx)
        if ok and core.cycle >= start_cycle and ctx.rob:
            if len(log.records) >= max_entries:
                log.truncated = True
                return ok
            entry = ctx.rob[-1]
            log.records[entry.vn] = TraceRecord(
                vn=entry.vn,
                thread_id=entry.thread_id,
                pc=entry.inst.pc,
                text=format_instruction(entry.inst),
                fetch_cycle=core.cycle,
            )
        return ok

    core._fetch_one = traced_fetch_one

    original_completions = core._process_completions

    def traced_completions():
        before = {
            vn
            for vn, record in log.records.items()
            if record.complete_cycle is None
        }
        original_completions()
        for ctx in core.threads:
            if not ctx.active:
                continue
            for entry in ctx.rob:
                if entry.vn in before and entry.completed:
                    log.records[entry.vn].complete_cycle = core.cycle

    core._process_completions = traced_completions

    original_commit_main = core._commit_main

    def traced_commit(entry):
        record = log.records.get(entry.vn)
        if record is not None:
            record.commit_cycle = core.cycle
        return original_commit_main(entry)

    core._commit_main = traced_commit

    original_squash = core._squash_after

    def traced_squash(branch, resume_pc, replay_taken, replay_target):
        min_vn = branch.vn + 1
        for vn, record in log.records.items():
            if vn >= min_vn and record.commit_cycle is None:
                record.squashed = True
        return original_squash(branch, resume_pc, replay_taken, replay_target)

    core._squash_after = traced_squash
    return log


def render_trace(log: TraceLog, width: int = 100) -> str:
    """Render the log as a fetch/complete/commit table."""
    lines = [
        f"{'vn':>6s} {'t':>2s} {'pc':>8s}  {'fetch':>7s} {'done':>7s} "
        f"{'commit':>7s}  instruction",
        "-" * width,
    ]
    for record in log.ordered():

        def cell(value):
            return f"{value:>7d}" if value is not None else "      -"

        flag = " SQUASHED" if record.squashed else ""
        lines.append(
            f"{record.vn:>6d} {record.thread_id:>2d} {record.pc:>#8x}  "
            f"{record.fetch_cycle:>7d} {cell(record.complete_cycle)} "
            f"{cell(record.commit_cycle)}  {record.text}{flag}"
        )
    if log.truncated:
        lines.append(f"... (truncated at {log.max_entries} entries)")
    return "\n".join(lines)

"""Commit-stream tap: observe every main-thread commit, in order.

The differential fuzzer (:mod:`repro.fuzz`) cross-checks execution
tiers *architecturally*: two configurations agree iff they commit the
same dynamic instruction sequence with the same observable effects.
``RunStats`` aggregates are too coarse for that (two compensating
errors cancel in a counter), so this module taps
:meth:`Core._commit_main` — the single point every architecturally
committed main-thread instruction passes through, on every tier
(stepping or event-driven, fused or per-instruction, snapshot-restored
or cold) — and records one tuple per commit.

The tap uses the same bound-method-wrapping idiom as
:mod:`repro.uarch.tracelog`: it costs nothing when not attached, needs
no Core constructor change, and sees commits during the warmup discard
window too (the stats reset at the warmup boundary does not touch it),
which is exactly what sampled-window comparison needs.

The per-commit record mirrors the interpreter's
:class:`~repro.arch.interpreter.ExecResult` observables, so a detailed
core's commit stream is directly comparable to a pure functional run
(:func:`repro.fuzz.diff.run_reference`)::

    (pc, next_pc, value, addr, store_value)
"""

from __future__ import annotations

import hashlib

#: One record per committed main-thread instruction.
CommitRecord = tuple[int, int, int | None, int | None, int | None]


def attach_commit_tap(core, sink: list | None = None) -> list:
    """Wrap *core*'s main-thread commit hook; return the record sink.

    Must be called after construction and before :meth:`Core.run`.
    Every committed main-thread instruction appends one
    :data:`CommitRecord` to *sink* (a fresh list when ``None``), in
    commit order. Helper-thread (slice) retirement never passes through
    ``_commit_main``, so slices — which must not perturb architected
    state — are invisible here by construction.
    """
    if sink is None:
        sink = []
    inner = core._commit_main
    append = sink.append

    def tapped(entry):
        inst = entry.inst
        append(
            (inst.pc, entry.rnext_pc, entry.rvalue, entry.raddr, entry.rstore)
        )
        inner(entry)

    core._commit_main = tapped
    return sink


def stream_digest(records) -> str:
    """Hex SHA-256 over a commit stream (or any record slice).

    Canonical ``repr`` encoding: records are plain int/None tuples, so
    ``repr`` is stable across processes and Python builds.
    """
    hasher = hashlib.sha256()
    for record in records:
        hasher.update(repr(record).encode())
        hasher.update(b"\n")
    return hasher.hexdigest()


def first_mismatch(a, b) -> int | None:
    """Index of the first disagreeing record, or ``None`` when equal.

    A length difference with an equal common prefix reports the first
    index past the shorter stream.
    """
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    if len(a) != len(b):
        return n
    return None

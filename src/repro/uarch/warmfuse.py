"""Fused basic-block *functional warming* tier.

Multi-region sampled simulation (:mod:`repro.harness.fastforward`)
spends nearly all of its wall clock fast-forwarding between detailed
windows with functional warming on. The per-instruction closure tier
(:mod:`repro.arch.interpreter`) tops out well below the rate that
makes a 10^7-instruction sampled run ≥ 20x cheaper than full detail:
every instruction pays a dict lookup, a closure call, an
``ExecResult`` allocation, and (for memory ops) a ``warm_access``
call even on an L1 MRU hit.

This module is the warming analogue of the detailed core's fused
segment tier (:mod:`repro.uarch.fusion`), pushed one step further
into *trace* compilation: one ``exec``-generated function per trace —
a likely dynamic path that crosses statically-targeted branches
(conditional branches continue on their likely direction, so hot
loops unroll into the function; only register-indirect control flow
ends discovery) — that performs, per instruction, exactly the
architectural effects of the interpreter closures plus the warm
updates of :meth:`DataHierarchy.warm_access` and the direct
branch-predictor training of the warming protocol, with operand
indices, immediates, branch targets, and L1 geometry folded in as
literals. When execution leaves the compiled path the function exits
with the correct next PC and reports its exact instruction count
through ``WarmContext.xc``. No ``ExecResult`` is ever allocated; an
L1 MRU hit is two list subscripts.

Equivalence contract (the split-vs-straight warm-image differential
depends on it): for every instruction, the generated code leaves
register file, memory, cache/prefetcher, and predictor state
byte-identical to what the per-instruction warming path
(:func:`repro.harness.fastforward._warm_steps`) leaves. In
particular the inline L1 fast path only handles the exact case
``warm_access`` would reduce to a value-preserving no-op (tag already
MRU), and falls back to ``warm_access`` for everything else.

Warming always runs with journaling off (fast-forward state is never
rolled back), so the generated code elides the journal entirely; the
driver asserts that invariant rather than compiling both variants.
"""

from __future__ import annotations

from repro.arch.exceptions import NULL_PAGE_LIMIT
from repro.arch.interpreter import _div
from repro.arch.memory import to_signed
from repro.isa.instruction import ZERO_REG, Instruction
from repro.isa.opcodes import INSTRUCTION_BYTES, Opcode

_MIN64 = -(1 << 63)
_MAX64 = (1 << 63) - 1
_MASK64 = (1 << 64) - 1

#: Longest trace compiled as one function. Traces longer than this are
#: split; the driver chains them by PC like any other block boundary,
#: so the cap only bounds codegen size (and, because loop unrolling
#: duplicates instructions, the worst-case tail handled by the
#: per-instruction tier when a warming budget ends mid-trace).
MAX_RUN = 96

#: Value expressions per ALU opcode, mirroring
#: ``repro.arch.interpreter._ALU_OPS`` exactly.
_ALU_EXPR = {
    Opcode.ADD: "{a} + ({b})",
    Opcode.SUB: "{a} - ({b})",
    Opcode.AND: "{a} & ({b})",
    Opcode.OR: "{a} | ({b})",
    Opcode.XOR: "{a} ^ ({b})",
    Opcode.SLL: "{a} << (({b}) & 63)",
    Opcode.SRL: "({a} & {m}) >> (({b}) & 63)",
    Opcode.SRA: "{a} >> (({b}) & 63)",
    Opcode.CMPEQ: "int({a} == ({b}))",
    Opcode.CMPLT: "int({a} < ({b}))",
    Opcode.CMPLE: "int({a} <= ({b}))",
    Opcode.CMPULT: "int(({a} & {m}) < (({b}) & {m}))",
    Opcode.S4ADD: "({a} << 2) + ({b})",
    Opcode.S8ADD: "({a} << 3) + ({b})",
    Opcode.MUL: "{a} * ({b})",
    Opcode.DIV: "_div({a}, {b})",
}

#: ALU opcodes whose result provably stays in the signed-64 range
#: whenever both operands do (bitwise ops on 64-bit-representable
#: values stay 64-bit-representable; compares yield 0/1; SRA only
#: shrinks magnitude). The register file and memory words only ever
#: hold in-range values — every write path normalises — so the
#: generated code elides the ``_ts`` overflow guard for these.
_NO_OVERFLOW = frozenset({
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SRA,
    Opcode.CMPEQ, Opcode.CMPLT, Opcode.CMPLE, Opcode.CMPULT,
})

_CMOV_TEST = {
    Opcode.CMOVEQ: "== 0",
    Opcode.CMOVNE: "!= 0",
    Opcode.CMOVLT: "< 0",
    Opcode.CMOVGE: ">= 0",
}

_BRANCH_TEST = {
    Opcode.BEQ: "== 0",
    Opcode.BNE: "!= 0",
    Opcode.BLT: "< 0",
    Opcode.BGE: ">= 0",
    Opcode.BLE: "<= 0",
    Opcode.BGT: "> 0",
}

#: Opcodes that end a warm trace: their next PC is dynamic (register
#: or RAS), so discovery cannot follow them. Statically-targeted
#: control flow — BR, CALL, and conditional branches — is *crossed*:
#: discovery keeps compiling at the followed target and the generated
#: code exits mid-trace when execution goes the other way. FORK is
#: architecturally a no-op and (unlike in the detailed tier) has no
#: microarchitectural event during warming, so it stays in the body.
_TERMINATORS = frozenset(
    {Opcode.JR, Opcode.CALLR, Opcode.RET, Opcode.HALT}
)


class WarmContext:
    """Per-``fast_forward`` bindings the generated runs read their
    state through. Rebuilt after every warm-image load (loading
    replaces the predictor component objects)."""

    __slots__ = (
        "r", "mw", "mw_get", "wa",
        "sets", "direction",
        "choice", "tc", "ntc", "cmask", "kmask", "tmask", "hmask",
        "indirect", "iud", "ish", "rpush", "rpop", "xc",
    )

    def __init__(self, state, hierarchy, predictor):
        #: Executed-count cell: every generated trace writes the number
        #: of instructions it actually ran here before returning, so a
        #: mid-trace exit (a branch that went the un-followed way) still
        #: reports an exact count to the driver's budget accounting.
        self.xc = [0]
        self.r = state.regs._regs
        self.mw = state.memory._words
        self.mw_get = self.mw.get
        self.wa = hierarchy.warm_access
        self.sets = hierarchy.l1._sets
        direction = predictor.direction
        self.direction = direction
        # YAGS internals for the inlined conditional-branch update
        # (see the codegen comment at the _BRANCH_TEST case).
        self.choice = direction._choice
        self.tc = direction._t_cache
        self.ntc = direction._nt_cache
        self.cmask = direction._choice_mask
        self.kmask = direction._cache_mask
        self.tmask = direction._tag_mask
        self.hmask = direction.history_mask
        self.indirect = predictor.indirect
        self.iud = predictor.indirect.update
        self.ish = predictor.indirect.shift_history
        self.rpush = predictor.ras.push
        self.rpop = predictor.ras.predict_and_pop


def warm_block_table(program, line_shift: int, set_mask: int) -> dict:
    """The program's compiled-warm-run cache for one L1 geometry.

    Keyed by ``block_version`` (instruction mutation invalidates, same
    contract as the fused segment cache) and the geometry literals the
    generated code bakes in. One geometry is cached at a time —
    sweeps share a single warm config by design
    (:func:`repro.harness.fastforward.warm_config_key`).
    """
    key = (program.block_version, line_shift, set_mask)
    cache = getattr(program, "_warm_block_cache", None)
    if cache is None or cache[0] != key:
        cache = (key, {})
        program._warm_block_cache = cache
    return cache[1]


def discover_run(program, pc: int) -> list[Instruction] | None:
    """The trace starting at *pc*: instructions in the order one likely
    dynamic execution would run them, up to and including the first
    dynamic-target terminator (or the :data:`MAX_RUN` cap / the edge
    of the program). ``None`` when *pc* is off-program.

    Statically-targeted control flow is crossed rather than ended at:
    BR and CALL continue at their target, and a conditional branch
    continues on its *likely* direction — taken when the target is
    backward (a loop, which therefore unrolls into the trace, the
    same instruction appearing once per unrolled iteration), not-taken
    otherwise. The guess only affects how long the compiled fast path
    is: the generated code exits with the correct next PC whenever
    execution goes the other way.
    """
    inst = program.at(pc)
    if inst is None:
        return None
    run = [inst]
    while len(run) < MAX_RUN:
        op = inst.op
        if op in _TERMINATORS:
            break
        if op is Opcode.BR or op is Opcode.CALL:
            next_pc = inst.target
        elif op in _BRANCH_TEST:
            next_pc = (
                inst.target
                if inst.target <= inst.pc
                else inst.pc + INSTRUCTION_BYTES
            )
        else:
            next_pc = inst.pc + INSTRUCTION_BYTES
        inst = program.at(next_pc)
        if inst is None:
            break
        run.append(inst)
    return run


def compile_warm_run(
    program, pc: int, line_shift: int, set_mask: int
):
    """Compile the trace at *pc* into ``(bind, length, halt_pc)``.

    ``bind(ctx)`` returns a zero-argument closure over the context's
    bindings; calling it executes the trace up to its first
    not-followed branch direction (architectural effects + warm
    updates), writes the number of instructions it actually ran into
    ``ctx.xc[0]``, and returns the next PC — or ``None`` when the
    trace ended at HALT, in which case the driver uses ``halt_pc``
    (the HALT's own PC, where the interpreter closure parks
    ``state.pc``). ``length`` is the trace's *maximum* instruction
    count: the driver uses it as the conservative bound for its
    budget-tail check and ``ctx.xc[0]`` for the exact accounting.
    The compile is cached per program/geometry; the driver re-binds
    each compiled trace once per warming pass (contexts change across
    warm-image loads, see :class:`WarmContext`). Returns ``None`` for
    an off-program *pc*.
    """
    run = discover_run(program, pc)
    if run is None:
        return None
    ns: dict[str, object] = {"_ts": to_signed, "_div": _div}
    body: list[str] = []
    emit = body.append
    used: set[str] = {"xc"}
    halt_pc = None
    final_next = None  # set when the run ends without a control transfer
    last = len(run) - 1
    ended = False  # a return has been emitted for the final instruction

    for k, inst in enumerate(run):
        op = inst.op
        rd = inst.rd
        dead = rd == ZERO_REG
        a = f"r[{inst.ra}]"
        b = f"r[{inst.rb}]" if inst.rb is not None else repr(inst.imm)
        next_pc = inst.pc + INSTRUCTION_BYTES
        final_next = next_pc
        if op in _ALU_EXPR:
            used.add("r")
            expr = _ALU_EXPR[op].format(a=a, b=b, m=_MASK64)
            if op in _NO_OVERFLOW:
                if not dead:
                    emit(f"    r[{rd}] = {expr}")
            else:
                emit(f"    v = {expr}")
                emit(f"    if v < {_MIN64} or v > {_MAX64}: v = _ts(v)")
                if not dead:
                    emit(f"    r[{rd}] = v")
        elif op in _CMOV_TEST:
            if not dead:
                used.add("r")
                emit(
                    f"    if {a} {_CMOV_TEST[op]}: r[{rd}] = r[{inst.rb}]"
                )
        elif op is Opcode.MOV:
            if not dead:
                used.add("r")
                emit(f"    r[{rd}] = {a}")
        elif op is Opcode.LI:
            if not dead:
                used.add("r")
                emit(f"    r[{rd}] = {to_signed(inst.imm)}")
        elif op in (Opcode.NOP, Opcode.FORK):
            pass
        elif op is Opcode.LD:
            used.update(("r", "mw_get", "wa", "sets"))
            emit(f"    a0 = {a} + ({inst.imm})")
            emit(f"    if a0 < {NULL_PAGE_LIMIT}:")
            if not dead:
                emit(f"        r[{rd}] = 0")
            else:
                emit("        pass")
            emit("    else:")
            if not dead:
                emit(f"        r[{rd}] = mw_get(a0 & -8, 0)")
            emit(f"        ln = a0 >> {line_shift}")
            emit(f"        bk = sets[ln & {set_mask}]")
            emit("        if not (bk and bk[-1] >> 1 == ln):")
            emit("            wa(a0, False)")
        elif op is Opcode.ST:
            used.update(("r", "mw", "wa", "sets"))
            emit(f"    a0 = {a} + ({inst.imm})")
            emit(f"    if a0 >= {NULL_PAGE_LIMIT}:")
            # Register values are always in-range (every write path
            # normalises), so the store needs no overflow guard.
            emit(f"        mw[a0 & -8] = r[{rd}]")
            emit(f"        ln = a0 >> {line_shift}")
            emit(f"        bk = sets[ln & {set_mask}]")
            emit("        if bk and bk[-1] >> 1 == ln:")
            emit("            bk[-1] |= 1")
            emit("        else:")
            emit("            wa(a0, True)")
        elif op in _BRANCH_TEST:
            # ``YagsPredictor.update`` + ``shift_history`` inlined with
            # the branch's word-PC folded in — one update per dynamic
            # conditional branch is the second-hottest warm operation
            # after the L1 access. Semantics mirror yags.py line for
            # line; the split-vs-straight warm-image differential
            # cross-checks this path against the real method (the
            # per-instruction tail tier calls it).
            used.update((
                "r", "direction", "choice",
                "tc", "ntc", "cmask", "kmask", "tmask", "hmask",
            ))
            wp = inst.pc >> 2
            emit(f"    t = {a} {_BRANCH_TEST[op]}")
            emit("    h = direction.history")
            emit(f"    ci = {wp} & cmask")
            emit("    cc = choice[ci]")
            emit("    ct = cc >= 2")
            emit("    ca = ntc if ct else tc")
            emit(f"    ki = ({wp} ^ h) & kmask")
            emit(f"    tg = {wp} & tmask")
            emit("    e = ca[ki]")
            emit("    if e is not None and e[0] == tg:")
            emit("        c1 = e[1]")
            emit(
                "        ca[ki] = (tg, (3 if c1 > 2 else c1 + 1) if t"
                " else (0 if c1 < 1 else c1 - 1))"
            )
            emit("        if (c1 >= 2) != t or t == ct:")
            emit(
                "            choice[ci] = (3 if cc > 2 else cc + 1) if t"
                " else (0 if cc < 1 else cc - 1)"
            )
            emit("    else:")
            emit("        if t != ct:")
            emit("            ca[ki] = (tg, 2 if t else 1)")
            emit(
                "        choice[ci] = (3 if cc > 2 else cc + 1) if t"
                " else (0 if cc < 1 else cc - 1)"
            )
            emit("    direction.history = ((h << 1) | t) & hmask")
            # Mid-trace: exit only when execution leaves the followed
            # direction (run[k+1] records which way discovery went). A
            # branch to its own fall-through has no other way to go.
            if k == last:
                emit(f"    xc[0] = {k + 1}")
                emit(f"    return {inst.target} if t else {next_pc}")
                ended = True
            elif inst.target != next_pc:
                if run[k + 1].pc == inst.target:
                    emit(
                        f"    if not t: xc[0] = {k + 1}; return {next_pc}"
                    )
                else:
                    emit(
                        f"    if t: xc[0] = {k + 1}; return {inst.target}"
                    )
        elif op is Opcode.BR:
            if k == last:
                emit(f"    xc[0] = {k + 1}")
                emit(f"    return {inst.target}")
                ended = True
            # else: crossed — execution continues inline at the target.
        elif op is Opcode.CALL:
            used.add("rpush")
            if not dead:
                used.add("r")
                emit(f"    r[{rd}] = {next_pc}")
            emit(f"    rpush({next_pc})")
            if k == last:
                emit(f"    xc[0] = {k + 1}")
                emit(f"    return {inst.target}")
                ended = True
        elif op is Opcode.RET:
            used.update(("r", "rpop"))
            emit("    rpop()")
            emit(f"    xc[0] = {k + 1}")
            emit(f"    return {a}")
            ended = True
        elif op is Opcode.JR:
            used.update(("r", "indirect", "iud", "ish"))
            emit(f"    tg = {a}")
            emit(f"    iud({inst.pc}, tg, indirect.path_history)")
            emit("    ish(tg)")
            emit(f"    xc[0] = {k + 1}")
            emit("    return tg")
            ended = True
        elif op is Opcode.CALLR:
            used.update(("r", "indirect", "iud", "ish", "rpush"))
            emit(f"    tg = {a}")
            if not dead:
                emit(f"    r[{rd}] = {next_pc}")
            emit(f"    iud({inst.pc}, tg, indirect.path_history)")
            emit("    ish(tg)")
            emit(f"    rpush({next_pc})")
            emit(f"    xc[0] = {k + 1}")
            emit("    return tg")
            ended = True
        elif op is Opcode.HALT:
            halt_pc = inst.pc
            emit(f"    xc[0] = {k + 1}")
            emit("    return None")
            ended = True
        else:  # pragma: no cover - every opcode is handled above
            raise NotImplementedError(f"warm codegen: {op}")

    if not ended:
        emit(f"    xc[0] = {len(run)}")
        emit(f"    return {final_next}")

    # The generated run is a zero-argument *closure*: ``_bind(ctx)``
    # hoists the context bindings into cells once per warming pass, so
    # executing the run pays no per-call prologue at all — the old
    # ``name = ctx.name`` preamble re-read up to 17 slots on *every*
    # block execution, which dominated short (3–5 instruction) runs.
    prologue = [
        f"    {name} = ctx.{name}"
        for name in (
            "r", "mw", "mw_get", "wa", "sets",
            "direction", "choice", "tc", "ntc",
            "cmask", "kmask", "tmask", "hmask",
            "indirect", "iud", "ish", "rpush", "rpop", "xc",
        )
        if name in used
    ]
    code = "\n".join(
        [
            "def _bind(ctx):",
            *prologue,
            "    def _warm_run():",
            *("    " + line for line in body),
            "    return _warm_run",
        ]
    )
    exec(compile(code, f"<warm:{pc:#x}>", "exec"), ns)
    bind = ns["_bind"]
    bind._source = code  # debugging aid
    return bind, len(run), halt_pc

"""Confidence-gated slice forking (Section 6.3).

"Overhead can be reduced by not executing slices for problem
instructions that will not miss/mispredict. ... Obvious future work is
gating the fork using confidence [Jacobsen et al.]."

A :class:`ForkConfidenceEstimator` keeps one saturating counter per
slice, trained on whether recent instances were *useful* — they
supplied a consumed branch prediction, or their loads actually missed
(i.e. prefetched something the cache did not already have). Forks are
allowed while confidence is at or above threshold; while gated, every
``probe_interval``-th request is allowed through so the estimator can
re-learn a slice that becomes useful again.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class _SliceConfidence:
    counter: int
    gated_requests: int = 0


@dataclass
class ForkConfidenceEstimator:
    """Per-slice saturating usefulness counters."""

    max_count: int = 15
    threshold: int = 4
    initial: int = 8
    up: int = 2
    down: int = 1
    probe_interval: int = 16
    _slices: dict[str, _SliceConfidence] = field(default_factory=dict)
    forks_gated: int = 0
    probes: int = 0

    def _state(self, slice_name: str) -> _SliceConfidence:
        state = self._slices.get(slice_name)
        if state is None:
            state = self._slices[slice_name] = _SliceConfidence(self.initial)
        return state

    def should_fork(self, slice_name: str) -> bool:
        """Gate a fork request (called by the core's fork logic)."""
        state = self._state(slice_name)
        if state.counter >= self.threshold:
            return True
        state.gated_requests += 1
        if state.gated_requests >= self.probe_interval:
            state.gated_requests = 0
            self.probes += 1
            return True
        self.forks_gated += 1
        return False

    def update(self, slice_name: str, useful: bool) -> None:
        """Train on an instance outcome."""
        state = self._state(slice_name)
        if useful:
            state.counter = min(state.counter + self.up, self.max_count)
        else:
            state.counter = max(state.counter - self.down, 0)

    def confidence(self, slice_name: str) -> int:
        return self._state(slice_name).counter

"""Machine configuration (Table 1 of the paper).

Two presets mirror the paper's simulated machines:

* :data:`FOUR_WIDE` — 4-wide, 128-entry window, 2 load/store ports.
* :data:`EIGHT_WIDE` — 8-wide, 256-entry window, 4 load/store ports.

Both share the front end (64KB I-cache, 64Kb YAGS, 32Kb cascading
indirect predictor, 64-entry RAS, perfect BTB for direct branches,
fetch past taken branches), the memory hierarchy (64KB 2-way L1D with
64B lines at 3 cycles; 2MB 4-way unified L2 with 128B lines at 6
cycles; 100-cycle minimum memory latency; 64-entry unified
prefetch/victim buffer; unit-stride stream prefetcher), and a 14-stage
pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.slices.spec import SliceHardwareConfig


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    associativity: int
    line_bytes: int
    latency: int

    def __post_init__(self) -> None:
        sets = self.size_bytes // (self.associativity * self.line_bytes)
        if sets & (sets - 1):
            raise ValueError(f"set count must be a power of two, got {sets}")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass(frozen=True)
class PrefetchConfig:
    """Stream prefetcher + unified prefetch/victim buffer parameters."""

    buffer_entries: int = 64
    stream_table_entries: int = 16
    #: Lines prefetched ahead once a stream is confirmed.
    stream_depth: int = 4
    #: Prefetch the next sequential line on a miss (spatial locality
    #: beyond one line, before a stride is detected).
    sequential_next_line: bool = True


@dataclass(frozen=True)
class BranchPredictorConfig:
    """Front-end predictor budgets (Table 1)."""

    yags_bits: int = 64 * 1024  # 64 Kbit direction predictor
    indirect_bits: int = 32 * 1024  # 32 Kbit cascading indirect predictor
    ras_entries: int = 64


@dataclass(frozen=True)
class MachineConfig:
    """Full simulated machine configuration."""

    name: str = "4-wide"
    width: int = 4
    window_entries: int = 128
    load_store_ports: int = 2
    simple_alus: int = 4
    complex_alus: int = 1
    pipeline_depth: int = 14
    #: Cycles between fetch and earliest execute (front-end length);
    #: together with resolve-to-fetch redirect this yields the 14-cycle
    #: misprediction penalty of Table 1.
    frontend_stages: int = 13
    thread_contexts: int = 4
    #: ICOUNT fetch-policy bias: main thread is preferred unless its
    #: in-flight count exceeds a helper thread's by this factor.
    icount_main_bias: float = 4.0
    icache: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 2, 64, 1)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 2, 64, 3)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(2 * 1024 * 1024, 4, 128, 6)
    )
    memory_latency: int = 100
    prefetch: PrefetchConfig = field(default_factory=PrefetchConfig)
    branch: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    slice_hw: SliceHardwareConfig = field(default_factory=SliceHardwareConfig)

    def widened(self, name: str, width: int, window: int, ports: int) -> "MachineConfig":
        """Derive a config with a different core width."""
        return replace(
            self,
            name=name,
            width=width,
            window_entries=window,
            load_store_ports=ports,
            simple_alus=width,
        )


#: The paper's 4-wide machine (Table 1).
FOUR_WIDE = MachineConfig()

#: The paper's 8-wide machine: 256-entry window, 4 load/store units.
EIGHT_WIDE = FOUR_WIDE.widened("8-wide", width=8, window=256, ports=4)

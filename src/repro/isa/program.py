"""Program container: code, data, and symbols.

A :class:`Program` is an assembled unit: a list of instructions at fixed
PCs, an initial data image (byte address -> 64-bit word at 8-aligned
addresses), and symbol tables for code labels and data objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.opcodes import INSTRUCTION_BYTES


@dataclass
class Program:
    """An assembled program.

    Attributes:
        instructions: static instructions in layout order.
        base_pc: PC of the first instruction.
        data: initial memory image, word-aligned byte address -> value.
        labels: code label -> PC.
        data_symbols: data symbol -> byte address.
        entry_pc: PC execution starts at (defaults to ``base_pc``).
    """

    instructions: list[Instruction]
    base_pc: int = 0x1000
    data: dict[int, int] = field(default_factory=dict)
    labels: dict[str, int] = field(default_factory=dict)
    data_symbols: dict[str, int] = field(default_factory=dict)
    entry_pc: int | None = None
    _by_pc: dict[int, Instruction] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.entry_pc is None:
            self.entry_pc = self.base_pc
        self._by_pc = {inst.pc: inst for inst in self.instructions}

    def at(self, pc: int) -> Instruction | None:
        """Return the instruction at *pc*, or ``None`` if out of range."""
        return self._by_pc.get(pc)

    def __len__(self) -> int:
        return len(self.instructions)

    def __contains__(self, pc: int) -> bool:
        return pc in self._by_pc

    @property
    def end_pc(self) -> int:
        """One past the last instruction's PC."""
        return self.base_pc + len(self.instructions) * INSTRUCTION_BYTES

    def pc_of(self, label: str) -> int:
        """Return the PC of a code label."""
        return self.labels[label]

    def addr_of(self, symbol: str) -> int:
        """Return the byte address of a data symbol."""
        return self.data_symbols[symbol]

    def merged_with(self, other: "Program") -> "Program":
        """Return a new program containing this program plus *other*.

        Used to place slice code alongside main-thread code in the same
        instruction space (the paper stores slices "as normal
        instructions in the instruction cache", Section 4.2). PCs must
        not overlap.
        """
        overlap = self._by_pc.keys() & other._by_pc.keys()
        if overlap:
            raise ValueError(f"programs overlap at PCs: {sorted(overlap)[:4]}")
        dup_labels = self.labels.keys() & other.labels.keys()
        if dup_labels:
            raise ValueError(f"duplicate labels: {sorted(dup_labels)[:4]}")
        merged = Program(
            instructions=self.instructions + other.instructions,
            base_pc=min(self.base_pc, other.base_pc),
            data={**self.data, **other.data},
            labels={**self.labels, **other.labels},
            data_symbols={**self.data_symbols, **other.data_symbols},
            entry_pc=self.entry_pc,
        )
        return merged

"""Program container: code, data, and symbols.

A :class:`Program` is an assembled unit: a list of instructions at fixed
PCs, an initial data image (byte address -> 64-bit word at 8-aligned
addresses), and symbol tables for code labels and data objects.

It also hosts the static **basic-block discovery pass** used by the
fused execution tier (:mod:`repro.uarch.fusion`): leaders are derived
from the entry point, code labels, branch targets, and the fall-through
successor of every control transfer; a :class:`BasicBlock` is the
maximal straight-line run from a leader up to (but excluding) the next
terminator. Discovery is lazy and cached; :meth:`Program.drop_block_caches`
mirrors the ``Instruction.__copy__`` cache-drop contract at block
granularity for callers that mutate instructions in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.opcodes import INSTRUCTION_BYTES, Opcode


@dataclass(frozen=True)
class BasicBlock:
    """A maximal straight-line run of non-control instructions.

    ``insts`` never contains a terminator (branch, ``HALT``, ``FORK``):
    terminators stay on the per-instruction tier, which owns prediction,
    checkpointing, fork CAMs, and fetch-stall semantics. A block is
    therefore always safe to execute start-to-finish once entered at
    ``start_pc``.
    """

    start_pc: int
    insts: tuple[Instruction, ...]

    @property
    def end_pc(self) -> int:
        """One past the last fused instruction's PC."""
        return self.start_pc + len(self.insts) * INSTRUCTION_BYTES

    def __len__(self) -> int:
        return len(self.insts)


def _is_terminator(inst: Instruction) -> bool:
    """Control transfers, HALT, and FORK end a block.

    FORK is architecturally a no-op but is a microarchitectural event
    (it consults the slice table and may spawn a helper thread), so it
    must reach :meth:`Core._fetch_one` individually. HALT stalls fetch.
    """
    return inst.is_branch or inst.op is Opcode.HALT or inst.op is Opcode.FORK


@dataclass
class Program:
    """An assembled program.

    Attributes:
        instructions: static instructions in layout order.
        base_pc: PC of the first instruction.
        data: initial memory image, word-aligned byte address -> value.
        labels: code label -> PC.
        data_symbols: data symbol -> byte address.
        entry_pc: PC execution starts at (defaults to ``base_pc``).
    """

    instructions: list[Instruction]
    base_pc: int = 0x1000
    data: dict[int, int] = field(default_factory=dict)
    labels: dict[str, int] = field(default_factory=dict)
    data_symbols: dict[str, int] = field(default_factory=dict)
    entry_pc: int | None = None
    _by_pc: dict[int, Instruction] = field(default_factory=dict, repr=False)
    #: Lazy basic-block cache: start PC -> BasicBlock. ``None`` until
    #: first discovery; dropped by :meth:`drop_block_caches`.
    _blocks: dict[int, BasicBlock] | None = field(
        default=None, repr=False, compare=False
    )
    #: Monotonic version for compiled-block caches; bumped by
    #: :meth:`drop_block_caches` so consumers can detect invalidation.
    block_version: int = field(default=0, repr=False, compare=False)
    #: Program-wide cache of generated fused segments, shared by every
    #: Core built over this program in-process. Keyed by
    #: ``(entry_pc, (width, frontend_stages, cam_excluded_pcs))`` —
    #: everything the generated code depends on besides the instruction
    #: objects themselves (which :meth:`drop_block_caches` covers).
    _segment_cache: dict = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Entry counts for segments not yet hot enough to compile, same
    #: keys as :attr:`_segment_cache`. Program-wide so heat accumulates
    #: across Cores and a moderately-warm PC still earns its segment.
    _segment_heat: dict = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.entry_pc is None:
            self.entry_pc = self.base_pc
        self._by_pc = {inst.pc: inst for inst in self.instructions}
        self._blocks = None

    def at(self, pc: int) -> Instruction | None:
        """Return the instruction at *pc*, or ``None`` if out of range."""
        return self._by_pc.get(pc)

    def __len__(self) -> int:
        return len(self.instructions)

    def __contains__(self, pc: int) -> bool:
        return pc in self._by_pc

    @property
    def end_pc(self) -> int:
        """One past the last instruction's PC."""
        return self.base_pc + len(self.instructions) * INSTRUCTION_BYTES

    # ------------------------------------------------------------------
    # Basic-block discovery (static pass, lazy, cached)
    # ------------------------------------------------------------------

    def basic_blocks(self) -> dict[int, BasicBlock]:
        """Return the basic blocks of this program, keyed by start PC.

        Leaders are: the entry PC, every label, every static branch
        target, and the fall-through successor of every terminator
        (branch / ``HALT`` / ``FORK``). A block runs from its leader to
        the instruction before the next terminator or leader, breaking
        on any PC discontinuity (merged programs may have gaps).
        Terminator instructions are never part of a block body; a leader
        that *is* a terminator produces no block.
        """
        blocks = self._blocks
        if blocks is None:
            blocks = self._discover_blocks()
            self._blocks = blocks
        return blocks

    def block_at(self, pc: int) -> BasicBlock | None:
        """Return the basic block *starting* at ``pc``, if any.

        Mid-block PCs return ``None`` by design: a wrong-path fetch may
        land anywhere, and only a true leader entry is fusable.
        """
        return self.basic_blocks().get(pc)

    def drop_block_caches(self) -> None:
        """Invalidate the block cache (and compiled-block consumers).

        Mirrors the ``Instruction.__copy__`` contract at block
        granularity: any pass that renames, clones, or splices
        instructions into this program must call this so stale fused
        closures are never executed. Bumps :attr:`block_version`, which
        compiled-block caches key on.
        """
        self._blocks = None
        self._segment_cache.clear()
        self._segment_heat.clear()
        self.block_version += 1

    def _discover_blocks(self) -> dict[int, BasicBlock]:
        step = INSTRUCTION_BYTES
        leaders: set[int] = {self.entry_pc if self.entry_pc is not None else self.base_pc}
        leaders.update(self.labels.values())
        by_pc = self._by_pc
        for inst in self.instructions:
            if inst.is_branch and inst.target is not None:
                leaders.add(inst.target)
            if _is_terminator(inst):
                leaders.add(inst.pc + step)
        blocks: dict[int, BasicBlock] = {}
        for leader in sorted(leaders):
            inst = by_pc.get(leader)
            if inst is None or _is_terminator(inst):
                continue
            run = [inst]
            pc = leader + step
            while True:
                nxt = by_pc.get(pc)
                if nxt is None or _is_terminator(nxt) or pc in leaders:
                    break
                run.append(nxt)
                pc += step
            blocks[leader] = BasicBlock(start_pc=leader, insts=tuple(run))
        return blocks

    def pc_of(self, label: str) -> int:
        """Return the PC of a code label."""
        return self.labels[label]

    def addr_of(self, symbol: str) -> int:
        """Return the byte address of a data symbol."""
        return self.data_symbols[symbol]

    def merged_with(self, other: "Program") -> "Program":
        """Return a new program containing this program plus *other*.

        Used to place slice code alongside main-thread code in the same
        instruction space (the paper stores slices "as normal
        instructions in the instruction cache", Section 4.2). PCs must
        not overlap.
        """
        overlap = self._by_pc.keys() & other._by_pc.keys()
        if overlap:
            raise ValueError(f"programs overlap at PCs: {sorted(overlap)[:4]}")
        dup_labels = self.labels.keys() & other.labels.keys()
        if dup_labels:
            raise ValueError(f"duplicate labels: {sorted(dup_labels)[:4]}")
        merged = Program(
            instructions=self.instructions + other.instructions,
            base_pc=min(self.base_pc, other.base_pc),
            data={**self.data, **other.data},
            labels={**self.labels, **other.labels},
            data_symbols={**self.data_symbols, **other.data_symbols},
            entry_pc=self.entry_pc,
        )
        return merged

"""Opcode definitions for the repro ISA.

The ISA is a small, Alpha-flavored, 64-bit RISC load/store architecture:

* 32 integer registers ``r0``..``r31``; ``r31`` is hardwired to zero.
* Instructions occupy 4 bytes; data memory is addressed in bytes and
  accessed in 8-byte words.
* Conditional branches test a single register against zero (Alpha
  style, e.g. ``beq ra, target``).
* Conditional moves provide if-conversion, which the paper's slice
  optimizations rely on (Section 3.1 of Zilles & Sohi, ISCA 2001).

Each opcode carries an :class:`OpClass` that determines which functional
unit executes it and a base execution latency in cycles (memory
operations take their latency from the cache hierarchy instead).
"""

from __future__ import annotations

import enum


class OpClass(enum.Enum):
    """Functional-unit class of an opcode."""

    SIMPLE = "simple"  # simple integer ALU
    COMPLEX = "complex"  # multiply/divide unit
    MEM = "mem"  # load/store port
    CONTROL = "control"  # branch/jump (executes on a simple ALU)
    OTHER = "other"  # nop / halt


class Opcode(enum.Enum):
    """All opcodes of the repro ISA."""

    # Simple integer ALU.
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    CMPEQ = "cmpeq"
    CMPLT = "cmplt"
    CMPLE = "cmple"
    CMPULT = "cmpult"
    MOV = "mov"
    LI = "li"
    S4ADD = "s4add"
    S8ADD = "s8add"
    # Conditional moves (if-conversion support).
    CMOVEQ = "cmoveq"
    CMOVNE = "cmovne"
    CMOVLT = "cmovlt"
    CMOVGE = "cmovge"
    # Complex integer.
    MUL = "mul"
    DIV = "div"
    # Memory.
    LD = "ld"
    ST = "st"
    # Control.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLE = "ble"
    BGT = "bgt"
    BR = "br"
    JR = "jr"
    CALL = "call"
    CALLR = "callr"
    RET = "ret"
    # Other.
    NOP = "nop"
    HALT = "halt"
    #: Explicit slice fork (Section 4.2's alternative to fork-PC CAMs):
    #: ``imm`` indexes the slice table. Architecturally a no-op, so
    #: binaries remain correct on hardware without slice support.
    FORK = "fork"


#: Opcodes that write a destination register.
WRITES_DEST = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SLL,
        Opcode.SRL,
        Opcode.SRA,
        Opcode.CMPEQ,
        Opcode.CMPLT,
        Opcode.CMPLE,
        Opcode.CMPULT,
        Opcode.MOV,
        Opcode.LI,
        Opcode.S4ADD,
        Opcode.S8ADD,
        Opcode.CMOVEQ,
        Opcode.CMOVNE,
        Opcode.CMOVLT,
        Opcode.CMOVGE,
        Opcode.MUL,
        Opcode.DIV,
        Opcode.LD,
        Opcode.CALL,
        Opcode.CALLR,
    }
)

#: Conditional direction branches (predicted by the direction predictor).
CONDITIONAL_BRANCHES = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLE, Opcode.BGT}
)

#: Indirect control transfers (predicted by the indirect predictor / RAS).
INDIRECT_BRANCHES = frozenset({Opcode.JR, Opcode.CALLR, Opcode.RET})

#: All control-transfer opcodes.
CONTROL_OPS = CONDITIONAL_BRANCHES | INDIRECT_BRANCHES | {Opcode.BR, Opcode.CALL}

#: Call opcodes (push the RAS).
CALL_OPS = frozenset({Opcode.CALL, Opcode.CALLR})

#: Memory opcodes.
MEM_OPS = frozenset({Opcode.LD, Opcode.ST})

_OP_CLASS = {
    Opcode.MUL: OpClass.COMPLEX,
    Opcode.DIV: OpClass.COMPLEX,
    Opcode.LD: OpClass.MEM,
    Opcode.ST: OpClass.MEM,
    Opcode.NOP: OpClass.OTHER,
    Opcode.HALT: OpClass.OTHER,
}
_OP_CLASS.update({op: OpClass.CONTROL for op in CONTROL_OPS})

_LATENCY = {
    Opcode.MUL: 7,
    Opcode.DIV: 20,
}


def op_class(op: Opcode) -> OpClass:
    """Return the functional-unit class of *op*."""
    return _OP_CLASS.get(op, OpClass.SIMPLE)


def base_latency(op: Opcode) -> int:
    """Return the fixed execution latency of *op* in cycles.

    Memory operations return 1 here; their true latency is supplied by
    the cache hierarchy at execution time.
    """
    return _LATENCY.get(op, 1)


#: Size of one instruction in bytes (fixed-width encoding).
INSTRUCTION_BYTES = 4

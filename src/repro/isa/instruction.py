"""Static instruction representation.

An :class:`Instruction` is one static instruction of a
:class:`~repro.isa.program.Program`. Operand conventions:

* ``rd`` — destination register index (or ``None``).
* ``ra`` / ``rb`` — source register indices (or ``None``).
* ``imm`` — immediate operand; for ALU ops it replaces ``rb``; for
  loads/stores it is the byte displacement off ``ra``.
* ``target`` — branch/call target PC (resolved by the assembler).

Register index 31 always reads as zero and writes to it are discarded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import (
    CONDITIONAL_BRANCHES,
    CONTROL_OPS,
    INDIRECT_BRANCHES,
    MEM_OPS,
    WRITES_DEST,
    OpClass,
    Opcode,
    base_latency,
    op_class,
)

#: Register index that is hardwired to zero.
ZERO_REG = 31

#: Conventional register aliases (a software ABI, not hardware).
REG_ALIASES = {
    "zero": 31,
    "ra": 26,  # return address
    "gp": 29,  # global pointer
    "sp": 30,  # stack pointer
}


def parse_reg(name: int | str) -> int:
    """Parse a register operand given as an index or a name like ``"r7"``.

    Accepts the ABI aliases in :data:`REG_ALIASES`.
    """
    if isinstance(name, int):
        if not 0 <= name <= 31:
            raise ValueError(f"register index out of range: {name}")
        return name
    text = name.strip().lower()
    if text in REG_ALIASES:
        return REG_ALIASES[text]
    if text.startswith("r") and text[1:].isdigit():
        index = int(text[1:])
        if 0 <= index <= 31:
            return index
    raise ValueError(f"not a register: {name!r}")


def reg_name(index: int) -> str:
    """Render a register index as its canonical ``rN`` name."""
    return f"r{index}"


@dataclass(slots=True)
class Instruction:
    """One static instruction.

    ``pc`` is assigned when the instruction is placed into a program.
    ``comment`` is carried through to the disassembler for readability
    (the paper's figures annotate every instruction this way).

    Decode products that depend only on ``op`` (class, latency, the
    ``is_*`` flags) are precomputed at construction: ``op`` is never
    mutated afterwards, and these are read on every fetch of the
    dynamic-instruction hot path. Operand-dependent caches (the source
    register tuple and the compiled executor) are filled lazily and
    reset by ``__copy__`` — the slice optimizer renames registers on
    ``copy.copy``-ed instructions before they ever execute.
    """

    op: Opcode
    rd: int | None = None
    ra: int | None = None
    rb: int | None = None
    imm: int | None = None
    target: int | None = None
    pc: int = -1
    comment: str = ""
    #: Unresolved label for the target, kept for diagnostics.
    target_label: str | None = field(default=None, repr=False)
    # Precomputed decode products (derived from ``op`` only).
    op_class: OpClass = field(init=False, repr=False, compare=False)
    latency: int = field(init=False, repr=False, compare=False)
    is_branch: bool = field(init=False, repr=False, compare=False)
    is_conditional: bool = field(init=False, repr=False, compare=False)
    is_indirect: bool = field(init=False, repr=False, compare=False)
    is_mem: bool = field(init=False, repr=False, compare=False)
    is_load: bool = field(init=False, repr=False, compare=False)
    is_store: bool = field(init=False, repr=False, compare=False)
    _op_writes: bool = field(init=False, repr=False, compare=False)
    #: Lazy caches (operand-dependent; reset on copy).
    _sources: tuple[int, ...] | None = field(
        init=False, repr=False, compare=False
    )
    _unique_sources: tuple[int, ...] | None = field(
        init=False, repr=False, compare=False
    )
    #: Compiled executor closure (see :mod:`repro.arch.interpreter`).
    _exec: object = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        op = self.op
        self.op_class = op_class(op)
        self.latency = base_latency(op)
        self.is_branch = op in CONTROL_OPS
        self.is_conditional = op in CONDITIONAL_BRANCHES
        self.is_indirect = op in INDIRECT_BRANCHES
        self.is_mem = op in MEM_OPS
        self.is_load = op is Opcode.LD
        self.is_store = op is Opcode.ST
        self._op_writes = op in WRITES_DEST
        self._sources = None
        self._unique_sources = None
        self._exec = None

    def __copy__(self) -> "Instruction":
        """Copy with operand-dependent caches reset (the optimizer
        mutates registers/targets on copies before they execute)."""
        return Instruction(
            op=self.op,
            rd=self.rd,
            ra=self.ra,
            rb=self.rb,
            imm=self.imm,
            target=self.target,
            pc=self.pc,
            comment=self.comment,
            target_label=self.target_label,
        )

    @property
    def writes_dest(self) -> bool:
        """Whether this instruction writes ``rd``."""
        return self._op_writes and self.rd is not None

    def source_regs(self) -> tuple[int, ...]:
        """Return the register indices this instruction reads.

        The zero register is excluded: it is always ready and carries no
        dependence.
        """
        cached = self._sources
        if cached is not None:
            return cached
        sources = []
        if self.ra is not None and self.ra != ZERO_REG:
            sources.append(self.ra)
        if self.rb is not None and self.rb != ZERO_REG:
            sources.append(self.rb)
        # Conditional moves and stores read their "destination" operand.
        if self.op in _READS_RD and self.rd is not None and self.rd != ZERO_REG:
            sources.append(self.rd)
        self._sources = result = tuple(sources)
        return result

    def unique_source_regs(self) -> tuple[int, ...]:
        """Like :meth:`source_regs` but with duplicates removed (the
        dependence-tracking view: one wakeup per distinct register)."""
        cached = self._unique_sources
        if cached is not None:
            return cached
        sources = self.source_regs()
        if len(sources) > 1:
            sources = tuple(dict.fromkeys(sources))
        self._unique_sources = sources
        return sources


_READS_RD = frozenset(
    {Opcode.CMOVEQ, Opcode.CMOVNE, Opcode.CMOVLT, Opcode.CMOVGE, Opcode.ST}
)

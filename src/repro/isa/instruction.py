"""Static instruction representation.

An :class:`Instruction` is one static instruction of a
:class:`~repro.isa.program.Program`. Operand conventions:

* ``rd`` — destination register index (or ``None``).
* ``ra`` / ``rb`` — source register indices (or ``None``).
* ``imm`` — immediate operand; for ALU ops it replaces ``rb``; for
  loads/stores it is the byte displacement off ``ra``.
* ``target`` — branch/call target PC (resolved by the assembler).

Register index 31 always reads as zero and writes to it are discarded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import (
    CONDITIONAL_BRANCHES,
    CONTROL_OPS,
    INDIRECT_BRANCHES,
    MEM_OPS,
    WRITES_DEST,
    OpClass,
    Opcode,
    base_latency,
    op_class,
)

#: Register index that is hardwired to zero.
ZERO_REG = 31

#: Conventional register aliases (a software ABI, not hardware).
REG_ALIASES = {
    "zero": 31,
    "ra": 26,  # return address
    "gp": 29,  # global pointer
    "sp": 30,  # stack pointer
}


def parse_reg(name: int | str) -> int:
    """Parse a register operand given as an index or a name like ``"r7"``.

    Accepts the ABI aliases in :data:`REG_ALIASES`.
    """
    if isinstance(name, int):
        if not 0 <= name <= 31:
            raise ValueError(f"register index out of range: {name}")
        return name
    text = name.strip().lower()
    if text in REG_ALIASES:
        return REG_ALIASES[text]
    if text.startswith("r") and text[1:].isdigit():
        index = int(text[1:])
        if 0 <= index <= 31:
            return index
    raise ValueError(f"not a register: {name!r}")


def reg_name(index: int) -> str:
    """Render a register index as its canonical ``rN`` name."""
    return f"r{index}"


@dataclass(slots=True)
class Instruction:
    """One static instruction.

    ``pc`` is assigned when the instruction is placed into a program.
    ``comment`` is carried through to the disassembler for readability
    (the paper's figures annotate every instruction this way).
    """

    op: Opcode
    rd: int | None = None
    ra: int | None = None
    rb: int | None = None
    imm: int | None = None
    target: int | None = None
    pc: int = -1
    comment: str = ""
    #: Unresolved label for the target, kept for diagnostics.
    target_label: str | None = field(default=None, repr=False)

    @property
    def writes_dest(self) -> bool:
        """Whether this instruction writes ``rd``."""
        return self.op in WRITES_DEST and self.rd is not None

    @property
    def is_branch(self) -> bool:
        """Whether this instruction is any control transfer."""
        return self.op in CONTROL_OPS

    @property
    def is_conditional(self) -> bool:
        """Whether this is a conditional direction branch."""
        return self.op in CONDITIONAL_BRANCHES

    @property
    def is_indirect(self) -> bool:
        """Whether this transfers control through a register."""
        return self.op in INDIRECT_BRANCHES

    @property
    def is_mem(self) -> bool:
        """Whether this is a load or store."""
        return self.op in MEM_OPS

    @property
    def is_load(self) -> bool:
        return self.op is Opcode.LD

    @property
    def is_store(self) -> bool:
        return self.op is Opcode.ST

    @property
    def op_class(self) -> OpClass:
        return op_class(self.op)

    @property
    def latency(self) -> int:
        return base_latency(self.op)

    def source_regs(self) -> tuple[int, ...]:
        """Return the register indices this instruction reads.

        The zero register is excluded: it is always ready and carries no
        dependence.
        """
        sources = []
        if self.ra is not None and self.ra != ZERO_REG:
            sources.append(self.ra)
        if self.rb is not None and self.rb != ZERO_REG:
            sources.append(self.rb)
        # Conditional moves and stores read their "destination" operand.
        if self.op in _READS_RD and self.rd is not None and self.rd != ZERO_REG:
            sources.append(self.rd)
        return tuple(sources)


_READS_RD = frozenset(
    {Opcode.CMOVEQ, Opcode.CMOVNE, Opcode.CMOVLT, Opcode.CMOVGE, Opcode.ST}
)

"""Embedded assembler for the repro ISA.

The assembler is a builder: call one method per instruction, place
labels with :meth:`Assembler.label`, reserve data with the ``data_*``
methods, then call :meth:`Assembler.build` to resolve forward references
and obtain a :class:`~repro.isa.program.Program`.

Example::

    asm = Assembler()
    counter = asm.data_word("counter", 0)
    asm.li("r1", 10)
    asm.label("loop")
    asm.sub("r1", "r1", imm=1)
    asm.bgt("r1", "loop")
    asm.halt()
    program = asm.build()
"""

from __future__ import annotations

from repro.isa.instruction import Instruction, parse_reg
from repro.isa.opcodes import INSTRUCTION_BYTES, Opcode
from repro.isa.program import Program

#: Default base address for the data segment, far from code PCs.
DEFAULT_DATA_BASE = 0x100000

Reg = int | str


class AssemblerError(Exception):
    """Raised for malformed assembly (bad operands, unresolved labels)."""


class Assembler:
    """Builder that assembles a :class:`Program`."""

    def __init__(self, base_pc: int = 0x1000, data_base: int = DEFAULT_DATA_BASE):
        self._base_pc = base_pc
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._data: dict[int, int] = {}
        self._data_symbols: dict[str, int] = {}
        self._data_cursor = data_base
        self._entry_label: str | None = None

    # ------------------------------------------------------------------
    # Layout helpers
    # ------------------------------------------------------------------

    @property
    def here(self) -> int:
        """PC of the next instruction to be emitted."""
        return self._base_pc + len(self._instructions) * INSTRUCTION_BYTES

    def label(self, name: str) -> int:
        """Place code label *name* at the current PC and return that PC."""
        if name in self._labels:
            raise AssemblerError(f"duplicate label {name!r}")
        self._labels[name] = self.here
        return self.here

    def entry(self, name: str) -> None:
        """Set the program entry point to code label *name*."""
        self._entry_label = name

    def comment(self, text: str) -> None:
        """Attach a comment to the next emitted instruction."""
        self._pending_comment = text

    _pending_comment: str = ""

    # ------------------------------------------------------------------
    # Data segment
    # ------------------------------------------------------------------

    def data_word(self, symbol: str, value: int = 0) -> int:
        """Allocate one 8-byte word named *symbol*; return its address."""
        return self.data_words(symbol, [value])

    def data_words(self, symbol: str, values: list[int]) -> int:
        """Allocate consecutive words named *symbol*; return base address."""
        if symbol in self._data_symbols:
            raise AssemblerError(f"duplicate data symbol {symbol!r}")
        base = self._data_cursor
        self._data_symbols[symbol] = base
        for offset, value in enumerate(values):
            self._data[base + 8 * offset] = value
        self._data_cursor = base + 8 * len(values)
        return base

    def data_space(self, symbol: str, words: int) -> int:
        """Allocate *words* zeroed words named *symbol*; return base address."""
        return self.data_words(symbol, [0] * words)

    def data_align(self, boundary: int) -> None:
        """Advance the data cursor to a byte *boundary* (power of two)."""
        mask = boundary - 1
        self._data_cursor = (self._data_cursor + mask) & ~mask

    def addr_of(self, symbol: str) -> int:
        """Return the address of an already-allocated data symbol."""
        return self._data_symbols[symbol]

    def set_data_word(self, symbol: str, index: int, value: int) -> int:
        """Overwrite word *index* of an allocated symbol; return its address.

        Lets builders patch data after code emission — e.g. filling a
        jump table with block PCs that only exist once the blocks have
        been laid out (the generated-program idiom in
        :mod:`repro.fuzz.gen`).
        """
        if symbol not in self._data_symbols:
            raise AssemblerError(f"unknown data symbol {symbol!r}")
        addr = self._data_symbols[symbol] + 8 * index
        if addr not in self._data:
            raise AssemblerError(
                f"index {index} outside allocation of {symbol!r}"
            )
        self._data[addr] = value
        return addr

    # ------------------------------------------------------------------
    # Instruction emission
    # ------------------------------------------------------------------

    def _emit(self, inst: Instruction) -> Instruction:
        inst.pc = self.here
        if self._pending_comment:
            inst.comment = self._pending_comment
            self._pending_comment = ""
        self._instructions.append(inst)
        return inst

    def _alu(self, op: Opcode, rd: Reg, ra: Reg, rb: Reg | None, imm: int | None) -> Instruction:
        if (rb is None) == (imm is None):
            raise AssemblerError(f"{op.value}: exactly one of rb/imm required")
        return self._emit(
            Instruction(
                op,
                rd=parse_reg(rd),
                ra=parse_reg(ra),
                rb=parse_reg(rb) if rb is not None else None,
                imm=imm,
            )
        )

    # Simple ALU -------------------------------------------------------

    def add(self, rd: Reg, ra: Reg, rb: Reg | None = None, imm: int | None = None):
        return self._alu(Opcode.ADD, rd, ra, rb, imm)

    def sub(self, rd: Reg, ra: Reg, rb: Reg | None = None, imm: int | None = None):
        return self._alu(Opcode.SUB, rd, ra, rb, imm)

    def and_(self, rd: Reg, ra: Reg, rb: Reg | None = None, imm: int | None = None):
        return self._alu(Opcode.AND, rd, ra, rb, imm)

    def or_(self, rd: Reg, ra: Reg, rb: Reg | None = None, imm: int | None = None):
        return self._alu(Opcode.OR, rd, ra, rb, imm)

    def xor(self, rd: Reg, ra: Reg, rb: Reg | None = None, imm: int | None = None):
        return self._alu(Opcode.XOR, rd, ra, rb, imm)

    def sll(self, rd: Reg, ra: Reg, rb: Reg | None = None, imm: int | None = None):
        return self._alu(Opcode.SLL, rd, ra, rb, imm)

    def srl(self, rd: Reg, ra: Reg, rb: Reg | None = None, imm: int | None = None):
        return self._alu(Opcode.SRL, rd, ra, rb, imm)

    def sra(self, rd: Reg, ra: Reg, rb: Reg | None = None, imm: int | None = None):
        return self._alu(Opcode.SRA, rd, ra, rb, imm)

    def cmpeq(self, rd: Reg, ra: Reg, rb: Reg | None = None, imm: int | None = None):
        return self._alu(Opcode.CMPEQ, rd, ra, rb, imm)

    def cmplt(self, rd: Reg, ra: Reg, rb: Reg | None = None, imm: int | None = None):
        return self._alu(Opcode.CMPLT, rd, ra, rb, imm)

    def cmple(self, rd: Reg, ra: Reg, rb: Reg | None = None, imm: int | None = None):
        return self._alu(Opcode.CMPLE, rd, ra, rb, imm)

    def cmpult(self, rd: Reg, ra: Reg, rb: Reg | None = None, imm: int | None = None):
        return self._alu(Opcode.CMPULT, rd, ra, rb, imm)

    def s4add(self, rd: Reg, ra: Reg, rb: Reg):
        """rd = (ra << 2) + rb (Alpha ``s4addq``)."""
        return self._alu(Opcode.S4ADD, rd, ra, rb, None)

    def s8add(self, rd: Reg, ra: Reg, rb: Reg):
        """rd = (ra << 3) + rb (Alpha ``s8addq``) — array-of-words indexing."""
        return self._alu(Opcode.S8ADD, rd, ra, rb, None)

    def mov(self, rd: Reg, ra: Reg):
        return self._emit(Instruction(Opcode.MOV, rd=parse_reg(rd), ra=parse_reg(ra)))

    def li(self, rd: Reg, imm: int):
        return self._emit(Instruction(Opcode.LI, rd=parse_reg(rd), imm=imm))

    def la(self, rd: Reg, symbol: str):
        """Load the address of data symbol *symbol* (must exist already)."""
        return self.li(rd, self.addr_of(symbol))

    # Conditional moves -------------------------------------------------

    def cmoveq(self, rd: Reg, ra: Reg, rb: Reg):
        """if ra == 0: rd = rb."""
        return self._alu(Opcode.CMOVEQ, rd, ra, rb, None)

    def cmovne(self, rd: Reg, ra: Reg, rb: Reg):
        """if ra != 0: rd = rb."""
        return self._alu(Opcode.CMOVNE, rd, ra, rb, None)

    def cmovlt(self, rd: Reg, ra: Reg, rb: Reg):
        """if ra < 0: rd = rb."""
        return self._alu(Opcode.CMOVLT, rd, ra, rb, None)

    def cmovge(self, rd: Reg, ra: Reg, rb: Reg):
        """if ra >= 0: rd = rb."""
        return self._alu(Opcode.CMOVGE, rd, ra, rb, None)

    # Complex integer ----------------------------------------------------

    def mul(self, rd: Reg, ra: Reg, rb: Reg | None = None, imm: int | None = None):
        return self._alu(Opcode.MUL, rd, ra, rb, imm)

    def div(self, rd: Reg, ra: Reg, rb: Reg | None = None, imm: int | None = None):
        return self._alu(Opcode.DIV, rd, ra, rb, imm)

    # Memory -------------------------------------------------------------

    def ld(self, rd: Reg, ra: Reg, imm: int = 0):
        """rd = mem[ra + imm]."""
        return self._emit(
            Instruction(Opcode.LD, rd=parse_reg(rd), ra=parse_reg(ra), imm=imm)
        )

    def st(self, rd: Reg, ra: Reg, imm: int = 0):
        """mem[ra + imm] = rd."""
        return self._emit(
            Instruction(Opcode.ST, rd=parse_reg(rd), ra=parse_reg(ra), imm=imm)
        )

    # Control ------------------------------------------------------------

    def _branch(self, op: Opcode, ra: Reg | None, target: str | int) -> Instruction:
        inst = Instruction(op, ra=parse_reg(ra) if ra is not None else None)
        if isinstance(target, str):
            inst.target_label = target
        else:
            inst.target = target
        return self._emit(inst)

    def beq(self, ra: Reg, target: str | int):
        return self._branch(Opcode.BEQ, ra, target)

    def bne(self, ra: Reg, target: str | int):
        return self._branch(Opcode.BNE, ra, target)

    def blt(self, ra: Reg, target: str | int):
        return self._branch(Opcode.BLT, ra, target)

    def bge(self, ra: Reg, target: str | int):
        return self._branch(Opcode.BGE, ra, target)

    def ble(self, ra: Reg, target: str | int):
        return self._branch(Opcode.BLE, ra, target)

    def bgt(self, ra: Reg, target: str | int):
        return self._branch(Opcode.BGT, ra, target)

    def br(self, target: str | int):
        return self._branch(Opcode.BR, None, target)

    def jr(self, ra: Reg):
        return self._emit(Instruction(Opcode.JR, ra=parse_reg(ra)))

    def call(self, target: str | int):
        """Direct call: r26 (ra) = return PC; jump to target."""
        inst = self._branch(Opcode.CALL, None, target)
        inst.rd = parse_reg("ra")
        return inst

    def callr(self, ra: Reg):
        """Indirect call through *ra*: r26 = return PC; jump to [ra]."""
        inst = self._emit(Instruction(Opcode.CALLR, ra=parse_reg(ra)))
        inst.rd = parse_reg("ra")
        return inst

    def ret(self):
        """Return through r26 (pops the return-address-stack predictor)."""
        return self._emit(Instruction(Opcode.RET, ra=parse_reg("ra")))

    # Other ----------------------------------------------------------------

    def fork(self, slice_index: int):
        """Explicit slice-fork marker (Section 4.2): architecturally a
        no-op; the slice hardware forks slice table entry *slice_index*."""
        return self._emit(Instruction(Opcode.FORK, imm=slice_index))

    def nop(self):
        return self._emit(Instruction(Opcode.NOP))

    def halt(self):
        return self._emit(Instruction(Opcode.HALT))

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------

    def build(self) -> Program:
        """Resolve label references and return the assembled program."""
        for inst in self._instructions:
            if inst.target_label is not None:
                if inst.target_label not in self._labels:
                    raise AssemblerError(
                        f"unresolved label {inst.target_label!r} at pc={inst.pc:#x}"
                    )
                inst.target = self._labels[inst.target_label]
        entry_pc = None
        if self._entry_label is not None:
            if self._entry_label not in self._labels:
                raise AssemblerError(f"unknown entry label {self._entry_label!r}")
            entry_pc = self._labels[self._entry_label]
        return Program(
            instructions=list(self._instructions),
            base_pc=self._base_pc,
            data=dict(self._data),
            labels=dict(self._labels),
            data_symbols=dict(self._data_symbols),
            entry_pc=entry_pc,
        )

"""Textual assembly parser.

Parses the same syntax :mod:`repro.isa.disasm` prints, so programs can
be written as ``.s`` text (or round-tripped through the disassembler):

.. code-block:: text

    ; data
    .data counter 1          ; one word named counter, initialized below
    .word counter 0

    ; code
        li      r1, 10
    loop:
        sub     r1, r1, 1
        bgt     r1, loop
        halt

Syntax:

* ``label:`` on its own line (or before an instruction) places a label;
* instructions are ``op operands`` with operands separated by commas;
* register operands are ``rN`` or an ABI alias; integers may be decimal
  or ``0x`` hex; memory operands are ``imm(reg)``;
* ``@sym`` in an immediate position resolves to a data symbol address;
* ``.space name N`` reserves N zeroed words, ``.word name v1 v2 ...``
  allocates initialized words;
* ``;`` and ``#`` start comments.
"""

from __future__ import annotations

import re

from repro.isa.assembler import Assembler, AssemblerError
from repro.isa.program import Program

_MEM_OPERAND = re.compile(r"^(-?(?:0x[0-9a-fA-F]+|\d+))\((\w+)\)$")

#: ops taking rd, ra, rb/imm
_THREE_OP = {
    "add", "sub", "and", "or", "xor", "sll", "srl", "sra",
    "cmpeq", "cmplt", "cmple", "cmpult", "mul", "div",
}
_REG3 = {"s4add", "s8add", "cmoveq", "cmovne", "cmovlt", "cmovge"}
_BRANCHES = {"beq", "bne", "blt", "bge", "ble", "bgt"}


class ParseError(AssemblerError):
    """Raised with a line number on malformed assembly text."""


def _strip_comment(line: str) -> str:
    for marker in (";", "#"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


class _Parser:
    def __init__(self, base_pc: int):
        self.asm = Assembler(base_pc=base_pc)

    def immediate(self, token: str, line_no: int) -> int:
        token = token.strip()
        if token.startswith("@"):
            try:
                return self.asm.addr_of(token[1:])
            except KeyError:
                raise ParseError(
                    f"line {line_no}: unknown data symbol {token[1:]!r}"
                ) from None
        try:
            return int(token, 0)
        except ValueError:
            raise ParseError(
                f"line {line_no}: bad immediate {token!r}"
            ) from None

    def reg_or_imm(self, token: str, line_no: int):
        token = token.strip()
        if token.startswith("@") or token.lstrip("-").split("x")[0].isdigit():
            return None, self.immediate(token, line_no)
        return token, None

    def directive(self, parts: list[str], line_no: int) -> None:
        head = parts[0]
        if head == ".space":
            if len(parts) != 3:
                raise ParseError(f"line {line_no}: .space name N")
            self.asm.data_space(parts[1], int(parts[2], 0))
        elif head == ".word":
            if len(parts) < 3:
                raise ParseError(f"line {line_no}: .word name v1 [v2 ...]")
            self.asm.data_words(
                parts[1], [int(v, 0) for v in parts[2:]]
            )
        elif head == ".entry":
            self.asm.entry(parts[1])
        else:
            raise ParseError(f"line {line_no}: unknown directive {head!r}")

    def instruction(self, op: str, operands: list[str], line_no: int) -> None:
        asm = self.asm
        try:
            if op in _THREE_OP:
                rd, ra, third = operands
                rb, imm = self.reg_or_imm(third, line_no)
                getattr(asm, "and_" if op == "and" else
                        "or_" if op == "or" else op)(rd, ra, rb=rb, imm=imm)
            elif op in _REG3:
                rd, ra, rb = operands
                getattr(asm, op)(rd, ra, rb)
            elif op == "mov":
                asm.mov(*operands)
            elif op == "li":
                asm.li(operands[0], self.immediate(operands[1], line_no))
            elif op == "la":
                symbol = operands[1].lstrip("@")
                try:
                    asm.la(operands[0], symbol)
                except KeyError:
                    raise ParseError(
                        f"line {line_no}: unknown data symbol {symbol!r}"
                    ) from None
            elif op in ("ld", "st"):
                reg, mem = operands
                match = _MEM_OPERAND.match(mem.replace(" ", ""))
                if match is None and mem.startswith("@"):
                    getattr(asm, op)(reg, "zero", self.immediate(mem, line_no))
                    return
                if match is None:
                    raise ParseError(
                        f"line {line_no}: bad memory operand {mem!r}"
                    )
                getattr(asm, op)(reg, match.group(2), int(match.group(1), 0))
            elif op in _BRANCHES:
                getattr(asm, op)(operands[0], operands[1])
            elif op == "br":
                asm.br(operands[0])
            elif op == "call":
                asm.call(operands[0])
            elif op == "jr":
                asm.jr(operands[0])
            elif op == "callr":
                asm.callr(operands[0])
            elif op == "ret":
                asm.ret()
            elif op == "fork":
                asm.fork(self.immediate(operands[0], line_no))
            elif op == "nop":
                asm.nop()
            elif op == "halt":
                asm.halt()
            else:
                raise ParseError(f"line {line_no}: unknown opcode {op!r}")
        except ParseError:
            raise
        except (ValueError, TypeError, IndexError) as error:
            raise ParseError(f"line {line_no}: {error}") from None


def parse_assembly(text: str, base_pc: int = 0x1000) -> Program:
    """Parse assembly *text* into a :class:`Program`."""
    parser = _Parser(base_pc)
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        while ":" in line:
            label, _, rest = line.partition(":")
            if not re.fullmatch(r"\w+", label.strip()):
                raise ParseError(f"line {line_no}: bad label {label!r}")
            parser.asm.label(label.strip())
            line = rest.strip()
            if not line:
                break
        if not line:
            continue
        parts = line.split(None, 1)
        if parts[0].startswith("."):
            parser.directive(line.split(), line_no)
            continue
        op = parts[0].lower()
        operands = (
            [tok.strip() for tok in parts[1].split(",")]
            if len(parts) > 1
            else []
        )
        parser.instruction(op, operands, line_no)
    return parser.asm.build()

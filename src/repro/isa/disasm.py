"""Disassembler: render instructions and programs as readable text.

Used by the examples to print the paper's Figure 4/5-style listings and
by diagnostics throughout the library.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction, reg_name
from repro.isa.opcodes import Opcode
from repro.isa.program import Program


def format_instruction(inst: Instruction, labels: dict[int, str] | None = None) -> str:
    """Render one instruction as assembly text (without its PC)."""
    labels = labels or {}

    def target_text() -> str:
        if inst.target is not None and inst.target in labels:
            return labels[inst.target]
        if inst.target is not None:
            return f"{inst.target:#x}"
        return inst.target_label or "?"

    op = inst.op
    if op in (Opcode.NOP, Opcode.HALT, Opcode.RET):
        text = op.value
    elif op is Opcode.FORK:
        text = f"fork    {inst.imm}"
    elif op is Opcode.LI:
        text = f"li      {reg_name(inst.rd)}, {inst.imm}"
    elif op is Opcode.MOV:
        text = f"mov     {reg_name(inst.rd)}, {reg_name(inst.ra)}"
    elif op is Opcode.LD:
        text = f"ld      {reg_name(inst.rd)}, {inst.imm}({reg_name(inst.ra)})"
    elif op is Opcode.ST:
        text = f"st      {reg_name(inst.rd)}, {inst.imm}({reg_name(inst.ra)})"
    elif op is Opcode.BR:
        text = f"br      {target_text()}"
    elif op is Opcode.CALL:
        text = f"call    {target_text()}"
    elif op in (Opcode.JR, Opcode.CALLR):
        text = f"{op.value:<7} {reg_name(inst.ra)}"
    elif inst.is_conditional:
        text = f"{op.value:<7} {reg_name(inst.ra)}, {target_text()}"
    else:
        second = reg_name(inst.rb) if inst.rb is not None else str(inst.imm)
        text = f"{op.value:<7} {reg_name(inst.rd)}, {reg_name(inst.ra)}, {second}"
    if inst.comment:
        text = f"{text:<32}# {inst.comment}"
    return text


def disassemble(program: Program, mark_pcs: set[int] | None = None) -> str:
    """Render a whole program, one instruction per line.

    ``mark_pcs`` highlights instructions (the paper bolds problem
    instructions in its listings); marked lines get a ``*`` prefix.
    """
    mark_pcs = mark_pcs or set()
    label_at = {pc: name for name, pc in program.labels.items()}
    lines = []
    for inst in program.instructions:
        if inst.pc in label_at:
            lines.append(f"{label_at[inst.pc]}:")
        marker = "*" if inst.pc in mark_pcs else " "
        lines.append(f" {marker}{inst.pc:#8x}  {format_instruction(inst, label_at)}")
    return "\n".join(lines)

"""The repro ISA: a small Alpha-flavored RISC used as the simulation substrate."""

from repro.isa.assembler import Assembler, AssemblerError
from repro.isa.disasm import disassemble, format_instruction
from repro.isa.instruction import Instruction, ZERO_REG, parse_reg, reg_name
from repro.isa.opcodes import (
    CALL_OPS,
    CONDITIONAL_BRANCHES,
    CONTROL_OPS,
    INDIRECT_BRANCHES,
    INSTRUCTION_BYTES,
    MEM_OPS,
    OpClass,
    Opcode,
    base_latency,
    op_class,
)
from repro.isa.parser import ParseError, parse_assembly
from repro.isa.program import Program

__all__ = [
    "Assembler",
    "AssemblerError",
    "CALL_OPS",
    "CONDITIONAL_BRANCHES",
    "CONTROL_OPS",
    "INDIRECT_BRANCHES",
    "INSTRUCTION_BYTES",
    "Instruction",
    "MEM_OPS",
    "OpClass",
    "ParseError",
    "Opcode",
    "Program",
    "ZERO_REG",
    "base_latency",
    "disassemble",
    "parse_assembly",
    "format_instruction",
    "op_class",
    "parse_reg",
    "reg_name",
]

"""``repro serve`` — the experiment service's HTTP front end.

A small asyncio HTTP/1.1 server (stdlib only) over one
:class:`~repro.service.store.ContentStore` and one
:class:`~repro.service.queue.JobQueue`. The serving contract is the
ROADMAP's: **hot results are served, not recomputed** — a sweep query
whose results are all cached is answered entirely from the store with
one O(1) content-addressed read per request and *zero* queue writes;
only misses are enqueued, for ``repro worker`` processes to drain.

Endpoints (all JSON):

* ``GET  /healthz`` — liveness.
* ``GET  /api/status`` — server counters + queue stats + store stats.
* ``POST /api/sweep`` — body ``{"requests": [<request JSON>, ...]}``.
  Deduplicates, answers every cache hit inline (checksummed pickled
  RunStats, see :mod:`repro.service.codec`), enqueues every miss, and
  registers the sweep for polling. Response carries ``sweep``,
  ``results`` (by key), ``pending``/``failed`` keys, and ``enqueued``.
* ``GET  /api/sweep/<id>`` — re-poll a registered sweep. Pure serve
  path: store reads only, never enqueues.
* ``GET  /api/result/<key>`` — one result by content address (404
  while it is still being computed).

The server never simulates anything itself: it is I/O-bound glue
between the store and the queue, which is why one asyncio task per
connection suffices.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import logging

from repro.harness.cache import fingerprint, window_fingerprint
from repro.harness.parallel import window_depths, window_request
from repro.service.codec import decode_request, encode_request, encode_stats
from repro.service.queue import JobQueue
from repro.service.store import ContentStore
from repro.uarch.stats import aggregate_stats

log = logging.getLogger(__name__)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8737

#: Cap on request-body size (a sweep of ~100k requests; far beyond any
#: real matrix, small enough to bound a bogus Content-Length).
MAX_BODY_BYTES = 64 * 1024 * 1024


def sweep_id(keys: list[str]) -> str:
    """Content address of a sweep: digest of its result keys in
    request order — the same matrix resubmitted gets the same id."""
    return hashlib.sha256("\n".join(keys).encode()).hexdigest()[:16]


class ExperimentServer:
    """One service instance: store + queue + asyncio HTTP listener."""

    def __init__(
        self,
        store: ContentStore | None = None,
        queue: JobQueue | None = None,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
    ):
        self.store = store if store is not None else ContentStore()
        self.queue = (
            queue if queue is not None else JobQueue(self.store.root)
        )
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        #: Serve-path accounting (process lifetime; surfaced by
        #: ``/api/status`` and asserted by the service-smoke CI job).
        self.counters = {
            "sweeps": 0,
            "requests": 0,
            "served_from_cache": 0,
            "enqueued": 0,
            #: Window-decomposition accounting: window jobs enqueued
            #: (a subset of ``enqueued``), and multi-region parents
            #: reassembled from per-window store hits.
            "window_jobs": 0,
            "assembled": 0,
        }

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _route(self, method: str, path: str, body: bytes):
        """Dispatch one request; returns ``(status_code, payload)``."""
        if method == "GET" and path == "/healthz":
            return 200, {"ok": True}
        if method == "GET" and path == "/api/status":
            self.store.flush_counters()
            return 200, {
                "server": dict(self.counters),
                "queue": self.queue.stats(),
                "store": self.store.stats(),
            }
        if method == "POST" and path == "/api/sweep":
            return self._submit_sweep(body)
        if method == "GET" and path.startswith("/api/sweep/"):
            return self._poll_sweep(path.removeprefix("/api/sweep/"))
        if method == "GET" and path.startswith("/api/result/"):
            return self._fetch_result(path.removeprefix("/api/result/"))
        return 404, {"error": f"no route for {method} {path}"}

    def _submit_sweep(self, body: bytes):
        try:
            payload = json.loads(body)
            requests = [
                decode_request(item) for item in payload["requests"]
            ]
        except (ValueError, KeyError, TypeError) as exc:
            return 400, {"error": f"malformed sweep body: {exc}"}
        keys = [fingerprint(request) for request in requests]
        sid = sweep_id(keys)
        self.queue.save_sweep(sid, keys)
        self.counters["sweeps"] += 1
        self.counters["requests"] += len(requests)

        results: dict[str, dict] = {}
        pending: list[str] = []
        enqueued = 0
        seen: set[str] = set()
        for request, key in zip(requests, keys):
            if key in seen:
                continue
            seen.add(key)
            stats = self.store.runs.get_by_key(key)
            if stats is not None:
                # Hot path: answered inline from the content-addressed
                # store — the queue is never touched for a hit.
                results[key] = encode_stats(stats)
                self.counters["served_from_cache"] += 1
                continue
            stats, fresh = self._submit_request(request, key)
            if stats is not None:
                # Partially-or-fully warm multi-region request answered
                # entirely from per-window hits: assembled, published
                # to the run cache, served — still zero simulation.
                results[key] = encode_stats(stats)
                self.counters["served_from_cache"] += 1
            else:
                enqueued += fresh
                pending.append(key)
        self.counters["enqueued"] += enqueued
        return 200, {
            "sweep": sid,
            "keys": keys,
            "results": results,
            "pending": pending,
            "failed": {},
            "enqueued": enqueued,
        }

    def _submit_request(self, request, key: str) -> tuple[object, int]:
        """Resolve one run-cache miss: serve it from window hits, or
        enqueue the missing work; returns ``(stats | None, enqueued)``.

        A multi-region request with an explicit ``sample_period`` has a
        closed-form window schedule (no workload build — the server
        never simulates), so it is decomposed: each window already in
        the ``windows`` namespace is a hit, each missing window becomes
        one ``kind="window"`` job, and the parent is registered as an
        *assembly* for the poll path. A half-warm 8→10-region re-sweep
        therefore enqueues only the 2 new windows. Requests without an
        explicit period (schedule depends on workload length) and
        unsampled requests stay whole-request jobs.
        """
        if request.sample_regions < 2 or request.sample_period <= 0:
            _, fresh = self.queue.submit(request)
            return None, int(fresh)
        depths = window_depths(request)
        windows = [
            (depth, window_fingerprint(request, depth)) for depth in depths
        ]
        self.queue.save_assembly(
            key,
            {
                "request": encode_request(request),
                "windows": [[depth, wkey] for depth, wkey in windows],
            },
        )
        stats, _error = self._assemble(key)
        if stats is not None:
            return stats, 0
        enqueued = 0
        for depth, wkey in windows:
            if self.store.windows.get(wkey) is not None:
                continue
            _, fresh = self.queue.submit(
                window_request(request, depth), kind="window", key=wkey
            )
            enqueued += int(fresh)
        self.counters["window_jobs"] += enqueued
        return None, enqueued

    def _assemble(self, key: str) -> tuple[object, str | None]:
        """Try to reassemble run-cache key *key* from its windows.

        Walks the registered assembly in depth order with the serial
        loop's halt-drop rule (the windows-cache mirror of
        :func:`~repro.harness.parallel.assemble_window_stats`): a short
        chain member ends the walk, so a halted chain is served even
        while its never-needed tail windows are missing. Returns
        ``(stats, None)`` on success — publishing the aggregate to the
        run cache so every later poll is a plain O(1) hit —
        ``(None, error)`` if a needed window's job failed, and
        ``(None, None)`` while still pending (or if *key* has no
        assembly at all).
        """
        assembly = self.queue.load_assembly(key)
        if assembly is None:
            return None, None
        kept = []
        for depth, wkey in assembly["windows"]:
            stats = self.store.windows.get(wkey)
            if stats is None:
                job = self.queue.job(wkey)
                if job is not None and job.status == "failed":
                    return None, (
                        f"window at depth {depth}: {job.error or 'failed'}"
                    )
                return None, None
            if depth > 0 and stats.ff_insts < depth and kept:
                break
            kept.append(stats)
        aggregate = aggregate_stats(kept)
        request = decode_request(assembly["request"])
        self.store.runs.put(request, aggregate)
        self.counters["assembled"] += 1
        return aggregate, None

    def _poll_sweep(self, sid: str):
        keys = self.queue.load_sweep(sid)
        if keys is None:
            return 404, {"error": f"unknown sweep {sid!r}"}
        results: dict[str, dict] = {}
        pending: list[str] = []
        failed: dict[str, str] = {}
        for key in dict.fromkeys(keys):  # dedupe, keep order
            stats = self.store.runs.get_by_key(key)
            error = None
            if stats is None:
                # Decomposed parent: fold finished windows back into
                # the whole-run aggregate (and into the run cache) the
                # moment the last needed one lands.
                stats, error = self._assemble(key)
            if stats is not None:
                results[key] = encode_stats(stats)
                self.counters["served_from_cache"] += 1
                continue
            if error is not None:
                failed[key] = error
                continue
            job = self.queue.job(key)
            if job is not None and job.status == "failed":
                failed[key] = job.error or "failed"
            else:
                pending.append(key)
        return 200, {
            "sweep": sid,
            "keys": keys,
            "results": results,
            "pending": pending,
            "failed": failed,
            "enqueued": 0,
        }

    def _fetch_result(self, key: str):
        stats = self.store.runs.get_by_key(key)
        if stats is None:
            stats, _error = self._assemble(key)
        if stats is None:
            job = self.queue.job(key)
            status = job.status if job is not None else "unknown"
            return 404, {"error": f"no result for {key}", "status": status}
        self.counters["served_from_cache"] += 1
        return 200, {"key": key, "stats": encode_stats(stats)}

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                writer.close()
                return
            method, path = parts[0], parts[1]
            length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            if length > MAX_BODY_BYTES:
                status, payload = 413, {"error": "body too large"}
            else:
                body = await reader.readexactly(length) if length else b""
                try:
                    status, payload = self._route(method, path, body)
                except Exception as exc:  # noqa: BLE001 — boundary
                    log.exception("service request failed")
                    status, payload = 500, {"error": str(exc)}
            data = json.dumps(payload).encode()
            reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                      413: "Payload Too Large", 500: "Error"}.get(status, "")
            writer.write(
                f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(data)}\r\n"
                "Connection: close\r\n\r\n".encode() + data
            )
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover - teardown race
                pass

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        # An ephemeral port (port=0) resolves at bind time.
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        log.info("repro serve listening on %s:%d", self.host, self.port)
        async with self._server:
            await self._server.serve_forever()

    def stop(self) -> None:
        if self._server is not None:
            self._server.close()


def serve(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    store: ContentStore | None = None,
    queue: JobQueue | None = None,
) -> None:
    """Blocking entry point for ``repro serve``."""
    server = ExperimentServer(store=store, queue=queue, host=host, port=port)
    try:
        asyncio.run(server.serve_forever())
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass

"""``repro worker`` — lease-draining executor for the job queue.

A worker is the compute half of the experiment service: it claims jobs
from the :class:`~repro.service.queue.JobQueue`, executes each through
the *same* :func:`~repro.harness.parallel.run_matrix` path as an
in-process run (inheriting the PR 3 timeout/retry/respawn discipline
and the snapshot store), publishes the result into the shared
content-addressed store, and marks the job done. Any number of workers
on any machines sharing the cache root can drain one queue.

Crash safety is the lease's job, not the worker's: while a job runs, a
background thread heartbeats the lease; a worker that dies mid-job
simply stops heartbeating and the queue re-grants the job after the
deadline (see :mod:`repro.service.queue`). Because results are
content-addressed and the simulator is deterministic, the re-run
converges to bit-identical bytes — asserted by
``tests/service/test_worker_crash.py``.

Deterministic fault injection reuses
:class:`~repro.harness.faults.FaultPlan`: a planned ``CRASH`` is
applied at the *worker* level (``in_process=False`` → ``os._exit``),
so the whole worker process dies holding its lease — exactly the
failure the queue must survive.
"""

from __future__ import annotations

import logging
import threading
import time

from repro.harness.parallel import direct_execution, run_matrix
from repro.service.queue import (
    DEFAULT_LEASE_SECONDS,
    JobQueue,
    default_owner,
)
from repro.service.store import ContentStore

log = logging.getLogger(__name__)

#: Seconds to sleep between claim attempts when the queue is empty.
DEFAULT_POLL_SECONDS = 0.5


class Worker:
    """One queue-draining worker process (or thread, in tests)."""

    def __init__(
        self,
        store: ContentStore | None = None,
        queue: JobQueue | None = None,
        owner: str | None = None,
        lease: float = DEFAULT_LEASE_SECONDS,
        jobs: int | None = 1,
        timeout: float | None = None,
        retries: int | None = None,
        poll: float = DEFAULT_POLL_SECONDS,
        fault_plan=None,
    ):
        self.store = store if store is not None else ContentStore()
        self.queue = (
            queue if queue is not None else JobQueue(self.store.root)
        )
        self.owner = owner or default_owner()
        self.lease = lease
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.poll = poll
        self.fault_plan = fault_plan
        #: Jobs this worker resolved (done + failed), for logs/tests.
        self.completed = 0
        self.failed = 0

    # ------------------------------------------------------------------

    def run_once(self) -> bool:
        """Claim and execute one job; ``False`` if the queue was empty."""
        job = self.queue.claim(self.owner, lease=self.lease)
        if job is None:
            return False
        log.info(
            "worker %s leased %s %s (%s/%s, attempt %d/%d)",
            self.owner,
            job.kind,
            job.key[:12],
            job.request.workload,
            job.request.mode,
            job.attempts,
            job.max_attempts,
        )
        if job.kind == "window" and self.store.windows.get(job.key) is not None:
            # Another worker (or an in-process run sharing the cache
            # root) already published this window; the job is pure
            # bookkeeping now.
            if self.queue.complete(job.key, self.owner):
                self.completed += 1
            self.store.flush_counters()
            return True
        if self.fault_plan is not None:
            # Worker-level fault injection: a planned CRASH kills this
            # process *while it holds the lease* (attempt indices are
            # 0-based, mirroring the pool's fault keying).
            self.fault_plan.perturb(
                job.request, job.attempts - 1, in_process=False
            )
        stop = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(job.key, stop), daemon=True
        )
        beat.start()
        try:
            # One-element matrix through the standard harness path:
            # cache hit short-circuits, a fresh run lands in the shared
            # store via ``cache.put`` — publication and execution are
            # one step. ``direct_execution`` pins this thread to the
            # in-process backend: the executor must never become a
            # thin client of the queue it just claimed from.
            with direct_execution():
                report = run_matrix(
                    [job.request],
                    jobs=self.jobs,
                    cache=self.store.runs,
                    timeout=self.timeout,
                    retries=self.retries,
                    on_error="raise",
                    return_report=True,
                )
            if job.kind == "window":
                # A window job's request is the derived single-window
                # run; its aggregate IS the window's stats. Publish
                # under the windows-namespace key the server will poll
                # (the run-cache entry for the derived request also
                # landed above, via the ordinary cache.put path).
                self.store.windows.put(job.key, report.outcomes[0].stats)
        except Exception as exc:  # noqa: BLE001 — lease boundary
            stop.set()
            beat.join()
            self.failed += 1
            self.queue.fail(job.key, self.owner, f"{type(exc).__name__}: {exc}")
            log.warning("worker %s failed %s: %s", self.owner, job.key[:12], exc)
        else:
            stop.set()
            beat.join()
            if self.queue.complete(job.key, self.owner):
                self.completed += 1
            else:
                # Lease lost mid-run (e.g. a long stall past the
                # deadline). The published result is still valid —
                # content-addressed, identical to the re-leased
                # worker's — so this is bookkeeping, not data loss.
                log.warning(
                    "worker %s lost lease on %s before completion",
                    self.owner,
                    job.key[:12],
                )
        self.store.flush_counters()
        return True

    def _heartbeat_loop(self, key: str, stop: threading.Event) -> None:
        interval = max(self.lease / 3.0, 0.05)
        while not stop.wait(interval):
            if not self.queue.heartbeat(key, self.owner, lease=self.lease):
                return  # lease lost; completion will notice

    def run(
        self,
        max_jobs: int | None = None,
        drain: bool = False,
        stop_event: threading.Event | None = None,
    ) -> int:
        """Drain the queue; returns jobs resolved by this worker.

        ``drain=True`` exits when the queue yields nothing; otherwise
        the worker polls forever (``repro worker`` service mode).
        """
        resolved = 0
        while max_jobs is None or resolved < max_jobs:
            if stop_event is not None and stop_event.is_set():
                break
            if self.run_once():
                resolved += 1
                continue
            if drain:
                break
            time.sleep(self.poll)
        return resolved


def work(
    store: ContentStore | None = None,
    lease: float = DEFAULT_LEASE_SECONDS,
    jobs: int | None = 1,
    timeout: float | None = None,
    retries: int | None = None,
    max_jobs: int | None = None,
    drain: bool = False,
) -> int:
    """Blocking entry point for ``repro worker``."""
    worker = Worker(
        store=store, lease=lease, jobs=jobs, timeout=timeout, retries=retries
    )
    try:
        return worker.run(max_jobs=max_jobs, drain=drain)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return worker.completed + worker.failed

"""HTTP client for the experiment service.

:class:`ServiceClient` is how :func:`~repro.harness.parallel.run_matrix`
becomes a thin client: when ``REPRO_SERVICE_URL`` (the ``--service``
CLI flag) names a running ``repro serve``, cache misses are submitted
as one sweep, polled until ``repro worker`` processes publish the
results, and decoded back to :class:`~repro.uarch.stats.RunStats` —
checksummed on the wire, bit-identical to an in-process run (asserted
by ``tests/service/test_service.py``).

Stdlib only: ``urllib.request`` over the hand-rolled asyncio server.
Connection errors, bad statuses, and checksum failures all surface as
:class:`~repro.errors.ServiceError` so ``run_matrix`` can apply its
normal ``on_error`` policy.
"""

from __future__ import annotations

import json
import logging
import os
import time
import urllib.error
import urllib.request

from repro.errors import ServiceError
from repro.service.codec import decode_stats, encode_request

log = logging.getLogger(__name__)

#: Seconds between sweep polls while jobs are pending.
DEFAULT_POLL_SECONDS = 0.25

#: Per-HTTP-request socket timeout (the *sweep* deadline is separate).
DEFAULT_HTTP_TIMEOUT = 30.0


def service_url() -> str | None:
    """The configured service endpoint, or ``None`` for in-process
    execution (the default). Set by ``--service`` / ``REPRO_SERVICE_URL``."""
    url = os.environ.get("REPRO_SERVICE_URL", "").strip()
    return url.rstrip("/") or None


class ServiceClient:
    """Blocking JSON client for one ``repro serve`` endpoint."""

    def __init__(
        self,
        url: str,
        http_timeout: float = DEFAULT_HTTP_TIMEOUT,
        poll: float = DEFAULT_POLL_SECONDS,
    ):
        self.url = url.rstrip("/")
        self.http_timeout = http_timeout
        self.poll = poll

    # ------------------------------------------------------------------

    def _call(self, method: str, path: str, body: dict | None = None) -> dict:
        data = None if body is None else json.dumps(body).encode()
        request = urllib.request.Request(
            f"{self.url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.http_timeout
            ) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read()).get("error", "")
            except Exception:  # noqa: BLE001 — error-path best effort
                detail = ""
            raise ServiceError(
                f"service returned {exc.code} for {method} {path}"
                + (f": {detail}" if detail else "")
            ) from exc
        except (urllib.error.URLError, OSError, ValueError) as exc:
            raise ServiceError(
                f"service unreachable at {self.url}: {exc}"
            ) from exc

    def healthz(self) -> bool:
        try:
            return bool(self._call("GET", "/healthz").get("ok"))
        except ServiceError:
            return False

    def status(self) -> dict:
        return self._call("GET", "/api/status")

    def submit_sweep(self, requests) -> dict:
        """POST one sweep; returns the server's full response (inline
        results for every cache hit, ``pending`` keys for the rest)."""
        return self._call(
            "POST",
            "/api/sweep",
            {"requests": [encode_request(r) for r in requests]},
        )

    def poll_sweep(self, sweep_id: str) -> dict:
        return self._call("GET", f"/api/sweep/{sweep_id}")

    # ------------------------------------------------------------------

    def run(
        self, requests, deadline: float | None = None
    ) -> tuple[dict, dict]:
        """Submit *requests* and wait for every result.

        Returns ``(results, failed)``: decoded
        :class:`~repro.uarch.stats.RunStats` by fingerprint key, and
        error strings by key for jobs the service gave up on. Raises
        :class:`~repro.errors.ServiceError` if *deadline* (wall-clock
        seconds) expires with jobs still pending — an absent worker
        looks exactly like this.
        """
        requests = list(requests)
        if not requests:
            return {}, {}
        response = self.submit_sweep(requests)
        start = time.monotonic()
        results = {
            key: decode_stats(payload)
            for key, payload in response["results"].items()
        }
        failed = dict(response.get("failed", {}))
        sweep = response["sweep"]
        while response.get("pending"):
            if (
                deadline is not None
                and time.monotonic() - start > deadline
            ):
                raise ServiceError(
                    f"sweep {sweep} still has "
                    f"{len(response['pending'])} pending job(s) after "
                    f"{deadline:.1f}s — is a `repro worker` running?",
                    key=response["pending"][0],
                )
            time.sleep(self.poll)
            response = self.poll_sweep(sweep)
            for key, payload in response["results"].items():
                if key not in results:
                    results[key] = decode_stats(payload)
            failed.update(response.get("failed", {}))
        return results, failed

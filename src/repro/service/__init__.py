"""Distributed experiment service: client/server halves of the harness.

The ROADMAP's "millions of users" story: hot results are *served*, not
recomputed. This package splits :func:`repro.harness.parallel.run_matrix`
into reusable halves:

* :mod:`repro.service.queue` — a persistent, crash-safe job queue of
  :class:`~repro.harness.parallel.RunRequest`\\ s (SQLite under
  ``.repro_cache/queue/``) with worker lease/claim/heartbeat semantics.
* :mod:`repro.service.store` — :class:`ContentStore`, one keyed
  get/put/verify/quarantine contract over the run cache, the snapshot
  store, and the fuzz corpus.
* :mod:`repro.service.server` — ``repro serve``: an asyncio HTTP API
  that answers sweep queries from the store in O(1) and enqueues only
  misses.
* :mod:`repro.service.worker` — ``repro worker``: a process (on any
  machine sharing the cache root) that drains the queue under the
  fault-layer retry/timeout discipline and publishes results back
  through the store.
* :mod:`repro.service.client` — the thin HTTP client ``run_matrix``
  becomes when ``REPRO_SERVICE_URL`` is set.

Service-mode and in-process execution are bit-identical (the simulator
is deterministic and both publish through the same content-addressed
store); ``tests/service/test_service.py`` asserts exactly that.
"""

from repro.service.store import ContentStore  # noqa: F401

"""Persistent, crash-safe job queue for the experiment service.

One SQLite database under ``<cache root>/queue/jobs.db`` holds every
outstanding :class:`~repro.harness.parallel.RunRequest` as a job keyed
by its run-cache fingerprint — the same content address the result
will be published under — plus the sweeps the server has accepted.
SQLite gives the queue what the file-per-entry stores cannot: an
atomic compare-and-set per claim, so any number of ``repro worker``
processes on any machines sharing the cache root can drain one queue
without double-granting a job.

**Lease/claim/heartbeat.** A claim marks the job ``leased`` with an
owner and a deadline; the worker heartbeats to push the deadline out
while it runs. A worker that dies mid-lease simply stops heartbeating:
once the deadline passes, the next claim re-leases the job (counted in
``lease_expiries``), charging one attempt — the queue-level mirror of
the PR 3 pool discipline (a crash costs an attempt; attempts are
bounded; the job is *quarantined* as ``failed`` when they run out).
Completion is owner-checked, so a worker that lost its lease cannot
complete a job out from under the worker that re-leased it; because
results are content-addressed and the simulator is deterministic, a
doubly-*executed* job still converges to identical bytes in the store
(asserted by ``tests/service/test_worker_crash.py``).

Job states: ``pending`` → ``leased`` → ``done`` | ``failed``
(a failed job is revived to ``pending`` by resubmission).
"""

from __future__ import annotations

import json
import os
import socket
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.harness.cache import DEFAULT_CACHE_DIR, fingerprint
from repro.service.codec import decode_request, encode_request

#: Subdirectory of the cache root holding the queue database.
QUEUE_SUBDIR = "queue"

#: Default attempts a job may consume (first execution included)
#: before it is marked ``failed`` — the queue-level retry budget.
DEFAULT_MAX_ATTEMPTS = 3

#: Default seconds a claim holds its lease without a heartbeat.
DEFAULT_LEASE_SECONDS = 30.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    key            TEXT PRIMARY KEY,
    request        TEXT NOT NULL,
    kind           TEXT NOT NULL DEFAULT 'run',
    status         TEXT NOT NULL DEFAULT 'pending',
    attempts       INTEGER NOT NULL DEFAULT 0,
    max_attempts   INTEGER NOT NULL,
    owner          TEXT,
    lease_deadline REAL,
    error          TEXT,
    created        REAL NOT NULL,
    updated        REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS jobs_status ON jobs (status, created);
CREATE TABLE IF NOT EXISTS sweeps (
    sweep_id TEXT PRIMARY KEY,
    keys     TEXT NOT NULL,
    created  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS assemblies (
    key     TEXT PRIMARY KEY,
    payload TEXT NOT NULL,
    created REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS counters (
    name  TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
"""

JOB_STATUSES = ("pending", "leased", "done", "failed")

#: Job kinds: a ``run`` job's key is the run-cache fingerprint of its
#: request; a ``window`` job's key is the *windows*-namespace
#: fingerprint and its request is the derived single-window request
#: (see :func:`~repro.harness.parallel.window_request`).
JOB_KINDS = ("run", "window")


def default_owner() -> str:
    """Worker identity for lease bookkeeping (diagnostic, not auth)."""
    return f"{socket.gethostname()}:{os.getpid()}"


@dataclass(frozen=True)
class Job:
    """One queue row, with the request decoded back to a dataclass."""

    key: str
    request: object  # RunRequest
    status: str
    attempts: int
    max_attempts: int
    owner: str | None
    lease_deadline: float | None
    error: str | None
    kind: str = "run"


class JobQueue:
    """SQLite-backed lease queue under ``<cache root>/queue/``.

    Safe for concurrent use from multiple processes (SQLite locking)
    and from multiple threads of one process (an instance lock
    serializes the shared connection).
    """

    def __init__(
        self,
        cache_root: str | os.PathLike | None = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ):
        if cache_root is None:
            cache_root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = Path(cache_root) / QUEUE_SUBDIR
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / "jobs.db"
        self.max_attempts = max_attempts
        self._lock = threading.Lock()
        self._db = sqlite3.connect(
            self.path,
            timeout=30.0,
            isolation_level=None,  # explicit transactions only
            check_same_thread=False,
        )
        self._db.executescript(_SCHEMA)
        # Migration: queue databases from before window-parallel
        # execution lack the ``kind`` column (and get the assemblies
        # table from the executescript above); every old row is a
        # whole-request job, exactly what the default says.
        columns = {
            row[1]
            for row in self._db.execute("PRAGMA table_info(jobs)")
        }
        if "kind" not in columns:
            self._db.execute(
                "ALTER TABLE jobs ADD COLUMN kind TEXT NOT NULL"
                " DEFAULT 'run'"
            )

    def close(self) -> None:
        with self._lock:
            self._db.close()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def submit(
        self, request, kind: str = "run", key: str | None = None
    ) -> tuple[str, bool]:
        """Enqueue *request*; return ``(key, enqueued)``.

        Idempotent on the content-addressed key: a request already
        pending, leased, or done is not enqueued again (``enqueued``
        False); a previously *failed* job is revived to ``pending``
        with a fresh attempt budget. ``kind="window"`` jobs carry the
        derived single-window request and must pass their
        windows-namespace *key* explicitly (the run fingerprint of a
        derived request is *not* its window key).
        """
        if kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {kind!r}; known: {JOB_KINDS}")
        if key is None:
            if kind != "run":
                raise ValueError("window jobs need an explicit key")
            key = fingerprint(request)
        payload = json.dumps(
            encode_request(request), sort_keys=True, separators=(",", ":")
        )
        now = time.time()
        with self._lock:
            self._db.execute("BEGIN IMMEDIATE")
            try:
                row = self._db.execute(
                    "SELECT status FROM jobs WHERE key = ?", (key,)
                ).fetchone()
                if row is None:
                    self._db.execute(
                        "INSERT INTO jobs (key, request, kind, status,"
                        " attempts, max_attempts, created, updated)"
                        " VALUES (?, ?, ?, 'pending', 0, ?, ?, ?)",
                        (key, payload, kind, self.max_attempts, now, now),
                    )
                    self._bump("submitted")
                    enqueued = True
                elif row[0] == "failed":
                    self._db.execute(
                        "UPDATE jobs SET status = 'pending', attempts = 0,"
                        " owner = NULL, lease_deadline = NULL, error = NULL,"
                        " updated = ? WHERE key = ?",
                        (now, key),
                    )
                    self._bump("resubmitted")
                    enqueued = True
                else:
                    enqueued = False
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise
        return key, enqueued

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def claim(
        self, owner: str | None = None, lease: float = DEFAULT_LEASE_SECONDS
    ) -> Job | None:
        """Atomically lease the oldest runnable job, or ``None``.

        Runnable means ``pending``, or ``leased`` past its deadline
        (the previous owner crashed or hung — the re-lease is counted
        in ``lease_expiries``). Claiming charges one attempt; a job
        whose expired lease already spent its last attempt is marked
        ``failed`` here rather than re-granted forever.
        """
        owner = owner or default_owner()
        now = time.time()
        with self._lock:
            self._db.execute("BEGIN IMMEDIATE")
            try:
                while True:
                    row = self._db.execute(
                        "SELECT key, request, status, attempts,"
                        " max_attempts, kind"
                        " FROM jobs WHERE status = 'pending'"
                        " OR (status = 'leased' AND lease_deadline < ?)"
                        " ORDER BY created LIMIT 1",
                        (now,),
                    ).fetchone()
                    if row is None:
                        self._db.execute("COMMIT")
                        return None
                    key, payload, status, attempts, max_attempts, kind = row
                    if status == "leased":
                        self._bump("lease_expiries")
                        if attempts >= max_attempts:
                            self._db.execute(
                                "UPDATE jobs SET status = 'failed',"
                                " owner = NULL, lease_deadline = NULL,"
                                " error = ?, updated = ? WHERE key = ?",
                                (
                                    f"lease expired after {attempts} "
                                    "attempt(s); retries exhausted",
                                    now,
                                    key,
                                ),
                            )
                            self._bump("failed")
                            continue
                    self._db.execute(
                        "UPDATE jobs SET status = 'leased', owner = ?,"
                        " lease_deadline = ?, attempts = attempts + 1,"
                        " updated = ? WHERE key = ?",
                        (owner, now + lease, now, key),
                    )
                    self._db.execute("COMMIT")
                    return Job(
                        key=key,
                        request=decode_request(json.loads(payload)),
                        status="leased",
                        attempts=attempts + 1,
                        max_attempts=max_attempts,
                        owner=owner,
                        lease_deadline=now + lease,
                        error=None,
                        kind=kind,
                    )
            except BaseException:
                self._db.execute("ROLLBACK")
                raise

    def heartbeat(
        self,
        key: str,
        owner: str,
        lease: float = DEFAULT_LEASE_SECONDS,
    ) -> bool:
        """Extend *owner*'s lease on *key*; ``False`` if the lease was
        lost (expired and re-granted, or the job already resolved)."""
        with self._lock:
            cursor = self._db.execute(
                "UPDATE jobs SET lease_deadline = ?, updated = ?"
                " WHERE key = ? AND status = 'leased' AND owner = ?",
                (time.time() + lease, time.time(), key, owner),
            )
        return cursor.rowcount == 1

    def complete(self, key: str, owner: str) -> bool:
        """Mark *key* done — only for the worker still holding its
        lease, so a zombie that lost the job cannot resolve it twice.
        (The zombie's *result* is harmless either way: it published
        content-addressed bytes identical to the live worker's.)"""
        with self._lock:
            cursor = self._db.execute(
                "UPDATE jobs SET status = 'done', owner = NULL,"
                " lease_deadline = NULL, error = NULL, updated = ?"
                " WHERE key = ? AND status = 'leased' AND owner = ?",
                (time.time(), key, owner),
            )
            if cursor.rowcount == 1:
                self._bump("completed")
                return True
        return False

    def fail(self, key: str, owner: str, error: str) -> bool:
        """Record a failed attempt: requeue as ``pending`` while the
        attempt budget lasts, else mark ``failed`` (the queue's
        quarantine state). Owner-checked like :meth:`complete`."""
        with self._lock:
            self._db.execute("BEGIN IMMEDIATE")
            try:
                row = self._db.execute(
                    "SELECT attempts, max_attempts FROM jobs"
                    " WHERE key = ? AND status = 'leased' AND owner = ?",
                    (key, owner),
                ).fetchone()
                if row is None:
                    self._db.execute("COMMIT")
                    return False
                attempts, max_attempts = row
                status = "pending" if attempts < max_attempts else "failed"
                self._db.execute(
                    "UPDATE jobs SET status = ?, owner = NULL,"
                    " lease_deadline = NULL, error = ?, updated = ?"
                    " WHERE key = ?",
                    (status, error, time.time(), key),
                )
                if status == "failed":
                    self._bump("failed")
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise
        return True

    # ------------------------------------------------------------------
    # Sweeps (server bookkeeping: a named list of result keys)
    # ------------------------------------------------------------------

    def save_sweep(self, sweep_id: str, keys: list[str]) -> None:
        with self._lock:
            self._db.execute(
                "INSERT OR REPLACE INTO sweeps (sweep_id, keys, created)"
                " VALUES (?, ?, ?)",
                (sweep_id, json.dumps(keys), time.time()),
            )

    def load_sweep(self, sweep_id: str) -> list[str] | None:
        with self._lock:
            row = self._db.execute(
                "SELECT keys FROM sweeps WHERE sweep_id = ?", (sweep_id,)
            ).fetchone()
        return None if row is None else json.loads(row[0])

    # ------------------------------------------------------------------
    # Assemblies (server bookkeeping: a decomposed multi-region request
    # awaiting its windows — the parent's run-cache key maps to the
    # encoded parent request and its depth-ordered window keys)
    # ------------------------------------------------------------------

    def save_assembly(self, key: str, payload: dict) -> None:
        """Record that run-cache key *key* is assembled from windows.

        *payload* is ``{"request": <encoded parent request>,
        "windows": [[depth, window_key], ...]}`` in depth order — all
        the server's poll path needs to reassemble the aggregate once
        every (kept) window has landed in the windows namespace.
        """
        with self._lock:
            self._db.execute(
                "INSERT OR REPLACE INTO assemblies (key, payload, created)"
                " VALUES (?, ?, ?)",
                (key, json.dumps(payload, sort_keys=True), time.time()),
            )

    def load_assembly(self, key: str) -> dict | None:
        with self._lock:
            row = self._db.execute(
                "SELECT payload FROM assemblies WHERE key = ?", (key,)
            ).fetchone()
        return None if row is None else json.loads(row[0])

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------

    def job(self, key: str) -> Job | None:
        with self._lock:
            row = self._db.execute(
                "SELECT key, request, status, attempts, max_attempts,"
                " owner, lease_deadline, error, kind"
                " FROM jobs WHERE key = ?",
                (key,),
            ).fetchone()
        if row is None:
            return None
        return Job(
            key=row[0],
            request=decode_request(json.loads(row[1])),
            status=row[2],
            attempts=row[3],
            max_attempts=row[4],
            owner=row[5],
            lease_deadline=row[6],
            error=row[7],
            kind=row[8],
        )

    def status_counts(self) -> dict[str, int]:
        counts = dict.fromkeys(JOB_STATUSES, 0)
        with self._lock:
            for status, count in self._db.execute(
                "SELECT status, COUNT(*) FROM jobs GROUP BY status"
            ):
                counts[status] = count
        return counts

    def counters(self) -> dict[str, int]:
        """Lifetime event counters (submissions, completions, lease
        expiries, failures) — they survive queue restarts."""
        with self._lock:
            return dict(
                self._db.execute("SELECT name, value FROM counters")
            )

    def stats(self) -> dict:
        return {"jobs": self.status_counts(), "counters": self.counters()}

    def clear(self) -> int:
        """Drop every job and sweep; return the number of jobs removed
        (lifetime counters are kept — they are accounting, not state)."""
        with self._lock:
            removed = self._db.execute(
                "SELECT COUNT(*) FROM jobs"
            ).fetchone()[0]
            self._db.execute("DELETE FROM jobs")
            self._db.execute("DELETE FROM sweeps")
            self._db.execute("DELETE FROM assemblies")
        return removed

    # ------------------------------------------------------------------

    def _bump(self, name: str) -> None:
        """Increment a lifetime counter (caller holds lock/txn)."""
        self._db.execute(
            "INSERT INTO counters (name, value) VALUES (?, 1)"
            " ON CONFLICT(name) DO UPDATE SET value = value + 1",
            (name,),
        )

"""Unified content-addressed store: one contract over every cache.

Three on-disk stores grew up beside each other — the run cache
(:class:`~repro.harness.cache.RunCache`), the snapshot store
(:class:`~repro.harness.fastforward.SnapshotStore`), and the fuzz
corpus (:mod:`repro.fuzz.corpus`) — each with its own clear/ls/
quarantine accounting scattered across the CLI. :class:`ContentStore`
fronts all of them as *namespaces* under one cache root with one keyed
get/put/verify/quarantine contract:

* ``runs`` / ``snapshots`` — the existing
  :class:`~repro.harness.blobstore.IntegrityStore` subclasses
  (checksummed payloads, corrupt → ``corrupt/``), unchanged on disk.
* ``fuzz`` — :class:`FuzzNamespace`, which wraps the JSON corpus in
  the same contract: a case that fails JSON parsing or the schema
  check is quarantined to the shared ``corrupt/`` directory and
  counted, instead of crashing ``repro fuzz ls``. (Corpus files stay
  plain JSON — diffable, committable — so this namespace validates by
  schema rather than checksum.)

The store also owns the **persistent hit/miss counters** behind
``repro cache stats``: each namespace's in-process counters are
accumulated into ``<cache root>/stats_counters.json`` by
:meth:`ContentStore.flush_counters` (called by ``run_matrix``, the
worker loop, and the server), so hit rates survive across processes.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path

from repro.fuzz import corpus as fuzz_corpus
from repro.harness.blobstore import CORRUPT_SUBDIR
from repro.harness.cache import DEFAULT_CACHE_DIR, RunCache, WindowCache
from repro.harness.fastforward import SnapshotStore

log = logging.getLogger(__name__)

#: Namespaces every :class:`ContentStore` exposes, in display order.
#: ``windows`` holds one entry per detailed window of a multi-region
#: run (:func:`~repro.harness.cache.window_fingerprint` keys) — the
#: finer granularity the window-parallel scheduler caches at.
NAMESPACES = ("runs", "windows", "snapshots", "fuzz")

#: Persistent counter accumulator under the cache root.
COUNTERS_FILE = "stats_counters.json"


class FuzzNamespace:
    """The fuzz corpus under the unified store contract.

    Keys are the corpus's own case names (``0x2a``-style seed tags);
    payloads are the schema-checked case dicts. Validation failures
    quarantine the file to the shared ``corrupt/`` directory — the
    evidence survives, the listing keeps working, and the corruption
    is counted exactly like a rotten run-cache entry.
    """

    suffix = ".repro.json"

    def __init__(self, cache_root: str | os.PathLike, enabled: bool = True):
        self.cache_root = Path(cache_root)
        self.root = fuzz_corpus.corpus_root(cache_root)
        self.corrupt_dir = self.cache_root / CORRUPT_SUBDIR
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.corruptions = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}{self.suffix}"

    def get(self, key: str) -> dict | None:
        """Load and schema-check one case; quarantine on corruption."""
        if not self.enabled:
            self.misses += 1
            return None
        path = self._path(key)
        if not path.is_file():
            self.misses += 1
            return None
        try:
            case = fuzz_corpus.load_case(path)
        except (ValueError, KeyError, OSError) as exc:
            self.corruptions += 1
            self.misses += 1
            try:
                self.corrupt_dir.mkdir(parents=True, exist_ok=True)
                os.replace(path, self.corrupt_dir / path.name)
            except OSError:
                pass
            log.warning(
                "quarantined corrupt fuzz case %s: %s", path.name, exc
            )
            return None
        self.hits += 1
        return case

    def put(self, workload, divergence, **kwargs) -> Path:
        """Persist one case through the corpus writer."""
        return fuzz_corpus.save_case(
            workload, divergence, cache_root=self.cache_root, **kwargs
        )

    def entry_paths(self):
        return fuzz_corpus.case_paths(self.cache_root)

    def total_bytes(self) -> int:
        return sum(path.stat().st_size for path in self.entry_paths())

    def quarantined_count(self) -> int:
        if not self.corrupt_dir.exists():
            return 0
        return sum(1 for _ in self.corrupt_dir.glob(f"*{self.suffix}"))

    def clear(self) -> int:
        removed = fuzz_corpus.clear(self.cache_root)
        if self.corrupt_dir.exists():
            for path in self.corrupt_dir.glob(f"*{self.suffix}"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


class ContentStore:
    """Every namespace of the cache root behind one object.

    ``runs``, ``snapshots``, and ``fuzz`` share the root directory (and
    the ``corrupt/`` quarantine) but keep their own suffixes, schemas,
    and decoders — exactly as before; this class adds the shared
    surface (stats / clear / counter persistence), not a new disk
    format. Existing cache contents are fully compatible.
    """

    def __init__(
        self,
        cache_root: str | os.PathLike | None = None,
        enabled: bool = True,
    ):
        if cache_root is None:
            cache_root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = Path(cache_root)
        self.runs = RunCache(cache_root, enabled=enabled)
        self.windows = WindowCache(cache_root, enabled=enabled)
        self.snapshots = SnapshotStore(cache_root, enabled=enabled)
        self.fuzz = FuzzNamespace(cache_root, enabled=enabled)
        self._flushed: dict[str, tuple[int, int, int]] = {}
        # Back-pointers so ``run_matrix`` can flush the persistent
        # counters when handed ``store.runs`` as its cache, and so its
        # window decomposition reuses this namespace (counters and
        # all) instead of minting a parallel WindowCache.
        self.runs.content_store = self
        self.runs.window_store = self.windows

    def namespaces(self) -> dict[str, object]:
        return {
            "runs": self.runs,
            "windows": self.windows,
            "snapshots": self.snapshots,
            "fuzz": self.fuzz,
        }

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    @property
    def counters_path(self) -> Path:
        return self.root / COUNTERS_FILE

    def flush_counters(self) -> None:
        """Accumulate this process's hit/miss/corruption counters into
        the persistent per-root file (read-merge-rename; concurrent
        flushes may drop each other's deltas — the counters are
        operational telemetry, not correctness state)."""
        totals = self._read_counters()
        dirty = False
        for name, store in self.namespaces().items():
            seen = self._flushed.get(name, (0, 0, 0))
            delta = (
                store.hits - seen[0],
                store.misses - seen[1],
                store.corruptions - seen[2],
            )
            if any(delta):
                dirty = True
                entry = totals.setdefault(
                    name, {"hits": 0, "misses": 0, "corruptions": 0}
                )
                entry["hits"] += delta[0]
                entry["misses"] += delta[1]
                entry["corruptions"] += delta[2]
                self._flushed[name] = (
                    store.hits, store.misses, store.corruptions
                )
        if not dirty:
            return
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = self.counters_path.with_suffix(f".tmp{os.getpid()}")
            tmp.write_text(json.dumps(totals, sort_keys=True, indent=1))
            os.replace(tmp, self.counters_path)
        except OSError:
            pass  # telemetry write failure must never fail a run

    def _read_counters(self) -> dict:
        try:
            data = json.loads(self.counters_path.read_text())
        except (OSError, ValueError):
            return {}
        return data if isinstance(data, dict) else {}

    def stats(self) -> dict:
        """Per-namespace disk + counter accounting for
        ``repro cache stats`` and the server's ``/api/status``."""
        persisted = self._read_counters()
        out = {}
        for name, store in self.namespaces().items():
            lifetime = persisted.get(name, {})
            hits = lifetime.get("hits", 0) + store.hits
            misses = lifetime.get("misses", 0) + store.misses
            lookups = hits + misses
            out[name] = {
                "entries": sum(1 for _ in store.entry_paths()),
                "bytes": store.total_bytes(),
                "quarantined": store.quarantined_count(),
                "hits": hits,
                "misses": misses,
                "corruptions": (
                    lifetime.get("corruptions", 0) + store.corruptions
                ),
                "hit_rate": (hits / lookups) if lookups else None,
            }
        return out

    # ------------------------------------------------------------------
    # Clear
    # ------------------------------------------------------------------

    def clear(self, only: str | None = None) -> dict[str, int]:
        """Clear namespaces (all, or just *only*); returns
        ``{namespace: entries removed}`` so the CLI can report exactly
        what went away. Clearing everything also drops the persistent
        counters and the job queue's outstanding jobs."""
        stores = self.namespaces()
        if only is not None:
            if only not in stores:
                raise ValueError(
                    f"unknown namespace {only!r}; known: {tuple(stores)}"
                )
            return {only: stores[only].clear()}
        removed = {name: store.clear() for name, store in stores.items()}
        try:
            self.counters_path.unlink()
        except OSError:
            pass
        self._flushed.clear()
        queue_db = self.root / "queue" / "jobs.db"
        if queue_db.exists():
            from repro.service.queue import JobQueue

            queue = JobQueue(self.root)
            removed["queue"] = queue.clear()
            queue.close()
        return removed

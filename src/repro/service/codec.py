"""Wire encodings for the experiment service.

Two payload kinds cross the service boundary:

* **Requests** travel as canonical JSON — the same
  ``dataclasses.asdict`` shape the cache fingerprint digests, so a
  request encoded by a client, decoded by the server, and decoded again
  by a worker lands on the *identical* content-addressed key. The
  round-trip is exact for JSON-native field values (every preset and
  CLI path produces those).
* **Results** (:class:`~repro.uarch.stats.RunStats`) travel as
  checksummed pickles: base64 payload plus its SHA-256, verified by the
  receiver **before any unpickling** — the same integrity-first
  discipline as the on-disk stores (:mod:`repro.harness.blobstore`).
  Pickle keeps service results bit-identical to in-process results;
  the checksum means a truncated or corrupted response is rejected, not
  parsed. The service trusts its peers (one team's cache, one cluster)
  — it is not hardened against a hostile server.
"""

from __future__ import annotations

import base64
import dataclasses
import pickle

from repro.errors import ServiceError
from repro.harness.blobstore import payload_digest
from repro.uarch.stats import RunStats


def encode_request(request) -> dict:
    """JSON-native payload for one RunRequest (fingerprint shape)."""
    return dataclasses.asdict(request)


def decode_request(payload: dict):
    """Rebuild a :class:`~repro.harness.parallel.RunRequest` from
    :func:`encode_request` output.

    JSON has no tuples, so sequence fields come back as lists and are
    re-tupled here; ``RunRequest.__post_init__`` then re-normalizes,
    making ``decode(encode(r)) == r`` for JSON-native requests.
    """
    from repro.harness.parallel import RunRequest

    payload = dict(payload)
    payload["overrides"] = tuple(
        (path, value) for path, value in payload.get("overrides", ())
    )
    for field in ("perfect_branch_pcs", "perfect_load_pcs"):
        payload[field] = tuple(payload.get(field, ()))
    return RunRequest(**payload)


def encode_stats(stats: RunStats) -> dict:
    """Checksummed wire form of one result."""
    blob = pickle.dumps({"stats": stats}, protocol=pickle.HIGHEST_PROTOCOL)
    return {
        "payload": base64.b64encode(blob).decode("ascii"),
        "sha256": payload_digest(blob),
    }


def decode_stats(payload: dict) -> RunStats:
    """Verify and unpickle one :func:`encode_stats` payload.

    The checksum is verified before the bytes reach the pickle parser;
    a mismatch (or a payload that is not RunStats) raises
    :class:`~repro.errors.ServiceError` instead of trusting the bytes.
    """
    try:
        blob = base64.b64decode(payload["payload"].encode("ascii"))
    except (KeyError, ValueError, AttributeError) as exc:
        raise ServiceError(f"malformed result payload: {exc}") from exc
    if payload_digest(blob) != payload.get("sha256"):
        raise ServiceError("result payload checksum mismatch")
    stats = pickle.loads(blob)["stats"]
    if not isinstance(stats, RunStats):
        raise ServiceError(
            f"result payload is {type(stats).__name__}, not RunStats"
        )
    return stats

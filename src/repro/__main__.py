"""``python -m repro`` — regenerate the paper's tables and figures."""

from repro.harness.cli import main

raise SystemExit(main())

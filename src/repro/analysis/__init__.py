"""Analysis: problem-instruction profiling and run characterization."""

from repro.analysis.characterize import (
    RunCharacterization,
    SliceCharacterization,
    characterize_run,
    characterize_slice,
)
from repro.analysis.mix import InstructionMix, instruction_mix, render_mix_table
from repro.analysis.problem import (
    ClassifierConfig,
    CoverageSummary,
    ProblemClassification,
    classify_problem_instructions,
)

__all__ = [
    "ClassifierConfig",
    "InstructionMix",
    "instruction_mix",
    "render_mix_table",
    "CoverageSummary",
    "ProblemClassification",
    "RunCharacterization",
    "SliceCharacterization",
    "characterize_run",
    "characterize_slice",
    "classify_problem_instructions",
]

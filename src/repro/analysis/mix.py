"""Workload characterization: instruction mix and working sets.

Utility analyses used by the documentation and tests to check that each
SPEC2000int analog has a sensible profile (e.g. that mcf is
memory-dominated and eon compute-dominated), the way a real benchmark
suite documents itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.exceptions import Fault
from repro.arch.interpreter import run_functional
from repro.arch.memory import Memory
from repro.arch.state import ThreadState
from repro.isa.opcodes import OpClass
from repro.workloads.base import Workload


@dataclass
class InstructionMix:
    """Dynamic instruction-mix of one workload run."""

    total: int
    loads: int
    stores: int
    branches: int
    simple_alu: int
    complex_alu: int
    #: Distinct 64B lines touched by data accesses.
    data_lines_touched: int
    #: Distinct static PCs executed.
    static_footprint: int

    @property
    def load_fraction(self) -> float:
        return self.loads / self.total if self.total else 0.0

    @property
    def store_fraction(self) -> float:
        return self.stores / self.total if self.total else 0.0

    @property
    def branch_fraction(self) -> float:
        return self.branches / self.total if self.total else 0.0

    @property
    def data_working_set_bytes(self) -> int:
        return self.data_lines_touched * 64


def instruction_mix(
    workload: Workload, max_instructions: int = 2_000_000
) -> InstructionMix:
    """Run *workload* functionally and collect its dynamic mix."""
    state = ThreadState(Memory(workload.memory_image), workload.program.entry_pc)
    total = loads = stores = branches = simple = complex_ops = 0
    lines: set[int] = set()
    pcs: set[int] = set()
    for inst, result in run_functional(
        workload.program, state, max_instructions
    ):
        total += 1
        pcs.add(inst.pc)
        if inst.is_load:
            loads += 1
        elif inst.is_store:
            stores += 1
        elif inst.is_branch:
            branches += 1
        elif inst.op_class is OpClass.COMPLEX:
            complex_ops += 1
        else:
            simple += 1
        if result.addr is not None:
            lines.add(result.addr >> 6)
        if result.fault is Fault.HALT:
            break
    return InstructionMix(
        total=total,
        loads=loads,
        stores=stores,
        branches=branches,
        simple_alu=simple,
        complex_alu=complex_ops,
        data_lines_touched=len(lines),
        static_footprint=len(pcs),
    )


def render_mix_table(rows: list[tuple[str, InstructionMix]]) -> str:
    """Fixed-width instruction-mix table for all workloads."""
    lines = [
        "Workload characterization (dynamic mix, functional run)",
        "",
        f"{'program':<9s}{'dyn insts':>10s}{'ld%':>6s}{'st%':>6s}"
        f"{'br%':>6s}{'data WS':>10s}{'static':>8s}",
        "-" * 55,
    ]
    for name, mix in rows:
        lines.append(
            f"{name:<9s}{mix.total:>10d}{mix.load_fraction:>6.0%}"
            f"{mix.store_fraction:>6.0%}{mix.branch_fraction:>6.0%}"
            f"{mix.data_working_set_bytes // 1024:>8d}KB"
            f"{mix.static_footprint:>8d}"
        )
    return "\n".join(lines)

"""Slice and run characterization (Tables 3 and 4).

:func:`characterize_slice` reproduces one Table 3 row from a
:class:`~repro.slices.spec.SliceSpec`; :func:`characterize_run`
reproduces one Table 4 column from a baseline/slice-assisted pair of
:class:`~repro.uarch.stats.RunStats`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.slices.spec import KillKind, SliceSpec
from repro.uarch.stats import RunStats, mean_ci95


@dataclass
class SliceCharacterization:
    """One Table 3 row."""

    program: str
    slice_name: str
    static_size: int
    loop_size: int | None
    live_ins: int
    prefetches: int
    prefetches_in_loop: int
    predictions: int
    predictions_in_loop: int
    kills: int
    kills_in_loop: int
    max_iterations: int | None


def _loop_region(spec: SliceSpec) -> tuple[int, int] | None:
    """PC range [start, end] of the slice's loop, if it has one.

    The loop body spans from the back-edge branch's target to the
    back-edge itself (the slice loops are natural single-back-edge
    loops).
    """
    if spec.loop_back_pc is None:
        return None
    back_edge = spec.code.at(spec.loop_back_pc)
    if back_edge is None or back_edge.target is None:
        return None
    return back_edge.target, spec.loop_back_pc


def characterize_slice(program: str, spec: SliceSpec) -> SliceCharacterization:
    """Build the Table 3 row for *spec*."""
    region = _loop_region(spec)

    def in_loop(pc: int) -> bool:
        return region is not None and region[0] <= pc <= region[1]

    loop_size = None
    if region is not None:
        loop_size = sum(
            1 for inst in spec.code.instructions if in_loop(inst.pc)
        )
    return SliceCharacterization(
        program=program,
        slice_name=spec.name,
        static_size=spec.static_size,
        loop_size=loop_size,
        live_ins=len(spec.live_in_regs),
        prefetches=len(spec.prefetch_for),
        prefetches_in_loop=sum(1 for pc in spec.prefetch_for if in_loop(pc)),
        predictions=len(spec.pgis),
        predictions_in_loop=sum(
            1 for pgi in spec.pgis if in_loop(pgi.slice_pc)
        ),
        kills=len(spec.kills),
        kills_in_loop=sum(
            1
            for kill in spec.kills
            if kill.kind is KillKind.LOOP
        ),
        max_iterations=spec.max_iterations,
    )


@dataclass
class RunCharacterization:
    """One Table 4 column: base vs slice-assisted execution."""

    program: str
    # Base.
    base_fetched: int
    base_mispredictions: int
    base_load_misses: int
    base_ipc: float
    # Base + slices.
    slice_fetched_main: int
    slice_fetched_helper: int
    slice_retired_helper: int
    fork_points: int
    forks_squashed: int
    forks_ignored: int
    problem_branches_covered: int
    predictions_generated: int
    mispredictions_remaining: int
    incorrect_predictions: int
    late_fraction: float
    prefetches_performed: int
    load_misses_remaining: int
    slice_ipc: float
    #: Containment kills (runaway fuse / architectural fault): nonzero
    #: values mean slices misbehaved and were contained, not that the
    #: run misbehaved.
    slices_killed_fuse: int = 0
    slices_killed_fault: int = 0
    #: Multi-region sampling: window count and the 95% confidence
    #: half-widths on the IPCs and the speedup (0 = full-detail point
    #: estimates; see :func:`repro.uarch.stats.mean_ci95`).
    sample_regions: int = 0
    base_ipc_ci: float = 0.0
    slice_ipc_ci: float = 0.0
    speedup_ci: float = 0.0

    @property
    def speedup(self) -> float:
        return self.slice_ipc / self.base_ipc - 1.0 if self.base_ipc else 0.0

    @property
    def mispredictions_removed(self) -> int:
        return self.base_mispredictions - self.mispredictions_remaining

    @property
    def misprediction_reduction(self) -> float:
        if not self.base_mispredictions:
            return 0.0
        return self.mispredictions_removed / self.base_mispredictions

    @property
    def miss_reduction(self) -> float:
        if not self.base_load_misses:
            return 0.0
        return (
            self.base_load_misses - self.load_misses_remaining
        ) / self.base_load_misses

    @property
    def total_fetch_change(self) -> float:
        """Relative change in total fetched instructions (negative when
        slices reduce wrong-path work enough to pay for themselves)."""
        if not self.base_fetched:
            return 0.0
        total = self.slice_fetched_main + self.slice_fetched_helper
        return total / self.base_fetched - 1.0


def characterize_run(
    workload_name: str,
    base: RunStats,
    assisted: RunStats,
    covered_branches: int,
) -> RunCharacterization:
    """Build the Table 4 column from a baseline/assisted stats pair."""
    correlator = assisted.correlator
    generated = correlator.predictions_generated
    consumed = correlator.overrides + correlator.late_predictions
    late_fraction = (
        correlator.late_predictions / consumed if consumed else 0.0
    )
    # Multi-region runs carry per-window IPCs: report the sampled
    # estimators with confidence intervals. Base and assisted windows
    # are paired (same chain, same depths), so the speedup CI comes
    # from the per-region ratios.
    speedup_ci = 0.0
    paired = min(len(base.region_ipcs), len(assisted.region_ipcs))
    if paired >= 2:
        ratios = [
            assisted.region_ipcs[k] / base.region_ipcs[k] - 1.0
            for k in range(paired)
            if base.region_ipcs[k]
        ]
        if len(ratios) >= 2:
            speedup_ci = mean_ci95(ratios)[1]
    return RunCharacterization(
        program=workload_name,
        base_fetched=base.main_fetched,
        base_mispredictions=base.branch_mispredictions,
        base_load_misses=base.load_misses,
        base_ipc=base.ipc,
        slice_fetched_main=assisted.main_fetched,
        slice_fetched_helper=assisted.slice_fetched,
        slice_retired_helper=assisted.slice_retired,
        fork_points=assisted.fork_points_fetched,
        forks_squashed=assisted.forks_squashed,
        forks_ignored=assisted.forks_ignored,
        problem_branches_covered=covered_branches,
        predictions_generated=generated,
        mispredictions_remaining=assisted.branch_mispredictions,
        incorrect_predictions=correlator.incorrect_overrides,
        late_fraction=late_fraction,
        prefetches_performed=assisted.hierarchy.get("slice_prefetches", 0),
        load_misses_remaining=assisted.load_misses,
        slice_ipc=assisted.ipc,
        slices_killed_fuse=assisted.slices_killed_fuse,
        slices_killed_fault=assisted.slices_killed_fault,
        sample_regions=base.sample_regions,
        base_ipc_ci=base.ipc_ci95,
        slice_ipc_ci=assisted.ipc_ci95,
        speedup_ci=speedup_ci,
    )

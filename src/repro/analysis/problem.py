"""Problem-instruction classification (Section 2.2, Table 2).

The paper's rule: a static instruction is a *problem instruction* if it
accounts for a non-trivial number of performance degrading events and
at least 10% of its executions cause a PDE. The classifier below
applies the same rule to per-static-PC counters collected by the core.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.uarch.stats import PcCounter, RunStats


@dataclass(frozen=True)
class ClassifierConfig:
    """Thresholds of the Section 2.2 rule."""

    #: Minimum fraction of executions that must cause a PDE.
    min_event_rate: float = 0.10
    #: "Non-trivial number": at least this share of the category's
    #: total PDEs, and at least ``min_events`` in absolute terms.
    min_event_share: float = 0.002
    min_events: int = 4


@dataclass
class ProblemClassification:
    """Problem instructions identified in one baseline run."""

    branch_pcs: frozenset[int]
    load_pcs: frozenset[int]
    #: Full per-PC counters, for coverage computations.
    branch_counters: dict[int, PcCounter] = field(default_factory=dict)
    mem_counters: dict[int, PcCounter] = field(default_factory=dict)

    def coverage(self) -> "CoverageSummary":
        """Compute the Table 2 coverage numbers."""
        return CoverageSummary.from_classification(self)


@dataclass
class CoverageSummary:
    """One Table 2 row: how concentrated the PDEs are."""

    mem_problem_count: int
    mem_dynamic_share: float  # problem mem ops / all mem ops
    mem_miss_coverage: float  # misses at problem PCs / all misses
    branch_problem_count: int
    branch_dynamic_share: float
    branch_misp_coverage: float

    @classmethod
    def from_classification(
        cls, classification: "ProblemClassification"
    ) -> "CoverageSummary":
        def summarize(counters, chosen):
            total_exec = sum(c.executions for c in counters.values())
            total_events = sum(c.events for c in counters.values())
            chosen_exec = sum(counters[pc].executions for pc in chosen)
            chosen_events = sum(counters[pc].events for pc in chosen)
            share = chosen_exec / total_exec if total_exec else 0.0
            coverage = chosen_events / total_events if total_events else 0.0
            return share, coverage

        mem_share, mem_cov = summarize(
            classification.mem_counters, classification.load_pcs
        )
        br_share, br_cov = summarize(
            classification.branch_counters, classification.branch_pcs
        )
        return cls(
            mem_problem_count=len(classification.load_pcs),
            mem_dynamic_share=mem_share,
            mem_miss_coverage=mem_cov,
            branch_problem_count=len(classification.branch_pcs),
            branch_dynamic_share=br_share,
            branch_misp_coverage=br_cov,
        )


def _classify_category(
    counters: dict[int, PcCounter], config: ClassifierConfig
) -> frozenset[int]:
    total_events = sum(c.events for c in counters.values())
    floor = max(config.min_events, int(total_events * config.min_event_share))
    chosen = {
        pc
        for pc, counter in counters.items()
        if counter.events >= floor and counter.rate >= config.min_event_rate
    }
    return frozenset(chosen)


def classify_problem_instructions(
    stats: RunStats, config: ClassifierConfig | None = None
) -> ProblemClassification:
    """Apply the Section 2.2 rule to a baseline run's counters."""
    config = config or ClassifierConfig()
    return ProblemClassification(
        branch_pcs=_classify_category(stats.branch_pcs, config),
        load_pcs=_classify_category(stats.mem_pcs, config),
        branch_counters=dict(stats.branch_pcs),
        mem_counters=dict(stats.mem_pcs),
    )

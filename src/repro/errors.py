"""Typed exception taxonomy for the simulator and harness.

The paper's containment contract (Sections 2, 4) says a speculative
slice is a *pure* helper: a slice that faults, scribbles, or runs away
must never affect architectural correctness. The harness extends that
contract to the process level: one crashed or hung worker must never
take down a whole experiment matrix. Every failure mode that crosses a
layer boundary therefore has a typed exception here, so callers can
tell a simulated-machine bug (:class:`DeadlockError`) from harness
infrastructure trouble (:class:`WorkerCrashError`,
:class:`RunTimeoutError`) from storage rot
(:class:`CacheCorruptionError`) — and react per kind instead of
matching on strings.

All exceptions are picklable (they cross the process-pool boundary) and
reconstruct their extra attributes through ``__reduce__``.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for every typed repro error."""


class DeadlockError(SimulationError, RuntimeError):
    """The simulated machine can make no further progress.

    Carries the cycle of detection and the core's next-event diagnostic
    (what the event-driven loop would have waited on), so the CLI can
    report the machine state without a traceback. Also a
    :class:`RuntimeError` for callers that predate the taxonomy.
    """

    def __init__(self, message: str, cycle: int | None = None):
        super().__init__(message)
        self.cycle = cycle

    def __reduce__(self):
        return (type(self), (self.args[0], self.cycle))


class SliceRunawayError(SimulationError):
    """A helper thread exceeded its per-activation instruction fuse.

    Only raised in strict-containment debugging
    (``Core(strict_slices=True)``); the production containment path
    kills the slice silently and counts it in
    ``RunStats.slices_killed_fuse``.
    """

    def __init__(self, message: str, slice_name: str = "", fetched: int = 0):
        super().__init__(message)
        self.slice_name = slice_name
        self.fetched = fetched

    def __reduce__(self):
        return (type(self), (self.args[0], self.slice_name, self.fetched))


class CacheCorruptionError(SimulationError):
    """A run-cache entry failed checksum or schema validation.

    Raised internally by :class:`~repro.harness.cache.RunCache` decode
    and caught by its quarantine path; surfaces to callers only through
    the quarantine counter and warning log.
    """

    def __init__(self, message: str, path: str = ""):
        super().__init__(message)
        self.path = path

    def __reduce__(self):
        return (type(self), (self.args[0], self.path))


class WorkerCrashError(SimulationError):
    """A process-pool worker died (or its pool broke) mid-request."""

    def __init__(self, message: str, attempts: int = 0):
        super().__init__(message)
        self.attempts = attempts

    def __reduce__(self):
        return (type(self), (self.args[0], self.attempts))


class RunTimeoutError(SimulationError):
    """One matrix request exceeded its per-request wall-clock budget."""

    def __init__(self, message: str, timeout: float = 0.0, attempts: int = 0):
        super().__init__(message)
        self.timeout = timeout
        self.attempts = attempts

    def __reduce__(self):
        return (type(self), (self.args[0], self.timeout, self.attempts))


class ServiceError(SimulationError):
    """The experiment service misbehaved: an unreachable server, a
    malformed or checksum-failing response, or a remote job that
    exhausted its lease attempts.

    Carries the job key (the run-cache fingerprint) when the failure is
    attributable to one request.
    """

    def __init__(self, message: str, key: str = ""):
        super().__init__(message)
        self.key = key

    def __reduce__(self):
        return (type(self), (self.args[0], self.key))

"""Speculative slice specification (Section 3 of the paper).

A :class:`SliceSpec` bundles everything the slice-execution hardware
needs, mirroring the annotations of the paper's Figure 5:

* the slice code itself (stored "as normal instructions in the
  instruction cache", so it lives in the same PC space as the program),
* the fork point — an existing main-thread PC whose fetch triggers the
  fork (the binary-compatible scheme of Section 4.2),
* the live-in registers copied from the main thread at fork,
* the maximum loop iteration count that bounds "runaway" slices,
* the prediction generating instructions (PGIs) and the problem
  branches they feed, and
* the kill points used by the prediction correlator (Section 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.isa.opcodes import Opcode
from repro.isa.program import Program

#: Base PC where slice code is placed, far above main-program PCs
#: (slices live in the same instruction cache, Section 4.2, but must
#: not collide with main-thread fetch addresses).
SLICE_CODE_BASE = 0x80000

_BRANCH_TESTS = {
    Opcode.BEQ: lambda v: v == 0,
    Opcode.BNE: lambda v: v != 0,
    Opcode.BLT: lambda v: v < 0,
    Opcode.BGE: lambda v: v >= 0,
    Opcode.BLE: lambda v: v <= 0,
    Opcode.BGT: lambda v: v > 0,
}


@dataclass(frozen=True)
class SliceHardwareConfig:
    """Slice-execution hardware extensions (Sections 4-5, Figures 6 & 10).

    The paper's slice table + PGI table take under 512B and the
    prediction correlator about 1KB; these entry counts match those
    budgets.
    """

    slice_table_entries: int = 16
    pgi_table_entries: int = 64
    branch_queue_entries: int = 64
    predictions_per_branch: int = 8
    #: Per-activation instruction fuse: a helper thread that fetches
    #: this many instructions in one activation is killed and counted
    #: (``RunStats.slices_killed_fuse``) rather than allowed to run
    #: away — the hardware backstop behind the paper's §3.2 software
    #: bounds (loop iteration caps, null-pointer termination). Sized
    #: well above any legitimate slice (the largest shipped slice
    #: fetches ~1K instructions per activation); ``None`` disables it.
    max_slice_insts: int | None = 4096


class KillKind(enum.Enum):
    """The two kinds of prediction kills (Section 5.1, Figure 9)."""

    LOOP = "loop"  # kills the prediction for one loop iteration
    SLICE = "slice"  # kills all remaining predictions of the slice


class PGIKind(enum.Enum):
    """What a prediction generating instruction predicts.

    ``DIRECTION`` is the paper's mechanism. ``VALUE`` is the extension
    its conclusion proposes ("this technique ... can potentially be
    used to correlate other types of predictions (e.g., value
    predictions)"): the PGI's computed value is used as a value
    prediction for a problem *load*, letting the load's consumers
    execute before the memory access completes; the load verifies the
    prediction when it resolves, squashing like a mispredicted branch
    on a mismatch.
    """

    DIRECTION = "direction"
    VALUE = "value"
    #: The PGI computes the *target address* of an indirect problem
    #: branch (the Roth et al. virtual-call direction the paper's §7
    #: frames as the complement of its kill-based correlation): the
    #: front end uses it in place of the cascading predictor's target.
    TARGET = "target"


@dataclass(frozen=True)
class PGISpec:
    """One prediction generating instruction.

    ``slice_pc`` locates the PGI inside the slice code; ``branch_pc``
    names the problem branch in the main thread that should consume the
    computed outcome. The PGI's result value is interpreted as a
    direction: nonzero means taken (``invert`` flips this, letting a
    slice reuse an existing comparison with opposite polarity).
    """

    slice_pc: int
    #: The problem instruction in the main thread this PGI predicts: a
    #: conditional branch for DIRECTION PGIs, a load for VALUE PGIs.
    branch_pc: int
    kind: PGIKind = PGIKind.DIRECTION
    invert: bool = False
    #: The problem branch is conditionally executed (Figure 8): not
    #: every generated prediction will be consumed, and the correlator's
    #: kill mechanism (Section 5.1) is what keeps the rest aligned.
    conditional: bool = False
    #: How the PGI's value maps to a direction. By default the value is
    #: treated as a boolean (nonzero = taken, flipped by ``invert``).
    #: Automatically-constructed slices instead reuse the problem
    #: branch's own condition opcode (e.g. ``Opcode.BLT``): the PGI
    #: value is then the branch's tested register value.
    branch_cond: "Opcode | None" = None

    def direction_of(self, value: int) -> bool:
        if self.branch_cond is not None:
            taken = _BRANCH_TESTS[self.branch_cond](value)
        else:
            taken = value != 0
        return not taken if self.invert else taken


@dataclass(frozen=True)
class KillSpec:
    """A kill point: an existing main-thread instruction used as a kill.

    ``skip_first`` implements the back-edge-target rule: when the best
    loop-iteration kill block is the target of the loop back-edge, "the
    first instance of the block should not kill any predictions"
    (Section 5.1).
    """

    kill_pc: int
    kind: KillKind
    skip_first: bool = False
    #: Scope of ``skip_first``: "instance" (the paper's back-edge-target
    #: rule: each forked instance ignores its first fetch of this kill)
    #: or "global" (the first fetch overall is ignored — the alignment
    #: offset for pipelined one-ahead slices, where kill events and
    #: instances pair FIFO with a constant offset of one).
    skip_scope: str = "instance"


@dataclass(frozen=True)
class SliceSpec:
    """A complete speculative slice, ready to load into the slice table."""

    name: str
    fork_pc: int
    code: Program
    entry_pc: int
    live_in_regs: tuple[int, ...]
    pgis: tuple[PGISpec, ...] = ()
    kills: tuple[KillSpec, ...] = ()
    #: Iteration cap; ``None`` for straight-line slices.
    max_iterations: int | None = None
    #: PC of the slice's loop back-edge branch (iterations are counted
    #: when it executes taken).
    loop_back_pc: int | None = None
    #: Slice load PCs that prefetch problem loads; maps each slice load
    #: to the main-thread problem load PC it covers (for Table 3/4
    #: accounting).
    prefetch_for: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_iterations is not None and self.loop_back_pc is None:
            raise ValueError(
                f"slice {self.name!r}: max_iterations requires loop_back_pc"
            )
        for pgi in self.pgis:
            if self.code.at(pgi.slice_pc) is None:
                raise ValueError(
                    f"slice {self.name!r}: PGI pc {pgi.slice_pc:#x} not in slice code"
                )
        if self.code.at(self.entry_pc) is None:
            raise ValueError(f"slice {self.name!r}: entry pc not in slice code")

    @property
    def static_size(self) -> int:
        """Static instruction count (Table 3's "static size")."""
        return len(self.code)

    @property
    def covered_branch_pcs(self) -> frozenset[int]:
        return frozenset(pgi.branch_pc for pgi in self.pgis)

    @property
    def covered_load_pcs(self) -> frozenset[int]:
        return frozenset(self.prefetch_for.values())

    def pgi_at(self, slice_pc: int) -> PGISpec | None:
        for pgi in self.pgis:
            if pgi.slice_pc == slice_pc:
                return pgi
        return None

"""Speculative slices: specs, hardware, correlator, and construction."""

from repro.slices.auto import AutoSlice, SliceConstructionError, construct_slice
from repro.slices.builder import (
    StaticSlice,
    backward_slice,
    build_static_slice,
    collect_trace,
)
from repro.slices.correlator import (
    CorrelatorStats,
    MatchResult,
    PredictionCorrelator,
    PredictionSlot,
    SlotState,
)
from repro.slices.hw import PGITable, SliceTable
from repro.slices.spec import KillKind, KillSpec, PGISpec, SliceSpec

__all__ = [
    "AutoSlice",
    "CorrelatorStats",
    "SliceConstructionError",
    "StaticSlice",
    "backward_slice",
    "build_static_slice",
    "collect_trace",
    "construct_slice",
    "KillKind",
    "KillSpec",
    "MatchResult",
    "PGISpec",
    "PGITable",
    "PredictionCorrelator",
    "PredictionSlot",
    "SliceSpec",
    "SliceTable",
    "SlotState",
]

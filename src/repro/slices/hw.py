"""Front-end slice hardware: the slice table and PGI table (Figure 6).

The slice table CAMs fork PCs against the fetched PC range each cycle;
on a match an idle thread context is allocated to run the slice (forks
are ignored when no context is idle, Section 4.2). The PGI table maps
slice instruction PCs to the problem branches their results predict.
Together the structures hold well under 512B of state in the paper; the
models here enforce the same entry counts.
"""

from __future__ import annotations

from repro.slices.spec import PGISpec, SliceSpec


def is_statically_bounded(spec: SliceSpec) -> bool:
    """Static containment check: can this slice provably terminate?

    A slice is statically bounded when every backward control transfer
    in its code is covered by the spec's iteration cap
    (``max_iterations`` on ``loop_back_pc``). Unbounded slices are
    still legal — linked-list walks terminate dynamically on a null
    dereference (§3.2) — but they run purely on the dynamic
    containment fuse (``slice_hw.max_slice_insts``), so the slice
    table flags them at load time for reporting and strict-mode
    diagnostics.
    """
    for inst in spec.code.instructions:
        if not inst.is_branch or inst.target is None:
            continue
        if inst.target > inst.pc:
            continue  # forward edge: cannot loop by itself
        if inst.pc == spec.loop_back_pc and spec.max_iterations is not None:
            continue  # the declared, capped loop back-edge
        return False
    return True


class SliceTableFullError(Exception):
    """Raised when loading more slices than the table has entries."""


class SliceTable:
    """The fork-PC CAM plus per-slice metadata (Figure 6a).

    One entry per slice: fork PC, slice start PC, live-in registers, and
    the maximum loop count. Entries are loaded up front (the paper notes
    they cannot be demand loaded).
    """

    def __init__(self, entries: int = 16):
        self.capacity = entries
        self._by_fork_pc: dict[int, list[SliceSpec]] = {}
        self._in_order: list[SliceSpec] = []
        self._count = 0
        #: Names of loaded slices that rely solely on the dynamic
        #: instruction fuse for termination (see
        #: :func:`is_statically_bounded`).
        self.unbounded_slices: set[str] = set()

    def load(self, spec: SliceSpec) -> None:
        """Install one slice; raises if the table is full."""
        if self._count >= self.capacity:
            raise SliceTableFullError(
                f"slice table full ({self.capacity} entries)"
            )
        self._by_fork_pc.setdefault(spec.fork_pc, []).append(spec)
        self._in_order.append(spec)
        self._count += 1
        if not is_statically_bounded(spec):
            self.unbounded_slices.add(spec.name)

    def match(self, pc: int) -> list[SliceSpec]:
        """Return the slices whose fork PC equals the fetched *pc*."""
        return self._by_fork_pc.get(pc, [])

    def at_index(self, index: int) -> SliceSpec | None:
        """Entry lookup for explicit ``fork`` instructions (Section 4.2)."""
        if 0 <= index < len(self._in_order):
            return self._in_order[index]
        return None

    def __len__(self) -> int:
        return self._count

    def all_slices(self) -> list[SliceSpec]:
        return list(self._in_order)


class PGITableFullError(Exception):
    """Raised when slices carry more PGIs than the table has entries."""


class PGITable:
    """PGI identification table (Figure 6b).

    One entry per prediction generating instruction; looked up when a
    slice thread fetches an instruction, so the computed value can be
    routed to the prediction correlator at execute.
    """

    def __init__(self, entries: int = 64):
        self.capacity = entries
        self._by_key: dict[tuple[str, int], PGISpec] = {}

    def load(self, spec: SliceSpec) -> None:
        """Install all PGIs of *spec*; raises if capacity is exceeded."""
        if len(self._by_key) + len(spec.pgis) > self.capacity:
            raise PGITableFullError(f"PGI table full ({self.capacity} entries)")
        for pgi in spec.pgis:
            self._by_key[(spec.name, pgi.slice_pc)] = pgi

    def lookup(self, slice_name: str, slice_pc: int) -> PGISpec | None:
        """Return the PGI entry for a slice instruction, if any."""
        return self._by_key.get((slice_name, slice_pc))

    def __len__(self) -> int:
        return len(self._by_key)

"""Slice optimizations (Section 3.2).

These passes transform slice code — sequences of
:class:`~repro.isa.instruction.Instruction` in pre-assembly form — the
way the paper's hand optimizations do. Because slices only affect
microarchitectural state, the passes "merely must discern that these
transformations are correct most of the time"; each is driven by
profile facts the caller supplies rather than by proofs:

* :func:`strength_reduce_division` — collapses the compiler's
  3-instruction signed-division-by-2 idiom to a bare ``sra`` (value
  profiling says the operand is never negative).
* :func:`bypass_memory` — the *register allocation* optimization:
  replaces a load with the register the profiled matching store reads,
  removing communication through memory ("the most important"
  optimization per Section 3.2).
* :func:`eliminate_moves` — removes register moves by renaming uses.
* :func:`remove_redundant_masking` — drops ``and rd, ra, mask``
  operations whose input provably already fits the mask ("eliminating
  unnecessary operand masking").
* :func:`remove_dead_code` — drops instructions whose results are
  never used (loads are kept only if the caller marks them as
  prefetches worth keeping).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode


@dataclass
class OptimizationReport:
    """Instructions removed per pass, for Figure 4 -> Figure 5 stories."""

    removed: dict[str, int] = field(default_factory=dict)

    def add(self, pass_name: str, count: int) -> None:
        if count:
            self.removed[pass_name] = self.removed.get(pass_name, 0) + count

    @property
    def total_removed(self) -> int:
        return sum(self.removed.values())


def _clone(insts: list[Instruction]) -> list[Instruction]:
    return [copy.copy(inst) for inst in insts]


def _rename_reads(inst: Instruction, old: int, new: int) -> None:
    if inst.ra == old:
        inst.ra = new
    if inst.rb == old:
        inst.rb = new
    # Stores and cmovs read rd; slices contain no stores, but cmovs can
    # appear from if-conversion.
    if inst.op in _READS_RD and inst.rd == old:
        inst.rd = new


_READS_RD = frozenset(
    {Opcode.CMOVEQ, Opcode.CMOVNE, Opcode.CMOVLT, Opcode.CMOVGE, Opcode.ST}
)


def strength_reduce_division(
    insts: list[Instruction], report: OptimizationReport | None = None
) -> list[Instruction]:
    """Collapse ``cmplt t,a,0; add u,a,t; sra d,u,1`` into ``sra d,a,1``.

    Sound when value profiling shows ``a`` is never negative — true for
    array indices like vpr's ``ifrom`` (Section 3.2).
    """
    insts = _clone(insts)
    out: list[Instruction] = []
    i = 0
    removed = 0
    while i < len(insts):
        a, b, c = insts[i], (
            insts[i + 1] if i + 1 < len(insts) else None
        ), (insts[i + 2] if i + 2 < len(insts) else None)
        if (
            b is not None
            and c is not None
            and a.op is Opcode.CMPLT
            and a.imm == 0
            and b.op is Opcode.ADD
            and b.ra == a.ra
            and b.rb == a.rd
            and c.op is Opcode.SRA
            and c.ra == b.rd
            and c.imm == 1
        ):
            out.append(
                Instruction(
                    Opcode.SRA, rd=c.rd, ra=a.ra, imm=1, comment=c.comment
                )
            )
            removed += 2
            i += 3
            continue
        out.append(a)
        i += 1
    if report is not None:
        report.add("strength reduction", removed)
    return out


def bypass_memory(
    insts: list[Instruction],
    load_index: int,
    value_reg: int,
    report: OptimizationReport | None = None,
) -> list[Instruction]:
    """Register allocation: drop the load at *load_index* and rename its
    consumers to read *value_reg* (the register the profiled matching
    store read, which becomes a slice live-in)."""
    insts = _clone(insts)
    load = insts[load_index]
    if not load.is_load:
        raise ValueError(f"instruction at index {load_index} is not a load")
    dest = load.rd
    del insts[load_index]
    for inst in insts[load_index:]:
        _rename_reads(inst, dest, value_reg)
        if inst.writes_dest and inst.rd == dest:
            break
    if report is not None:
        report.add("register allocation", 1)
    return insts


def eliminate_moves(
    insts: list[Instruction], report: OptimizationReport | None = None
) -> list[Instruction]:
    """Remove ``mov rd, ra`` by renaming subsequent reads of rd to ra.

    Applied only when neither register is redefined before the last use
    of ``rd`` (always re-checkable on slice-sized code).
    """
    insts = _clone(insts)
    removed = 0
    i = 0
    while i < len(insts):
        inst = insts[i]
        if inst.op is Opcode.MOV and inst.rd != inst.ra:
            safe = True
            for later in insts[i + 1 :]:
                if later.writes_dest and later.rd in (inst.rd, inst.ra):
                    # Redefinition: renaming past this point is unsafe;
                    # accept only if rd is never read afterwards.
                    safe = all(
                        inst.rd not in following.source_regs()
                        for following in insts[insts.index(later) :]
                    )
                    break
            if safe:
                dest, src = inst.rd, inst.ra
                del insts[i]
                for later in insts[i:]:
                    _rename_reads(later, dest, src)
                    if later.writes_dest and later.rd == dest:
                        break
                removed += 1
                continue
        i += 1
    if report is not None:
        report.add("move elimination", removed)
    return insts


def remove_redundant_masking(
    insts: list[Instruction],
    known_bounded: dict[int, int] | None = None,
    report: OptimizationReport | None = None,
) -> list[Instruction]:
    """Drop ``and rd, ra, mask`` when ``ra`` provably fits the mask.

    Tracks simple value-range facts forward: a previous ``and`` with a
    sub-mask, an ``srl`` of a bounded value, or a caller-supplied bound
    for a live-in register (value profiling, Section 3.2). When the
    masked register already fits, the AND is replaced by renaming its
    uses — one fewer instruction on the slice's critical path.
    """
    insts = _clone(insts)
    bounds: dict[int, int] = dict(known_bounded or {})  # reg -> max mask
    removed = 0
    index = 0
    while index < len(insts):
        inst = insts[index]
        if (
            inst.op is Opcode.AND
            and inst.imm is not None
            and inst.imm > 0
            and inst.ra in bounds
            and bounds[inst.ra] & inst.imm == bounds[inst.ra]
        ):
            dest, src = inst.rd, inst.ra
            removed += 1
            del insts[index]
            if dest != src:
                for later in insts[index:]:
                    _rename_reads(later, dest, src)
                    if later.writes_dest and later.rd == dest:
                        break
            continue
        # Forward range facts.
        if inst.writes_dest:
            if inst.op is Opcode.AND and inst.imm is not None and inst.imm > 0:
                bounds[inst.rd] = inst.imm
            elif (
                inst.op is Opcode.SRL
                and inst.imm is not None
                and inst.ra in bounds
            ):
                bounds[inst.rd] = bounds[inst.ra] >> inst.imm
            elif inst.op is Opcode.LI and inst.imm is not None and inst.imm >= 0:
                bounds[inst.rd] = inst.imm
            elif inst.op is Opcode.MOV and inst.ra in bounds:
                bounds[inst.rd] = bounds[inst.ra]
            else:
                bounds.pop(inst.rd, None)
        index += 1
    if report is not None:
        report.add("masking removal", removed)
    return insts


def remove_dead_code(
    insts: list[Instruction],
    live_out: set[int],
    keep_loads: bool = True,
    report: OptimizationReport | None = None,
) -> list[Instruction]:
    """Backward liveness: drop instructions writing dead registers.

    Branches are control, never dropped. Loads are kept by default —
    in a slice a "dead" load is still a prefetch — pass
    ``keep_loads=False`` to drop them too.

    ``live_out`` must include every register whose value matters after
    the sequence (PGI outputs, loop-carried registers).
    """
    insts = _clone(insts)
    removed = 0
    changed = True
    while changed:
        changed = False
        live = set(live_out)
        keep: list[bool] = [True] * len(insts)
        for i in range(len(insts) - 1, -1, -1):
            inst = insts[i]
            if inst.is_branch or inst.op in (Opcode.HALT, Opcode.NOP):
                live.update(inst.source_regs())
                continue
            if inst.is_load and keep_loads:
                live.update(inst.source_regs())
                continue
            if inst.writes_dest and inst.rd not in live:
                keep[i] = False
                changed = True
                continue
            if inst.writes_dest:
                live.discard(inst.rd)
            live.update(inst.source_regs())
        if changed:
            removed += keep.count(False)
            insts = [inst for inst, k in zip(insts, keep) if k]
    if report is not None:
        report.add("dead code", removed)
    return insts

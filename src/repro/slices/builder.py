"""Backward slicing over execution traces (Sections 3.2-3.3).

Following Roth & Sohi's trace-based approach (reference [13] of the
paper), slices are computed over a *functional execution trace* rather
than static code: walk backward from a dynamic instance of a problem
instruction, collecting the producers of every needed register (and,
optionally, the stores feeding needed loads — "memory dependence
profiling"), until the candidate fork point is reached. The union of
the collected static PCs over many dynamic instances is the
un-optimized static slice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.exceptions import Fault
from repro.arch.interpreter import ExecResult, run_functional
from repro.arch.memory import Memory
from repro.arch.state import ThreadState
from repro.isa.instruction import Instruction
from repro.isa.program import Program


@dataclass(slots=True)
class TraceEntry:
    """One executed instruction with its observable outcome."""

    index: int
    inst: Instruction
    result: ExecResult


def collect_trace(
    program: Program,
    memory_image: dict[int, int],
    max_instructions: int = 400_000,
) -> list[TraceEntry]:
    """Run *program* functionally and record the correct-path trace."""
    state = ThreadState(Memory(memory_image), program.entry_pc)
    trace: list[TraceEntry] = []
    for inst, result in run_functional(program, state, max_instructions):
        trace.append(TraceEntry(len(trace), inst, result))
        if result.fault is Fault.HALT:
            break
    return trace


@dataclass
class DynamicSlice:
    """Backward slice of one dynamic problem-instruction instance."""

    target_index: int
    #: Trace indices of the contributing instructions, oldest first.
    indices: list[int]
    #: Registers whose values must come from outside the slice window
    #: (the live-ins the hardware copies at fork, Section 4.3).
    live_in_regs: frozenset[int]
    #: Longest dependence chain through the slice, in instructions.
    dataflow_height: int

    @property
    def size(self) -> int:
        return len(self.indices)


def backward_slice(
    trace: list[TraceEntry],
    target_index: int,
    stop_pc: int | None = None,
    follow_memory: bool = True,
    max_window: int = 4096,
) -> DynamicSlice:
    """Walk backward from ``trace[target_index]`` collecting producers.

    ``stop_pc``: the candidate fork point; the walk does not cross the
    most recent execution of it (values live there become live-ins).
    ``follow_memory``: include the latest store feeding each needed
    load (disable to model the paper's *register allocation*
    optimization, which turns such values into live-ins instead).
    """
    target = trace[target_index]
    # Need-heights: the length of the dependence chain from a value to
    # the target, used to compute the slice's dataflow height.
    reg_need: dict[int, int] = {r: 1 for r in target.inst.source_regs()}
    addr_need: dict[int, int] = {}
    picked: list[int] = []
    max_height = 1

    start = max(0, target_index - max_window)
    for index in range(target_index - 1, start - 1, -1):
        entry = trace[index]
        if stop_pc is not None and entry.inst.pc == stop_pc:
            break
        produced_height = None
        if entry.inst.writes_dest and entry.inst.rd in reg_need:
            produced_height = reg_need.pop(entry.inst.rd)
        if (
            follow_memory
            and entry.inst.is_store
            and entry.result.addr is not None
            and (entry.result.addr & ~7) in addr_need
        ):
            stored_height = addr_need.pop(entry.result.addr & ~7)
            produced_height = max(produced_height or 0, stored_height)
        if produced_height is None:
            continue
        picked.append(index)
        entry_height = produced_height + 1
        max_height = max(max_height, entry_height)
        for reg in entry.inst.source_regs():
            reg_need[reg] = max(reg_need.get(reg, 0), entry_height)
        if (
            follow_memory
            and entry.inst.is_load
            and entry.result.addr is not None
        ):
            line = entry.result.addr & ~7
            addr_need[line] = max(addr_need.get(line, 0), entry_height)

    picked.reverse()
    return DynamicSlice(
        target_index=target_index,
        indices=picked,
        live_in_regs=frozenset(reg_need),
        dataflow_height=max_height,
    )


@dataclass
class StaticSlice:
    """Union of dynamic slices: the un-optimized static slice."""

    target_pc: int
    fork_pc: int | None
    pcs: frozenset[int]
    live_in_regs: frozenset[int]
    instances: int
    mean_dynamic_size: float
    mean_dataflow_height: float

    @property
    def static_size(self) -> int:
        return len(self.pcs)

    @property
    def fetch_constrained_height(self) -> float:
        """Roth & Sohi's approximate benefit metric: how much earlier
        the slice can compute the target than the program can fetch it
        (dynamic size is what the slice must fetch; the dataflow height
        bounds how fast it can execute)."""
        return self.mean_dataflow_height / max(self.mean_dynamic_size, 1.0)


def build_static_slice(
    trace: list[TraceEntry],
    target_pc: int,
    fork_pc: int | None = None,
    follow_memory: bool = True,
    max_instances: int = 64,
) -> StaticSlice:
    """Union the backward slices of up to *max_instances* dynamic
    instances of *target_pc*."""
    pcs: set[int] = set()
    live_ins: set[int] = set()
    sizes: list[int] = []
    heights: list[int] = []
    instances = 0
    for entry in trace:
        if entry.inst.pc != target_pc:
            continue
        dynamic = backward_slice(
            trace, entry.index, stop_pc=fork_pc, follow_memory=follow_memory
        )
        pcs.update(trace[i].inst.pc for i in dynamic.indices)
        pcs.add(target_pc)
        live_ins.update(dynamic.live_in_regs)
        sizes.append(dynamic.size)
        heights.append(dynamic.dataflow_height)
        instances += 1
        if instances >= max_instances:
            break
    if not instances:
        raise ValueError(f"target pc {target_pc:#x} never executed in trace")
    return StaticSlice(
        target_pc=target_pc,
        fork_pc=fork_pc,
        pcs=frozenset(pcs),
        live_in_regs=frozenset(live_ins),
        instances=instances,
        mean_dynamic_size=sum(sizes) / instances,
        mean_dataflow_height=sum(heights) / instances,
    )

"""Prediction correlator (Section 5, Figures 7, 9, 10).

Binds slice-generated branch predictions to the intended dynamic
instances of problem branches in the main thread. The correlator is
manipulated at fetch, so every action must be undoable when the main
thread squashes (Section 5.2), and predictions that arrive after their
branch was fetched must be handled gracefully (Section 5.3).

Structure (Figure 10): a *branch queue* with one entry per problem
branch PC, each holding up to 8 prediction slots. Slot states:

* ``EMPTY`` — allocated when the PGI was *fetched* by the slice thread
  (allocation at fetch makes it easy to order the slot before its kill).
* ``FULL`` — the PGI executed; the computed direction is available.
* ``LATE`` — an ``EMPTY`` slot was matched by its branch: the
  traditional prediction used is remembered, and when the PGI finally
  executes a mismatch can trigger early resolution.

Rather than consuming predictions on use, the correlator *kills* them
when the main thread's path shows they can no longer be used: loop
iteration kills retire one iteration's prediction, slice kills retire
all of a slice instance's predictions (Section 5.1, Figure 9). Killed
slots are only deallocated once the killing instruction retires; if the
killer is squashed the kill bit is cleared (Section 5.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.slices.spec import KillKind, PGIKind, PGISpec, SliceHardwareConfig, SliceSpec


class SlotState(enum.Enum):
    EMPTY = "empty"
    FULL = "full"
    LATE = "late"


@dataclass(slots=True, eq=False)
class PredictionSlot:
    """One prediction's state (the per-prediction fields of Figure 10)."""

    branch_pc: int
    instance_id: int
    slice_name: str
    state: SlotState = SlotState.EMPTY
    direction: bool | None = None
    #: For VALUE-kind PGIs: the predicted load value.
    predicted_value: int | None = None
    value_arrived: bool = False
    consumer_vn: int | None = None
    used_direction: bool | None = None
    killed: bool = False
    killer_vn: int | None = None
    dead: bool = False  # deallocated (fork squash or killer retired)

    @property
    def live(self) -> bool:
        return not self.dead and not self.killed


@dataclass
class _BranchEntry:
    """One branch-queue entry: a FIFO of prediction slots."""

    branch_pc: int
    slots: list[PredictionSlot] = field(default_factory=list)

    def head(self) -> PredictionSlot | None:
        """Oldest live slot (killed slots are skipped, not removed)."""
        for slot in self.slots:
            if slot.live:
                return slot
        return None

    def compact(self) -> None:
        self.slots = [slot for slot in self.slots if not slot.dead]


@dataclass
class _Instance:
    """Book-keeping for one forked slice instance."""

    instance_id: int
    spec: SliceSpec
    slots: list[PredictionSlot] = field(default_factory=list)
    #: Kill PCs whose first fetch must be ignored (back-edge-target rule).
    skip_pending: set[int] = field(default_factory=set)
    finished: bool = False  # slice-killed: no longer a loop-kill target
    #: VN of the instruction whose kill finished this instance.
    finish_vn: int | None = None
    #: An allocation overflowed: later allocations must also be refused,
    #: or the queue would have holes and predictions would mis-align.
    poisoned: bool = False
    #: Loop kills that found no live slot (the helper thread is running
    #: behind the main thread): each pending killer VN kills the next
    #: slot allocated for that branch, so a late-arriving prediction for
    #: an already-passed iteration is born dead instead of mis-binding.
    kill_debt: dict[int, list[int]] = field(default_factory=dict)

    def live_slots(self) -> list[PredictionSlot]:
        return [slot for slot in self.slots if slot.live]


@dataclass(slots=True)
class MatchResult:
    """Outcome of a branch-fetch CAM match.

    ``direction`` is the override to use, or ``None`` when the slot was
    still EMPTY (the core must use the traditional predictor and then
    call :meth:`PredictionCorrelator.bind_late`).
    """

    slot: PredictionSlot
    direction: bool | None


@dataclass(slots=True)
class ValueMatchResult:
    """Outcome of a load-fetch CAM match (value-prediction extension)."""

    slot: PredictionSlot
    value: int | None  # None when the PGI has not executed yet


@dataclass
class CorrelatorStats:
    """Counters reported in Table 4 and Section 6.1."""

    predictions_generated: int = 0
    overrides: int = 0
    correct_overrides: int = 0
    incorrect_overrides: int = 0
    empty_matches: int = 0
    late_predictions: int = 0
    late_mismatches: int = 0
    kills_applied: int = 0
    kills_restored: int = 0
    # Value-prediction extension (the paper's conclusion).
    value_predictions_generated: int = 0
    value_overrides: int = 0
    correct_value_overrides: int = 0
    incorrect_value_overrides: int = 0
    value_predictions_late: int = 0
    slot_overflow_drops: int = 0
    #: PGI allocations refused because the instance was already
    #: slice-killed (the helper thread ran behind the main thread).
    blocked_after_finish: int = 0


class PredictionCorrelator:
    """The branch-queue prediction correlator."""

    def __init__(self, config: SliceHardwareConfig | None = None):
        self._config = config or SliceHardwareConfig()
        self._entries: dict[int, _BranchEntry] = {}
        # kill pc -> list of (slice name, KillKind, skip_first, scope)
        self._kill_map: dict[int, list[tuple[str, KillKind, bool, str]]] = {}
        #: Kill PCs whose first fetch overall is ignored (global-scope
        #: skip_first), plus the consumption events for squash recovery.
        self._global_skip_pending: set[int] = set()
        self._global_skip_events: list[tuple[int, int]] = []  # (vn, pc)
        self._instances: dict[int, _Instance] = {}
        self._skip_events: list[tuple[int, int, int]] = []  # (vn, instance, pc)
        self._finish_events: list[tuple[int, int]] = []  # (vn, instance)
        #: Slots with the kill bit set, awaiting killer retirement —
        #: lets :meth:`on_retire` skip the full branch-queue scan on the
        #: (common) cycles where nothing was killed. A squash that
        #: clears the kill bit leaves the slot here; it is lazily
        #: dropped at the next scan.
        self._killed_pending: list[PredictionSlot] = []
        #: Set on any transition that could make an instance
        #: collectable (a slot died / an instance finished); cleared
        #: when :meth:`_gc_instances` runs.
        self._gc_dirty = False
        #: Optional callback ``(slice_name, instance_id, consumed_any)``
        #: invoked when an instance is garbage-collected — i.e. when its
        #: usefulness is finally known (used by confidence gating).
        self.instance_retired_listener = None
        self.stats = CorrelatorStats()

    # ------------------------------------------------------------------
    # Static configuration
    # ------------------------------------------------------------------

    def register_slice(self, spec: SliceSpec) -> None:
        """Create branch-queue entries and kill CAM entries for *spec*."""
        for pgi in spec.pgis:
            if pgi.branch_pc not in self._entries:
                if len(self._entries) >= self._config.branch_queue_entries:
                    raise ValueError(
                        f"branch queue full "
                        f"({self._config.branch_queue_entries} entries)"
                    )
                self._entries[pgi.branch_pc] = _BranchEntry(pgi.branch_pc)
        for kill in spec.kills:
            self._kill_map.setdefault(kill.kill_pc, []).append(
                (spec.name, kill.kind, kill.skip_first, kill.skip_scope)
            )
            if kill.skip_first and kill.skip_scope == "global":
                self._global_skip_pending.add(kill.kill_pc)

    def covers_branch(self, pc: int) -> bool:
        return pc in self._entries

    def is_kill_pc(self, pc: int) -> bool:
        return pc in self._kill_map

    # ------------------------------------------------------------------
    # Slice lifecycle
    # ------------------------------------------------------------------

    def on_fork(self, spec: SliceSpec, instance_id: int) -> None:
        self._instances[instance_id] = _Instance(
            instance_id=instance_id,
            spec=spec,
            skip_pending={k.kill_pc for k in spec.kills if k.skip_first},
        )

    def on_fork_squashed(self, instance_id: int) -> None:
        """The fork point was on a wrong path: discard everything."""
        instance = self._instances.pop(instance_id, None)
        if instance is None:
            return
        for slot in instance.slots:
            slot.dead = True
        for pc in {slot.branch_pc for slot in instance.slots}:
            self._entries[pc].compact()
        self._skip_events = [
            event for event in self._skip_events if event[1] != instance_id
        ]
        self._finish_events = [
            event for event in self._finish_events if event[1] != instance_id
        ]

    def on_pgi_fetched(
        self, spec: SliceSpec, pgi: PGISpec, instance_id: int
    ) -> PredictionSlot | None:
        """Allocate an EMPTY slot when the slice thread fetches a PGI.

        Returns ``None`` (and counts a drop) if the branch's 8 slots are
        all in use — the hardware bound of Figure 10.
        """
        instance = self._instances.get(instance_id)
        entry = self._entries.get(pgi.branch_pc)
        if instance is None or entry is None:
            return None
        if instance.poisoned:
            self.stats.slot_overflow_drops += 1
            return None
        if len(entry.slots) >= self._config.predictions_per_branch:
            # Dropping this prediction but accepting later ones would
            # punch a hole in the FIFO and mis-align every subsequent
            # match, so the instance stops generating entirely (its
            # prefetches are unaffected).
            instance.poisoned = True
            self.stats.slot_overflow_drops += 1
            return None
        slot = PredictionSlot(
            branch_pc=pgi.branch_pc,
            instance_id=instance_id,
            slice_name=spec.name,
        )
        if instance.finished:
            # The main thread already slice-killed this instance (the
            # helper thread is running behind): the prediction enters
            # the queue born dead, charged to the finishing kill, so it
            # can neither escape the kill nor punch an ordering hole —
            # and it is restored intact if the kill is squashed.
            slot.killed = True
            slot.killer_vn = instance.finish_vn
            self._killed_pending.append(slot)
            self.stats.blocked_after_finish += 1
        else:
            debts = instance.kill_debt.get(pgi.branch_pc)
            if debts:
                slot.killed = True
                slot.killer_vn = debts.pop(0)
                self._killed_pending.append(slot)
        entry.slots.append(slot)
        instance.slots.append(slot)
        return slot

    def on_pgi_executed(self, slot: PredictionSlot, direction: bool) -> bool:
        """Record the PGI's computed direction.

        Returns True when this is a *late mismatch*: the slot was already
        consumed in the EMPTY state with a traditional prediction that
        disagrees — the core may redirect fetch early (Section 5.3).
        """
        if slot.dead:
            return False
        self.stats.predictions_generated += 1
        slot.direction = direction
        slot.value_arrived = True
        if slot.state is SlotState.EMPTY:
            slot.state = SlotState.FULL
            return False
        if slot.state is SlotState.LATE and slot.used_direction != direction:
            self.stats.late_mismatches += 1
            return True
        return False

    def on_value_pgi_executed(self, slot: PredictionSlot, value: int) -> None:
        """Record a VALUE PGI's computed load value (extension)."""
        if slot.dead:
            return
        self.stats.value_predictions_generated += 1
        slot.predicted_value = value
        slot.value_arrived = True
        if slot.state is SlotState.EMPTY:
            slot.state = SlotState.FULL

    # ------------------------------------------------------------------
    # Main-thread fetch events
    # ------------------------------------------------------------------

    def on_branch_fetched(self, pc: int, vn: int) -> MatchResult | None:
        """CAM match a fetched branch against the branch queue.

        A FULL head overrides the traditional predictor. An EMPTY head
        yields ``direction=None``; the core uses the traditional
        predictor and must call :meth:`bind_late`. A LATE head (already
        bound to an earlier un-killed consumer) yields no match.
        """
        entry = self._entries.get(pc)
        if entry is None:
            return None
        slot = entry.head()
        if slot is None:
            return None
        if slot.state is SlotState.FULL:
            self.stats.overrides += 1
            slot.consumer_vn = vn
            return MatchResult(slot, slot.direction)
        if slot.state is SlotState.EMPTY:
            self.stats.empty_matches += 1
            return MatchResult(slot, None)
        return None

    def bind_late(
        self, slot: PredictionSlot, vn: int, used_direction: bool
    ) -> None:
        """Bind an EMPTY slot to the branch that consumed it (-> LATE)."""
        slot.state = SlotState.LATE
        slot.consumer_vn = vn
        slot.used_direction = used_direction
        self.stats.late_predictions += 1

    def on_load_fetched(self, pc: int, vn: int) -> ValueMatchResult | None:
        """CAM match a fetched problem load against the value queue.

        A FULL head supplies a value prediction the load's consumers
        can use before the access completes. An EMPTY head (the helper
        thread is behind) yields no usable prediction — there is no
        late-binding path for values, only a statistic.
        """
        entry = self._entries.get(pc)
        if entry is None:
            return None
        slot = entry.head()
        if slot is None:
            return None
        if slot.state is SlotState.FULL and slot.predicted_value is not None:
            self.stats.value_overrides += 1
            slot.consumer_vn = vn
            return ValueMatchResult(slot, slot.predicted_value)
        if slot.state is SlotState.EMPTY:
            self.stats.value_predictions_late += 1
        return None

    # Indirect-target predictions share the value queue: a TARGET PGI's
    # computed address is matched at the indirect branch's fetch.
    on_target_fetched = on_load_fetched

    def record_value_outcome(self, slot: PredictionSlot, correct: bool) -> None:
        """Accuracy accounting for a consumed value prediction."""
        if correct:
            self.stats.correct_value_overrides += 1
        else:
            self.stats.incorrect_value_overrides += 1

    def on_kill_fetched(self, pc: int, vn: int) -> int:
        """Apply kills for a fetched kill-point PC; returns kills applied.

        Each fetch of a kill block acts on the oldest live instance of
        the slice that registered the kill: a LOOP kill retires that
        instance's oldest live prediction in each covered branch entry;
        a SLICE kill retires all of the instance's predictions.
        """
        actions = self._kill_map.get(pc)
        if not actions:
            return 0
        applied = 0
        for slice_name, kind, skip_first, skip_scope in actions:
            if (
                skip_first
                and skip_scope == "global"
                and pc in self._global_skip_pending
            ):
                self._global_skip_pending.discard(pc)
                self._global_skip_events.append((vn, pc))
                continue
            instance = self._oldest_live_instance(slice_name)
            if instance is None:
                continue
            if (
                skip_first
                and skip_scope == "instance"
                and pc in instance.skip_pending
            ):
                instance.skip_pending.discard(pc)
                self._skip_events.append((vn, instance.instance_id, pc))
                continue
            if kind is KillKind.LOOP:
                applied += self._kill_one_iteration(instance, vn)
            else:
                applied += self._kill_instance(instance, vn)
        self.stats.kills_applied += applied
        return applied

    # ------------------------------------------------------------------
    # Mis-speculation recovery and retirement
    # ------------------------------------------------------------------

    def on_squash(self, min_squashed_vn: int) -> None:
        """Undo all correlator actions by squashed instructions.

        Any kill, late-binding, or skip consumption performed by an
        instruction with VN >= *min_squashed_vn* is reverted.
        """
        for entry in self._entries.values():
            for slot in entry.slots:
                if slot.dead:
                    continue
                if (
                    slot.killed
                    and slot.killer_vn is not None
                    and slot.killer_vn >= min_squashed_vn
                ):
                    slot.killed = False
                    slot.killer_vn = None
                    self.stats.kills_restored += 1
                if (
                    slot.consumer_vn is not None
                    and slot.consumer_vn >= min_squashed_vn
                ):
                    if slot.state is SlotState.LATE:
                        slot.state = (
                            SlotState.FULL if slot.value_arrived else SlotState.EMPTY
                        )
                        slot.used_direction = None
                    slot.consumer_vn = None
        kept_events = []
        for vn, instance_id, pc in self._skip_events:
            if vn >= min_squashed_vn:
                instance = self._instances.get(instance_id)
                if instance is not None:
                    instance.skip_pending.add(pc)
            else:
                kept_events.append((vn, instance_id, pc))
        self._skip_events = kept_events
        for instance in self._instances.values():
            for debts in instance.kill_debt.values():
                debts[:] = [v for v in debts if v < min_squashed_vn]
        kept_globals = []
        for vn, pc in self._global_skip_events:
            if vn >= min_squashed_vn:
                self._global_skip_pending.add(pc)
            else:
                kept_globals.append((vn, pc))
        self._global_skip_events = kept_globals
        kept_finishes = []
        for vn, instance_id in self._finish_events:
            if vn >= min_squashed_vn:
                instance = self._instances.get(instance_id)
                if instance is not None:
                    instance.finished = False
                    instance.finish_vn = None
            else:
                kept_finishes.append((vn, instance_id))
        self._finish_events = kept_finishes

    def on_retire(self, vn: int) -> None:
        """Commit watermark: deallocate slots whose killer has retired."""
        pending = self._killed_pending
        if pending:
            dirty_pcs = set()
            keep = []
            for slot in pending:
                if slot.dead or not slot.killed:
                    continue  # already deallocated / kill was squashed
                if slot.killer_vn is not None and slot.killer_vn <= vn:
                    slot.dead = True
                    dirty_pcs.add(slot.branch_pc)
                else:
                    keep.append(slot)
            self._killed_pending = keep
            if dirty_pcs:
                for pc in dirty_pcs:
                    self._entries[pc].compact()
                self._gc_dirty = True
        if self._skip_events:
            self._skip_events = [e for e in self._skip_events if e[0] > vn]
        if self._global_skip_events:
            self._global_skip_events = [
                e for e in self._global_skip_events if e[0] > vn
            ]
        if self._finish_events:
            self._finish_events = [e for e in self._finish_events if e[0] > vn]
        if self._gc_dirty:
            self._gc_dirty = False
            self._gc_instances()

    def record_override_outcome(self, slot: PredictionSlot, correct: bool) -> None:
        """Accuracy accounting for a consumed FULL prediction."""
        if correct:
            self.stats.correct_overrides += 1
        else:
            self.stats.incorrect_overrides += 1

    # ------------------------------------------------------------------

    def _oldest_live_instance(self, slice_name: str) -> _Instance | None:
        candidates = [
            inst
            for inst in self._instances.values()
            if inst.spec.name == slice_name and not inst.finished
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda inst: inst.instance_id)

    def _kill_one_iteration(self, instance: _Instance, vn: int) -> int:
        """LOOP kill: oldest live slot of *instance* per covered branch.

        If a branch entry holds no live slot of this instance yet (the
        slice is behind), the kill is recorded as a debt against the
        next allocation instead of vanishing.
        """
        killed = 0
        for branch_pc in instance.spec.covered_branch_pcs:
            entry = self._entries.get(branch_pc)
            if entry is None:
                continue
            for slot in entry.slots:
                if slot.live and slot.instance_id == instance.instance_id:
                    slot.killed = True
                    slot.killer_vn = vn
                    self._killed_pending.append(slot)
                    killed += 1
                    break
            else:
                instance.kill_debt.setdefault(branch_pc, []).append(vn)
        if (
            not instance.finished
            and not instance.live_slots()
            and self._slice_done_generating(instance)
        ):
            instance.finished = True
            instance.finish_vn = vn
            self._finish_events.append((vn, instance.instance_id))
            self._gc_dirty = True
        return killed

    def _kill_instance(self, instance: _Instance, vn: int) -> int:
        """SLICE kill: all live predictions of *instance*."""
        killed = 0
        for slot in instance.live_slots():
            slot.killed = True
            slot.killer_vn = vn
            self._killed_pending.append(slot)
            killed += 1
        if not instance.finished:
            instance.finished = True
            instance.finish_vn = vn
            self._finish_events.append((vn, instance.instance_id))
            self._gc_dirty = True
        return killed

    def _slice_done_generating(self, instance: _Instance) -> bool:
        """Heuristic: a loop-killed-dry instance with a known iteration
        bound will not produce more predictions once all are killed."""
        spec = instance.spec
        if spec.max_iterations is None:
            return bool(instance.slots)
        return len(instance.slots) >= spec.max_iterations * max(len(spec.pgis), 1)

    def _gc_instances(self) -> None:
        done = [
            instance_id
            for instance_id, instance in self._instances.items()
            if instance.finished and not any(not s.dead for s in instance.slots)
        ]
        for instance_id in done:
            instance = self._instances.pop(instance_id)
            if self.instance_retired_listener is not None:
                consumed = any(
                    slot.consumer_vn is not None for slot in instance.slots
                )
                self.instance_retired_listener(
                    instance.spec.name, instance_id, consumed
                )

    # ------------------------------------------------------------------
    # Introspection helpers (tests, examples)
    # ------------------------------------------------------------------

    def queue_for(self, branch_pc: int) -> list[PredictionSlot]:
        entry = self._entries.get(branch_pc)
        return list(entry.slots) if entry else []

    def live_predictions(self, branch_pc: int) -> list[PredictionSlot]:
        entry = self._entries.get(branch_pc)
        return [s for s in entry.slots if s.live] if entry else []

"""Automatic slice construction (Section 3.3).

"For speculative slice pre-execution to be viable, an automated means
for constructing slices will be necessary. ... most of the slices and
optimizations only use profile information that is easy to collect."

:func:`construct_slice` implements that pipeline for single-loop (or
straight-line) problem regions, which covers the paper's common case:

1. collect a functional execution trace;
2. union the backward slices of the problem branch's dynamic instances,
   stopping at the chosen fork point (:mod:`repro.slices.builder`);
3. profile memory dependences: a load whose value always equals the
   current value of the feeding store's source register is *register
   allocated* — replaced by that register (Section 3.2);
4. emit the selected instructions in program order, re-creating the
   loop around the problem branch, replacing the branch itself with its
   condition producer (the PGI) plus a slice-exit copy of the branch;
5. optimize: strength-reduce division idioms, eliminate moves, and drop
   dead code (keeping loads that cover problem loads as prefetches);
6. derive the iteration bound, the kill points, and the live-ins from
   the same trace.

Raises :class:`SliceConstructionError` when the region resists slicing
(too many live-ins, irreducible control flow) — the gcc/parser failure
mode of Section 6.2.
"""

from __future__ import annotations

import copy
from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.isa.assembler import Assembler
from repro.isa.instruction import Instruction
from repro.isa.opcodes import CONDITIONAL_BRANCHES, Opcode
from repro.slices.builder import StaticSlice, TraceEntry, build_static_slice, collect_trace
from repro.slices.optimize import (
    OptimizationReport,
    bypass_memory,
    eliminate_moves,
    remove_dead_code,
    strength_reduce_division,
)
from repro.slices.spec import (
    SLICE_CODE_BASE,
    KillKind,
    KillSpec,
    PGISpec,
    SliceSpec,
)

if False:  # pragma: no cover - import for type checkers only
    from repro.workloads.base import Workload


class SliceConstructionError(Exception):
    """The problem region resists slicing (Section 6.2)."""


@dataclass
class MemoryProfile:
    """Profiled memory dependences: load pc -> (store pc, value reg)."""

    stable: dict[int, tuple[int, int]] = field(default_factory=dict)


def profile_memory_dependences(
    trace: list[TraceEntry], stability: float = 0.95
) -> MemoryProfile:
    """Find loads whose value always matches the feeding store's source
    register *at load time* — candidates for register allocation."""
    last_store: dict[int, tuple[int, int]] = {}  # addr -> (store pc, reg)
    reg_values: dict[int, int] = {}
    dep_counts: dict[int, Counter] = defaultdict(Counter)
    match_counts: dict[int, Counter] = defaultdict(Counter)

    for entry in trace:
        inst = entry.inst
        if inst.is_store and entry.result.addr is not None:
            last_store[entry.result.addr & ~7] = (inst.pc, inst.rd)
        elif inst.is_load and entry.result.addr is not None:
            dep = last_store.get(entry.result.addr & ~7)
            if dep is not None:
                store_pc, value_reg = dep
                dep_counts[inst.pc][dep] += 1
                if reg_values.get(value_reg) == entry.result.value:
                    match_counts[inst.pc][dep] += 1
        if inst.writes_dest and entry.result.value is not None:
            reg_values[inst.rd] = entry.result.value

    profile = MemoryProfile()
    for load_pc, counts in dep_counts.items():
        total = sum(counts.values())
        (dep, count), = counts.most_common(1)
        if count / total >= stability and (
            match_counts[load_pc][dep] / total >= stability
        ):
            profile.stable[load_pc] = dep
    return profile


@dataclass
class AutoSlice:
    """Result of automatic construction."""

    spec: SliceSpec
    static_info: StaticSlice
    report: OptimizationReport
    bypassed_loads: dict[int, int]  # load pc -> value reg
    iteration_profile: list[int]


def _loop_around(program, selected: set[int], branch_pc: int):
    """Find the innermost back-edge loop containing the problem branch."""
    best = None
    for inst in program.instructions:
        if (
            inst.is_branch
            and inst.target is not None
            and inst.target <= inst.pc
            and inst.target <= branch_pc <= inst.pc
        ):
            span = inst.pc - inst.target
            if best is None or span < best[1] - best[0]:
                best = (inst.target, inst.pc)
    return best


def _iteration_profile(
    trace: list[TraceEntry], fork_pc: int, branch_pc: int
) -> list[int]:
    counts: list[int] = []
    current = None
    for entry in trace:
        if entry.inst.pc == fork_pc:
            if current is not None:
                counts.append(current)
            current = 0
        elif entry.inst.pc == branch_pc and current is not None:
            current += 1
    if current is not None:
        counts.append(current)
    return counts


def construct_slice(
    workload: "Workload",
    branch_pc: int,
    fork_pc: int,
    name: str = "auto",
    base_pc: int = SLICE_CODE_BASE + 0x60000,
    max_live_ins: int = 6,
    max_static: int = 48,
    trace_limit: int = 200_000,
    optimize: bool = True,
) -> AutoSlice:
    """Automatically construct a slice for *branch_pc* forked at
    *fork_pc* (see module docstring for the pipeline)."""
    program = workload.program
    branch = program.at(branch_pc)
    if branch is None or not branch.is_conditional:
        raise SliceConstructionError(
            f"{branch_pc:#x} is not a conditional branch"
        )

    trace = collect_trace(program, workload.memory_image, trace_limit)
    static = build_static_slice(
        trace, branch_pc, fork_pc, follow_memory=False
    )
    if static.static_size > max_static:
        raise SliceConstructionError(
            f"slice too large: {static.static_size} static instructions"
        )
    profile = profile_memory_dependences(trace)

    # Register allocation pulls a store's *value chain* into the slice:
    # the bypassed load will read the value register, so its producers
    # (relative to the fork) must execute in the slice too.
    selected_pcs = set(static.pcs)
    if optimize:
        for load_pc in list(selected_pcs):
            inst = program.at(load_pc)
            if inst is None or not inst.is_load:
                continue
            dep = profile.stable.get(load_pc)
            if dep is None:
                continue
            store_pc, _value_reg = dep
            try:
                store_chain = build_static_slice(
                    trace, store_pc, fork_pc, follow_memory=False
                )
            except ValueError:
                continue
            selected_pcs.update(store_chain.pcs)
            selected_pcs.discard(store_pc)  # slices perform no stores

    loop = _loop_around(program, selected_pcs, branch_pc)
    selected = sorted(pc for pc in selected_pcs if pc != branch_pc)

    # ------------------------------------------------------------------
    # Emit the selected instructions in program order. The problem
    # branch becomes (a) nothing — its condition producer is the PGI —
    # plus (b) a retargeted copy acting as the slice's exit test.
    # ------------------------------------------------------------------
    insts: list[Instruction] = []
    back_edge_inst = None
    for pc in selected:
        original = program.at(pc)
        if original.is_branch:
            if loop is not None and pc == loop[1]:
                back_edge_inst = original
            continue  # other control flow is not replicated
        clone = copy.copy(original)
        clone.target_label = None
        insts.append(clone)  # clone keeps .pc = original pc

    cond_regs = branch.source_regs()
    if len(cond_regs) != 1:
        raise SliceConstructionError("cannot identify the branch condition")
    cond_reg = cond_regs[0]

    # Register allocation: bypass profiled-stable loads feeding the
    # condition chain, making the store's value register a live-in (or
    # a slice-computed value).
    bypassed: dict[int, int] = {}
    report = OptimizationReport()
    if optimize:
        for index in range(len(insts) - 1, -1, -1):
            inst = insts[index]
            if not inst.is_load or inst.pc not in profile.stable:
                continue
            store_pc, value_reg = profile.stable[inst.pc]
            insts = bypass_memory(insts, index, value_reg, report)
            bypassed[inst.pc] = value_reg
        insts = strength_reduce_division(insts, report)
        insts = eliminate_moves(insts, report)
        loop_carried = set()
        if loop is not None:
            defined: set[int] = set()
            for inst in insts:
                if loop[0] <= inst.pc <= loop[1]:
                    loop_carried.update(
                        r for r in inst.source_regs() if r not in defined
                    )
                    if inst.writes_dest:
                        defined.add(inst.rd)
        live_out = {cond_reg} | loop_carried
        if back_edge_inst is not None:
            live_out.update(back_edge_inst.source_regs())
        insts = remove_dead_code(
            insts,
            live_out,
            keep_loads=False,
            report=report,
        )
        # Re-add prefetch-worthy loads dropped as dead: any load at a
        # problem-load PC must stay (it is the prefetch).
        kept_pcs = {inst.pc for inst in insts}
        for pc in selected:
            original = program.at(pc)
            if (
                original.is_load
                and pc in workload.problem_load_pcs
                and pc not in kept_pcs
                and pc not in bypassed
            ):
                clone = copy.copy(original)
                clone.target_label = None
                position = sum(1 for i in insts if i.pc < pc)
                insts.insert(position, clone)

    # ------------------------------------------------------------------
    # Assemble, inserting the loop label, exit test, and back edge.
    # ------------------------------------------------------------------
    asm = Assembler(base_pc=base_pc)
    asm.label("auto_entry")
    new_pcs: dict[int, int] = {}  # original pc -> slice pc (loads/PGI)
    pgi_pc = None
    loop_started = False

    def emit(inst: Instruction) -> None:
        nonlocal pgi_pc
        clone = copy.copy(inst)
        original_pc = clone.pc
        emitted = asm._emit(clone)
        new_pcs[original_pc] = emitted.pc
        if clone.writes_dest and clone.rd == cond_reg:
            pgi_pc = emitted.pc

    for inst in insts:
        if loop is not None and not loop_started and inst.pc >= loop[0]:
            asm.label("auto_loop")
            loop_started = True
        if loop is not None and inst.pc > branch_pc and pgi_pc is not None:
            # First instruction past the problem branch: insert the
            # exit test (a retargeted copy of the branch).
            if "auto_exit" not in asm._labels and not any(
                i.target_label == "auto_exit" for i in asm._instructions
            ):
                exit_branch = copy.copy(branch)
                exit_branch.target = None
                exit_branch.target_label = "auto_exit"
                asm._emit(exit_branch)
        emit(inst)
    back_pc = None
    if loop is not None:
        if not any(i.target_label == "auto_exit" for i in asm._instructions):
            exit_branch = copy.copy(branch)
            exit_branch.target = None
            exit_branch.target_label = "auto_exit"
            asm._emit(exit_branch)
        if back_edge_inst is not None:
            back = copy.copy(back_edge_inst)
            back.target = None
            back.target_label = "auto_loop"
            back_pc = asm._emit(back).pc
        else:
            back_pc = asm.br("auto_loop").pc
    asm.label("auto_exit")
    asm.halt()
    code = asm.build()

    if pgi_pc is None:
        raise SliceConstructionError("condition producer not in the slice")

    # Live-ins: registers read before any definition in the emitted code.
    defined: set[int] = set()
    live_ins: set[int] = set()
    for inst in code.instructions:
        live_ins.update(r for r in inst.source_regs() if r not in defined)
        if inst.writes_dest:
            defined.add(inst.rd)
    if len(live_ins) > max_live_ins:
        raise SliceConstructionError(
            f"too many live-ins: {sorted(live_ins)}"
        )

    iteration_profile = _iteration_profile(trace, fork_pc, branch_pc)
    max_iterations = None
    if loop is not None:
        bound = sorted(iteration_profile)[
            int(len(iteration_profile) * 0.95)
        ] if iteration_profile else 4
        max_iterations = max(min(bound + 1, 8), 2)

    kills = []
    if loop is not None:
        kills.append(KillSpec(loop[0], KillKind.LOOP, skip_first=True))
    exit_target = (
        branch.target
        if loop is None or not (loop[0] <= branch.target <= loop[1])
        else branch_pc + 4
    )
    kills.append(KillSpec(exit_target, KillKind.SLICE))

    prefetch_for = {
        new_pc: orig_pc
        for orig_pc, new_pc in new_pcs.items()
        if orig_pc in workload.problem_load_pcs
        and code.at(new_pc) is not None
        and code.at(new_pc).is_load
    }

    spec = SliceSpec(
        name=name,
        fork_pc=fork_pc,
        code=code,
        entry_pc=code.pc_of("auto_entry"),
        live_in_regs=tuple(sorted(live_ins)),
        pgis=(
            PGISpec(
                slice_pc=pgi_pc,
                branch_pc=branch_pc,
                branch_cond=branch.op,
            ),
        ),
        kills=tuple(kills),
        max_iterations=max_iterations,
        loop_back_pc=back_pc,
        prefetch_for=prefetch_for,
    )
    return AutoSlice(
        spec=spec,
        static_info=static,
        report=report,
        bypassed_loads=bypassed,
        iteration_profile=iteration_profile,
    )

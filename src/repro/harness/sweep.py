"""Parameter-sensitivity sweeps.

The paper fixes one machine (Table 1) and reasons qualitatively about
how its conclusions scale ("programs and processors with low base IPCs
are more likely to benefit", §6.3). These sweeps make those arguments
quantitative on our simulator: each varies one machine parameter and
re-runs the baseline/slice pair, reporting how the slice benefit moves.

Each sweep is expressed as a list of :class:`RunRequest` descriptors
with a single ``overrides`` entry and executed through
:func:`~repro.harness.parallel.run_matrix`, so sweep points run in
parallel and repeat renders hit the on-disk cache. A workload built
outside the registry (or a non-preset config) falls back to direct
sequential simulation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.harness.cache import RunCache
from repro.harness.fastforward import (
    SnapshotStore,
    build_sample_plan,
    ensure_snapshot,
    iter_chain,
    sample_plan,
)
from repro.harness.parallel import CONFIG_PRESETS, RunRequest, run_matrix
from repro.harness.runner import run_baseline, run_with_slices
from repro.uarch.config import FOUR_WIDE, MachineConfig
from repro.uarch.stats import RunStats, aggregate_stats, mean_ci95
from repro.workloads import registry
from repro.workloads.base import Workload


@dataclass
class SweepPoint:
    """One (parameter value, baseline, assisted) measurement."""

    value: int
    base: RunStats
    assisted: RunStats

    def region_speedups(self) -> list[float]:
        """Per-region slice speedups of a multi-region point.

        Base and assisted windows are *paired* (same chain, same
        depths), so the per-region ratio is the natural sample for the
        speedup's confidence interval."""
        base = self.base.region_ipcs
        assisted = self.assisted.region_ipcs
        n = min(len(base), len(assisted))
        return [
            assisted[k] / base[k] - 1.0 for k in range(n) if base[k]
        ]

    @property
    def speedup(self) -> float:
        return self.assisted.ipc / self.base.ipc - 1.0

    @property
    def speedup_ci95(self) -> float:
        """95% confidence half-width on the mean per-region speedup
        (0.0 for full-detail and single-window points)."""
        ratios = self.region_speedups()
        if len(ratios) < 2:
            return 0.0
        return mean_ci95(ratios)[1]


def _requestable(workload: Workload, config: MachineConfig) -> bool:
    """True when (workload, config) can round-trip through a RunRequest."""
    return (
        workload.name in registry.WORKLOAD_BUILDERS
        and CONFIG_PRESETS.get(config.name) == config
    )


def _sweep(
    workload: Workload,
    config: MachineConfig,
    override_path: str,
    values: tuple[int, ...],
    jobs: int | None,
    cache: RunCache | None,
    fast_forward: int = 0,
    sample: int = 0,
    sample_regions: int = 0,
    sample_period: int = 0,
) -> list[SweepPoint]:
    """Run the base/assisted pair at each override value.

    With ``fast_forward``/``sample`` set, every point is a sampled run
    sharing one warmed snapshot — with ``sample_regions >= 2``, one
    warmed snapshot *chain*: the sweep parameters vary timing, not the
    warming-relevant sub-configs, so the architectural prefix is paid
    once for the whole sweep (``run_matrix`` pre-builds it).
    """
    if _requestable(workload, config):
        requests = []
        for value in values:
            overrides = ((override_path, value),)
            for mode in ("base", "slice"):
                requests.append(
                    RunRequest(
                        workload=workload.name,
                        scale=workload.scale,
                        mode=mode,
                        config=config.name,
                        overrides=overrides,
                        fast_forward=fast_forward,
                        sample=sample,
                        sample_regions=sample_regions,
                        sample_period=sample_period,
                    )
                )
        stats = run_matrix(requests, jobs=jobs, cache=cache)
        return [
            SweepPoint(value=value, base=stats[2 * i], assisted=stats[2 * i + 1])
            for i, value in enumerate(values)
        ]
    multi = sample_regions >= 2
    region, warmup = sample_plan(sample)
    store = SnapshotStore() if (fast_forward > 0 or multi) else None
    points = []
    for value in values:
        varied = _apply(config, override_path, value)
        if multi:
            # Direct multi-region pair: both arms measure the same
            # chain members, so their regions stay paired for the
            # speedup confidence interval.
            plan = build_sample_plan(
                workload.region, fast_forward, sample,
                sample_regions, sample_period,
            )
            base_regions: list[RunStats] = []
            slice_regions: list[RunStats] = []
            for snapshot, hit in iter_chain(
                workload, varied, plan.depths, store=store
            ):
                if (
                    snapshot is not None
                    and snapshot.executed < snapshot.ff_insts
                    and base_regions
                ):
                    break  # program halted before this window's start
                sampled = dict(
                    snapshot=snapshot, warmup=plan.warmup, region=plan.sample
                )
                pair = (
                    run_baseline(workload, varied, **sampled),
                    run_with_slices(workload, varied, **sampled),
                )
                if snapshot is not None:
                    for stats in pair:
                        stats.ff_insts = snapshot.executed
                        stats.snapshot_hit = hit
                base_regions.append(pair[0])
                slice_regions.append(pair[1])
            points.append(
                SweepPoint(
                    value=value,
                    base=aggregate_stats(base_regions),
                    assisted=aggregate_stats(slice_regions),
                )
            )
            continue
        snapshot = None
        if fast_forward > 0:
            # The store's warm-config key dedups across points whose
            # varied parameter does not shape warmed state.
            snapshot, _ = ensure_snapshot(
                workload, varied, fast_forward, store=store
            )
        sampled = dict(snapshot=snapshot, warmup=warmup, region=region)
        points.append(
            SweepPoint(
                value=value,
                base=run_baseline(workload, varied, **sampled),
                assisted=run_with_slices(workload, varied, **sampled),
            )
        )
    return points


def _apply(config, path: str, value):
    head, _, rest = path.partition(".")
    if rest:
        value = _apply(getattr(config, head), rest, value)
    return dataclasses.replace(config, **{head: value})


def sweep_memory_latency(
    workload: Workload,
    latencies: tuple[int, ...] = (50, 100, 200, 400),
    config: MachineConfig = FOUR_WIDE,
    jobs: int | None = None,
    cache: RunCache | None = None,
    fast_forward: int = 0,
    sample: int = 0,
    sample_regions: int = 0,
    sample_period: int = 0,
) -> list[SweepPoint]:
    """Scale main-memory latency: prefetch-driven slice benefit should
    grow with the latency the slice tolerates."""
    return _sweep(
        workload, config, "memory_latency", latencies, jobs, cache,
        fast_forward=fast_forward, sample=sample,
        sample_regions=sample_regions, sample_period=sample_period,
    )


def sweep_window_size(
    workload: Workload,
    windows: tuple[int, ...] = (32, 64, 128, 256),
    config: MachineConfig = FOUR_WIDE,
    jobs: int | None = None,
    cache: RunCache | None = None,
    fast_forward: int = 0,
    sample: int = 0,
    sample_regions: int = 0,
    sample_period: int = 0,
) -> list[SweepPoint]:
    """Scale the instruction window: a bigger window already tolerates
    more latency on its own, moving the baseline."""
    return _sweep(
        workload, config, "window_entries", windows, jobs, cache,
        fast_forward=fast_forward, sample=sample,
        sample_regions=sample_regions, sample_period=sample_period,
    )


def sweep_prediction_slots(
    workload: Workload,
    slot_counts: tuple[int, ...] = (2, 4, 8, 16),
    config: MachineConfig = FOUR_WIDE,
    jobs: int | None = None,
    cache: RunCache | None = None,
    fast_forward: int = 0,
    sample: int = 0,
    sample_regions: int = 0,
    sample_period: int = 0,
) -> list[SweepPoint]:
    """Scale the correlator's per-branch prediction slots (Figure 10
    provisions 8): too few slots starve loop slices."""
    return _sweep(
        workload,
        config,
        "slice_hw.predictions_per_branch",
        slot_counts,
        jobs,
        cache,
        fast_forward=fast_forward,
        sample=sample,
        sample_regions=sample_regions,
        sample_period=sample_period,
    )


def render_sweep(
    title: str, parameter: str, points: list[SweepPoint]
) -> str:
    """Fixed-width rendering of one sweep.

    Multi-region points render the sampled estimators with their 95%
    confidence half-widths and the region count; full-detail points
    keep the compact legacy table.
    """
    if any(p.base.sample_regions >= 2 for p in points):
        lines = [
            title,
            "",
            f"{parameter:>12s}{'base IPC':>16s}{'slice IPC':>16s}"
            f"{'speedup':>16s}{'N':>4s}",
            "-" * 64,
        ]
        for point in points:
            base = f"{point.base.ipc_mean:.3f}±{point.base.ipc_ci95:.3f}"
            assisted = (
                f"{point.assisted.ipc_mean:.3f}"
                f"±{point.assisted.ipc_ci95:.3f}"
            )
            speedup = (
                f"{point.speedup:+.1%}±{point.speedup_ci95:.1%}"
            )
            lines.append(
                f"{point.value:>12d}{base:>16s}{assisted:>16s}"
                f"{speedup:>16s}{point.base.sample_regions:>4d}"
            )
        return "\n".join(lines)
    lines = [
        title,
        "",
        f"{parameter:>12s}{'base IPC':>10s}{'slice IPC':>11s}{'speedup':>9s}",
        "-" * 42,
    ]
    for point in points:
        lines.append(
            f"{point.value:>12d}{point.base.ipc:>10.3f}"
            f"{point.assisted.ipc:>11.3f}{point.speedup:>9.1%}"
        )
    return "\n".join(lines)

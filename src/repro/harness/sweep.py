"""Parameter-sensitivity sweeps.

The paper fixes one machine (Table 1) and reasons qualitatively about
how its conclusions scale ("programs and processors with low base IPCs
are more likely to benefit", §6.3). These sweeps make those arguments
quantitative on our simulator: each varies one machine parameter and
re-runs the baseline/slice pair, reporting how the slice benefit moves.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.harness.runner import run_baseline, run_with_slices
from repro.uarch.config import FOUR_WIDE, MachineConfig
from repro.uarch.stats import RunStats
from repro.workloads.base import Workload


@dataclass
class SweepPoint:
    """One (parameter value, baseline, assisted) measurement."""

    value: int
    base: RunStats
    assisted: RunStats

    @property
    def speedup(self) -> float:
        return self.assisted.ipc / self.base.ipc - 1.0


def _measure(workload: Workload, config: MachineConfig, value: int) -> SweepPoint:
    return SweepPoint(
        value=value,
        base=run_baseline(workload, config),
        assisted=run_with_slices(workload, config),
    )


def sweep_memory_latency(
    workload: Workload,
    latencies: tuple[int, ...] = (50, 100, 200, 400),
    config: MachineConfig = FOUR_WIDE,
) -> list[SweepPoint]:
    """Scale main-memory latency: prefetch-driven slice benefit should
    grow with the latency the slice tolerates."""
    return [
        _measure(
            workload,
            dataclasses.replace(config, memory_latency=latency),
            latency,
        )
        for latency in latencies
    ]


def sweep_window_size(
    workload: Workload,
    windows: tuple[int, ...] = (32, 64, 128, 256),
    config: MachineConfig = FOUR_WIDE,
) -> list[SweepPoint]:
    """Scale the instruction window: a bigger window already tolerates
    more latency on its own, moving the baseline."""
    return [
        _measure(
            workload,
            dataclasses.replace(config, window_entries=window),
            window,
        )
        for window in windows
    ]


def sweep_prediction_slots(
    workload: Workload,
    slot_counts: tuple[int, ...] = (2, 4, 8, 16),
    config: MachineConfig = FOUR_WIDE,
) -> list[SweepPoint]:
    """Scale the correlator's per-branch prediction slots (Figure 10
    provisions 8): too few slots starve loop slices."""
    points = []
    for slots in slot_counts:
        slice_hw = dataclasses.replace(
            config.slice_hw, predictions_per_branch=slots
        )
        points.append(
            _measure(
                workload,
                dataclasses.replace(config, slice_hw=slice_hw),
                slots,
            )
        )
    return points


def render_sweep(
    title: str, parameter: str, points: list[SweepPoint]
) -> str:
    """Fixed-width rendering of one sweep."""
    lines = [
        title,
        "",
        f"{parameter:>12s}{'base IPC':>10s}{'slice IPC':>11s}{'speedup':>9s}",
        "-" * 42,
    ]
    for point in points:
        lines.append(
            f"{point.value:>12d}{point.base.ipc:>10.3f}"
            f"{point.assisted.ipc:>11.3f}{point.speedup:>9.1%}"
        )
    return "\n".join(lines)

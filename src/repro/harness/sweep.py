"""Parameter-sensitivity sweeps.

The paper fixes one machine (Table 1) and reasons qualitatively about
how its conclusions scale ("programs and processors with low base IPCs
are more likely to benefit", §6.3). These sweeps make those arguments
quantitative on our simulator: each varies one machine parameter and
re-runs the baseline/slice pair, reporting how the slice benefit moves.

Each sweep is expressed as a list of :class:`RunRequest` descriptors
with a single ``overrides`` entry and executed through
:func:`~repro.harness.parallel.run_matrix`, so sweep points run in
parallel and repeat renders hit the on-disk cache. A workload built
outside the registry (or a non-preset config) falls back to direct
sequential simulation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.harness.cache import RunCache
from repro.harness.fastforward import (
    SnapshotStore,
    ensure_snapshot,
    sample_plan,
)
from repro.harness.parallel import CONFIG_PRESETS, RunRequest, run_matrix
from repro.harness.runner import run_baseline, run_with_slices
from repro.uarch.config import FOUR_WIDE, MachineConfig
from repro.uarch.stats import RunStats
from repro.workloads import registry
from repro.workloads.base import Workload


@dataclass
class SweepPoint:
    """One (parameter value, baseline, assisted) measurement."""

    value: int
    base: RunStats
    assisted: RunStats

    @property
    def speedup(self) -> float:
        return self.assisted.ipc / self.base.ipc - 1.0


def _requestable(workload: Workload, config: MachineConfig) -> bool:
    """True when (workload, config) can round-trip through a RunRequest."""
    return (
        workload.name in registry.WORKLOAD_BUILDERS
        and CONFIG_PRESETS.get(config.name) == config
    )


def _sweep(
    workload: Workload,
    config: MachineConfig,
    override_path: str,
    values: tuple[int, ...],
    jobs: int | None,
    cache: RunCache | None,
    fast_forward: int = 0,
    sample: int = 0,
) -> list[SweepPoint]:
    """Run the base/assisted pair at each override value.

    With ``fast_forward``/``sample`` set, every point is a sampled run
    sharing one warmed snapshot: the sweep parameters vary timing, not
    the warming-relevant sub-configs, so the architectural prefix is
    paid once for the whole sweep (``run_matrix`` pre-builds it).
    """
    if _requestable(workload, config):
        requests = []
        for value in values:
            overrides = ((override_path, value),)
            for mode in ("base", "slice"):
                requests.append(
                    RunRequest(
                        workload=workload.name,
                        scale=workload.scale,
                        mode=mode,
                        config=config.name,
                        overrides=overrides,
                        fast_forward=fast_forward,
                        sample=sample,
                    )
                )
        stats = run_matrix(requests, jobs=jobs, cache=cache)
        return [
            SweepPoint(value=value, base=stats[2 * i], assisted=stats[2 * i + 1])
            for i, value in enumerate(values)
        ]
    region, warmup = sample_plan(sample)
    store = SnapshotStore() if fast_forward > 0 else None
    points = []
    for value in values:
        varied = _apply(config, override_path, value)
        snapshot = None
        if fast_forward > 0:
            # The store's warm-config key dedups across points whose
            # varied parameter does not shape warmed state.
            snapshot, _ = ensure_snapshot(
                workload, varied, fast_forward, store=store
            )
        sampled = dict(snapshot=snapshot, warmup=warmup, region=region)
        points.append(
            SweepPoint(
                value=value,
                base=run_baseline(workload, varied, **sampled),
                assisted=run_with_slices(workload, varied, **sampled),
            )
        )
    return points


def _apply(config, path: str, value):
    head, _, rest = path.partition(".")
    if rest:
        value = _apply(getattr(config, head), rest, value)
    return dataclasses.replace(config, **{head: value})


def sweep_memory_latency(
    workload: Workload,
    latencies: tuple[int, ...] = (50, 100, 200, 400),
    config: MachineConfig = FOUR_WIDE,
    jobs: int | None = None,
    cache: RunCache | None = None,
    fast_forward: int = 0,
    sample: int = 0,
) -> list[SweepPoint]:
    """Scale main-memory latency: prefetch-driven slice benefit should
    grow with the latency the slice tolerates."""
    return _sweep(
        workload, config, "memory_latency", latencies, jobs, cache,
        fast_forward=fast_forward, sample=sample,
    )


def sweep_window_size(
    workload: Workload,
    windows: tuple[int, ...] = (32, 64, 128, 256),
    config: MachineConfig = FOUR_WIDE,
    jobs: int | None = None,
    cache: RunCache | None = None,
    fast_forward: int = 0,
    sample: int = 0,
) -> list[SweepPoint]:
    """Scale the instruction window: a bigger window already tolerates
    more latency on its own, moving the baseline."""
    return _sweep(
        workload, config, "window_entries", windows, jobs, cache,
        fast_forward=fast_forward, sample=sample,
    )


def sweep_prediction_slots(
    workload: Workload,
    slot_counts: tuple[int, ...] = (2, 4, 8, 16),
    config: MachineConfig = FOUR_WIDE,
    jobs: int | None = None,
    cache: RunCache | None = None,
    fast_forward: int = 0,
    sample: int = 0,
) -> list[SweepPoint]:
    """Scale the correlator's per-branch prediction slots (Figure 10
    provisions 8): too few slots starve loop slices."""
    return _sweep(
        workload,
        config,
        "slice_hw.predictions_per_branch",
        slot_counts,
        jobs,
        cache,
        fast_forward=fast_forward,
        sample=sample,
    )


def render_sweep(
    title: str, parameter: str, points: list[SweepPoint]
) -> str:
    """Fixed-width rendering of one sweep."""
    lines = [
        title,
        "",
        f"{parameter:>12s}{'base IPC':>10s}{'slice IPC':>11s}{'speedup':>9s}",
        "-" * 42,
    ]
    for point in points:
        lines.append(
            f"{point.value:>12d}{point.base.ipc:>10.3f}"
            f"{point.assisted.ipc:>11.3f}{point.speedup:>9.1%}"
        )
    return "\n".join(lines)

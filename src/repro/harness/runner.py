"""Run drivers: the baseline / slice-assisted / limit triples of Section 6.

Each experiment in the paper compares up to three machine setups on the
same workload region:

* **base** — the Table 1 machine;
* **slice** — base plus the slice-execution hardware and the workload's
  hand slices on a 4-context SMT;
* **limit** — the constrained limit study: the PDEs of exactly the
  problem instructions the slices cover are "magically" avoided.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.problem import (
    ProblemClassification,
    classify_problem_instructions,
)
from repro.uarch.config import FOUR_WIDE, MachineConfig
from repro.uarch.core import Core
from repro.uarch.perfect import ALL_PERFECT, PerfectSpec, problem_perfect
from repro.uarch.stats import RunStats
from repro.workloads.base import Workload


def run_baseline(
    workload: Workload,
    config: MachineConfig = FOUR_WIDE,
    event_driven: bool = True,
    fused_blocks: bool | None = None,
    snapshot=None,
    warmup: int = 0,
    region: int | None = None,
) -> RunStats:
    """Run the Table 1 machine with no slice hardware.

    *snapshot*/*warmup*/*region* support sampled runs
    (:mod:`repro.harness.fastforward`): start from a warmed-state
    snapshot, discard the first *warmup* committed instructions, and
    measure *region* instructions instead of the workload's full
    region. The defaults reproduce the full detailed run exactly.
    """
    return Core(
        workload.program,
        config,
        memory_image=workload.memory_image,
        memory_normalized=True,
        region=workload.region if region is None else region,
        warmup=warmup,
        snapshot=snapshot,
        workload_name=workload.name,
        event_driven=event_driven,
        fused_blocks=fused_blocks,
    ).run()


def run_with_slices(
    workload: Workload,
    config: MachineConfig = FOUR_WIDE,
    dedicated: bool = False,
    slices=None,
    event_driven: bool = True,
    fused_blocks: bool | None = None,
    snapshot=None,
    warmup: int = 0,
    region: int | None = None,
) -> RunStats:
    """Run with the workload's speculative slices loaded."""
    return Core(
        workload.program,
        config,
        slices=tuple(workload.slices if slices is None else slices),
        memory_image=workload.memory_image,
        memory_normalized=True,
        region=workload.region if region is None else region,
        warmup=warmup,
        snapshot=snapshot,
        dedicated_slice_resources=dedicated,
        workload_name=workload.name,
        event_driven=event_driven,
        fused_blocks=fused_blocks,
    ).run()


def run_perfect(
    workload: Workload,
    perfect: PerfectSpec,
    config: MachineConfig = FOUR_WIDE,
    event_driven: bool = True,
    fused_blocks: bool | None = None,
    snapshot=None,
    warmup: int = 0,
    region: int | None = None,
) -> RunStats:
    """Run with a per-static-instruction perfect overlay."""
    return Core(
        workload.program,
        config,
        perfect=perfect,
        memory_image=workload.memory_image,
        memory_normalized=True,
        region=workload.region if region is None else region,
        warmup=warmup,
        snapshot=snapshot,
        workload_name=workload.name,
        event_driven=event_driven,
        fused_blocks=fused_blocks,
    ).run()


def covered_problem_spec(workload: Workload) -> PerfectSpec:
    """Problem instructions covered by the workload's slices — the set
    the constrained limit study of Section 6 perfects."""
    branch_pcs = set()
    load_pcs = set()
    for spec in workload.slices:
        branch_pcs.update(spec.covered_branch_pcs)
        load_pcs.update(spec.covered_load_pcs)
    if not branch_pcs and not load_pcs:
        # No slices (parser): the limit perfects the annotated problem
        # instructions so the bar still shows what was left on the table.
        branch_pcs = set(workload.problem_branch_pcs)
        load_pcs = set(workload.problem_load_pcs)
    return problem_perfect(branch_pcs, load_pcs)


@dataclass
class TripleResult:
    """base / slice / limit results for one workload and config."""

    workload: Workload
    config: MachineConfig
    base: RunStats
    assisted: RunStats
    limit: RunStats

    @property
    def slice_speedup(self) -> float:
        return self.assisted.ipc / self.base.ipc - 1.0

    @property
    def limit_speedup(self) -> float:
        return self.limit.ipc / self.base.ipc - 1.0

    @property
    def slice_speedup_ci95(self) -> float:
        """95% confidence half-width on the slice speedup of a
        multi-region sampled pair (0.0 for full-detail runs). Base and
        assisted windows are paired (same chain, same depths), so the
        samples are the per-region speedup ratios."""
        from repro.uarch.stats import mean_ci95

        base = self.base.region_ipcs
        assisted = self.assisted.region_ipcs
        paired = min(len(base), len(assisted))
        if paired < 2:
            return 0.0
        ratios = [
            assisted[k] / base[k] - 1.0 for k in range(paired) if base[k]
        ]
        if len(ratios) < 2:
            return 0.0
        return mean_ci95(ratios)[1]


def run_triple(
    workload: Workload, config: MachineConfig = FOUR_WIDE
) -> TripleResult:
    """Run the Section 6 experiment for one workload."""
    base = run_baseline(workload, config)
    assisted = run_with_slices(workload, config)
    limit = run_perfect(workload, covered_problem_spec(workload), config)
    return TripleResult(workload, config, base, assisted, limit)


@dataclass
class PerfectSweepResult:
    """base / problem-perfect / all-perfect results (Figure 1)."""

    workload: Workload
    config: MachineConfig
    base: RunStats
    problem_perfect: RunStats
    all_perfect: RunStats
    #: The profiled problem set behind ``problem_perfect``. ``None``
    #: only when a caller assembles a result without profiling; the
    #: drivers in this package always supply it.
    classification: ProblemClassification | None = field(
        repr=False, default=None
    )


def run_perfect_sweep(
    workload: Workload, config: MachineConfig = FOUR_WIDE
) -> PerfectSweepResult:
    """Run the Figure 1 experiment: profile the baseline, classify its
    problem instructions, then idealize them and everything."""
    base = run_baseline(workload, config)
    classification = classify_problem_instructions(base)
    prob = run_perfect(
        workload,
        problem_perfect(classification.branch_pcs, classification.load_pcs),
        config,
    )
    allp = run_perfect(workload, ALL_PERFECT, config)
    return PerfectSweepResult(workload, config, base, prob, allp, classification)

"""Text renderers for the paper's tables and figures.

Every renderer takes the structured results from
:mod:`repro.harness.experiments` and produces a fixed-width text block
with the same rows/series the paper reports.
"""

from __future__ import annotations

from repro.analysis.characterize import RunCharacterization, SliceCharacterization
from repro.analysis.problem import CoverageSummary
from repro.harness.runner import PerfectSweepResult, TripleResult


def _bar(value: float, scale: float, width: int = 40) -> str:
    filled = int(round(min(value / scale, 1.0) * width)) if scale else 0
    return "#" * filled


def render_table2(rows: list[tuple[str, CoverageSummary]]) -> str:
    """Table 2: coverage of PDEs by problem instructions."""
    lines = [
        "Table 2. Coverage of performance degrading events by problem instructions",
        "",
        f"{'Program':<9s}|{'Memory Insts':^24s}|{'Control Insts':^24s}",
        f"{'':<9s}|{'#SI':>6s}{'mem':>9s}{'mis':>9s}|{'#SI':>6s}{'br':>9s}{'mis':>9s}",
        "-" * 59,
    ]
    for name, cov in rows:
        lines.append(
            f"{name:<9s}|{cov.mem_problem_count:>6d}"
            f"{cov.mem_dynamic_share:>8.0%} {cov.mem_miss_coverage:>8.0%} "
            f"|{cov.branch_problem_count:>6d}"
            f"{cov.branch_dynamic_share:>8.0%} {cov.branch_misp_coverage:>8.0%}"
        )
    return "\n".join(lines)


def render_figure1(results: list[PerfectSweepResult]) -> str:
    """Figure 1: IPC of baseline vs problem-perfect vs all-perfect."""
    lines = [
        "Figure 1. Performance impact of problem instructions (IPC)",
        "",
        f"{'program':<9s}{'cfg':<8s}{'base':>7s}{'prob.perf':>10s}"
        f"{'all perf':>9s}   stacked IPC",
        "-" * 78,
    ]
    scale = max((r.all_perfect.ipc for r in results), default=1.0)
    for r in results:
        base, prob, allp = r.base.ipc, r.problem_perfect.ipc, r.all_perfect.ipc
        width = 30
        base_w = int(round(base / scale * width))
        prob_w = max(int(round(prob / scale * width)) - base_w, 0)
        all_w = max(int(round(allp / scale * width)) - base_w - prob_w, 0)
        bar = "B" * base_w + "P" * prob_w + "A" * all_w
        lines.append(
            f"{r.workload.name:<9s}{r.config.name:<8s}{base:>7.2f}"
            f"{prob:>10.2f}{allp:>9.2f}   {bar}"
        )
    lines.append("-" * 78)
    lines.append("B = baseline, P = added by perfecting problem insts, "
                 "A = added by perfecting all")
    return "\n".join(lines)


def render_table3(rows: list[SliceCharacterization]) -> str:
    """Table 3: characterization of the constructed slices."""

    def loop_fmt(total: int, in_loop: int | None, has_loop: bool) -> str:
        if has_loop and in_loop:
            return f"{total} ({in_loop})"
        return str(total)

    lines = [
        "Table 3. Characterization of slices",
        "",
        f"{'prog.':<9s}{'slice':<16s}{'static':>8s}{'live':>6s}"
        f"{'pref':>8s}{'pred':>8s}{'kills':>8s}{'max iter':>10s}",
        "-" * 73,
    ]
    for row in rows:
        has_loop = row.max_iterations is not None
        static = (
            f"{row.static_size} ({row.loop_size})"
            if row.loop_size
            else str(row.static_size)
        )
        lines.append(
            f"{row.program:<9s}{row.slice_name:<16s}{static:>8s}"
            f"{row.live_ins:>6d}"
            f"{loop_fmt(row.prefetches, row.prefetches_in_loop, has_loop):>8s}"
            f"{loop_fmt(row.predictions, row.predictions_in_loop, has_loop):>8s}"
            f"{loop_fmt(row.kills, row.kills_in_loop, has_loop):>8s}"
            f"{row.max_iterations if has_loop else '—':>10}"
        )
    return "\n".join(lines)


def render_figure11(results: list[TripleResult]) -> str:
    """Figure 11: speedup of slices vs the constrained limit study."""
    lines = [
        "Figure 11. Speedup of slice-assisted execution vs limit study "
        f"({results[0].config.name} machine)" if results else "Figure 11.",
        "",
        f"{'program':<9s}{'slice':>8s}{'limit':>8s}   speedup",
        "-" * 70,
    ]
    scale = max((r.limit_speedup for r in results), default=1.0)
    scale = max(scale, 0.01)
    for r in results:
        ci = r.slice_speedup_ci95
        error_bar = f"  (±{ci:.1%}, N={r.base.sample_regions})" if ci else ""
        lines.append(
            f"{r.workload.name:<9s}{r.slice_speedup:>8.1%}{r.limit_speedup:>8.1%}"
            f"   s|{_bar(max(r.slice_speedup, 0), scale)}{error_bar}"
        )
        lines.append(f"{'':<25s}   l|{_bar(max(r.limit_speedup, 0), scale)}")
    return "\n".join(lines)


def render_table4(rows: list[RunCharacterization]) -> str:
    """Table 4: characterization of execution with and without slices."""
    header = f"{'':38s}" + "".join(f"{row.program:>10s}" for row in rows)
    lines = [
        "Table 4. Characterization of program execution with and "
        "without speculative slices",
        "",
        header,
        "-" * len(header),
    ]

    def add(label: str, fmt: str, getter) -> None:
        cells = "".join(f"{fmt.format(getter(row)):>10s}" for row in rows)
        lines.append(f"{label:<38s}{cells}")

    add("Base: instructions fetched (K)", "{:.1f}", lambda r: r.base_fetched / 1e3)
    add("Base: branch mispredictions", "{}", lambda r: r.base_mispredictions)
    add("Base: load misses", "{}", lambda r: r.base_load_misses)
    add("Base: IPC", "{:.2f}", lambda r: r.base_ipc)
    add("Slices: program fetched (K)", "{:.1f}", lambda r: r.slice_fetched_main / 1e3)
    add("Slices: slice fetched (K)", "{:.1f}", lambda r: r.slice_fetched_helper / 1e3)
    add("Slices: slice retired (K)", "{:.1f}", lambda r: r.slice_retired_helper / 1e3)
    add("Fork points", "{}", lambda r: r.fork_points)
    add("Fork points squashed", "{}", lambda r: r.forks_squashed)
    add("Fork points ignored", "{}", lambda r: r.forks_ignored)
    add(
        "Slices killed (fuse/fault)",
        "{}",
        lambda r: f"{r.slices_killed_fuse}/{r.slices_killed_fault}",
    )
    add("Problem branches covered", "{}", lambda r: r.problem_branches_covered)
    add("Predictions generated", "{}", lambda r: r.predictions_generated)
    add("Mispredictions removed", "{}", lambda r: r.mispredictions_removed)
    add("Total mispred. removed (%)", "{:.0%}", lambda r: r.misprediction_reduction)
    add("Incorrect predictions", "{}", lambda r: r.incorrect_predictions)
    add("Late predictions (%)", "{:.0%}", lambda r: r.late_fraction)
    add("Prefetches performed", "{}", lambda r: r.prefetches_performed)
    add("Net reduction in misses (%)", "{:.0%}", lambda r: r.miss_reduction)
    add("Total fetch change (%)", "{:+.0%}", lambda r: r.total_fetch_change)
    add("Slices: IPC", "{:.2f}", lambda r: r.slice_ipc)
    add("Speedup", "{:+.0%}", lambda r: r.speedup)
    if any(r.sample_regions >= 2 for r in rows):
        # Multi-region sampled columns: say how tight the estimates
        # are. Full-detail columns in the same table show "—".
        def ci(value: float, row: RunCharacterization) -> str:
            return f"±{value:.2f}" if row.sample_regions >= 2 else "—"

        add("Sampled regions (N)", "{}",
            lambda r: r.sample_regions if r.sample_regions >= 2 else "—")
        add("Base: IPC 95% CI", "{}", lambda r: ci(r.base_ipc_ci, r))
        add("Slices: IPC 95% CI", "{}", lambda r: ci(r.slice_ipc_ci, r))
        add(
            "Speedup 95% CI",
            "{}",
            lambda r: f"±{r.speedup_ci:.0%}" if r.sample_regions >= 2 else "—",
        )
    return "\n".join(lines)


def render_table1(config) -> str:
    """Table 1: the simulated machine parameters."""
    lines = [
        f"Table 1. Simulated machine parameters ({config.name})",
        "",
        f"Core: {config.width}-wide, {config.window_entries}-entry window, "
        f"{config.load_store_ports} load/store ports, "
        f"{config.simple_alus} simple + {config.complex_alus} complex ALUs, "
        f"{config.pipeline_depth}-stage pipeline",
        f"Front end: {config.icache.size_bytes // 1024}KB I-cache, "
        f"{config.branch.yags_bits // 1024}Kb YAGS, "
        f"{config.branch.indirect_bits // 1024}Kb cascading indirect, "
        f"{config.branch.ras_entries}-entry RAS, perfect BTB",
        f"L1D: {config.l1d.size_bytes // 1024}KB {config.l1d.associativity}-way, "
        f"{config.l1d.line_bytes}B lines, {config.l1d.latency}-cycle",
        f"L2: {config.l2.size_bytes // (1024 * 1024)}MB "
        f"{config.l2.associativity}-way, {config.l2.line_bytes}B lines, "
        f"{config.l2.latency}-cycle",
        f"Memory: {config.memory_latency}-cycle minimum latency",
        f"Prefetch: {config.prefetch.buffer_entries}-entry unified "
        f"prefetch/victim buffer, unit-stride stream prefetcher",
        f"SMT: {config.thread_contexts} thread contexts, ICOUNT biased "
        f"to the main thread",
        f"Slice hardware: {config.slice_hw.slice_table_entries}-entry "
        f"slice table, {config.slice_hw.pgi_table_entries}-entry PGI "
        f"table, {config.slice_hw.branch_queue_entries}x"
        f"{config.slice_hw.predictions_per_branch} prediction correlator",
    ]
    return "\n".join(lines)

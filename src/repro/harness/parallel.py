"""Parallel, cached execution of experiment run matrices.

Every paper experiment reduces to a list of independent simulations.
This module gives the harness one entry point for all of them:

* :class:`RunRequest` — a declarative, picklable description of one
  simulation (workload name, scale, machine preset, mode, overrides).
* :func:`execute_request` — materialize and run one request (also the
  process-pool worker).
* :func:`run_matrix` — map requests to :class:`RunStats`, in input
  order, deduplicating identical requests, consulting the
  :class:`~repro.harness.cache.RunCache`, and fanning fresh runs out
  over a process pool (``--jobs`` / ``REPRO_JOBS`` / ``os.cpu_count()``).

The simulator is deterministic, so parallel and cached execution return
bit-identical stats to sequential fresh runs (asserted by
``tests/harness/test_determinism.py`` and ``tests/harness/test_cache.py``).
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field


def _default_event_driven() -> bool:
    """Request default for the core's cycle-skipping loop.

    ``REPRO_NO_SKIP`` (set by the ``--no-skip`` CLI flag) flips the
    default to the classic stepping loop for differential testing.
    """
    return not os.environ.get("REPRO_NO_SKIP")

from repro.harness.cache import RunCache
from repro.uarch.config import EIGHT_WIDE, FOUR_WIDE, MachineConfig
from repro.uarch.perfect import PerfectSpec
from repro.uarch.stats import RunStats
from repro.workloads import registry

#: Machine presets addressable by name from a request.
CONFIG_PRESETS: dict[str, MachineConfig] = {
    FOUR_WIDE.name: FOUR_WIDE,
    EIGHT_WIDE.name: EIGHT_WIDE,
}

#: Run modes (mirroring the Section 6 experiment arms).
MODES = ("base", "slice", "limit", "perfect")


@dataclass(frozen=True)
class RunRequest:
    """One simulation, described declaratively.

    Hashable (for in-matrix deduplication), picklable (for the process
    pool), and JSON-serializable via ``dataclasses.asdict`` (for the
    cache fingerprint).
    """

    workload: str
    scale: float
    #: ``base`` | ``slice`` | ``limit`` | ``perfect``.
    mode: str = "base"
    #: Machine preset name (``4-wide`` / ``8-wide``).
    config: str = FOUR_WIDE.name
    #: ``(dotted.path, value)`` pairs applied to the preset with
    #: ``dataclasses.replace``, e.g. ``(("memory_latency", 400),)`` or
    #: ``(("slice_hw.predictions_per_branch", 4),)``.
    overrides: tuple[tuple[str, object], ...] = ()
    #: ``slice`` mode: dedicated execution resources for helper threads.
    dedicated: bool = False
    #: ``perfect`` mode: the idealized static PCs (sorted for stable
    #: fingerprints) or the all-instructions flags.
    perfect_branch_pcs: tuple[int, ...] = ()
    perfect_load_pcs: tuple[int, ...] = ()
    all_branches: bool = False
    all_loads: bool = False
    #: Event-driven cycle skipping in the core loop. Stats are
    #: identical either way (bar the skip counters), but the modes are
    #: fingerprinted separately so cached skip counters stay honest.
    event_driven: bool = field(default_factory=_default_event_driven)

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; known: {MODES}")
        if self.config not in CONFIG_PRESETS:
            raise ValueError(
                f"unknown config {self.config!r}; "
                f"known: {tuple(CONFIG_PRESETS)}"
            )
        # Normalize so equal requests fingerprint and hash equally.
        object.__setattr__(
            self, "perfect_branch_pcs", tuple(sorted(self.perfect_branch_pcs))
        )
        object.__setattr__(
            self, "perfect_load_pcs", tuple(sorted(self.perfect_load_pcs))
        )
        object.__setattr__(
            self, "overrides", tuple((str(p), v) for p, v in self.overrides)
        )

    def resolve_config(self) -> MachineConfig:
        """Materialize the machine configuration for this request."""
        config = CONFIG_PRESETS[self.config]
        for path, value in self.overrides:
            config = _apply_override(config, path, value)
        return config


def _apply_override(config, path: str, value):
    """Replace the (possibly nested) field at dotted *path*."""
    head, _, rest = path.partition(".")
    if rest:
        value = _apply_override(getattr(config, head), rest, value)
    return dataclasses.replace(config, **{head: value})


def execute_request(request: RunRequest) -> RunStats:
    """Build and run one request. Top-level so the pool can pickle it."""
    from repro.harness.runner import (
        covered_problem_spec,
        run_baseline,
        run_perfect,
        run_with_slices,
    )

    workload = registry.build(request.workload, scale=request.scale)
    config = request.resolve_config()
    mode = request.mode
    event_driven = request.event_driven
    if mode == "base":
        return run_baseline(workload, config, event_driven=event_driven)
    if mode == "slice":
        return run_with_slices(
            workload,
            config,
            dedicated=request.dedicated,
            event_driven=event_driven,
        )
    if mode == "limit":
        return run_perfect(
            workload,
            covered_problem_spec(workload),
            config,
            event_driven=event_driven,
        )
    # mode == "perfect"
    spec = PerfectSpec(
        branch_pcs=frozenset(request.perfect_branch_pcs),
        load_pcs=frozenset(request.perfect_load_pcs),
        all_branches=request.all_branches,
        all_loads=request.all_loads,
    )
    return run_perfect(workload, spec, config, event_driven=event_driven)


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit arg, else ``REPRO_JOBS``, else CPU count."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        jobs = int(env) if env else (os.cpu_count() or 1)
    return max(1, jobs)


def run_matrix(
    requests,
    jobs: int | None = None,
    cache: RunCache | None = None,
) -> list[RunStats]:
    """Execute *requests*, returning stats in input order.

    Identical requests are simulated once. Cached results are reused
    (pass a disabled :class:`RunCache` to opt out); fresh runs go to a
    process pool when more than one is needed and ``jobs > 1``.
    """
    requests = list(requests)
    if cache is None:
        cache = RunCache()

    by_request: dict[RunRequest, list[int]] = {}
    for index, request in enumerate(requests):
        by_request.setdefault(request, []).append(index)

    results: list[RunStats | None] = [None] * len(requests)
    pending: list[RunRequest] = []
    for request, indices in by_request.items():
        stats = cache.get(request)
        if stats is None:
            pending.append(request)
        else:
            for index in indices:
                results[index] = stats
    if pending:
        workers = min(resolve_jobs(jobs), len(pending))
        if workers > 1:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                fresh = list(pool.map(execute_request, pending))
        else:
            fresh = [execute_request(request) for request in pending]
        for request, stats in zip(pending, fresh):
            cache.put(request, stats)
            for index in by_request[request]:
                results[index] = stats
    return results

"""Parallel, fault-tolerant execution of experiment run matrices.

Every paper experiment reduces to a list of independent simulations.
This module gives the harness one entry point for all of them:

* :class:`RunRequest` — a declarative, picklable description of one
  simulation (workload name, scale, machine preset, mode, overrides).
* :func:`execute_request` — materialize and run one request (also the
  process-pool worker).
* :func:`run_matrix` — map requests to :class:`RunStats`, in input
  order, deduplicating identical requests, consulting the
  :class:`~repro.harness.cache.RunCache`, and fanning fresh runs out
  over a process pool (``--jobs`` / ``REPRO_JOBS`` / ``os.cpu_count()``).

The simulator is deterministic, so parallel and cached execution return
bit-identical stats to sequential fresh runs (asserted by
``tests/harness/test_determinism.py`` and ``tests/harness/test_cache.py``).

**Failure model.** A large matrix must survive partial failure: one
OOM-killed worker or one wedged simulation must not discard hours of
sibling results. :func:`run_matrix` therefore supports per-request
wall-clock timeouts (``timeout=`` / ``REPRO_TIMEOUT``), bounded retries
with exponential backoff and deterministic jitter (``retries=`` /
``REPRO_RETRIES``), and broken-pool recovery: when a worker dies the
pool is respawned and in-flight requests are requeued; when a request
times out its workers are terminated and innocent in-flight siblings
are requeued *without* being charged an attempt. The ``on_error``
policy decides the endgame for a request that exhausts its retries:
``"raise"`` (default) propagates the typed error; ``"skip"`` records
the failure and completes the rest of the matrix. Per-request
outcome/attempts/latency accounting is returned as a
:class:`MatrixReport` (``return_report=True``); the plain list form
substitutes empty placeholder stats for skipped requests so partial
renders survive. Deterministic fault injection for all of the above
lives in :mod:`repro.harness.faults`.

**Service mode.** When ``REPRO_SERVICE_URL`` (the ``--service`` CLI
flag) names a running experiment service (:mod:`repro.service`),
:func:`run_matrix` becomes a thin client with the *same signature and
result bytes*: cache hits still resolve locally, misses are submitted
as one sweep and executed by ``repro worker`` processes, and the
decoded results are re-published into the local cache. The in-process
pool remains the default.
"""

from __future__ import annotations

import dataclasses
import hashlib
import logging
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.errors import RunTimeoutError, SimulationError, WorkerCrashError

log = logging.getLogger(__name__)


def _default_event_driven() -> bool:
    """Request default for the core's cycle-skipping loop.

    ``REPRO_NO_SKIP`` (set by the ``--no-skip`` CLI flag) flips the
    default to the classic stepping loop for differential testing.
    """
    return not os.environ.get("REPRO_NO_SKIP")


def _default_fused_blocks() -> bool:
    """Request default for the fused basic-block execution tier.

    ``REPRO_NO_FUSE`` (set by the ``--no-fuse`` CLI flag) flips the
    default to the per-instruction tier for differential testing.
    """
    return not os.environ.get("REPRO_NO_FUSE")


def _default_fast_forward() -> int:
    """Request default for the functional fast-forward prefix length.

    ``REPRO_FAST_FORWARD`` (set by the ``--fast-forward`` CLI flag)
    makes every request constructed in-process a sampled run without
    threading the value through each call site.
    """
    return int(os.environ.get("REPRO_FAST_FORWARD", "0") or 0)


def _default_sample() -> int:
    """Request default for the measured-region length of a sampled run.

    ``REPRO_SAMPLE`` (set by the ``--sample`` CLI flag). ``0`` measures
    the workload's full region.
    """
    return int(os.environ.get("REPRO_SAMPLE", "0") or 0)


def _default_sample_regions() -> int:
    """Request default for the number of multi-region sampling windows.

    ``REPRO_SAMPLE_REGIONS`` (set by the ``--sample-regions`` CLI
    flag). ``0`` / ``1`` keep the legacy single-window path.
    """
    return int(os.environ.get("REPRO_SAMPLE_REGIONS", "0") or 0)


def _default_sample_period() -> int:
    """Request default for the spacing between multi-region windows.

    ``REPRO_SAMPLE_PERIOD`` (set by the ``--sample-period`` CLI flag).
    ``0`` spreads the windows uniformly over the workload's region.
    """
    return int(os.environ.get("REPRO_SAMPLE_PERIOD", "0") or 0)


from repro.harness.cache import RunCache
from repro.uarch.config import EIGHT_WIDE, FOUR_WIDE, MachineConfig
from repro.uarch.perfect import PerfectSpec
from repro.uarch.stats import RunStats
from repro.workloads import registry

#: Machine presets addressable by name from a request.
CONFIG_PRESETS: dict[str, MachineConfig] = {
    FOUR_WIDE.name: FOUR_WIDE,
    EIGHT_WIDE.name: EIGHT_WIDE,
}

#: Run modes (mirroring the Section 6 experiment arms).
MODES = ("base", "slice", "limit", "perfect")

#: ``on_error`` policies for requests that exhaust their retries.
ON_ERROR_POLICIES = ("raise", "skip")


@dataclass(frozen=True)
class RunRequest:
    """One simulation, described declaratively.

    Hashable (for in-matrix deduplication), picklable (for the process
    pool), and JSON-serializable via ``dataclasses.asdict`` (for the
    cache fingerprint).
    """

    workload: str
    scale: float
    #: ``base`` | ``slice`` | ``limit`` | ``perfect``.
    mode: str = "base"
    #: Machine preset name (``4-wide`` / ``8-wide``).
    config: str = FOUR_WIDE.name
    #: ``(dotted.path, value)`` pairs applied to the preset with
    #: ``dataclasses.replace``, e.g. ``(("memory_latency", 400),)`` or
    #: ``(("slice_hw.predictions_per_branch", 4),)``.
    overrides: tuple[tuple[str, object], ...] = ()
    #: ``slice`` mode: dedicated execution resources for helper threads.
    dedicated: bool = False
    #: ``perfect`` mode: the idealized static PCs (sorted for stable
    #: fingerprints) or the all-instructions flags.
    perfect_branch_pcs: tuple[int, ...] = ()
    perfect_load_pcs: tuple[int, ...] = ()
    all_branches: bool = False
    all_loads: bool = False
    #: Event-driven cycle skipping in the core loop. Stats are
    #: identical either way (bar the skip counters), but the modes are
    #: fingerprinted separately so cached skip counters stay honest.
    event_driven: bool = field(default_factory=_default_event_driven)
    #: Fused basic-block execution tier. Stats are identical either way
    #: (bar the fusion meta counters), but fingerprinted separately so
    #: cached ``blocks_compiled`` / ``block_deopts`` stay honest.
    fused_blocks: bool = field(default_factory=_default_fused_blocks)
    #: Sampled simulation (:mod:`repro.harness.fastforward`): execute
    #: this many instructions on the functional fast-forward tier (with
    #: functional warming), restoring the detailed core from the warmed
    #: snapshot. ``0`` = full detailed run. Joins the cache fingerprint
    #: via ``dataclasses.asdict`` like every other field.
    fast_forward: int = field(default_factory=_default_fast_forward)
    #: Measured-region length of a sampled run: measure this many
    #: committed instructions after the detailed-warming discard window
    #: (see :func:`repro.harness.fastforward.sample_plan`). ``0`` =
    #: the workload's full region.
    sample: int = field(default_factory=_default_sample)
    #: Multi-region statistical sampling
    #: (:func:`repro.harness.fastforward.build_sample_plan`): run this
    #: many periodic detailed windows of ``sample`` instructions each,
    #: fast-forwarding between them along a shared snapshot chain, and
    #: aggregate them with a confidence interval
    #: (:func:`repro.uarch.stats.aggregate_stats`). ``0`` / ``1`` =
    #: the legacy single-window path, bit-identical to before.
    sample_regions: int = field(default_factory=_default_sample_regions)
    #: Spacing between multi-region window starts (instructions).
    #: ``0`` derives it by spreading the windows uniformly over the
    #: workload's full region.
    sample_period: int = field(default_factory=_default_sample_period)

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; known: {MODES}")
        if self.config not in CONFIG_PRESETS:
            raise ValueError(
                f"unknown config {self.config!r}; "
                f"known: {tuple(CONFIG_PRESETS)}"
            )
        if self.fast_forward < 0 or self.sample < 0:
            raise ValueError(
                "fast_forward and sample must be non-negative "
                f"(got {self.fast_forward}, {self.sample})"
            )
        if self.sample_regions < 0 or self.sample_period < 0:
            raise ValueError(
                "sample_regions and sample_period must be non-negative "
                f"(got {self.sample_regions}, {self.sample_period})"
            )
        if self.sample_regions >= 2 and self.sample <= 0:
            raise ValueError(
                "multi-region sampling (sample_regions >= 2) requires "
                "a measured window length (sample > 0)"
            )
        # Normalize so equal requests fingerprint and hash equally.
        object.__setattr__(
            self, "perfect_branch_pcs", tuple(sorted(self.perfect_branch_pcs))
        )
        object.__setattr__(
            self, "perfect_load_pcs", tuple(sorted(self.perfect_load_pcs))
        )
        object.__setattr__(
            self, "overrides", tuple((str(p), v) for p, v in self.overrides)
        )

    def resolve_config(self) -> MachineConfig:
        """Materialize the machine configuration for this request."""
        config = CONFIG_PRESETS[self.config]
        for path, value in self.overrides:
            config = _apply_override(config, path, value)
        return config


def _apply_override(config, path: str, value):
    """Replace the (possibly nested) field at dotted *path*."""
    head, _, rest = path.partition(".")
    if rest:
        value = _apply_override(getattr(config, head), rest, value)
    return dataclasses.replace(config, **{head: value})


def _dispatch_mode(
    request: RunRequest, workload, config, snapshot, warmup, region
) -> RunStats:
    """Run one detailed window of *request*'s mode.

    Shared by the legacy single-window path and each window of a
    multi-region run. The ``snapshot is None, warmup == 0,
    region is None`` combination constructs the Core exactly as a
    full-detail run (bit-identical stats discipline).
    """
    from repro.harness.runner import (
        covered_problem_spec,
        run_baseline,
        run_perfect,
        run_with_slices,
    )

    mode = request.mode
    event_driven = request.event_driven
    fused_blocks = request.fused_blocks
    sampled = dict(snapshot=snapshot, warmup=warmup or 0, region=region)

    if mode == "base":
        return run_baseline(
            workload, config, event_driven=event_driven,
            fused_blocks=fused_blocks, **sampled,
        )
    if mode == "slice":
        return run_with_slices(
            workload,
            config,
            dedicated=request.dedicated,
            event_driven=event_driven,
            fused_blocks=fused_blocks,
            **sampled,
        )
    if mode == "limit":
        return run_perfect(
            workload,
            covered_problem_spec(workload),
            config,
            event_driven=event_driven,
            fused_blocks=fused_blocks,
            **sampled,
        )
    # mode == "perfect"
    spec = PerfectSpec(
        branch_pcs=frozenset(request.perfect_branch_pcs),
        load_pcs=frozenset(request.perfect_load_pcs),
        all_branches=request.all_branches,
        all_loads=request.all_loads,
    )
    return run_perfect(
        workload, spec, config, event_driven=event_driven,
        fused_blocks=fused_blocks, **sampled,
    )


def _execute_multi_region(request: RunRequest, workload, config) -> RunStats:
    """Multi-region sampled execution: one detailed window per chain
    member, aggregated into a whole-run estimate with a confidence
    interval.

    Consumes :func:`~repro.harness.fastforward.iter_chain` as a
    stream — each window's snapshot is restored, measured, and
    released before the next member is touched, so at most one memory
    image beyond the running window is live at a time.
    """
    from repro.harness.fastforward import _plan_for_request, iter_chain
    from repro.uarch.stats import aggregate_stats

    plan = _plan_for_request(request, workload)
    per_region: list[RunStats] = []
    for snapshot, hit in iter_chain(workload, config, plan.depths):
        if (
            snapshot is not None
            and snapshot.executed < snapshot.ff_insts
            and per_region
        ):
            # The program halted before this window's start
            # (``workload.region`` is a ceiling, not a promise): there
            # is nothing left to measure, so later windows are dropped
            # rather than polluting the estimate with empty regions.
            # The first window always runs (legacy degenerate
            # semantics when fast_forward overshoots the program).
            break
        stats = _dispatch_mode(
            request, workload, config, snapshot, plan.warmup, plan.sample
        )
        if snapshot is not None:
            stats.ff_insts = snapshot.executed
            stats.snapshot_hit = hit
        per_region.append(stats)
    return aggregate_stats(per_region)


def execute_request(request: RunRequest) -> RunStats:
    """Build and run one request. Top-level so the pool can pickle it."""
    workload = registry.build(request.workload, scale=request.scale)
    config = request.resolve_config()

    if request.sample_regions >= 2:
        return _execute_multi_region(request, workload, config)

    # Single-window sampled run: fetch (or build) the warmed snapshot
    # and translate the sample length into the region + discard-window
    # pair. The fast_forward == sample == 0 path must construct the
    # Core exactly as before (bit-identical stats discipline).
    snapshot = None
    snapshot_hit = False
    region = warmup = None
    if request.fast_forward > 0 or request.sample > 0:
        from repro.harness.fastforward import ensure_snapshot, sample_plan

        region, warmup = sample_plan(request.sample)
        if request.fast_forward > 0:
            snapshot, snapshot_hit = ensure_snapshot(
                workload, config, request.fast_forward
            )
    stats = _dispatch_mode(
        request, workload, config, snapshot, warmup, region
    )
    if snapshot is not None:
        stats.ff_insts = snapshot.executed
        stats.snapshot_hit = snapshot_hit
    return stats


def window_request(request: RunRequest, depth: int) -> RunRequest:
    """The single-window :class:`RunRequest` computing one detailed
    window of a multi-region *request*.

    A window at chain depth *d* is exactly the single-window sampled
    run ``fast_forward=d, sample=request.sample``: same snapshot-store
    key, same warmup/region pair, same dispatch — so executing the
    derived request is bit-identical to the serial loop's iteration at
    that depth (the oracle the differential tests assert against).
    """
    return dataclasses.replace(
        request, fast_forward=depth, sample_regions=0, sample_period=0
    )


@dataclass(frozen=True)
class _WindowUnit:
    """One per-window work unit of an exploded multi-region request.

    A first-class sibling of ordinary matrix entries in the pool:
    hashable, picklable, fault-targetable (``request_key`` works on any
    dataclass), and deduplicated by its content-addressed *key* so two
    parents with overlapping schedules share each common window.
    """

    request: RunRequest  # the derived single-window request
    key: str  # window_fingerprint — the windows-namespace cache key
    depth: int

    @property
    def workload(self) -> str:  # log-line protocol of _execute_pooled
        return self.request.workload

    @property
    def mode(self) -> str:
        return f"{self.request.mode}@{self.depth}"


def window_depths(request: RunRequest) -> tuple[int, ...]:
    """The chain depths of a multi-region request's windows.

    With an explicit ``sample_period`` the schedule is closed-form (no
    workload build needed — the experiment service's submit path relies
    on this); a derived period needs the workload's region length.
    """
    from repro.harness.fastforward import _plan_for_request, build_sample_plan

    if request.sample_period > 0:
        return build_sample_plan(
            0,
            request.fast_forward,
            request.sample,
            request.sample_regions,
            request.sample_period,
        ).depths
    return _plan_for_request(request).depths


def window_schedule(request: RunRequest) -> list[_WindowUnit]:
    """Explode a multi-region *request* into its per-window work units,
    in depth order, each carrying its windows-namespace cache key."""
    from repro.harness.cache import window_fingerprint

    return [
        _WindowUnit(
            request=window_request(request, depth),
            key=window_fingerprint(request, depth),
            depth=depth,
        )
        for depth in window_depths(request)
    ]


def assemble_window_stats(per_window, depths) -> RunStats:
    """Fold per-window stats back into the whole-run aggregate, with
    the halt-drop rule reproduced exactly.

    The serial loop breaks at the first chain member whose functional
    prefix halted short of its requested depth (``executed <
    ff_insts``), keeping the first window unconditionally (legacy
    degenerate semantics when ``fast_forward`` overshoots the program).
    A window's stats carry ``ff_insts = snapshot.executed``, so the
    same rule here is ``stats.ff_insts < depth``: every window at or
    after the first short member is discarded, making the assembled
    aggregate bit-identical to :func:`_execute_multi_region` no matter
    how (or when, for cached windows) the windows were measured.
    """
    from repro.uarch.stats import aggregate_stats

    kept: list[RunStats] = []
    for stats, depth in zip(per_window, depths):
        if depth > 0 and stats.ff_insts < depth and kept:
            break
        kept.append(stats)
    return aggregate_stats(kept)


def _assemble_outcome(
    request: RunRequest,
    units,
    window_cached,
    unit_outcomes,
) -> "RequestOutcome":
    """Reassemble one exploded request from its windows' outcomes.

    Walks the schedule in depth order applying the serial loop's
    halt-drop rule (see :func:`assemble_window_stats`); a window that
    failed (skipped after exhausting retries) fails the whole request
    unless an earlier short chain member already dropped it.
    """
    from repro.uarch.stats import aggregate_stats

    kept: list[RunStats] = []
    attempts = 0
    hits = 0
    latency = 0.0
    missing: str | None = None
    for unit in units:
        cached = window_cached.get(unit.key)
        stats = cached
        if stats is None:
            outcome = unit_outcomes.get(unit.key)
            if outcome is not None:
                attempts += outcome.attempts
                latency = max(latency, outcome.latency)
                stats = outcome.stats
            if stats is None:
                missing = (
                    outcome.error
                    if outcome is not None and outcome.error
                    else f"window at depth {unit.depth} was not measured"
                )
                break
        if unit.depth > 0 and stats.ff_insts < unit.depth and kept:
            # Halt-drop: the chain halted short of this window's start;
            # it and every later window are discarded, exactly as the
            # serial loop would never have run them.
            break
        if cached is not None:
            hits += 1
        kept.append(stats)
    if missing is not None:
        return RequestOutcome(
            request,
            "skipped",
            None,
            attempts=attempts,
            error=missing,
            latency=latency,
            windows=len(units),
            window_hits=hits,
        )
    return RequestOutcome(
        request,
        "ok",
        aggregate_stats(kept),
        attempts=attempts,
        latency=latency,
        windows=len(units),
        window_hits=hits,
    )


def _window_store(cache):
    """The windows-namespace store riding alongside *cache*.

    A :class:`~repro.service.store.ContentStore` pins its own
    ``WindowCache`` on the run cache (so hit/miss counters persist);
    a bare :class:`RunCache` gets one lazily under the same root,
    inheriting its enabled flag.
    """
    store = getattr(cache, "window_store", None)
    if store is None:
        from repro.harness.cache import WindowCache

        store = WindowCache(cache.root, enabled=cache.enabled)
        cache.window_store = store
    return store


def _pool_entry(item, attempt: int, fault_plan) -> RunStats:
    """Pool worker: apply any planned fault, then run the item — an
    ordinary :class:`RunRequest` or one :class:`_WindowUnit` of an
    exploded multi-region request."""
    if fault_plan is not None:
        fault_plan.perturb(item, attempt)
    if isinstance(item, _WindowUnit):
        return execute_request(item.request)
    return execute_request(item)


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit arg, else ``REPRO_JOBS``, else CPU count."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        jobs = int(env) if env else (os.cpu_count() or 1)
    return max(1, jobs)


def resolve_window_jobs(window_jobs: int | None, jobs: int | None = None) -> int:
    """Window-level parallelism: explicit arg, else ``REPRO_WINDOW_JOBS``
    env (the ``--window-jobs`` CLI flag), else the matrix worker count.

    ``1`` is the serial escape hatch (and bit-identity oracle): each
    multi-region request measures its windows sequentially inside one
    worker, exactly as before. Any value ``> 1`` explodes multi-region
    requests into per-window work units scheduled through the same
    pool as ordinary matrix entries. ``window_jobs`` is *not* part of
    :class:`RunRequest` — it is pure execution strategy, so cache
    fingerprints (and results) are identical either way.
    """
    if window_jobs is None:
        env = os.environ.get("REPRO_WINDOW_JOBS")
        window_jobs = int(env) if env else 0
    if window_jobs <= 0:
        return resolve_jobs(jobs)
    return window_jobs


def _resolve_timeout(timeout: float | None) -> float | None:
    """Per-request timeout: explicit arg, else ``REPRO_TIMEOUT`` env."""
    if timeout is not None:
        return timeout if timeout > 0 else None
    env = os.environ.get("REPRO_TIMEOUT")
    if env:
        value = float(env)
        return value if value > 0 else None
    return None


def _resolve_retries(retries: int | None) -> int:
    """Retry budget: explicit arg, else ``REPRO_RETRIES`` env, else 0."""
    if retries is None:
        env = os.environ.get("REPRO_RETRIES")
        retries = int(env) if env else 0
    return max(0, retries)


def _resolve_on_error(on_error: str | None) -> str:
    if on_error is None:
        on_error = os.environ.get("REPRO_ON_ERROR", "raise")
    if on_error not in ON_ERROR_POLICIES:
        raise ValueError(
            f"unknown on_error {on_error!r}; known: {ON_ERROR_POLICIES}"
        )
    return on_error


def _backoff_delay(base: float, request: RunRequest, attempt: int) -> float:
    """Exponential backoff with deterministic jitter.

    The jitter is drawn from the request identity and attempt number,
    so two workers retrying different requests desynchronize without
    any nondeterminism entering the harness.
    """
    if base <= 0:
        return 0.0
    digest = hashlib.sha256(f"{attempt}:{request!r}".encode()).digest()
    jitter = int.from_bytes(digest[:4], "big") / 2**32
    return min(base * (2 ** max(attempt - 1, 0)) * (1.0 + jitter), 30.0)


@dataclass
class RequestOutcome:
    """How one (deduplicated) request fared in a matrix."""

    request: RunRequest
    #: ``"ok"`` (fresh run), ``"cached"`` (cache hit), or ``"skipped"``
    #: (failed after exhausting retries under ``on_error="skip"``).
    status: str
    stats: RunStats | None
    #: Execution attempts consumed (0 for pure cache hits).
    attempts: int = 0
    #: Message of the last error seen, for skipped / retried requests.
    error: str | None = None
    #: Wall-clock seconds from first submission to resolution.
    latency: float = 0.0
    #: Window-parallel accounting (multi-region requests exploded into
    #: per-window units): how many windows this request's schedule has,
    #: and how many were answered from the windows cache namespace
    #: instead of being measured.
    windows: int = 0
    window_hits: int = 0

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")


@dataclass
class MatrixReport:
    """Per-request accounting for one :func:`run_matrix` call.

    ``outcomes`` holds one entry per *input* request, in input order
    (duplicates share the underlying outcome object of their first
    occurrence).
    """

    outcomes: list[RequestOutcome] = field(default_factory=list)
    #: Times the process pool was torn down and respawned (worker
    #: crashes and timeout terminations).
    pool_respawns: int = 0
    #: Retry attempts beyond each request's first execution attempt.
    retries: int = 0

    @property
    def completed(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def skipped(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "skipped")

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "cached")

    @property
    def total_attempts(self) -> int:
        return sum(o.attempts for o in _unique_outcomes(self.outcomes))

    @property
    def ff_insts(self) -> int:
        """Instructions executed on the functional fast-forward tier
        across unique outcomes (multi-region runs already carry their
        chain total)."""
        return sum(
            o.stats.ff_insts
            for o in _unique_outcomes(self.outcomes)
            if o.stats is not None
        )

    @property
    def snapshot_hits(self) -> int:
        """Warmed snapshots restored from the on-disk store instead of
        built (chain members included)."""
        total = 0
        for o in _unique_outcomes(self.outcomes):
            if o.stats is None:
                continue
            if o.stats.sample_regions:
                total += o.stats.snapshot_hits
            elif o.stats.snapshot_hit:
                total += 1
        return total

    @property
    def sampled_regions(self) -> int:
        """Detailed windows run under sampling (a multi-region run
        contributes its region count; a single-window sampled run
        contributes 1)."""
        total = 0
        for o in _unique_outcomes(self.outcomes):
            if o.stats is None:
                continue
            if o.stats.sample_regions:
                total += o.stats.sample_regions
            elif o.stats.ff_insts:
                total += 1
        return total

    @property
    def windows(self) -> int:
        """Windows scheduled through the window-parallel decomposition
        (0 when requests ran serially or came whole from the cache)."""
        return sum(o.windows for o in _unique_outcomes(self.outcomes))

    @property
    def window_hits(self) -> int:
        """Windows answered from the windows cache namespace instead of
        measured — the per-window reuse a re-sweep with an overlapping
        schedule (e.g. 8 -> 10 regions) gets."""
        return sum(o.window_hits for o in _unique_outcomes(self.outcomes))

    def stats_list(self) -> list[RunStats]:
        """Input-order stats; skipped requests yield empty placeholder
        :class:`RunStats` so downstream renderers survive partial
        matrices (the skip is still visible here and in the CLI exit
        code)."""
        return [
            o.stats
            if o.stats is not None
            else RunStats(
                config_name=o.request.config, workload_name=o.request.workload
            )
            for o in self.outcomes
        ]


def _unique_outcomes(outcomes):
    seen = set()
    for outcome in outcomes:
        if id(outcome) not in seen:
            seen.add(id(outcome))
            yield outcome


#: Skipped outcomes across every ``run_matrix`` call since the last
#: :func:`reset_skipped_log` — the CLI uses this to exit nonzero when
#: an experiment completed with holes in it.
_skipped_log: list[RequestOutcome] = []


def reset_skipped_log() -> None:
    _skipped_log.clear()


def skipped_outcomes() -> list[RequestOutcome]:
    return list(_skipped_log)


def run_matrix(
    requests,
    jobs: int | None = None,
    cache: RunCache | None = None,
    *,
    window_jobs: int | None = None,
    timeout: float | None = None,
    retries: int | None = None,
    on_error: str | None = None,
    backoff_base: float = 0.05,
    fault_plan=None,
    return_report: bool = False,
):
    """Execute *requests*, returning stats in input order.

    Identical requests are simulated once. Cached results are reused
    (pass a disabled :class:`RunCache` to opt out); fresh runs go to a
    process pool when more than one worker is useful (or whenever a
    ``timeout`` is set — in-process execution cannot be preempted).

    **Window-parallel sampling.** When window-level parallelism is on
    (``window_jobs`` / ``REPRO_WINDOW_JOBS``; default: the matrix
    worker count), every multi-region request is exploded after the
    chain prebuild into per-window work units that fan out through the
    same pool as ordinary entries — inheriting timeout/retry/respawn/
    fault-plan semantics — and are reassembled in depth order with the
    serial loop's halt-drop rule, bit-identically. Each window also
    gets its own content-addressed entry in the ``windows`` cache
    namespace, so a re-sweep with an overlapping schedule (8 -> 10
    regions, say) recomputes only the new windows. ``window_jobs=1``
    is the serial escape hatch and bit-identity oracle.

    Resilience knobs (see the module docstring for the failure model):

    * ``timeout`` — per-request wall-clock budget in seconds
      (``REPRO_TIMEOUT`` env; ``None`` = unbounded).
    * ``retries`` — extra attempts per request after a crash, timeout,
      or transient error (``REPRO_RETRIES`` env; default 0).
    * ``on_error`` — ``"raise"`` (default, ``REPRO_ON_ERROR`` env) or
      ``"skip"``.
    * ``fault_plan`` — a :class:`~repro.harness.faults.FaultPlan` for
      deterministic fault injection (tests only).
    * ``return_report`` — return the full :class:`MatrixReport` instead
      of the plain stats list.
    """
    requests = list(requests)
    if cache is None:
        cache = RunCache()
    timeout = _resolve_timeout(timeout)
    retries = _resolve_retries(retries)
    on_error = _resolve_on_error(on_error)

    if fault_plan is not None:
        fault_plan.corrupt_cache_entries(cache, requests)

    by_request: dict[RunRequest, list[int]] = {}
    for index, request in enumerate(requests):
        by_request.setdefault(request, []).append(index)

    resolved: dict[RunRequest, RequestOutcome] = {}
    pending: list[RunRequest] = []
    for request in by_request:
        stats = cache.get(request)
        if stats is None:
            pending.append(request)
        else:
            resolved[request] = RequestOutcome(request, "cached", stats)

    report = MatrixReport()
    service = _service_url()
    if pending and service is not None:
        # Thin-client mode (``--service`` / ``REPRO_SERVICE_URL``): ship
        # the misses to the experiment service and let its workers pay
        # for execution — including snapshot prebuilds, which belong on
        # the machines that run the windows. Results come back
        # bit-identical (checksummed pickles) and are re-published into
        # the local cache below, so a later offline run is a pure hit.
        executed = _execute_service(
            pending, service, timeout=timeout, on_error=on_error
        )
        for request, outcome in executed.items():
            if outcome.status == "ok":
                cache.put(request, outcome.stats)
            else:
                _skipped_log.append(outcome)
            resolved[request] = outcome
        pending = []
    if pending:
        sampled = [
            r
            for r in pending
            if r.fast_forward > 0 or r.sample_regions >= 2
        ]
        if sampled:
            # Build each distinct warmed snapshot — for multi-region
            # requests, each distinct snapshot *chain* — once before
            # fanning out: every sweep point / pool worker then
            # restores from the shared store instead of re-paying the
            # functional prefix per run. Independent chains build
            # concurrently under the same resilience knobs as the
            # matrix itself. (Races with concurrent harnesses are
            # benign — builds are deterministic and writes are
            # atomic.)
            from repro.harness.fastforward import prebuild_snapshots

            prebuild_snapshots(
                sampled, jobs=jobs, timeout=timeout, retries=retries
            )
        # Two-level scheduling: explode multi-region requests into
        # per-window units (first-class pool siblings of the plain
        # requests), answering already-measured windows from the
        # ``windows`` cache namespace.
        window_jobs_n = resolve_window_jobs(window_jobs, jobs)
        plans: dict[RunRequest, list[_WindowUnit]] = {}
        window_cached: dict[str, RunStats] = {}
        units_by_key: dict[str, _WindowUnit] = {}
        windows_store = None
        if window_jobs_n > 1:
            multi = [r for r in pending if r.sample_regions >= 2]
            if multi:
                windows_store = _window_store(cache)
                for request in multi:
                    units = window_schedule(request)
                    plans[request] = units
                    for unit in units:
                        if (
                            unit.key in window_cached
                            or unit.key in units_by_key
                        ):
                            continue
                        stats = windows_store.get(unit.key)
                        if stats is not None:
                            window_cached[unit.key] = stats
                        else:
                            units_by_key[unit.key] = unit
        plain = [r for r in pending if r not in plans]
        pool_items: list = plain + list(units_by_key.values())
        executed: dict = {}
        if pool_items:
            workers = min(
                max(resolve_jobs(jobs), window_jobs_n if units_by_key else 1),
                len(pool_items),
            )
            use_pool = workers > 1 or timeout is not None
            if use_pool:
                executed = _execute_pooled(
                    pool_items,
                    workers,
                    timeout=timeout,
                    retries=retries,
                    on_error=on_error,
                    backoff_base=backoff_base,
                    fault_plan=fault_plan,
                    report=report,
                )
            else:
                executed = _execute_inline(
                    pool_items,
                    retries=retries,
                    on_error=on_error,
                    backoff_base=backoff_base,
                    fault_plan=fault_plan,
                    report=report,
                )
        # Publish fresh windows to their namespace, then reassemble
        # each exploded request in depth order (halt-drop applied at
        # assembly). Failed windows surface on the parent outcome.
        unit_outcomes: dict[str, RequestOutcome] = {}
        for item in list(executed):
            if isinstance(item, _WindowUnit):
                outcome = executed.pop(item)
                unit_outcomes[item.key] = outcome
                if outcome.status == "ok" and windows_store is not None:
                    windows_store.put(item.key, outcome.stats)
        for request, units in plans.items():
            executed[request] = _assemble_outcome(
                request, units, window_cached, unit_outcomes
            )
        for request, outcome in executed.items():
            if outcome.status == "ok":
                cache.put(request, outcome.stats)
            else:
                _skipped_log.append(outcome)
            resolved[request] = outcome

    report.outcomes = [resolved[request] for request in requests]
    store = getattr(cache, "content_store", None)
    if store is not None:
        # Caches handed out by a ContentStore persist their hit/miss
        # counters across processes (``repro cache stats``).
        store.flush_counters()
    if return_report:
        return report
    return report.stats_list()


#: Thread-scoped override: inside :func:`direct_execution`, service
#: mode is ignored for this thread's ``run_matrix`` calls.
_direct = threading.local()


@contextmanager
def direct_execution():
    """Force in-process execution even when ``REPRO_SERVICE_URL`` is
    set. The service *worker* wraps its own ``run_matrix`` call in
    this: it is the service's executor, and must never loop a claimed
    job back into the queue it was claimed from. Thread-scoped, so a
    worker thread and a thin-client thread coexist in one process
    (the differential tests do exactly that)."""
    previous = getattr(_direct, "on", False)
    _direct.on = True
    try:
        yield
    finally:
        _direct.on = previous


def _service_url() -> str | None:
    """The configured experiment-service endpoint, if any (lazy import
    so the default in-process path never loads the service package)."""
    if getattr(_direct, "on", False):
        return None
    if not os.environ.get("REPRO_SERVICE_URL", "").strip():
        return None
    from repro.service.client import service_url

    return service_url()


def _execute_service(
    pending,
    url: str,
    timeout: float | None,
    on_error: str,
) -> dict[RunRequest, RequestOutcome]:
    """Run *pending* through a remote experiment service.

    One sweep submission, polled until the workers publish every
    result. The per-request ``timeout`` scales into a whole-sweep
    deadline (the client cannot preempt a remote worker, only give up
    waiting); jobs the service marks failed — and every job, if the
    service itself is unreachable — land on the usual ``on_error``
    policy as :class:`~repro.errors.ServiceError`.
    """
    from repro.errors import ServiceError
    from repro.harness.cache import fingerprint
    from repro.service.client import ServiceClient

    client = ServiceClient(url)
    deadline = timeout * max(1, len(pending)) if timeout else None
    start = time.monotonic()
    results: dict[str, RunStats] = {}
    failed: dict[str, str] = {}
    sweep_error: Exception | None = None
    try:
        results, failed = client.run(pending, deadline=deadline)
    except ServiceError as exc:
        sweep_error = exc

    outcomes: dict[RunRequest, RequestOutcome] = {}
    latency = time.monotonic() - start
    for request in pending:
        key = fingerprint(request)
        stats = results.get(key)
        if stats is not None:
            outcomes[request] = RequestOutcome(
                request, "ok", stats, attempts=1, latency=latency
            )
            continue
        error: Exception
        if key in failed:
            error = ServiceError(
                f"service failed job {key[:12]}: {failed[key]}", key=key
            )
        elif sweep_error is not None:
            error = sweep_error
        else:
            error = ServiceError(
                f"service returned no result for {key[:12]}", key=key
            )
        outcomes[request] = _finalize_failure(
            request, error, attempts=1, latency=latency, on_error=on_error
        )
    return outcomes


def _execute_inline(
    pending,
    retries: int,
    on_error: str,
    backoff_base: float,
    fault_plan,
    report: MatrixReport,
) -> dict[RunRequest, RequestOutcome]:
    """Sequential in-process execution with retry/backoff.

    Used when one worker suffices and no timeout is requested (an
    in-process simulation cannot be preempted). Injected crashes are
    surfaced as :class:`WorkerCrashError` instead of killing the
    harness process.
    """
    outcomes: dict[RunRequest, RequestOutcome] = {}
    for request in pending:
        start = time.monotonic()
        error: Exception | None = None
        for attempt in range(retries + 1):
            if attempt:
                report.retries += 1
                time.sleep(_backoff_delay(backoff_base, request, attempt))
            try:
                if fault_plan is not None:
                    fault_plan.perturb(request, attempt, in_process=True)
                stats = execute_request(
                    request.request
                    if isinstance(request, _WindowUnit)
                    else request
                )
            except Exception as exc:  # noqa: BLE001 — retry boundary
                error = exc
                log.warning(
                    "request %s/%s attempt %d failed: %s",
                    request.workload,
                    request.mode,
                    attempt + 1,
                    exc,
                )
                continue
            outcomes[request] = RequestOutcome(
                request,
                "ok",
                stats,
                attempts=attempt + 1,
                latency=time.monotonic() - start,
            )
            break
        else:
            outcomes[request] = _finalize_failure(
                request,
                error,
                attempts=retries + 1,
                latency=time.monotonic() - start,
                on_error=on_error,
            )
    return outcomes


def _finalize_failure(
    request: RunRequest,
    error: Exception | None,
    attempts: int,
    latency: float,
    on_error: str,
) -> RequestOutcome:
    """A request exhausted its retries: raise or record the skip."""
    if on_error == "raise":
        raise error if error is not None else SimulationError(
            f"request {request} failed with no recorded error"
        )
    log.warning(
        "skipping request %s/%s after %d attempt(s): %s",
        request.workload,
        request.mode,
        attempts,
        error,
    )
    return RequestOutcome(
        request,
        "skipped",
        None,
        attempts=attempts,
        error=str(error) if error is not None else None,
        latency=latency,
    )


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Terminate a pool's workers and abandon it.

    ``shutdown`` alone never interrupts a running task, so a hung or
    runaway worker would leak past any timeout; terminating the
    processes is the only preemption Python offers.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - platform-specific races
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _execute_pooled(
    pending,
    workers: int,
    timeout: float | None,
    retries: int,
    on_error: str,
    backoff_base: float,
    fault_plan,
    report: MatrixReport,
    entry=_pool_entry,
) -> dict[RunRequest, RequestOutcome]:
    """Pool execution with timeouts, retries, and broken-pool recovery.

    *entry* is the picklable worker function ``(item, attempt,
    fault_plan) -> result``; the default runs a :class:`RunRequest`,
    and the snapshot prebuilder passes its own chain-building entry
    with ``_PrebuildTask`` items (anything hashable exposing
    ``workload`` / ``mode`` for the log lines works).

    Invariants:

    * Every submission charges the request one attempt. A request whose
      attempt is *aborted through no fault of its own* (its pool was
      torn down because a sibling timed out) is refunded the attempt
      and simply requeued, so collateral damage never consumes retry
      budget. A broken pool cannot attribute the crash, so there every
      in-flight request is charged (this is what bounds respawn loops).
    * The loop terminates: each iteration either resolves a request,
      charges an attempt (bounded by ``(retries + 1)`` per request), or
      performs a refund that is paid for by a charged timeout/crash.
    """
    outcomes: dict[RunRequest, RequestOutcome] = {}
    attempts: dict[RunRequest, int] = {request: 0 for request in pending}
    first_submit: dict[RunRequest, float] = {}
    last_error: dict[RunRequest, Exception] = {}
    not_before: dict[RunRequest, float] = {}
    queue = deque(pending)
    pool = ProcessPoolExecutor(max_workers=workers)
    running: dict[object, tuple[RunRequest, float | None]] = {}

    def fail_or_requeue(request: RunRequest, error: Exception) -> None:
        """One attempt failed for real: retry with backoff or finalize."""
        last_error[request] = error
        if attempts[request] <= retries:
            report.retries += 1
            delay = _backoff_delay(backoff_base, request, attempts[request])
            not_before[request] = time.monotonic() + delay
            queue.append(request)
            log.warning(
                "request %s/%s attempt %d failed (%s); retrying in %.2fs",
                request.workload,
                request.mode,
                attempts[request],
                error,
                delay,
            )
        else:
            outcomes[request] = _finalize_failure(
                request,
                error,
                attempts=attempts[request],
                latency=time.monotonic() - first_submit[request],
                on_error=on_error,
            )

    try:
        while queue or running:
            now = time.monotonic()
            # Submit every eligible queued request (the pool itself
            # bounds concurrency to `workers`).
            blocked_until: float | None = None
            for _ in range(len(queue)):
                request = queue.popleft()
                eligible_at = not_before.get(request, 0.0)
                if eligible_at > now:
                    queue.append(request)
                    if blocked_until is None or eligible_at < blocked_until:
                        blocked_until = eligible_at
                    continue
                attempts[request] += 1
                first_submit.setdefault(request, now)
                try:
                    future = pool.submit(
                        entry, request, attempts[request] - 1, fault_plan
                    )
                except RuntimeError as exc:
                    # Pool broke between iterations; recover below.
                    attempts[request] -= 1
                    queue.append(request)
                    log.warning("submit failed (%s); respawning pool", exc)
                    _kill_pool(pool)
                    pool = ProcessPoolExecutor(max_workers=workers)
                    report.pool_respawns += 1
                    break
                deadline = now + timeout if timeout is not None else None
                running[future] = (request, deadline)
            if not running:
                if blocked_until is not None:
                    time.sleep(max(0.0, blocked_until - time.monotonic()))
                continue

            # Wake on the first completion or the earliest deadline.
            wait_for = None
            deadlines = [d for _, d in running.values() if d is not None]
            if deadlines:
                wait_for = max(0.0, min(deadlines) - time.monotonic())
            if blocked_until is not None:
                until = max(0.0, blocked_until - time.monotonic())
                wait_for = until if wait_for is None else min(wait_for, until)
            done, _ = wait(
                list(running), timeout=wait_for, return_when=FIRST_COMPLETED
            )

            pool_broken = False
            for future in done:
                request, _deadline = running.pop(future)
                try:
                    stats = future.result()
                except BrokenProcessPool:
                    pool_broken = True
                    fail_or_requeue(
                        request,
                        WorkerCrashError(
                            "worker process died mid-request "
                            f"(attempt {attempts[request]})",
                            attempts=attempts[request],
                        ),
                    )
                except Exception as exc:  # noqa: BLE001 — retry boundary
                    fail_or_requeue(request, exc)
                else:
                    outcomes[request] = RequestOutcome(
                        request,
                        "ok",
                        stats,
                        attempts=attempts[request],
                        latency=time.monotonic() - first_submit[request],
                    )

            now = time.monotonic()
            timed_out = [
                future
                for future, (_, deadline) in running.items()
                if deadline is not None and deadline <= now
            ]
            if timed_out:
                for future in timed_out:
                    request, _deadline = running.pop(future)
                    fail_or_requeue(
                        request,
                        RunTimeoutError(
                            f"request exceeded {timeout:.1f}s "
                            f"(attempt {attempts[request]})",
                            timeout=timeout,
                            attempts=attempts[request],
                        ),
                    )
            if pool_broken or timed_out:
                # The pool is unusable (broken) or must be preempted
                # (timeout): tear it down and requeue the survivors.
                for future in list(running):
                    request, _deadline = running.pop(future)
                    if pool_broken:
                        # Cannot attribute the crash: charge everyone
                        # (bounds the respawn loop), retry or finalize.
                        fail_or_requeue(
                            request,
                            WorkerCrashError(
                                "process pool broke while request was "
                                f"in flight (attempt {attempts[request]})",
                                attempts=attempts[request],
                            ),
                        )
                    else:
                        # Innocent victim of a sibling's timeout:
                        # refund the attempt and requeue.
                        attempts[request] -= 1
                        queue.append(request)
                _kill_pool(pool)
                pool = ProcessPoolExecutor(max_workers=workers)
                report.pool_respawns += 1
    finally:
        _kill_pool(pool)
    return outcomes

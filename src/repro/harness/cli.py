"""Command-line interface: regenerate any of the paper's tables/figures.

Usage::

    python -m repro table2              # Table 2 at the default scale
    python -m repro figure11 --scale 1.0 --jobs 4
    python -m repro table4 --out results.txt --no-cache
    python -m repro all --scale 0.2
    python -m repro cache clear         # drop run cache + snapshots
    python -m repro cache clear --snapshots-only
    python -m repro snapshot ls         # list warmed-state snapshots
    python -m repro bench balanced --profile   # simulator self-benchmark
    python -m repro bench --all         # every regime, one summary
    python -m repro figure11 --fast-forward 20000 --sample 4000  # sampled
    python -m repro table4 --sample 10000 --sample-regions 10  # multi-region
    python -m repro figure11 --sampled  # long-horizon halt-aware plans
    python -m repro table4 --sample-regions 10 --window-jobs 8  # window-parallel
    python -m repro fuzz --seeds 50     # differential workload fuzzer
    python -m repro fuzz --seeds 200 --shrink --jobs 4  # store minimal repros
    python -m repro fuzz ls             # list stored minimal repros
    python -m repro fuzz --replay .repro_cache/fuzz/0x6.repro.json
    python -m repro cache stats         # per-namespace entries/bytes/hit rate
    python -m repro serve --port 8737   # experiment service front end
    python -m repro worker --drain      # drain the service job queue
    python -m repro figure11 --service http://host:8737  # thin-client run

Simulations fan out over ``--jobs`` worker processes (default:
``REPRO_JOBS`` env or the CPU count) and are memoized in the
content-addressed run cache under ``.repro_cache/`` (see
``repro/harness/cache.py``); ``--no-cache`` forces fresh runs.

Long sweeps survive partial failure: ``--timeout`` bounds each
request's wall clock, ``--retries`` re-runs crashed/hung/flaky
requests with backoff, and ``--on-error skip`` finishes the matrix
around a request that exhausted its retries (the run then exits with
code 3 and lists the holes). A simulated-machine deadlock exits with
code 2 and the core's next-event diagnostic instead of a traceback.
Env mirrors: ``REPRO_TIMEOUT`` / ``REPRO_RETRIES`` / ``REPRO_ON_ERROR``.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time

from repro.errors import DeadlockError
from repro.harness import experiments
from repro.harness.cache import RunCache
from repro.harness.parallel import (
    ON_ERROR_POLICIES,
    reset_skipped_log,
    skipped_outcomes,
)

EXPERIMENTS = {
    "table1": experiments.experiment_table1,
    "mix": experiments.experiment_workload_mix,
    "table2": experiments.experiment_table2,
    "table3": experiments.experiment_table3,
    "table4": experiments.experiment_table4,
    "figure1": experiments.experiment_figure1,
    "figure11": experiments.experiment_figure11,
}

#: Experiments that run simulations (and therefore accept jobs/cache).
_MATRIX_EXPERIMENTS = frozenset({"table2", "table4", "figure1", "figure11"})


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce tables/figures from 'Execution-based Prediction "
            "Using Speculative Slices' (Zilles & Sohi, ISCA 2001)"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[
            *EXPERIMENTS, "all", "cache", "snapshot", "bench", "fuzz",
            "serve", "worker",
        ],
        help=(
            "which table/figure to regenerate, 'cache'/'snapshot' "
            "maintenance, 'bench' for the simulator self-benchmark, "
            "'fuzz' for the differential workload fuzzer, or "
            "'serve'/'worker' for the experiment service"
        ),
    )
    parser.add_argument(
        "action",
        nargs="?",
        default=None,
        help=(
            "cache action: 'clear' / 'stats' (with 'cache'); snapshot "
            "action: 'ls' (default) / 'clear' (with 'snapshot'); bench "
            "regime: 'balanced' / 'memory_bound' / 'slice_heavy' / "
            "'interpreter' / 'sampled' / 'sampled_multi' / "
            "'sampled_parallel' / 'warming' "
            "(with 'bench', default 'balanced'); fuzz action: 'ls' "
            "lists stored minimal repros"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload scale (default: REPRO_SCALE env or 0.35; 1.0 = full)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: REPRO_JOBS env or CPU count)",
    )
    parser.add_argument(
        "--window-jobs",
        type=int,
        default=None,
        metavar="N",
        help="window-level parallelism for multi-region sampled runs"
        " (default: REPRO_WINDOW_JOBS env or the --jobs worker count;"
        " 1 = serial per-request windows, the bit-identity oracle)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the on-disk run cache (always simulate afresh)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-request wall-clock budget; a simulation over budget is "
            "terminated and retried (default: REPRO_TIMEOUT env or none)"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "extra attempts per request after a crash/timeout/transient "
            "failure (default: REPRO_RETRIES env or 0)"
        ),
    )
    parser.add_argument(
        "--on-error",
        choices=ON_ERROR_POLICIES,
        default=None,
        help=(
            "what to do when a request exhausts its retries: 'raise' "
            "aborts the experiment (default), 'skip' records the failure, "
            "finishes the matrix, and exits with code 3"
        ),
    )
    parser.add_argument(
        "--no-skip",
        action="store_true",
        help=(
            "disable event-driven cycle skipping in the core loop "
            "(step every cycle; slower, for differential testing)"
        ),
    )
    parser.add_argument(
        "--no-fuse",
        action="store_true",
        help=(
            "disable the fused basic-block execution tier (run every "
            "instruction through its own closure; slower, for "
            "differential testing)"
        ),
    )
    parser.add_argument(
        "--fast-forward",
        type=int,
        default=None,
        metavar="N",
        help=(
            "sampled simulation: execute the first N instructions of "
            "every run on the functional fast-forward tier (with "
            "functional cache/predictor warming) and restore the "
            "detailed core from the warmed snapshot (cached under "
            ".repro_cache/snapshots/)"
        ),
    )
    parser.add_argument(
        "--sample",
        type=int,
        default=None,
        metavar="N",
        help=(
            "sampled simulation: measure N committed instructions "
            "(after a detailed-warming discard window of min(N/10, "
            "2000)) instead of the workload's full region"
        ),
    )
    parser.add_argument(
        "--sample-regions",
        type=int,
        default=None,
        metavar="N",
        help=(
            "multi-region sampling: run N periodic detailed windows of "
            "--sample instructions each, fast-forwarding between them "
            "along a shared snapshot chain, and report the mean with a "
            "95%% confidence interval (0/1 = single window)"
        ),
    )
    parser.add_argument(
        "--sample-period",
        type=int,
        default=None,
        metavar="N",
        help=(
            "instructions between multi-region window starts (default: "
            "spread the windows uniformly over the workload's region)"
        ),
    )
    parser.add_argument(
        "--sampled",
        action="store_true",
        help=(
            "figure11/table4: run each workload at its long-horizon "
            "scale (~2M instructions by default) under a halt-aware "
            "multi-region plan with 95%% confidence intervals — the "
            "figure benches' default configuration"
        ),
    )
    parser.add_argument(
        "--horizon",
        type=int,
        default=None,
        metavar="N",
        help=(
            "with --sampled: per-workload instruction horizon the plan "
            "covers (default 2,000,000)"
        ),
    )
    parser.add_argument(
        "--snapshots-only",
        action="store_true",
        help=(
            "with 'cache clear': clear only the warmed-state snapshots "
            "(and the corrupt/ quarantine), keeping cached run results"
        ),
    )
    parser.add_argument(
        "--fuzz-only",
        action="store_true",
        help=(
            "with 'cache clear': clear only the stored fuzz repros "
            "under .repro_cache/fuzz/, keeping runs and snapshots"
        ),
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        metavar="N",
        help=(
            "with the 'fuzz' command: check N sequential seeds starting "
            "at --seed-start (default 50)"
        ),
    )
    parser.add_argument(
        "--seed-start",
        type=int,
        default=0,
        metavar="S",
        help="with the 'fuzz' command: first seed of the batch (default 0)",
    )
    parser.add_argument(
        "--seeds-file",
        default=None,
        metavar="PATH",
        help=(
            "with the 'fuzz' command: read the seed batch from PATH "
            "(one integer per line, 0x-prefixed hex accepted, '#' "
            "comments) instead of --seeds/--seed-start"
        ),
    )
    parser.add_argument(
        "--shrink",
        action="store_true",
        help=(
            "with the 'fuzz' command: shrink every diverging seed to a "
            "minimal repro and store it in the corpus under "
            ".repro_cache/fuzz/"
        ),
    )
    parser.add_argument(
        "--replay",
        default=None,
        metavar="CASE",
        help=(
            "with the 'fuzz' command: re-run the stored minimal repro "
            "at CASE (a .repro.json path) through the full tier "
            "cross-check instead of fuzzing; exits 1 if it still "
            "diverges, 0 if it replays clean"
        ),
    )
    parser.add_argument(
        "--all",
        action="store_true",
        dest="bench_all",
        help=(
            "with the 'bench' command: run every regime and write one "
            "consolidated summary to benchmarks/results/BENCH_all.json"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "with the 'bench' command: run the regime under cProfile and "
            "write the top-25 cumulative entries to "
            "benchmarks/results/profile_<regime>.txt"
        ),
    )
    parser.add_argument(
        "--service",
        default=None,
        metavar="URL",
        help=(
            "run experiment matrices through a remote experiment "
            "service ('repro serve') instead of the in-process pool; "
            "cache hits still resolve locally (default: "
            "REPRO_SERVICE_URL env or in-process)"
        ),
    )
    parser.add_argument(
        "--host",
        default=None,
        metavar="ADDR",
        help="with 'serve': bind address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="PORT",
        help="with 'serve': TCP port (default 8737; 0 = ephemeral)",
    )
    parser.add_argument(
        "--lease",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "with 'worker': seconds a claimed job's lease lasts "
            "between heartbeats (default 30); a worker that dies "
            "mid-lease has its job re-granted after this long"
        ),
    )
    parser.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        metavar="N",
        help="with 'worker': exit after resolving N jobs",
    )
    parser.add_argument(
        "--drain",
        action="store_true",
        help=(
            "with 'worker': exit when the queue is empty instead of "
            "polling for more work"
        ),
    )
    parser.add_argument(
        "--out",
        type=argparse.FileType("w"),
        default=None,
        help="also write the rendered output to this file",
    )
    return parser


#: Experiments with a long-horizon sampled mode (``--sampled``).
_SAMPLED_EXPERIMENTS = frozenset({"table4", "figure11"})


def run_experiment(
    name: str,
    scale: float | None,
    jobs: int | None = None,
    cache: RunCache | None = None,
    sampled: bool = False,
    horizon: int | None = None,
) -> str:
    func = EXPERIMENTS[name]
    if name == "table1":
        _data, text = func()
    elif name in _SAMPLED_EXPERIMENTS and sampled:
        _data, text = func(
            scale=scale, jobs=jobs, cache=cache, sampled=True, horizon=horizon
        )
    elif name in _MATRIX_EXPERIMENTS:
        _data, text = func(scale=scale, jobs=jobs, cache=cache)
    else:
        _data, text = func(scale=scale)
    return text


def run_bench(
    regime_name: str | None, profile: bool = False, run_all: bool = False
) -> int:
    """Run one simulator self-benchmark regime; optionally profile it.

    The profile report lands in ``benchmarks/results/profile_<regime>.txt``
    (top-25 entries by cumulative time) so it can be diffed across
    commits next to ``BENCH_throughput.json``. ``--all`` runs every
    regime and writes one consolidated summary to
    ``benchmarks/results/BENCH_all.json``.
    """
    from repro.harness.bench import (
        REGIMES,
        best_rate,
        profile_regime,
        render_all_regimes,
        run_all_regimes,
    )

    if run_all:
        results = run_all_regimes(rounds=3)
        print(render_all_regimes(results))
        out_dir = pathlib.Path("benchmarks") / "results"
        out_dir.mkdir(parents=True, exist_ok=True)
        out_path = out_dir / "BENCH_all.json"
        import json

        out_path.write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nconsolidated results: {out_path}")
        return 0
    name = regime_name or "balanced"
    if name == "warming":
        # Not a Core regime: measures the functional-warming loop
        # itself (repro.harness.fastforward._warm_loop) on the
        # far-memory pointer chase — the rate that bounds every
        # sampled figure's chain build.
        from repro.harness.bench import (
            WARMING_INSTS,
            measure_warming_rate,
            profile_warming,
        )

        if profile:
            _rate, report = profile_warming()
            out_dir = pathlib.Path("benchmarks") / "results"
            out_dir.mkdir(parents=True, exist_ok=True)
            out_path = out_dir / "profile_warming.txt"
            out_path.write_text(report)
            print("\n".join(report.splitlines()[:12]))
            print(f"\nfull profile: {out_path}")
            return 0
        rate, insts = measure_warming_rate(rounds=3)
        print(
            "warming: functional-warming loop, far-memory pointer chase\n"
            f"~{rate:,.0f} warmed instructions/second "
            f"({insts:,} per round, best of 3 runs)"
        )
        return 0
    regime = REGIMES.get(name)
    if regime is None:
        known = ", ".join((*REGIMES, "warming"))
        print(f"unknown bench regime {name!r}; known: {known}", file=sys.stderr)
        return 2
    if profile:
        stats, report = profile_regime(regime)
        out_dir = pathlib.Path("benchmarks") / "results"
        out_dir.mkdir(parents=True, exist_ok=True)
        out_path = out_dir / f"profile_{name}.txt"
        out_path.write_text(report)
        # The report's head is the useful part at the terminal; the
        # full top-25 listing is in the file.
        print("\n".join(report.splitlines()[:12]))
        print(f"\nfull profile: {out_path}")
        return 0
    rate, stats = best_rate(regime, rounds=3)
    sampled = f", {stats.ff_insts} fast-forwarded" if stats.ff_insts else ""
    print(
        f"{name}: {regime.description}\n"
        f"~{rate:,.0f} simulated instructions/second "
        f"({stats.committed} committed{sampled}, best of 3 runs; "
        f"{stats.blocks_compiled} fused segments, "
        f"{stats.block_deopts} deopts)"
    )
    return 0


def run_snapshot_action(action: str | None) -> int:
    """``repro snapshot ls`` (default) / ``repro snapshot clear``."""
    from repro.harness.fastforward import SnapshotStore

    store = SnapshotStore()
    if action in (None, "ls"):
        entries = store.ls()
        quarantined = store.quarantined_count()
        if not entries:
            print(f"no snapshots under {store.root}")
            if quarantined:
                print(f"{quarantined} quarantined blob(s) in {store.corrupt_dir}")
            return 0
        known_keys = {entry["key"] for entry in entries}
        print(
            f"{'key':16s} {'workload':12s} {'scale':>6s} "
            f"{'ff_insts':>9s} {'executed':>9s} {'warm':>5s} "
            f"{'chain':16s} {'built':8s} {'resumed@':>9s} {'bytes':>10s}"
        )
        chained = 0
        for entry in entries:
            parent = entry["parent"]
            if parent is None:
                chain = "-"
            else:
                chained += 1
                # A parent outside the store means the chain was built
                # here but its earlier members were cleared since.
                tag = "" if parent in known_keys else "?"
                chain = f"<-{parent[:12]}{tag}"
            # Build provenance (digest-masked, display-only): which
            # prebuild discipline produced the member and the stored
            # depth its building pass resumed from ("-" = entry point).
            built = entry.get("built_by") or "-"
            resumed = entry.get("resumed_from_depth")
            resumed_at = "-" if resumed is None else f"{resumed:,d}"
            print(
                f"{entry['key'][:16]:16s} {entry['workload']:12s} "
                f"{entry['scale']:>6g} {entry['ff_insts']:>9d} "
                f"{entry['executed']:>9d} "
                f"{'yes' if entry['warming'] else 'no':>5s} "
                f"{chain:16s} {built:8s} {resumed_at:>9s} "
                f"{entry['bytes']:>10,d}"
            )
        print(
            f"{len(entries)} snapshot(s) ({chained} chained, "
            f"{store.total_bytes():,d} bytes total) under {store.root}"
        )
        if quarantined:
            print(f"{quarantined} quarantined blob(s) in {store.corrupt_dir}")
        return 0
    if action == "clear":
        removed = store.clear()
        print(f"removed {removed} snapshot(s)")
        return 0
    print(
        f"unknown snapshot action {action!r}; try: repro snapshot ls|clear",
        file=sys.stderr,
    )
    return 2


def run_fuzz(args: argparse.Namespace) -> int:
    """``repro fuzz`` — differential seed batch, corpus ls, or replay.

    Exit codes mirror the experiment driver: 0 all seeds agree across
    every tier, 1 at least one divergence was found (minimal repros
    land in the corpus when ``--shrink`` is given), 3 some seeds could
    not be fully checked (crash/timeout with retries exhausted).
    """
    from repro.fuzz import corpus as fuzz_corpus

    if args.action == "ls":
        cases = fuzz_corpus.list_cases()
        if not cases:
            print(f"no fuzz repros under {fuzz_corpus.corpus_root()}")
            return 0
        print(
            f"{'seed':>12s} {'scale':>6s} {'size':>5s} {'orig':>5s} "
            f"{'region':>8s}  divergence"
        )
        for case in cases:
            print(
                f"{case['seed']:>#12x} {case['scale']:>6g} "
                f"{case['size']:>5d} {case['original_size']:>5d} "
                f"{case['region']:>8d}  {case['klass']}"
            )
        print(
            f"{len(cases)} stored repro(s) under {fuzz_corpus.corpus_root()}"
        )
        return 0
    if args.action is not None:
        print(
            f"unknown fuzz action {args.action!r}; try: "
            "repro fuzz [--seeds N] | repro fuzz ls",
            file=sys.stderr,
        )
        return 2

    # Fuzzing defaults to full scale: generated programs are already
    # small, and the tier cross-check wants real region lengths.
    scale = args.scale if args.scale is not None else 1.0

    if args.replay is not None:
        divergence = fuzz_corpus.replay(args.replay)
        if divergence is None:
            print(f"{args.replay}: replays clean against the current tree")
            return 0
        print(f"{args.replay}: still diverges")
        print(f"  {divergence}")
        return 1

    if args.seeds_file is not None:
        lines = pathlib.Path(args.seeds_file).read_text().splitlines()
        seeds = [
            int(text, 0)
            for text in (line.split("#", 1)[0].strip() for line in lines)
            if text
        ]
    else:
        count = args.seeds if args.seeds is not None else 50
        seeds = list(range(args.seed_start, args.seed_start + count))

    from repro.fuzz.batch import run_fuzz_batch

    start = time.time()
    report = run_fuzz_batch(
        seeds,
        scale=scale,
        jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
    )
    elapsed = time.time() - start
    print(
        f"fuzz: {len(report.checked)} seed(s) at scale {scale:g} in "
        f"{elapsed:.1f}s: {len(report.divergences)} divergence(s), "
        f"{len(report.skipped)} skipped"
    )
    for divergence in report.divergences:
        print(f"  {divergence}")
    for seed, error in report.skipped:
        print(
            f"  seed {seed:#x}: check did not complete: {error}",
            file=sys.stderr,
        )

    if args.shrink and report.divergences:
        from repro.fuzz.gen import generate
        from repro.fuzz.shrink import shrink

        for divergence in report.divergences:
            result = shrink(generate(divergence.seed, divergence.scale))
            if result.divergence is None:
                # Worker-observed divergence that vanished in-process
                # (e.g. environment-dependent); nothing to store.
                print(
                    f"  seed {divergence.seed:#x}: divergence did not "
                    "reproduce during shrinking; not stored",
                    file=sys.stderr,
                )
                continue
            path = fuzz_corpus.save_case(
                result.workload,
                result.divergence,
                original_size=result.original_size,
            )
            print(
                f"  seed {divergence.seed:#x}: shrunk "
                f"{result.original_size} -> {result.shrunk_size} "
                f"({result.checks} checks), stored {path}"
            )

    if report.divergences:
        return 1
    if report.skipped:
        return 3
    return 0


def run_cache_action(args: argparse.Namespace) -> int:
    """``repro cache clear`` / ``repro cache stats`` over the unified
    :class:`~repro.service.store.ContentStore` (runs, per-window
    results, snapshots, fuzz corpus, and the service job queue share
    one root)."""
    from repro.service.store import ContentStore

    store = ContentStore()
    if args.action == "stats":
        stats = store.stats()
        print(
            f"{'namespace':10s} {'entries':>8s} {'bytes':>12s} "
            f"{'quarantined':>11s} {'hits':>8s} {'misses':>8s} "
            f"{'corrupt':>7s} {'hit rate':>8s}"
        )
        for name, entry in stats.items():
            rate = entry["hit_rate"]
            print(
                f"{name:10s} {entry['entries']:>8d} {entry['bytes']:>12,d} "
                f"{entry['quarantined']:>11d} {entry['hits']:>8d} "
                f"{entry['misses']:>8d} {entry['corruptions']:>7d} "
                f"{'-' if rate is None else f'{rate:7.1%}':>8s}"
            )
        print(f"cache root: {store.root}")
        queue_db = store.root / "queue" / "jobs.db"
        if queue_db.exists():
            from repro.service.queue import JobQueue

            queue = JobQueue(store.root)
            qstats = queue.stats()
            queue.close()
            jobs = ", ".join(
                f"{count} {status}"
                for status, count in qstats["jobs"].items()
                if count
            )
            print(f"queue: {jobs or 'empty'}")
            if qstats["counters"]:
                lifetime = ", ".join(
                    f"{count} {name}"
                    for name, count in sorted(qstats["counters"].items())
                )
                print(f"queue lifetime: {lifetime}")
        return 0
    if args.action != "clear":
        print(
            f"unknown cache action {args.action!r}; "
            "try: repro cache clear|stats",
            file=sys.stderr,
        )
        return 2
    if args.fuzz_only:
        removed = store.clear(only="fuzz")
        print(f"removed {removed['fuzz']} fuzz repro(s)")
        return 0
    if args.snapshots_only:
        removed = store.clear(only="snapshots")
        print(f"removed {removed['snapshots']} snapshot(s)")
        return 0
    removed = store.clear()
    parts = [
        f"{removed['runs']} cached run(s)",
        f"{removed['windows']} window result(s)",
        f"{removed['snapshots']} snapshot(s)",
        f"{removed['fuzz']} fuzz repro(s)",
    ]
    if "queue" in removed:
        parts.append(f"{removed['queue']} queued job(s)")
    print("removed " + ", ".join(parts))
    return 0


def run_serve(args: argparse.Namespace) -> int:
    """``repro serve`` — run the experiment service front end."""
    from repro.service.server import DEFAULT_HOST, DEFAULT_PORT, serve

    host = args.host or DEFAULT_HOST
    port = args.port if args.port is not None else DEFAULT_PORT
    print(f"repro serve: listening on http://{host}:{port}", file=sys.stderr)
    serve(host=host, port=port)
    return 0


def run_worker(args: argparse.Namespace) -> int:
    """``repro worker`` — drain the experiment service job queue."""
    from repro.service.queue import DEFAULT_LEASE_SECONDS
    from repro.service.worker import work

    lease = args.lease if args.lease is not None else DEFAULT_LEASE_SECONDS
    resolved = work(
        lease=lease,
        jobs=args.jobs or 1,
        timeout=args.timeout,
        retries=args.retries,
        max_jobs=args.max_jobs,
        drain=args.drain,
    )
    print(f"worker resolved {resolved} job(s)", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.no_skip:
        # Experiments build RunRequests deep inside the drivers; the env
        # flag flips their event_driven default (and is inherited by
        # pool workers), keeping every construction site untouched.
        os.environ["REPRO_NO_SKIP"] = "1"
    if args.no_fuse:
        # Same mechanism for the fused-block tier: the env flag flips
        # the Core / RunRequest default everywhere at once.
        os.environ["REPRO_NO_FUSE"] = "1"
    # Resilience knobs travel to every nested run_matrix call the same
    # way: experiments never thread them explicitly.
    if args.timeout is not None:
        os.environ["REPRO_TIMEOUT"] = str(args.timeout)
    if args.retries is not None:
        os.environ["REPRO_RETRIES"] = str(args.retries)
    if args.on_error is not None:
        os.environ["REPRO_ON_ERROR"] = args.on_error
    # Sampling flags ride the same env-mirror mechanism: every
    # RunRequest built anywhere downstream (experiments, sweeps, pool
    # workers) inherits them through its default factories.
    if args.fast_forward is not None:
        os.environ["REPRO_FAST_FORWARD"] = str(args.fast_forward)
    if args.sample is not None:
        os.environ["REPRO_SAMPLE"] = str(args.sample)
    if args.sample_regions is not None:
        os.environ["REPRO_SAMPLE_REGIONS"] = str(args.sample_regions)
    if args.sample_period is not None:
        os.environ["REPRO_SAMPLE_PERIOD"] = str(args.sample_period)
    if args.window_jobs is not None:
        # Window-level parallelism is a scheduling knob, not a request
        # field — it never enters a fingerprint, so the env mirror
        # changes wall-clock, never results.
        os.environ["REPRO_WINDOW_JOBS"] = str(args.window_jobs)
    if args.service is not None:
        # Same env-mirror mechanism: every run_matrix call anywhere
        # downstream becomes a thin client of the experiment service.
        os.environ["REPRO_SERVICE_URL"] = args.service
    if args.experiment == "serve":
        return run_serve(args)
    if args.experiment == "worker":
        return run_worker(args)
    if args.experiment == "bench":
        return run_bench(
            args.action, profile=args.profile, run_all=args.bench_all
        )
    if args.experiment == "snapshot":
        return run_snapshot_action(args.action)
    if args.experiment == "fuzz":
        return run_fuzz(args)
    if args.experiment == "cache":
        return run_cache_action(args)
    if args.action is not None:
        print(
            f"unexpected argument {args.action!r} after {args.experiment!r}",
            file=sys.stderr,
        )
        return 2
    from repro.service.store import ContentStore

    # The run cache comes from a ContentStore so run_matrix flushes the
    # persistent hit/miss counters behind `repro cache stats`.
    cache = ContentStore(enabled=not args.no_cache).runs
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    reset_skipped_log()
    blocks = []
    for name in names:
        start = time.time()
        try:
            text = run_experiment(
                name,
                args.scale,
                jobs=args.jobs,
                cache=cache,
                sampled=args.sampled,
                horizon=args.horizon,
            )
        except DeadlockError as exc:
            # A simulated-machine deadlock is a diagnosis, not a crash:
            # report the machine state, no traceback.
            print(f"error: {exc}", file=sys.stderr)
            return 2
        elapsed = time.time() - start
        blocks.append(text)
        print(text)
        print(f"\n[{name}: {elapsed:.1f}s]\n", file=sys.stderr)
    if args.out is not None:
        args.out.write("\n\n".join(blocks) + "\n")
        args.out.close()
    skipped = skipped_outcomes()
    if skipped:
        # --on-error skip let the matrices finish, but the output has
        # holes: say where, and fail the invocation.
        print(
            f"warning: {len(skipped)} request(s) skipped after exhausting "
            "retries; results above are partial:",
            file=sys.stderr,
        )
        for outcome in skipped:
            request = outcome.request
            print(
                f"  {request.workload}/{request.mode} "
                f"(scale {request.scale}, {request.config}): "
                f"{outcome.attempts} attempt(s), last error: {outcome.error}",
                file=sys.stderr,
            )
        return 3
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())

"""Command-line interface: regenerate any of the paper's tables/figures.

Usage::

    python -m repro table2              # Table 2 at the default scale
    python -m repro figure11 --scale 1.0
    python -m repro table4 --out results.txt
    python -m repro all --scale 0.2
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness import experiments

EXPERIMENTS = {
    "table1": experiments.experiment_table1,
    "mix": experiments.experiment_workload_mix,
    "table2": experiments.experiment_table2,
    "table3": experiments.experiment_table3,
    "table4": experiments.experiment_table4,
    "figure1": experiments.experiment_figure1,
    "figure11": experiments.experiment_figure11,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce tables/figures from 'Execution-based Prediction "
            "Using Speculative Slices' (Zilles & Sohi, ISCA 2001)"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload scale (default: REPRO_SCALE env or 0.35; 1.0 = full)",
    )
    parser.add_argument(
        "--out",
        type=argparse.FileType("w"),
        default=None,
        help="also write the rendered output to this file",
    )
    return parser


def run_experiment(name: str, scale: float | None) -> str:
    func = EXPERIMENTS[name]
    if name == "table1":
        _data, text = func()
    else:
        _data, text = func(scale=scale)
    return text


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    blocks = []
    for name in names:
        start = time.time()
        text = run_experiment(name, args.scale)
        elapsed = time.time() - start
        blocks.append(text)
        print(text)
        print(f"\n[{name}: {elapsed:.1f}s]\n", file=sys.stderr)
    if args.out is not None:
        args.out.write("\n\n".join(blocks) + "\n")
        args.out.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())

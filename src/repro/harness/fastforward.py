"""Sampled simulation: functional fast-forward, microarchitectural
warming, and content-addressed warmed-state snapshots.

The paper's own methodology (§6) never simulates its multi-billion-
instruction runs in full detail — it fast-forwards to the regions it
measures. This module is that layer for our simulator, in three parts:

* :func:`fast_forward` — execute a workload's warmup prefix purely
  *functionally* on the interpreter tier (~14x the detailed core's
  speed), optionally with **functional warming**: every load/store
  touches a :class:`~repro.uarch.cache.DataHierarchy` (with the stream
  prefetcher attached) and every branch drives the
  :class:`~repro.uarch.branch.frontend_predictor.FrontEndPredictor`
  through its real predict/restore/replay/train protocol — state
  updates only, no timing — so the detailed region starts with
  realistic cache and predictor contents instead of a cold machine.
* :class:`Snapshot` / :class:`SnapshotStore` — the resulting
  architectural state (registers, PC, full memory image) plus the
  warmed cache/predictor images, persisted under
  ``.repro_cache/snapshots/`` with the same checksummed-payload /
  corrupt-quarantine discipline as the run cache
  (:mod:`repro.harness.blobstore`), keyed by
  ``(workload, scale, ff_insts, warming config, src hash)``.
* :func:`ensure_snapshot` / :func:`prebuild_snapshots` — build-once /
  share-everywhere: ``run_matrix`` pre-builds each distinct snapshot a
  matrix needs before fanning out, so a machine-parameter sweep pays
  the architectural prefix exactly once. The warming key digests only
  the sub-configs that shape warmed state (L1D/L2 geometry, prefetch,
  branch predictor budgets) — varying ``memory_latency``,
  ``window_entries``, or slice hardware across sweep points reuses the
  identical snapshot.

**Accuracy model.** Functional warming is architectural: it sees no
wrong-path accesses, no timing-dependent prefetch arrivals, and no
helper threads (FORK is architecturally a no-op). The detailed-warming
*discard window* (:func:`sample_plan`) absorbs that residue: the first
``sample // 10`` committed instructions (capped at
:data:`DETAIL_WARMUP_CAP`) run in full detail but are discarded at the
warmup boundary, so in-flight timing, stream-prefetcher state, and the
slice correlator re-converge before measurement starts. Accuracy
bounds vs. full-detail IPC are enforced by
``benchmarks/bench_sampled.py`` (< 2% deviation) and the differential
suite (``tests/harness/test_sampled.py``) proves fast-forward = 0 is
bit-identical to a full detailed run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
from dataclasses import dataclass, field

from repro.arch.exceptions import Fault
from repro.arch.interpreter import run_functional
from repro.arch.memory import Memory
from repro.arch.state import ThreadState
from repro.errors import CacheCorruptionError
from repro.harness.blobstore import CORRUPT_SUBDIR, IntegrityStore
from repro.harness.cache import DEFAULT_CACHE_DIR, source_tree_hash
from repro.uarch.branch.frontend_predictor import FrontEndPredictor
from repro.uarch.cache import DataHierarchy
from repro.uarch.config import MachineConfig
from repro.uarch.prefetch import StreamPrefetcher
from repro.workloads.base import Workload

#: Bump when the snapshot payload layout changes; old snapshots become
#: misses instead of unpickling into the wrong shape.
SNAPSHOT_SCHEMA_VERSION = 1

_SNAP_MAGIC = b"repro-snap-%d\n" % SNAPSHOT_SCHEMA_VERSION

#: Subdirectory of the cache root holding the snapshot store.
SNAPSHOT_SUBDIR = "snapshots"

#: Detailed-warming discard window for a sampled run: the first
#: ``sample // DETAIL_WARMUP_FRACTION`` committed instructions (capped
#: at DETAIL_WARMUP_CAP) run in full detail but are discarded at the
#: warmup boundary, letting timing state the functional warming cannot
#: produce (in-flight fills, stream prefetcher, slice correlator)
#: converge before measurement begins.
DETAIL_WARMUP_FRACTION = 10
DETAIL_WARMUP_CAP = 2_000


def sample_plan(sample: int) -> tuple[int | None, int]:
    """Map a request's ``sample`` field to ``(region, warmup)``.

    ``sample <= 0`` means no sampling: the workload's own region, no
    discard window — the legacy (bit-identical) path. Otherwise the
    measured region is exactly *sample* committed instructions,
    preceded by the detailed-warming discard window.
    """
    if sample <= 0:
        return None, 0
    return sample, min(sample // DETAIL_WARMUP_FRACTION, DETAIL_WARMUP_CAP)


@dataclass
class Snapshot:
    """Architectural state + warmed microarchitectural images at one
    point of a workload's execution. Fully picklable; deterministic
    given (workload, scale, ff_insts, warming config, source tree)."""

    workload: str
    scale: float
    #: Instructions requested / actually executed (they differ only
    #: when the prefix ran off the program or hit HALT early).
    ff_insts: int
    executed: int
    pc: int
    halted: bool
    #: All 32 architectural register values, in index order.
    regs: list[int]
    #: Full sparse memory image (word-aligned address -> signed value).
    memory_words: dict[int, int]
    #: True when the prefix ran with functional warming.
    warming: bool
    #: Digest of the warming-relevant machine sub-configs this
    #: snapshot's images were built for (see :func:`warm_config_key`).
    warm_config: str | None = None
    #: ``DataHierarchy.warm_image()`` (L1/L2 sets, prefetch/victim
    #: buffer) and ``FrontEndPredictor.warm_image()`` payloads, or
    #: ``None`` when warming was off.
    hierarchy_image: dict | None = field(default=None, repr=False)
    predictor_image: tuple | None = field(default=None, repr=False)


def warm_config_key(config: MachineConfig) -> str:
    """Digest of the sub-configs that shape warmed state.

    Only cache geometry, the prefetcher, and predictor budgets matter
    to a warm image; ``memory_latency``, window size, core width, and
    slice hardware do not (warming is untimed and slice-free). Keying
    on exactly this set is what lets every point of a machine-parameter
    sweep share one snapshot.
    """
    payload = {
        "l1d": dataclasses.asdict(config.l1d),
        "l2": dataclasses.asdict(config.l2),
        "prefetch": dataclasses.asdict(config.prefetch),
        "branch": dataclasses.asdict(config.branch),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def snapshot_fingerprint(
    workload: str,
    scale: float,
    ff_insts: int,
    config: MachineConfig,
    warming: bool = True,
    source_hash: str | None = None,
) -> str:
    """Content-addressed key for one snapshot."""
    payload = {
        "schema": SNAPSHOT_SCHEMA_VERSION,
        "source": source_hash if source_hash is not None else source_tree_hash(),
        "workload": workload,
        "scale": scale,
        "ff_insts": ff_insts,
        "warming": warming,
        "warm_config": warm_config_key(config) if warming else None,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def snapshot_digest(snapshot: Snapshot) -> str:
    """Hex SHA-256 of the snapshot's serialized payload.

    The simulator and the workload generators are deterministic, so the
    same request must produce byte-identical snapshots — CI asserts
    this (snapshot-determinism step).
    """
    return hashlib.sha256(_encode(snapshot)).hexdigest()


def _encode(snapshot: Snapshot) -> bytes:
    return pickle.dumps(
        {"snapshot": snapshot}, protocol=pickle.HIGHEST_PROTOCOL
    )


# ----------------------------------------------------------------------
# Layer 1: the functional fast-forward tier
# ----------------------------------------------------------------------


def fast_forward(
    workload: Workload,
    config: MachineConfig,
    ff_insts: int,
    warming: bool = True,
) -> Snapshot:
    """Execute *ff_insts* instructions of *workload* functionally.

    Runs the interpreter tier (correct paths only, no timing) from the
    workload's entry point, optionally warming a data hierarchy and a
    front-end predictor architecturally along the way, and captures the
    result as a :class:`Snapshot`.

    The warming protocol mirrors the detailed core's state updates
    without its clock:

    * memory instructions perform a demand :meth:`DataHierarchy.access`
      (null-page faults excluded, as in the core's latency path), with
      the stream prefetcher attached so the prefetch/victim buffer
      fills realistically;
    * branches run predict -> (on mismatch) restore + replay_actual ->
      train — exactly the speculative-history discipline of the
      detailed front end, collapsed to zero resolution delay.

    Stops early at HALT or a PC outside the program (the snapshot
    records how far it actually got).
    """
    program = workload.program
    memory = Memory(workload.memory_image, journaling=False)
    state = ThreadState(memory, entry_pc=program.entry_pc, journaling=False)

    hierarchy = predictor = None
    if warming:
        hierarchy = DataHierarchy(config)
        StreamPrefetcher(config.prefetch, hierarchy).attach()
        predictor = FrontEndPredictor(config.branch)

    executed = 0
    halted = False
    for inst, result in run_functional(program, state, ff_insts):
        executed += 1
        if warming:
            if inst.is_mem:
                addr = result.addr
                if addr is not None and result.fault is not Fault.NULL_DEREF:
                    hierarchy.access(addr, inst.is_store, now=0)
            elif inst.is_branch:
                prediction = predictor.predict(inst)
                taken = bool(result.taken)
                actual = result.next_pc
                if prediction.target != actual:
                    # Mispredicted: restore the pre-branch histories
                    # and replay the actual outcome, as the detailed
                    # core does at branch resolution.
                    predictor.restore(prediction)
                    predictor.replay_actual(inst, taken, actual)
                predictor.train(inst, taken, actual, prediction)
        if result.fault is Fault.HALT:
            halted = True
            break

    return Snapshot(
        workload=workload.name,
        scale=workload.scale,
        ff_insts=ff_insts,
        executed=executed,
        pc=state.pc,
        halted=halted,
        regs=state.regs.values(),
        memory_words=memory.snapshot(),
        warming=warming,
        warm_config=warm_config_key(config) if warming else None,
        hierarchy_image=hierarchy.warm_image() if warming else None,
        predictor_image=predictor.warm_image() if warming else None,
    )


# ----------------------------------------------------------------------
# Layer 2: the content-addressed snapshot store
# ----------------------------------------------------------------------


class SnapshotStore(IntegrityStore):
    """On-disk snapshot store under ``<cache root>/snapshots/``.

    Shares the cache root (``REPRO_CACHE_DIR`` / ``.repro_cache``) and
    the ``corrupt/`` quarantine with the run cache, but uses its own
    suffix (``.snap``) and schema magic so the two stores never clear
    or decode each other's entries.
    """

    def __init__(
        self,
        cache_root: str | os.PathLike | None = None,
        enabled: bool = True,
    ):
        if cache_root is None:
            cache_root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        from pathlib import Path

        cache_root = Path(cache_root)
        super().__init__(
            cache_root / SNAPSHOT_SUBDIR,
            magic=_SNAP_MAGIC,
            suffix=".snap",
            enabled=enabled,
            corrupt_dir=cache_root / CORRUPT_SUBDIR,
        )

    @staticmethod
    def _decode_snapshot(blob: bytes) -> Snapshot:
        snapshot = pickle.loads(blob)["snapshot"]
        if not isinstance(snapshot, Snapshot):
            raise CacheCorruptionError(
                f"payload is {type(snapshot).__name__}, not Snapshot"
            )
        return snapshot

    def get(self, key: str) -> Snapshot | None:
        """Return the stored snapshot for *key*, or ``None`` on a miss
        (corrupt entries are quarantined and counted, as in the run
        cache)."""
        return self.load(key, self._decode_snapshot)

    def put(self, key: str, snapshot: Snapshot) -> str:
        """Persist *snapshot* under *key*; return its payload digest."""
        return self.store(key, _encode(snapshot))

    def ls(self) -> list[dict]:
        """Describe every live snapshot (for ``repro snapshot ls``)."""
        entries = []
        for path in self.entry_paths():
            key = path.stem
            size = path.stat().st_size
            snapshot = self.get(key)
            if snapshot is None:
                continue
            entries.append(
                {
                    "key": key,
                    "workload": snapshot.workload,
                    "scale": snapshot.scale,
                    "ff_insts": snapshot.ff_insts,
                    "executed": snapshot.executed,
                    "warming": snapshot.warming,
                    "bytes": size,
                }
            )
        return entries


# ----------------------------------------------------------------------
# Layer 3 helpers: build-once / share-everywhere
# ----------------------------------------------------------------------


def ensure_snapshot(
    workload: Workload,
    config: MachineConfig,
    ff_insts: int,
    warming: bool = True,
    store: SnapshotStore | None = None,
) -> tuple[Snapshot, bool]:
    """Fetch (or build and persist) the snapshot for this prefix.

    Returns ``(snapshot, hit)`` where *hit* says the snapshot came from
    the store. Builds are deterministic and writes are atomic, so
    concurrent workers racing on a missing snapshot converge on
    identical bytes.
    """
    if store is None:
        store = SnapshotStore()
    key = snapshot_fingerprint(
        workload.name, workload.scale, ff_insts, config, warming
    )
    snapshot = store.get(key)
    if snapshot is not None:
        return snapshot, True
    snapshot = fast_forward(workload, config, ff_insts, warming=warming)
    store.put(key, snapshot)
    return snapshot, False


def prebuild_snapshots(requests, store: SnapshotStore | None = None) -> int:
    """Build every snapshot *requests* will need, once each.

    Called by ``run_matrix`` before fanning out so all sweep points
    (and all pool workers) share one architectural prefix instead of
    each re-paying it. Returns the number of snapshots built fresh.
    """
    from repro.workloads import registry

    if store is None:
        store = SnapshotStore()
    built = 0
    seen: set[str] = set()
    for request in requests:
        if getattr(request, "fast_forward", 0) <= 0:
            continue
        config = request.resolve_config()
        key = snapshot_fingerprint(
            request.workload, request.scale, request.fast_forward, config
        )
        if key in seen:
            continue
        seen.add(key)
        if store.get(key) is not None:
            continue
        workload = registry.build(request.workload, scale=request.scale)
        store.put(key, fast_forward(workload, config, request.fast_forward))
        built += 1
    return built
